//! Shared generator utilities: scaling, seeded RNG helpers, value pools.

use infine_relation::Value;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Scaling configuration for the synthetic datasets.
///
/// `factor` multiplies the paper's published row counts (Table I); the
/// default keeps everything laptop-test sized. The benches read
/// `INFINE_SCALE` to push toward the paper's full sizes.
#[derive(Debug, Clone, Copy)]
pub struct Scale {
    /// Multiplier on the paper's row counts (1.0 = full published size).
    pub factor: f64,
    /// RNG seed — generation is fully deterministic given (factor, seed).
    pub seed: u64,
}

impl Default for Scale {
    fn default() -> Self {
        Scale {
            factor: 0.01,
            seed: 0xF00D,
        }
    }
}

impl Scale {
    /// A scale with the given factor and the default seed.
    pub fn of(factor: f64) -> Self {
        Scale {
            factor,
            ..Default::default()
        }
    }

    /// Scale from the `INFINE_SCALE` environment variable (default 0.01).
    pub fn from_env() -> Self {
        let factor = std::env::var("INFINE_SCALE")
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .unwrap_or(0.01);
        Scale::of(factor)
    }

    /// Scaled row count for a paper-published count, with a floor.
    pub fn rows(&self, paper_count: usize, min: usize) -> usize {
        ((paper_count as f64 * self.factor) as usize).max(min)
    }

    /// A seeded RNG, offset so each table draws an independent stream.
    pub fn rng(&self, stream: u64) -> StdRng {
        StdRng::seed_from_u64(self.seed.wrapping_mul(0x9E37_79B9).wrapping_add(stream))
    }
}

/// A date value `days` after the synthetic epoch.
pub fn date(days: i32) -> Value {
    Value::Date(days)
}

/// Pick uniformly from a slice.
pub fn pick<'a, T>(rng: &mut StdRng, items: &'a [T]) -> &'a T {
    &items[rng.gen_range(0..items.len())]
}

/// Pick an index with the given weights.
pub fn pick_weighted(rng: &mut StdRng, weights: &[f64]) -> usize {
    let total: f64 = weights.iter().sum();
    let mut x = rng.gen::<f64>() * total;
    for (i, w) in weights.iter().enumerate() {
        x -= w;
        if x <= 0.0 {
            return i;
        }
    }
    weights.len() - 1
}

/// Zipf-ish skewed index in `0..n` (rank-1 heaviest).
pub fn skewed_index(rng: &mut StdRng, n: usize, skew: f64) -> usize {
    let u: f64 = rng.gen();
    let idx = (n as f64 * u.powf(1.0 + skew)) as usize;
    idx.min(n - 1)
}

/// Small pools of realistic-looking tokens.
pub mod pools {
    /// Insurance providers (MIMIC-style).
    pub const INSURANCE: &[&str] = &["Medicare", "Private", "Medicaid", "Self Pay", "Government"];
    /// Admission locations.
    pub const ADMISSION_LOCATION: &[&str] = &[
        "EMERGENCY ROOM ADMIT",
        "PHYS REFERRAL/NORMAL DELI",
        "CLINIC REFERRAL/PREMATURE",
        "TRANSFER FROM HOSP/EXTRAM",
        "TRANSFER FROM SKILLED NUR",
    ];
    /// Admission types.
    pub const ADMISSION_TYPE: &[&str] = &["EMERGENCY", "ELECTIVE", "URGENT", "NEWBORN"];
    /// Diagnoses.
    pub const DIAGNOSIS_STEMS: &[&str] = &[
        "CHEST PAIN",
        "PNEUMONIA",
        "GASTROINTESTINAL BLEED",
        "INTRACRANIAL HEAD BLEED",
        "UNSTABLE ANGINA",
        "SEPSIS",
        "CONGESTIVE HEART FAILURE",
        "CORONARY ARTERY DISEASE",
        "ALTERED MENTAL STATUS",
        "COMPLETE HEART BLOCK",
    ];
    /// Marital statuses.
    pub const MARITAL: &[&str] = &["MARRIED", "SINGLE", "WIDOWED", "DIVORCED"];
    /// Ethnicities.
    pub const ETHNICITY: &[&str] = &["WHITE", "BLACK", "HISPANIC", "ASIAN", "OTHER"];
    /// Religions.
    pub const RELIGION: &[&str] = &["CATHOLIC", "PROTESTANT", "JEWISH", "NOT SPECIFIED"];
    /// Languages.
    pub const LANGUAGE: &[&str] = &["ENGL", "SPAN", "RUSS", "PORT"];
    /// Chemical elements (PTE/PTC style).
    pub const ELEMENTS: &[&str] = &["c", "h", "o", "n", "s", "cl", "f", "br", "p", "i"];
    /// Bond types.
    pub const BOND_TYPES: &[&str] = &["1", "2", "3", "7"];
    /// TPC-H part types.
    pub const PART_TYPES: &[&str] = &[
        "STANDARD ANODIZED BRASS",
        "SMALL PLATED COPPER",
        "MEDIUM POLISHED STEEL",
        "ECONOMY BURNISHED NICKEL",
        "PROMO BRUSHED TIN",
        "LARGE ANODIZED STEEL",
    ];
    /// TPC-H containers.
    pub const CONTAINERS: &[&str] = &["SM CASE", "LG BOX", "MED BAG", "JUMBO JAR", "WRAP PKG"];
    /// TPC-H market segments.
    pub const SEGMENTS: &[&str] = &[
        "BUILDING",
        "AUTOMOBILE",
        "MACHINERY",
        "HOUSEHOLD",
        "FURNITURE",
    ];
    /// TPC-H nations (paper-size: 25) with region index.
    pub const NATIONS: &[(&str, usize)] = &[
        ("ALGERIA", 0),
        ("ARGENTINA", 1),
        ("BRAZIL", 1),
        ("CANADA", 1),
        ("EGYPT", 4),
        ("ETHIOPIA", 0),
        ("FRANCE", 3),
        ("GERMANY", 3),
        ("INDIA", 2),
        ("INDONESIA", 2),
        ("IRAN", 4),
        ("IRAQ", 4),
        ("JAPAN", 2),
        ("JORDAN", 4),
        ("KENYA", 0),
        ("MOROCCO", 0),
        ("MOZAMBIQUE", 0),
        ("PERU", 1),
        ("CHINA", 2),
        ("ROMANIA", 3),
        ("SAUDI ARABIA", 4),
        ("VIETNAM", 2),
        ("RUSSIA", 3),
        ("UNITED KINGDOM", 3),
        ("UNITED STATES", 1),
    ];
    /// TPC-H regions.
    pub const REGIONS: &[&str] = &["AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"];
    /// TPC-H order statuses.
    pub const ORDER_STATUS: &[&str] = &["O", "F", "P"];
    /// TPC-H ship modes.
    pub const SHIP_MODES: &[&str] = &["TRUCK", "MAIL", "SHIP", "AIR", "RAIL", "FOB", "REG AIR"];
    /// TPC-H priorities.
    pub const PRIORITIES: &[&str] = &["1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"];
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_rows_respects_floor_and_factor() {
        let s = Scale::of(0.1);
        assert_eq!(s.rows(1000, 5), 100);
        assert_eq!(s.rows(10, 5), 5);
    }

    #[test]
    fn rng_is_deterministic_per_stream() {
        let s = Scale::of(1.0);
        let a: u64 = s.rng(1).gen();
        let b: u64 = s.rng(1).gen();
        let c: u64 = s.rng(2).gen();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn pick_weighted_respects_support() {
        let s = Scale::of(1.0);
        let mut rng = s.rng(3);
        for _ in 0..100 {
            let i = pick_weighted(&mut rng, &[0.0, 1.0, 0.0]);
            assert_eq!(i, 1);
        }
    }

    #[test]
    fn skewed_index_in_range() {
        let s = Scale::of(1.0);
        let mut rng = s.rng(4);
        for _ in 0..1000 {
            let i = skewed_index(&mut rng, 50, 1.0);
            assert!(i < 50);
        }
    }
}
