//! Random delta-batch generation for the incremental-maintenance tests
//! and benches.
//!
//! Inserted rows are *perturbed copies* of existing rows: a random source
//! row is cloned and a few of its cells are replaced with values drawn
//! from the same column elsewhere in the table. That keeps every column
//! inside its realistic domain (foreign keys keep joining, categorical
//! pools stay closed) while still producing genuine FD violations — the
//! interesting case for revalidation.

use infine_relation::{DeltaBatch, DeltaRelation, Relation, Value};
use rand::rngs::StdRng;
use rand::Rng;
use std::collections::HashSet;

/// A random batch against `rel`: up to `deletes` distinct row deletions
/// and exactly `inserts` perturbed-copy insertions (zero when the
/// relation has no live rows).
///
/// Tombstone-aware: delete ids are *logical* (live-row) ids — the
/// addressing every engine speaks — and perturbation sources are drawn
/// from live rows only, so the generator works identically against
/// compacting and tombstoned relation lineages.
pub fn random_delta(
    rng: &mut StdRng,
    rel: &Relation,
    deletes: usize,
    inserts: usize,
) -> DeltaBatch {
    let mut batch = DeltaBatch::new();
    let n = rel.live_rows();
    if n == 0 {
        return batch;
    }
    // logical → physical row translation (identity when compact).
    let live: Option<Vec<u32>> = rel.has_tombstones().then(|| rel.live_row_ids());
    let phys = |logical: usize| -> usize {
        match &live {
            Some(ids) => ids[logical] as usize,
            None => logical,
        }
    };
    let mut chosen: HashSet<u32> = HashSet::new();
    for _ in 0..deletes.min(n) {
        chosen.insert(rng.gen_range(0..n) as u32);
    }
    let mut deletes: Vec<u32> = chosen.into_iter().collect();
    deletes.sort_unstable();
    batch.deletes = deletes;

    for _ in 0..inserts {
        let src = phys(rng.gen_range(0..n));
        let mut row: Vec<Value> = rel.row(src);
        // Perturb 1–2 cells with same-column values from other rows.
        for _ in 0..rng.gen_range(1..=2usize) {
            let col = rng.gen_range(0..rel.ncols());
            let donor = phys(rng.gen_range(0..n));
            row[col] = rel.value(donor, col).clone();
        }
        batch.insert(row);
    }
    batch
}

/// A [`random_delta`] sized as a fraction of the relation's rows, split
/// evenly between deletes and inserts (at least one change each when the
/// fraction is non-zero; an empty batch when it is zero), addressed to
/// the relation by name.
pub fn random_churn(rng: &mut StdRng, rel: &Relation, fraction: f64) -> DeltaRelation {
    if fraction <= 0.0 {
        return DeltaRelation::new(rel.name.clone(), DeltaBatch::new());
    }
    let n = rel.live_rows();
    let changes = ((n as f64 * fraction) as usize).max(2);
    let batch = random_delta(rng, rel, changes / 2, changes - changes / 2);
    DeltaRelation::new(rel.name.clone(), batch)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Scale;
    use rand::SeedableRng;

    #[test]
    fn random_delta_applies_cleanly() {
        let db = crate::tpch::generate(Scale::of(0.002));
        let rel = db.expect("supplier");
        let mut rng = StdRng::seed_from_u64(7);
        let batch = random_delta(&mut rng, rel, 5, 5);
        assert!(batch.num_deletes() <= 5);
        assert_eq!(batch.num_inserts(), 5);
        let (r2, applied) = rel.apply_delta(&batch, "supplier");
        assert_eq!(r2.nrows(), rel.nrows() - applied.num_deleted() + 5);
    }

    #[test]
    fn churn_scales_with_fraction() {
        let db = crate::tpch::generate(Scale::of(0.002));
        let rel = db.expect("partsupp");
        let mut rng = StdRng::seed_from_u64(9);
        let d = random_churn(&mut rng, rel, 0.1);
        assert_eq!(d.target, "partsupp");
        let total = d.batch.num_deletes() + d.batch.num_inserts();
        assert!(
            total >= (rel.nrows() / 20).max(2),
            "churn too small: {total}"
        );
    }

    #[test]
    fn empty_relation_yields_empty_batch() {
        use infine_relation::{relation_from_rows, Value as V};
        let rel = relation_from_rows("e", &["a"], &[] as &[&[V]]);
        let mut rng = StdRng::seed_from_u64(1);
        assert!(random_delta(&mut rng, &rel, 3, 3).is_empty());
    }
}
