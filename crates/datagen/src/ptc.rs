//! PTC-like generator (Predictive Toxicology Challenge).
//!
//! Molecules labelled by carcinogenicity, their atoms, bonds, and the
//! `connected` adjacency table. Table I shapes: molecule (2; 343),
//! atom (3; 12 333), bond (3; 12 379), connected (3; 24 758).
//! `connected` fans out over `bond` (paper coverage 1.5) and over
//! `atom ⋈ molecule` (coverage 27.08 for the bracketed views).

use crate::common::{pick, pools, Scale};
use infine_relation::{Database, RelationBuilder, Schema, Value};
use rand::Rng;

/// Paper row counts (Table I).
pub const PAPER_MOLECULE: usize = 343;
/// atom rows.
pub const PAPER_ATOM: usize = 12_333;
/// bond rows.
pub const PAPER_BOND: usize = 12_379;
/// connected rows.
pub const PAPER_CONNECTED: usize = 24_758;

/// Generate the four PTC-like tables.
pub fn generate(scale: Scale) -> Database {
    let n_mol = scale.rows(PAPER_MOLECULE, 24).min(PAPER_MOLECULE);
    let n_atom = scale.rows(PAPER_ATOM, 150);
    let n_bond = scale.rows(PAPER_BOND, 150);
    let mut db = Database::new();

    // ---- molecule (2 attributes) ----
    let mut rng = scale.rng(31);
    let mut b = RelationBuilder::new(
        "molecule",
        Schema::base("molecule", &["molecule_id", "label"]),
    );
    for i in 0..n_mol {
        b.push_row(vec![
            Value::str(format!("TR{i:03}")),
            Value::Int(i64::from(rng.gen_bool(0.45))),
        ]);
    }
    db.insert(b.finish());

    // ---- atom (3 attributes) ----
    let mut rng = scale.rng(32);
    let mut b = RelationBuilder::new(
        "atom",
        Schema::base("atom", &["atom_id", "molecule_id", "element"]),
    );
    // Real atom ids per molecule, so `connected` references existing atoms.
    let mut atoms_of: Vec<Vec<String>> = vec![Vec::new(); n_mol];
    for i in 0..n_atom {
        let mol = rng.gen_range(0..n_mol);
        let id = format!("TR{mol:03}_{i}");
        atoms_of[mol].push(id.clone());
        b.push_row(vec![
            Value::str(id),
            Value::str(format!("TR{mol:03}")),
            Value::str(*pick(&mut rng, pools::ELEMENTS)),
        ]);
    }
    db.insert(b.finish());

    // ---- bond (3 attributes) ----
    let mut rng = scale.rng(33);
    let mut b = RelationBuilder::new(
        "bond",
        Schema::base("bond", &["bond_id", "molecule_id", "btype"]),
    );
    for i in 0..n_bond {
        let mol = rng.gen_range(0..n_mol);
        b.push_row(vec![
            Value::Int(i as i64),
            Value::str(format!("TR{mol:03}")),
            Value::str(*pick(&mut rng, pools::BOND_TYPES)),
        ]);
    }
    db.insert(b.finish());

    // ---- connected (3 attributes): two rows per bond (both directions) ----
    let mut rng = scale.rng(34);
    let mut b = RelationBuilder::new(
        "connected",
        Schema::base("connected", &["atom_id1", "atom_id2", "bond_id"]),
    );
    let connectable: Vec<usize> = (0..n_mol).filter(|&m| atoms_of[m].len() >= 2).collect();
    for i in 0..n_bond {
        let mol = *pick(&mut rng, &connectable);
        let atoms = &atoms_of[mol];
        let i1 = rng.gen_range(0..atoms.len());
        let i2 = (i1 + 1 + rng.gen_range(0..atoms.len() - 1)) % atoms.len();
        let (id1, id2) = (atoms[i1].clone(), atoms[i2].clone());
        b.push_row(vec![
            Value::str(id1.clone()),
            Value::str(id2.clone()),
            Value::Int(i as i64),
        ]);
        b.push_row(vec![Value::str(id2), Value::str(id1), Value::Int(i as i64)]);
    }
    db.insert(b.finish());

    db
}

#[cfg(test)]
mod tests {
    use super::*;
    use infine_relation::AttrSet;

    #[test]
    fn shapes_match_table1() {
        let db = generate(Scale::of(0.05));
        assert_eq!(db.expect("molecule").ncols(), 2);
        assert_eq!(db.expect("atom").ncols(), 3);
        assert_eq!(db.expect("bond").ncols(), 3);
        assert_eq!(db.expect("connected").ncols(), 3);
        // connected ≈ 2 × bond
        assert_eq!(
            db.expect("connected").nrows(),
            2 * db.expect("bond").nrows()
        );
    }

    #[test]
    fn atom_key_fds() {
        let db = generate(Scale::of(0.05));
        let atom = db.expect("atom");
        let id = atom.schema.expect_id("atom_id");
        assert!(infine_partitions::fd_holds(atom, AttrSet::single(id), 1));
        assert!(infine_partitions::fd_holds(atom, AttrSet::single(id), 2));
    }

    #[test]
    fn molecule_label_fd() {
        let db = generate(Scale::of(0.05));
        let mol = db.expect("molecule");
        assert!(infine_partitions::fd_holds(mol, AttrSet::single(0), 1));
    }

    #[test]
    fn connected_bond_fanout() {
        use infine_algebra::{coverage, JoinOp};
        let db = generate(Scale::of(0.05));
        let c = db.expect("connected");
        let bd = db.expect("bond");
        let cb = c.schema.expect_id("bond_id");
        let bb = bd.schema.expect_id("bond_id");
        let cov = coverage(c, bd, &[(cb, bb)], JoinOp::Inner);
        assert!(cov > 1.0, "connected ⋈ bond should fan out, got {cov}");
    }
}
