//! # infine-datagen
//!
//! Synthetic stand-ins for the paper's four evaluation databases — the
//! credential-gated MIMIC-III, the offline PTE and PTC molecule datasets,
//! and TPC-H — calibrated to Table I (attribute counts, scaled row
//! counts, key/FK structure, planted FDs and approximate FDs), plus the
//! 16-view SPJ query catalog of Table II with the paper's published
//! numbers attached.
//!
//! Generation is deterministic given a [`Scale`] (factor × seed); the
//! benches read `INFINE_SCALE` to trade fidelity for runtime.

pub mod common;
pub mod delta;
pub mod mimic;
pub mod ptc;
pub mod pte;
pub mod queries;
pub mod tpch;

pub use common::Scale;
pub use delta::{random_churn, random_delta};
pub use queries::{
    catalog, catalog_for, find, root_join_coverage, DatasetKind, PaperNumbers, QueryCase,
};
