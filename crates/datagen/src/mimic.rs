//! MIMIC-III-like clinical data generator.
//!
//! The real MIMIC-III database is credential-gated, so this module builds
//! a synthetic stand-in calibrated to Table I of the paper: the same four
//! tables, the same attribute counts, row counts scaled from the
//! published sizes, and — most importantly for InFine — the same
//! *structural* phenomena:
//!
//! * keys (`subject_id`, `row_id`, `icd9_code`) inducing base FDs;
//! * derived columns (`expire_flag` from `dod`, `hospital_expire_flag`
//!   from `insurance`) inducing non-key base FDs;
//! * foreign keys with dangling tuples on both sides, so joins drop rows
//!   and upstage FDs;
//! * a planted approximate FD (`diagnosis ⇁ discharge_location`) whose
//!   violators all live on dangling admissions — it becomes exact in the
//!   join, reproducing the paper's Fig. 1 `expire_flag ⇁ dod` effect.

use crate::common::{date, pick, pools, skewed_index, Scale};
use infine_relation::{Database, RelationBuilder, Schema, Value};
use rand::Rng;

/// Paper row counts (Table I).
pub const PAPER_PATIENTS: usize = 46_520;
/// Paper row count for admissions.
pub const PAPER_ADMISSIONS: usize = 58_976;
/// Paper row count for diagnoses_icd.
pub const PAPER_DIAGNOSES_ICD: usize = 651_047;
/// Paper row count for d_icd_diagnoses.
pub const PAPER_D_ICD: usize = 14_710;

/// Generate the four MIMIC-like tables.
pub fn generate(scale: Scale) -> Database {
    let n_patients = scale.rows(PAPER_PATIENTS, 60);
    let n_admissions = scale.rows(PAPER_ADMISSIONS, 80);
    let n_diag = scale.rows(PAPER_DIAGNOSES_ICD, 200);
    let n_icd = scale.rows(PAPER_D_ICD, 40);
    let mut db = Database::new();

    // ---- patients (7 attributes) ----
    let mut rng = scale.rng(11);
    let mut b = RelationBuilder::new(
        "patients",
        Schema::base(
            "patients",
            &[
                "subject_id",
                "gender",
                "dob",
                "dod",
                "expire_flag",
                "marital_status",
                "language",
            ],
        ),
    );
    for i in 0..n_patients {
        let subject_id = 10_000 + i as i64;
        let gender = if rng.gen_bool(0.55) { "F" } else { "M" };
        let dob = date(rng.gen_range(-20_000..0));
        // ~12% deceased; dod functionally determines expire_flag.
        let dod = if rng.gen_bool(0.12) {
            date(rng.gen_range(0..8_000))
        } else {
            Value::Null
        };
        let expire_flag = Value::Int(if dod.is_null() { 0 } else { 1 });
        b.push_row(vec![
            Value::Int(subject_id),
            Value::str(gender),
            dob,
            dod,
            expire_flag,
            Value::str(*pick(&mut rng, pools::MARITAL)),
            Value::str(*pick(&mut rng, pools::LANGUAGE)),
        ]);
    }
    db.insert(b.finish());

    // ---- admissions (18 attributes) ----
    let mut rng = scale.rng(12);
    let names = [
        "row_id",
        "subject_id",
        "admittime",
        "dischtime",
        "admission_type",
        "admission_location",
        "discharge_location",
        "insurance",
        "language",
        "religion",
        "marital_status",
        "ethnicity",
        "edregtime",
        "hospital_expire_flag",
        "diagnosis",
        "has_chartevents_data",
        "deathtime",
        "edouttime",
    ];
    let mut b = RelationBuilder::new("admissions", Schema::base("admissions", &names));
    // per-subject stable insurance (subject_id → insurance) and
    // insurance → hospital_expire_flag (derived 0/1 per provider).
    let insurance_of = |sid: usize| pools::INSURANCE[sid % pools::INSURANCE.len()];
    let h_flag_of = |ins: &str| i64::from(ins == "Self Pay");
    // diagnosis → discharge_location is *almost* functional: violators are
    // planted only on dangling admissions (subject_id outside patients),
    // so the FD upstages to exact in patients ⋈ admissions.
    let n_diag_pool = (n_admissions / 6).max(4);
    let disch_of = |d: usize| pools::ADMISSION_LOCATION[d % pools::ADMISSION_LOCATION.len()];
    for i in 0..n_admissions {
        let row_id = i as i64;
        // ~88% of admissions reference an existing patient (skewed: some
        // patients have many admissions); the rest dangle.
        let dangling = rng.gen_bool(0.12);
        let sid_idx = if dangling {
            n_patients + rng.gen_range(0..n_patients.max(8) / 8 + 1)
        } else {
            skewed_index(&mut rng, n_patients, 0.8)
        };
        let subject_id = 10_000 + sid_idx as i64;
        let admit = rng.gen_range(0..40_000);
        let stay = rng.gen_range(1..60);
        let diag_idx = rng.gen_range(0..n_diag_pool);
        let diagnosis = format!(
            "{} {}",
            pools::DIAGNOSIS_STEMS[diag_idx % pools::DIAGNOSIS_STEMS.len()],
            diag_idx
        );
        // planted AFD violation: dangling rows sometimes break
        // diagnosis → discharge_location
        let disch = if dangling && rng.gen_bool(0.5) {
            pools::ADMISSION_LOCATION[(diag_idx + 1) % pools::ADMISSION_LOCATION.len()]
        } else {
            disch_of(diag_idx)
        };
        let ins = insurance_of(sid_idx);
        let h_flag = h_flag_of(ins);
        let deathtime = if h_flag == 1 && rng.gen_bool(0.5) {
            date(admit + stay)
        } else {
            Value::Null
        };
        b.push_row(vec![
            Value::Int(row_id),
            Value::Int(subject_id),
            date(admit),
            date(admit + stay),
            Value::str(*pick(&mut rng, pools::ADMISSION_TYPE)),
            Value::str(*pick(&mut rng, pools::ADMISSION_LOCATION)),
            Value::str(disch),
            Value::str(ins),
            Value::str(*pick(&mut rng, pools::LANGUAGE)),
            Value::str(*pick(&mut rng, pools::RELIGION)),
            Value::str(*pick(&mut rng, pools::MARITAL)),
            Value::str(*pick(&mut rng, pools::ETHNICITY)),
            date(admit - rng.gen_range(0..2)),
            Value::Int(h_flag),
            Value::str(diagnosis),
            Value::Int(1),
            deathtime,
            date(admit + rng.gen_range(0..2)),
        ]);
    }
    db.insert(b.finish());

    // ---- d_icd_diagnoses (3 attributes) ----
    let mut rng = scale.rng(13);
    let mut b = RelationBuilder::new(
        "d_icd_diagnoses",
        Schema::base(
            "d_icd_diagnoses",
            &["icd9_code", "short_title", "long_title"],
        ),
    );
    for i in 0..n_icd {
        let code = format!("{:05}", i * 7 % 99_999);
        b.push_row(vec![
            Value::str(code.clone()),
            Value::str(format!("short {i}")),
            Value::str(format!(
                "{} long title {i}",
                pick(&mut rng, pools::DIAGNOSIS_STEMS)
            )),
        ]);
    }
    db.insert(b.finish());

    // ---- diagnoses_icd (4 attributes) ----
    let mut rng = scale.rng(14);
    let mut b = RelationBuilder::new(
        "diagnoses_icd",
        Schema::base(
            "diagnoses_icd",
            &["row_id", "subject_id", "seq_num", "icd9_code"],
        ),
    );
    for i in 0..n_diag {
        // heavy fan-out onto patients (paper coverage ≈ 7.5)
        let sid_idx = skewed_index(&mut rng, n_patients, 0.3);
        let icd_idx = skewed_index(&mut rng, n_icd, 0.7);
        let code = format!("{:05}", icd_idx * 7 % 99_999);
        b.push_row(vec![
            Value::Int(i as i64),
            Value::Int(10_000 + sid_idx as i64),
            Value::Int(rng.gen_range(1..10)),
            Value::str(code),
        ]);
    }
    db.insert(b.finish());

    db
}

#[cfg(test)]
mod tests {
    use super::*;
    use infine_discovery::{mine_fds, Fd};
    use infine_relation::AttrSet;

    #[test]
    fn tables_have_paper_attribute_counts() {
        let db = generate(Scale::of(0.002));
        assert_eq!(db.expect("patients").ncols(), 7);
        assert_eq!(db.expect("admissions").ncols(), 18);
        assert_eq!(db.expect("diagnoses_icd").ncols(), 4);
        assert_eq!(db.expect("d_icd_diagnoses").ncols(), 3);
    }

    #[test]
    fn planted_fds_hold() {
        let db = generate(Scale::of(0.003));
        let p = db.expect("patients");
        // dod → expire_flag
        let dod = p.schema.expect_id("dod");
        let ef = p.schema.expect_id("expire_flag");
        assert!(infine_partitions::fd_holds(p, AttrSet::single(dod), ef));
        // subject_id is a key
        let sid = p.schema.expect_id("subject_id");
        for a in 1..p.ncols() {
            assert!(infine_partitions::fd_holds(p, AttrSet::single(sid), a));
        }
        let adm = db.expect("admissions");
        let ins = adm.schema.expect_id("insurance");
        let h = adm.schema.expect_id("hospital_expire_flag");
        assert!(infine_partitions::fd_holds(adm, AttrSet::single(ins), h));
        let sid = adm.schema.expect_id("subject_id");
        assert!(infine_partitions::fd_holds(adm, AttrSet::single(sid), ins));
    }

    #[test]
    fn planted_afd_becomes_exact_after_join() {
        use infine_algebra::{execute, ViewSpec};
        let db = generate(Scale::of(0.004));
        let adm = db.expect("admissions");
        let diag = adm.schema.expect_id("diagnosis");
        let disch = adm.schema.expect_id("discharge_location");
        // AFD on the base table (violated) …
        let holds_base = infine_partitions::fd_holds(adm, AttrSet::single(diag), disch);
        // … exact on the join (violators dangle).
        let spec =
            ViewSpec::base("patients").inner_join(ViewSpec::base("admissions"), &["subject_id"]);
        let view = execute(&spec, &db).unwrap();
        let vdiag = view.schema.expect_id("diagnosis");
        let vdisch = view.schema.expect_id("discharge_location");
        let holds_view = infine_partitions::fd_holds(&view, AttrSet::single(vdiag), vdisch);
        assert!(
            holds_view,
            "diagnosis → discharge_location must hold on the view"
        );
        // The base violation is probabilistic but near-certain at this
        // scale; assert only the upstaging direction.
        let _ = holds_base;
    }

    #[test]
    fn icd_dictionary_has_two_fds() {
        let db = generate(Scale::of(0.003));
        let icd = db.expect("d_icd_diagnoses");
        let fds = mine_fds(icd, icd.attr_set());
        let code = icd.schema.expect_id("icd9_code");
        assert!(fds.contains(&Fd::new(AttrSet::single(code), 1)));
        assert!(fds.contains(&Fd::new(AttrSet::single(code), 2)));
    }

    #[test]
    fn deterministic_given_seed() {
        let a = generate(Scale::of(0.002));
        let b = generate(Scale::of(0.002));
        assert_eq!(a.expect("patients").row(5), b.expect("patients").row(5));
    }
}
