//! PTE-like generator (Predictive Toxicology Evaluation).
//!
//! The original dataset (relational.fit.cvut.cz) is a molecule database:
//! drugs, their atoms (`atm`), bonds between atoms, and an activity label
//! per drug. Table I shapes: drug (1 attr; 340), active (2; 300),
//! atm (5; 9 317), bond (4; 9 317-ish). `active` covers a strict subset
//! of the drugs (paper coverage of `active ⋈ drug` is 0.94).

use crate::common::{pick, pools, Scale};
use infine_relation::{Database, RelationBuilder, Schema, Value};
use rand::Rng;

/// Paper row counts (Table I).
pub const PAPER_DRUG: usize = 340;
/// active rows.
pub const PAPER_ACTIVE: usize = 300;
/// atm rows.
pub const PAPER_ATM: usize = 9_189;
/// bond rows.
pub const PAPER_BOND: usize = 9_317;

/// Generate the four PTE-like tables.
pub fn generate(scale: Scale) -> Database {
    // Keep drug count near the paper's (it is already tiny) but scale the
    // big tables.
    let n_drug = scale.rows(PAPER_DRUG, 30).min(PAPER_DRUG);
    let n_active = ((n_drug as f64) * PAPER_ACTIVE as f64 / PAPER_DRUG as f64) as usize;
    let n_atm = scale.rows(PAPER_ATM, 120);
    let n_bond = scale.rows(PAPER_BOND, 120);
    let mut db = Database::new();

    // ---- drug (1 attribute — no FDs possible) ----
    let mut b = RelationBuilder::new("drug", Schema::base("drug", &["drug_id"]));
    for i in 0..n_drug {
        b.push_row(vec![Value::str(format!("d{i}"))]);
    }
    db.insert(b.finish());

    // ---- active (2 attributes): subset of drugs, one label each ----
    let mut rng = scale.rng(21);
    let mut b = RelationBuilder::new("active", Schema::base("active", &["drug_id", "activity"]));
    for i in 0..n_active {
        b.push_row(vec![
            Value::str(format!("d{i}")),
            Value::Int(i64::from(rng.gen_bool(0.5))),
        ]);
    }
    db.insert(b.finish());

    // ---- atm (5 attributes) ----
    let mut rng = scale.rng(22);
    let mut b = RelationBuilder::new(
        "atm",
        Schema::base("atm", &["atm_id", "drug_id", "element", "charge", "atype"]),
    );
    // Track real atom ids per drug so bonds reference existing atoms —
    // the bond/atm joins must actually match (paper coverage ≈ 14).
    let mut atoms_of: Vec<Vec<String>> = vec![Vec::new(); n_drug];
    for i in 0..n_atm {
        let drug = rng.gen_range(0..n_drug);
        let element = *pick(&mut rng, pools::ELEMENTS);
        // atype is functional of element (element → atype base FD).
        let atype = 20 + pools::ELEMENTS.iter().position(|e| *e == element).unwrap() as i64;
        let id = format!("d{drug}_{i}");
        atoms_of[drug].push(id.clone());
        b.push_row(vec![
            Value::str(id),
            Value::str(format!("d{drug}")),
            Value::str(element),
            Value::float((rng.gen_range(-3..=3) as f64) / 10.0),
            Value::Int(atype),
        ]);
    }
    db.insert(b.finish());

    // ---- bond (4 attributes): endpoints are real atoms of the drug ----
    let mut rng = scale.rng(23);
    let mut b = RelationBuilder::new(
        "bond",
        Schema::base("bond", &["drug_id", "atm_id1", "atm_id2", "btype"]),
    );
    let bondable: Vec<usize> = (0..n_drug).filter(|&d| atoms_of[d].len() >= 2).collect();
    for _ in 0..n_bond {
        let drug = *pick(&mut rng, &bondable);
        let atoms = &atoms_of[drug];
        let a1 = rng.gen_range(0..atoms.len());
        let a2 = (a1 + 1 + rng.gen_range(0..atoms.len() - 1)) % atoms.len();
        b.push_row(vec![
            Value::str(format!("d{drug}")),
            Value::str(atoms[a1].clone()),
            Value::str(atoms[a2].clone()),
            Value::str(*pick(&mut rng, pools::BOND_TYPES)),
        ]);
    }
    db.insert(b.finish());

    db
}

#[cfg(test)]
mod tests {
    use super::*;
    use infine_relation::AttrSet;

    #[test]
    fn shapes_match_table1() {
        let db = generate(Scale::of(0.05));
        assert_eq!(db.expect("drug").ncols(), 1);
        assert_eq!(db.expect("active").ncols(), 2);
        assert_eq!(db.expect("atm").ncols(), 5);
        assert_eq!(db.expect("bond").ncols(), 4);
    }

    #[test]
    fn active_is_a_strict_subset_of_drugs() {
        let db = generate(Scale::of(0.05));
        assert!(db.expect("active").nrows() < db.expect("drug").nrows());
    }

    #[test]
    fn atm_key_and_element_fds() {
        let db = generate(Scale::of(0.05));
        let atm = db.expect("atm");
        let id = atm.schema.expect_id("atm_id");
        for a in 1..atm.ncols() {
            assert!(
                infine_partitions::fd_holds(atm, AttrSet::single(id), a),
                "atm_id should determine column {a}"
            );
        }
        let el = atm.schema.expect_id("element");
        let ty = atm.schema.expect_id("atype");
        assert!(infine_partitions::fd_holds(atm, AttrSet::single(el), ty));
    }

    #[test]
    fn active_drug_ids_reference_drug() {
        let db = generate(Scale::of(0.05));
        let drug = db.expect("drug");
        let active = db.expect("active");
        let ids: std::collections::HashSet<String> = (0..drug.nrows())
            .map(|r| drug.value(r, 0).to_string())
            .collect();
        for r in 0..active.nrows() {
            assert!(ids.contains(&active.value(r, 0).to_string()));
        }
    }
}
