//! The 16-view SPJ query catalog of Table II, with the paper's published
//! numbers attached for EXPERIMENTS.md comparison.
//!
//! Queries are written with selections *pushed down* to the base tables
//! (the paper runs its views through PostgreSQL, whose optimizer does the
//! same; InFine's Algorithm 2 then fires at the base level instead of on
//! a materialized join). Projections keep the attribute counts close to
//! Table II; join keys stay available to the pipeline automatically.

use crate::common::Scale;
use infine_algebra::{CmpOp, JoinOp, Predicate, ViewSpec};
use infine_relation::Database;

/// Which synthetic database a query runs on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DatasetKind {
    /// MIMIC-III-like clinical data.
    Mimic,
    /// Predictive Toxicology Evaluation.
    Pte,
    /// Predictive Toxicology Challenge.
    Ptc,
    /// TPC-H-like warehouse.
    Tpch,
}

impl DatasetKind {
    /// Generate the database at the given scale.
    ///
    /// PTE and PTC are small datasets (≤ 25k rows at full size), so their
    /// effective factor is boosted 10× (capped at 1.0): at the default
    /// harness scale they would otherwise sit on the generators' minimum
    /// row floors and lose their characteristic fan-out shapes.
    pub fn generate(self, scale: Scale) -> Database {
        let boosted = Scale {
            factor: (scale.factor * 10.0).min(1.0),
            seed: scale.seed,
        };
        match self {
            DatasetKind::Mimic => crate::mimic::generate(scale),
            DatasetKind::Pte => crate::pte::generate(boosted),
            DatasetKind::Ptc => crate::ptc::generate(boosted),
            DatasetKind::Tpch => crate::tpch::generate(scale),
        }
    }

    /// Display name matching the paper.
    pub fn name(self) -> &'static str {
        match self {
            DatasetKind::Mimic => "MIMIC3",
            DatasetKind::Pte => "PTE",
            DatasetKind::Ptc => "PTC",
            DatasetKind::Tpch => "TPC-H",
        }
    }

    /// All datasets, in the paper's figure order.
    pub const ALL: [DatasetKind; 4] = [
        DatasetKind::Pte,
        DatasetKind::Ptc,
        DatasetKind::Mimic,
        DatasetKind::Tpch,
    ];
}

/// Numbers the paper reports for a view (Tables II and III).
#[derive(Debug, Clone, Copy)]
pub struct PaperNumbers {
    /// Attribute count of the view (Table III).
    pub attrs: usize,
    /// Tuple count of the view result.
    pub tuples: usize,
    /// Minimal FDs on the view.
    pub fds: usize,
    /// Coverage of the view's root join.
    pub coverage: f64,
    /// Share of FDs retrieved by upstageFDs (Table III accuracy).
    pub upstage_share: f64,
    /// Share retrieved by inferFDs.
    pub infer_share: f64,
    /// Share retrieved by mineFDs.
    pub mine_share: f64,
}

/// One catalog entry.
#[derive(Debug, Clone)]
pub struct QueryCase {
    /// Short stable identifier.
    pub id: &'static str,
    /// Paper's display label.
    pub label: &'static str,
    /// Dataset the view runs on.
    pub dataset: DatasetKind,
    /// The SPJ view.
    pub spec: ViewSpec,
    /// The paper's published numbers.
    pub paper: PaperNumbers,
}

fn paper(
    attrs: usize,
    tuples: usize,
    fds: usize,
    coverage: f64,
    shares: (f64, f64, f64),
) -> PaperNumbers {
    PaperNumbers {
        attrs,
        tuples,
        fds,
        coverage,
        upstage_share: shares.0,
        infer_share: shares.1,
        mine_share: shares.2,
    }
}

/// The full 16-view catalog of Table II.
#[allow(clippy::vec_init_then_push)] // grouped pushes mirror the paper's table sections
pub fn catalog() -> Vec<QueryCase> {
    use DatasetKind::*;
    let mut out = Vec::new();

    // ---------------- PTE ----------------
    out.push(QueryCase {
        id: "pte_atm_drug",
        label: "atm ⋈ drug",
        dataset: Pte,
        spec: ViewSpec::base("atm").join(
            ViewSpec::base("drug"),
            JoinOp::Inner,
            &[("atm.drug_id", "drug.drug_id")],
        ),
        paper: paper(5, 9_189, 5, 14.01, (1.0, 0.0, 0.0)),
    });
    out.push(QueryCase {
        id: "pte_active_drug",
        label: "active ⋈ drug",
        dataset: Pte,
        spec: ViewSpec::base("active").join(
            ViewSpec::base("drug"),
            JoinOp::Inner,
            &[("active.drug_id", "drug.drug_id")],
        ),
        paper: paper(2, 299, 1, 0.94, (1.0, 0.0, 0.0)),
    });
    out.push(QueryCase {
        id: "pte_bond_drug_active",
        label: "[bond ⋈ drug] ⋈ active",
        dataset: Pte,
        spec: ViewSpec::base("bond")
            .join(
                ViewSpec::base("drug"),
                JoinOp::Inner,
                &[("bond.drug_id", "drug.drug_id")],
            )
            .join(
                ViewSpec::base("active"),
                JoinOp::Inner,
                &[("bond.drug_id", "active.drug_id")],
            ),
        paper: paper(6, 7_994, 6, 13.83, (0.67, 0.33, 0.0)),
    });
    out.push(QueryCase {
        id: "pte_atm_bond_atm_drug",
        label: "[atm ⋈ bond ⋈ atm] ⋈ drug",
        dataset: Pte,
        spec: ViewSpec::base_as("atm", "a1")
            .join(
                ViewSpec::base("bond"),
                JoinOp::Inner,
                &[("a1.atm_id", "bond.atm_id1")],
            )
            .join(
                ViewSpec::base_as("atm", "a2"),
                JoinOp::Inner,
                &[("bond.atm_id2", "a2.atm_id")],
            )
            .join(
                ViewSpec::base("drug"),
                JoinOp::Inner,
                &[("bond.drug_id", "drug.drug_id")],
            ),
        paper: paper(14, 9_317, 24, 14.20, (1.0, 0.0, 0.0)),
    });

    // ---------------- PTC ----------------
    out.push(QueryCase {
        id: "ptc_atom_molecule",
        label: "atom ⋈ molecule",
        dataset: Ptc,
        spec: ViewSpec::base("atom")
            .join(
                ViewSpec::base("molecule"),
                JoinOp::Inner,
                &[("atom.molecule_id", "molecule.molecule_id")],
            )
            .project(&["atom_id", "atom.molecule_id", "element", "label"]),
        paper: paper(4, 9_111, 4, 13.67, (0.75, 0.25, 0.0)),
    });
    out.push(QueryCase {
        id: "ptc_connected_bond",
        label: "connected ⋈ bond",
        dataset: Ptc,
        spec: ViewSpec::base("connected")
            .join(
                ViewSpec::base("bond"),
                JoinOp::Inner,
                &[("connected.bond_id", "bond.bond_id")],
            )
            .project(&[
                "atom_id1",
                "atom_id2",
                "connected.bond_id",
                "molecule_id",
                "btype",
            ]),
        paper: paper(5, 24_758, 8, 1.50, (0.625, 0.375, 0.0)),
    });
    out.push(QueryCase {
        id: "ptc_connected_bond_molecule",
        label: "[connected ⋈ bond] ⋈ molecule",
        dataset: Ptc,
        spec: ViewSpec::base("connected")
            .join(
                ViewSpec::base("bond"),
                JoinOp::Inner,
                &[("connected.bond_id", "bond.bond_id")],
            )
            .join(
                ViewSpec::base("molecule"),
                JoinOp::Inner,
                &[("bond.molecule_id", "molecule.molecule_id")],
            )
            .project(&[
                "atom_id1",
                "atom_id2",
                "connected.bond_id",
                "bond.molecule_id",
                "btype",
                "label",
            ]),
        paper: paper(6, 18_312, 12, 27.08, (0.75, 0.25, 0.0)),
    });
    out.push(QueryCase {
        id: "ptc_connected_atom_molecule",
        label: "connected ⋈id1 [atom ⋈ molecule]",
        dataset: Ptc,
        spec: ViewSpec::base("connected")
            .join(
                ViewSpec::base("atom").join(
                    ViewSpec::base("molecule"),
                    JoinOp::Inner,
                    &[("atom.molecule_id", "molecule.molecule_id")],
                ),
                JoinOp::Inner,
                &[("atom_id1", "atom_id")],
            )
            .project(&[
                "atom_id1",
                "atom_id2",
                "bond_id",
                "atom.molecule_id",
                "element",
                "label",
            ]),
        paper: paper(6, 18_312, 12, 27.08, (0.583, 0.417, 0.0)),
    });

    // ---------------- MIMIC3 ----------------
    out.push(QueryCase {
        id: "mimic_diag_patients",
        label: "diagnosesicd ⋈ patients",
        dataset: Mimic,
        spec: ViewSpec::base("diagnoses_icd").join(
            ViewSpec::base("patients"),
            JoinOp::Inner,
            &[("diagnoses_icd.subject_id", "patients.subject_id")],
        ),
        paper: paper(12, 651_047, 22, 7.50, (0.591, 0.273, 0.136)),
    });
    out.push(QueryCase {
        id: "mimic_dicd_diag",
        label: "dicddiagnoses ⋈ diagnosesicd",
        dataset: Mimic,
        spec: ViewSpec::base("d_icd_diagnoses").join(
            ViewSpec::base("diagnoses_icd"),
            JoinOp::Inner,
            &[("d_icd_diagnoses.icd9_code", "diagnoses_icd.icd9_code")],
        ),
        paper: paper(7, 658_498, 12, 22.84, (0.333, 0.0, 0.667)),
    });
    out.push(QueryCase {
        id: "mimic_diag_patients_dicd",
        label: "[diagnosesicd ⋈ patients] ⋈ dicddiagnoses",
        dataset: Mimic,
        spec: ViewSpec::base("diagnoses_icd")
            .join(
                ViewSpec::base("patients"),
                JoinOp::Inner,
                &[("diagnoses_icd.subject_id", "patients.subject_id")],
            )
            .join(
                ViewSpec::base("d_icd_diagnoses"),
                JoinOp::Inner,
                &[("diagnoses_icd.icd9_code", "d_icd_diagnoses.icd9_code")],
            ),
        paper: paper(14, 658_498, 44, 22.84, (0.545, 0.0, 0.455)),
    });
    out.push(QueryCase {
        id: "mimic_q_patients_admissions",
        label: "Q(patients ⋈ admissions)",
        dataset: Mimic,
        spec: ViewSpec::base("patients")
            .join(
                ViewSpec::base("admissions").select(Predicate::eq("insurance", "Medicare")),
                JoinOp::Inner,
                &[("patients.subject_id", "admissions.subject_id")],
            )
            .project(&[
                "patients.subject_id",
                "gender",
                "dob",
                "dod",
                "expire_flag",
                "admittime",
                "admission_location",
                "insurance",
                "diagnosis",
                "hospital_expire_flag",
            ]),
        paper: paper(10, 6_736, 16, 0.79, (0.563, 0.0, 0.437)),
    });

    // ---------------- TPC-H ----------------
    out.push(QueryCase {
        id: "tpch_q2",
        label: "Q2*(P ⋈ PS ⋈ S ⋈ N ⋈ R)",
        dataset: Tpch,
        spec: ViewSpec::base("part")
            .select(Predicate::eq("p_size", 15i64))
            .join(
                ViewSpec::base("partsupp"),
                JoinOp::Inner,
                &[("p_partkey", "ps_partkey")],
            )
            .join(
                ViewSpec::base("supplier"),
                JoinOp::Inner,
                &[("ps_suppkey", "s_suppkey")],
            )
            .join(
                ViewSpec::base("nation"),
                JoinOp::Inner,
                &[("s_nationkey", "n_nationkey")],
            )
            .join(
                ViewSpec::base("region").select(Predicate::eq("r_name", "EUROPE")),
                JoinOp::Inner,
                &[("n_regionkey", "r_regionkey")],
            )
            .project(&[
                "p_partkey",
                "p_mfgr",
                "p_brand",
                "p_type",
                "p_size",
                "ps_supplycost",
                "s_name",
                "s_acctbal",
                "n_name",
                "r_name",
            ]),
        paper: paper(10, 21_696, 69, 1.50, (0.594, 0.087, 0.319)),
    });
    out.push(QueryCase {
        id: "tpch_q3",
        label: "Q3*(C ⋈ O ⋈ L)",
        dataset: Tpch,
        spec: ViewSpec::base("customer")
            .select(Predicate::eq("c_mktsegment", "BUILDING"))
            .join(
                ViewSpec::base("orders").select(Predicate::cmp(
                    "o_orderdate",
                    CmpOp::Lt,
                    infine_relation::Value::Date(1_200),
                )),
                JoinOp::Inner,
                &[("c_custkey", "o_custkey")],
            )
            .join(
                ViewSpec::base("lineitem").select(Predicate::cmp(
                    "l_shipdate",
                    CmpOp::Gt,
                    infine_relation::Value::Date(1_200),
                )),
                JoinOp::Inner,
                &[("o_orderkey", "l_orderkey")],
            )
            .project(&[
                "l_orderkey",
                "o_orderdate",
                "o_shippriority",
                "l_extendedprice",
                "l_discount",
                "c_mktsegment",
            ]),
        paper: paper(6, 60_150, 14, 0.12, (0.429, 0.0, 0.571)),
    });
    out.push(QueryCase {
        id: "tpch_q9",
        label: "Q9*(P ⋈ PS ⋈ S ⋈ L ⋈ O ⋈ N)",
        dataset: Tpch,
        spec: ViewSpec::base("part")
            .select(Predicate::eq("p_mfgr", "Manufacturer#1"))
            .join(
                ViewSpec::base("partsupp"),
                JoinOp::Inner,
                &[("p_partkey", "ps_partkey")],
            )
            .join(
                ViewSpec::base("supplier"),
                JoinOp::Inner,
                &[("ps_suppkey", "s_suppkey")],
            )
            .join(
                ViewSpec::base("lineitem"),
                JoinOp::Inner,
                &[("ps_partkey", "l_partkey"), ("ps_suppkey", "l_suppkey")],
            )
            .join(
                ViewSpec::base("orders"),
                JoinOp::Inner,
                &[("l_orderkey", "o_orderkey")],
            )
            .join(
                ViewSpec::base("nation"),
                JoinOp::Inner,
                &[("s_nationkey", "n_nationkey")],
            )
            .project(&[
                "n_name",
                "o_orderdate",
                "l_extendedprice",
                "l_discount",
                "ps_supplycost",
                "l_quantity",
                "p_name",
                "s_name",
                "o_orderkey",
            ]),
        paper: paper(9, 3_735_632, 8, 25_813.0, (0.875, 0.125, 0.0)),
    });
    out.push(QueryCase {
        id: "tpch_q11",
        label: "Q11*(PS ⋈ S ⋈ N)",
        dataset: Tpch,
        spec: ViewSpec::base("partsupp")
            .join(
                ViewSpec::base("supplier"),
                JoinOp::Inner,
                &[("ps_suppkey", "s_suppkey")],
            )
            .join(
                // The paper's Q11* keeps ~35% of partsupp (284k of 800k);
                // a single-nation filter would keep 4%, so the adapted
                // constant is a two-region filter with a similar share.
                ViewSpec::base("nation").select(Predicate::In {
                    attr: "n_regionkey".into(),
                    values: vec![
                        infine_relation::Value::Int(1),
                        infine_relation::Value::Int(3),
                    ],
                }),
                JoinOp::Inner,
                &[("s_nationkey", "n_nationkey")],
            ),
        paper: paper(15, 284_160, 151, 80.09, (0.636, 0.232, 0.132)),
    });

    out
}

/// Catalog filtered by dataset.
pub fn catalog_for(ds: DatasetKind) -> Vec<QueryCase> {
    catalog().into_iter().filter(|c| c.dataset == ds).collect()
}

/// Find a catalog entry by id.
pub fn find(id: &str) -> Option<QueryCase> {
    catalog().into_iter().find(|c| c.id == id)
}

/// Coverage of the *root* join of a view (the Table III quantity): locate
/// the topmost join under any projections/selections, execute its two
/// inputs, and apply the §V measure.
pub fn root_join_coverage(
    db: &Database,
    spec: &ViewSpec,
) -> Result<Option<f64>, infine_algebra::AlgebraError> {
    match spec {
        ViewSpec::Base { .. } => Ok(None),
        ViewSpec::Project { input, .. } | ViewSpec::Select { input, .. } => {
            root_join_coverage(db, input)
        }
        ViewSpec::Join {
            left,
            right,
            op,
            on,
        } => {
            let l = infine_algebra::execute(left, db)?;
            let r = infine_algebra::execute(right, db)?;
            let ids = infine_algebra::resolve_join_conditions(&l.schema, &r.schema, on)?;
            Ok(Some(infine_algebra::coverage(&l, &r, &ids, *op)))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use infine_algebra::execute;

    #[test]
    fn catalog_has_sixteen_views() {
        let c = catalog();
        assert_eq!(c.len(), 16);
        assert_eq!(catalog_for(DatasetKind::Pte).len(), 4);
        assert_eq!(catalog_for(DatasetKind::Ptc).len(), 4);
        assert_eq!(catalog_for(DatasetKind::Mimic).len(), 4);
        assert_eq!(catalog_for(DatasetKind::Tpch).len(), 4);
        // ids unique
        let mut ids: Vec<_> = c.iter().map(|q| q.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 16);
    }

    #[test]
    fn all_views_execute_at_tiny_scale() {
        let scale = Scale::of(0.002);
        for ds in DatasetKind::ALL {
            let db = ds.generate(scale);
            for case in catalog_for(ds) {
                let view =
                    execute(&case.spec, &db).unwrap_or_else(|e| panic!("{} failed: {e}", case.id));
                assert!(view.ncols() > 0, "{} produced an empty schema", case.id);
            }
        }
    }

    #[test]
    fn projected_views_match_paper_attr_counts() {
        let scale = Scale::of(0.002);
        for ds in DatasetKind::ALL {
            let db = ds.generate(scale);
            for case in catalog_for(ds) {
                if matches!(case.spec, ViewSpec::Project { .. }) {
                    let view = execute(&case.spec, &db).unwrap();
                    assert_eq!(
                        view.ncols(),
                        case.paper.attrs,
                        "{}: attr count mismatch",
                        case.id
                    );
                }
            }
        }
    }

    #[test]
    fn root_coverage_is_computable_for_all() {
        let scale = Scale::of(0.002);
        for ds in DatasetKind::ALL {
            let db = ds.generate(scale);
            for case in catalog_for(ds) {
                let cov = root_join_coverage(&db, &case.spec).unwrap();
                assert!(cov.is_some(), "{} has no root join?", case.id);
                assert!(cov.unwrap() >= 0.0);
            }
        }
    }

    #[test]
    fn find_locates_entries() {
        assert!(find("tpch_q9").is_some());
        assert!(find("nope").is_none());
    }
}
