//! TPC-H-like generator (from-scratch `dbgen` stand-in).
//!
//! Eight tables with the TPC-H key/foreign-key structure and the Table I
//! attribute counts (the paper projects `part` to 7 attributes). Row
//! counts follow scale-factor 1 (the paper's setting) multiplied by the
//! scale factor, so `Scale::of(1.0)` reproduces the published sizes:
//! supplier 10k, customer 150k, orders 1.5M, lineitem ≈6M, part 200k,
//! partsupp 800k, nation 25, region 5.
//!
//! Functional structure mirrors TPC-H: every table's primary key, the
//! FK chains used by the adapted queries Q2*/Q3*/Q9*/Q11*, derived
//! columns (e.g. `p_retailprice` is a function of the part key in real
//! dbgen — here of `p_size` and `p_mfgr` to give non-key FDs).

use crate::common::{date, pick, pools, Scale};
use infine_relation::{Database, RelationBuilder, Schema, Value};
use rand::Rng;

/// SF-1 row counts.
pub const SF1_SUPPLIER: usize = 10_000;
/// customer rows at SF 1.
pub const SF1_CUSTOMER: usize = 150_000;
/// orders rows at SF 1.
pub const SF1_ORDERS: usize = 1_500_000;
/// average lineitems per order (≈4 → 6M at SF 1).
pub const LINES_PER_ORDER: usize = 4;
/// part rows at SF 1.
pub const SF1_PART: usize = 200_000;
/// partsupp rows per part.
pub const PS_PER_PART: usize = 4;

/// Generate the eight TPC-H-like tables.
pub fn generate(scale: Scale) -> Database {
    let n_supp = scale.rows(SF1_SUPPLIER, 50);
    let n_cust = scale.rows(SF1_CUSTOMER, 80);
    let n_orders = scale.rows(SF1_ORDERS, 150);
    let n_part = scale.rows(SF1_PART, 60);
    let n_nation = pools::NATIONS.len();
    let mut db = Database::new();

    // ---- region (3) ----
    let mut b = RelationBuilder::new(
        "region",
        Schema::base("region", &["r_regionkey", "r_name", "r_comment"]),
    );
    for (i, name) in pools::REGIONS.iter().enumerate() {
        b.push_row(vec![
            Value::Int(i as i64),
            Value::str(*name),
            Value::str(format!("region comment {i}")),
        ]);
    }
    db.insert(b.finish());

    // ---- nation (4) ----
    let mut b = RelationBuilder::new(
        "nation",
        Schema::base(
            "nation",
            &["n_nationkey", "n_name", "n_regionkey", "n_comment"],
        ),
    );
    for (i, (name, region)) in pools::NATIONS.iter().enumerate() {
        b.push_row(vec![
            Value::Int(i as i64),
            Value::str(*name),
            Value::Int(*region as i64),
            Value::str(format!("nation comment {i}")),
        ]);
    }
    db.insert(b.finish());

    // ---- supplier (7) ----
    let mut rng = scale.rng(41);
    let mut b = RelationBuilder::new(
        "supplier",
        Schema::base(
            "supplier",
            &[
                "s_suppkey",
                "s_name",
                "s_address",
                "s_nationkey",
                "s_phone",
                "s_acctbal",
                "s_comment",
            ],
        ),
    );
    for i in 0..n_supp {
        // Round-robin base + jitter: every nation keeps suppliers at any
        // scale (Q11*'s GERMANY selection must not come up empty).
        let nation = if rng.gen_bool(0.5) {
            i % n_nation
        } else {
            rng.gen_range(0..n_nation)
        };
        b.push_row(vec![
            Value::Int(i as i64),
            Value::str(format!("Supplier#{i:09}")),
            Value::str(format!("addr s{}", i % (n_supp / 2 + 1))),
            Value::Int(nation as i64),
            Value::str(format!("{}-{:07}", 10 + nation, i)),
            Value::Int(rng.gen_range(-99_999..999_999)),
            Value::str(format!("supplier comment {}", i % 97)),
        ]);
    }
    db.insert(b.finish());

    // ---- customer (8) ----
    let mut rng = scale.rng(42);
    let mut b = RelationBuilder::new(
        "customer",
        Schema::base(
            "customer",
            &[
                "c_custkey",
                "c_name",
                "c_address",
                "c_nationkey",
                "c_phone",
                "c_acctbal",
                "c_mktsegment",
                "c_comment",
            ],
        ),
    );
    for i in 0..n_cust {
        let nation = rng.gen_range(0..n_nation);
        b.push_row(vec![
            Value::Int(i as i64),
            Value::str(format!("Customer#{i:09}")),
            Value::str(format!("addr c{}", i % (n_cust / 2 + 1))),
            Value::Int(nation as i64),
            Value::str(format!("{}-{:07}", 10 + nation, i + 7)),
            Value::Int(rng.gen_range(-99_999..999_999)),
            Value::str(*pick(&mut rng, pools::SEGMENTS)),
            Value::str(format!("customer comment {}", i % 89)),
        ]);
    }
    db.insert(b.finish());

    // ---- part (7, as in Table I) ----
    let mut rng = scale.rng(43);
    let mut b = RelationBuilder::new(
        "part",
        Schema::base(
            "part",
            &[
                "p_partkey",
                "p_name",
                "p_mfgr",
                "p_brand",
                "p_type",
                "p_size",
                "p_container",
            ],
        ),
    );
    for i in 0..n_part {
        let mfgr = rng.gen_range(1..=5);
        // brand functionally depends on mfgr (TPC-H: Brand#MN with M=mfgr)
        let brand = format!("Brand#{}{}", mfgr, rng.gen_range(1..=5));
        b.push_row(vec![
            Value::Int(i as i64),
            Value::str(format!("part name {}", i % (n_part * 3 / 4 + 1))),
            Value::str(format!("Manufacturer#{mfgr}")),
            Value::str(brand),
            Value::str(*pick(&mut rng, pools::PART_TYPES)),
            Value::Int(rng.gen_range(1..=50)),
            Value::str(*pick(&mut rng, pools::CONTAINERS)),
        ]);
    }
    db.insert(b.finish());

    // ---- partsupp (5) ----
    let mut rng = scale.rng(44);
    let mut b = RelationBuilder::new(
        "partsupp",
        Schema::base(
            "partsupp",
            &[
                "ps_partkey",
                "ps_suppkey",
                "ps_availqty",
                "ps_supplycost",
                "ps_comment",
            ],
        ),
    );
    for p in 0..n_part {
        for s in 0..PS_PER_PART {
            let supp = (p + s * (n_supp / PS_PER_PART + 1)) % n_supp;
            b.push_row(vec![
                Value::Int(p as i64),
                Value::Int(supp as i64),
                Value::Int(rng.gen_range(1..10_000)),
                Value::Int(rng.gen_range(100..100_000)),
                Value::str(format!("ps comment {}", (p + s) % 61)),
            ]);
        }
    }
    db.insert(b.finish());

    // ---- orders (9) ----
    let mut rng = scale.rng(45);
    let mut b = RelationBuilder::new(
        "orders",
        Schema::base(
            "orders",
            &[
                "o_orderkey",
                "o_custkey",
                "o_orderstatus",
                "o_totalprice",
                "o_orderdate",
                "o_orderpriority",
                "o_clerk",
                "o_shippriority",
                "o_comment",
            ],
        ),
    );
    let mut order_dates = Vec::with_capacity(n_orders);
    for i in 0..n_orders {
        // TPC-H: only 2/3 of customers have orders.
        let cust = rng.gen_range(0..n_cust) / 3 * 3 % n_cust;
        let odate = rng.gen_range(0..2_400); // ~6.5 years of days
        order_dates.push(odate);
        b.push_row(vec![
            Value::Int(i as i64),
            Value::Int(cust as i64),
            Value::str(*pick(&mut rng, pools::ORDER_STATUS)),
            Value::Int(rng.gen_range(1_000..500_000)),
            date(odate),
            Value::str(*pick(&mut rng, pools::PRIORITIES)),
            Value::str(format!("Clerk#{:09}", rng.gen_range(0..n_orders / 100 + 1))),
            Value::Int(0),
            Value::str(format!("order comment {}", i % 71)),
        ]);
    }
    db.insert(b.finish());

    // ---- lineitem (16) ----
    let mut rng = scale.rng(46);
    let mut b = RelationBuilder::new(
        "lineitem",
        Schema::base(
            "lineitem",
            &[
                "l_orderkey",
                "l_partkey",
                "l_suppkey",
                "l_linenumber",
                "l_quantity",
                "l_extendedprice",
                "l_discount",
                "l_tax",
                "l_returnflag",
                "l_linestatus",
                "l_shipdate",
                "l_commitdate",
                "l_receiptdate",
                "l_shipinstruct",
                "l_shipmode",
                "l_comment",
            ],
        ),
    );
    for (o, &odate) in order_dates.iter().enumerate() {
        let nlines = 1 + rng.gen_range(0..(2 * LINES_PER_ORDER - 1));
        for ln in 0..nlines {
            let part = rng.gen_range(0..n_part);
            // supplier from the part's partsupp candidates (FK into partsupp)
            let s = rng.gen_range(0..PS_PER_PART);
            let supp = (part + s * (n_supp / PS_PER_PART + 1)) % n_supp;
            let ship = odate + rng.gen_range(1..121);
            let status = if ship > 2_000 { "O" } else { "F" };
            b.push_row(vec![
                Value::Int(o as i64),
                Value::Int(part as i64),
                Value::Int(supp as i64),
                Value::Int(ln as i64 + 1),
                Value::Int(rng.gen_range(1..=50)),
                Value::Int(rng.gen_range(1_000..100_000)),
                Value::Int(rng.gen_range(0..=10)),
                Value::Int(rng.gen_range(0..=8)),
                Value::str(if status == "O" {
                    "N"
                } else if rng.gen_bool(0.5) {
                    "R"
                } else {
                    "A"
                }),
                Value::str(status),
                date(ship),
                date(odate + rng.gen_range(30..91)),
                date(ship + rng.gen_range(1..31)),
                Value::str("DELIVER IN PERSON"),
                Value::str(*pick(&mut rng, pools::SHIP_MODES)),
                Value::str(format!("line comment {}", (o + ln) % 53)),
            ]);
        }
    }
    db.insert(b.finish());

    db
}

#[cfg(test)]
mod tests {
    use super::*;
    use infine_relation::AttrSet;

    #[test]
    fn shapes_match_table1() {
        let db = generate(Scale::of(0.001));
        assert_eq!(db.expect("region").ncols(), 3);
        assert_eq!(db.expect("nation").ncols(), 4);
        assert_eq!(db.expect("supplier").ncols(), 7);
        assert_eq!(db.expect("customer").ncols(), 8);
        assert_eq!(db.expect("orders").ncols(), 9);
        assert_eq!(db.expect("lineitem").ncols(), 16);
        assert_eq!(db.expect("part").ncols(), 7);
        assert_eq!(db.expect("partsupp").ncols(), 5);
        assert_eq!(db.expect("nation").nrows(), 25);
        assert_eq!(db.expect("region").nrows(), 5);
    }

    #[test]
    fn primary_keys_hold() {
        let db = generate(Scale::of(0.001));
        for (table, key) in [
            ("supplier", "s_suppkey"),
            ("customer", "c_custkey"),
            ("orders", "o_orderkey"),
            ("part", "p_partkey"),
            ("nation", "n_nationkey"),
            ("region", "r_regionkey"),
        ] {
            let rel = db.expect(table);
            let k = rel.schema.expect_id(key);
            for a in 0..rel.ncols() {
                if a != k {
                    assert!(
                        infine_partitions::fd_holds(rel, AttrSet::single(k), a),
                        "{table}.{key} must determine column {a}"
                    );
                }
            }
        }
    }

    #[test]
    fn lineitem_fk_into_partsupp() {
        let db = generate(Scale::of(0.001));
        let li = db.expect("lineitem");
        let ps = db.expect("partsupp");
        let pairs: std::collections::HashSet<(i64, i64)> = (0..ps.nrows())
            .map(|r| {
                (
                    ps.value(r, 0).as_i64().unwrap(),
                    ps.value(r, 1).as_i64().unwrap(),
                )
            })
            .collect();
        for r in 0..li.nrows().min(500) {
            let key = (
                li.value(r, 1).as_i64().unwrap(),
                li.value(r, 2).as_i64().unwrap(),
            );
            assert!(pairs.contains(&key), "lineitem ps FK broken: {key:?}");
        }
    }

    #[test]
    fn orders_reference_a_third_of_customers() {
        let db = generate(Scale::of(0.002));
        let o = db.expect("orders");
        let custs: std::collections::HashSet<i64> = (0..o.nrows())
            .map(|r| o.value(r, 1).as_i64().unwrap())
            .collect();
        // all referenced keys are ≡ 0 mod 3 (the dbgen-style gap)
        assert!(custs.iter().all(|c| c % 3 == 0));
    }

    #[test]
    fn brand_determined_by_its_prefix_structure() {
        let db = generate(Scale::of(0.001));
        let p = db.expect("part");
        let brand = p.schema.expect_id("p_brand");
        let mfgr = p.schema.expect_id("p_mfgr");
        assert!(infine_partitions::fd_holds(p, AttrSet::single(brand), mfgr));
    }
}
