//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset of the proptest API this workspace's property
//! tests use: the [`strategy::Strategy`] trait with `prop_map` /
//! `prop_flat_map`, range and tuple strategies, [`collection::vec`], the
//! [`proptest!`] macro (with an optional `#![proptest_config(..)]`
//! header), and `prop_assert!` / `prop_assert_eq!`.
//!
//! Differences from real proptest, by design:
//!
//! * **No shrinking** — a failing case reports its seed and case number
//!   instead of a minimized input. Cases are deterministic per test name,
//!   so failures reproduce exactly.
//! * **No persistence** — there is no `proptest-regressions` directory.

/// Deterministic RNG plumbing shared with the workspace's rand shim.
pub mod __rng {
    pub use rand::rngs::StdRng;
    pub use rand::{Rng, SeedableRng};
}

/// Failure type threaded out of generated test bodies.
pub mod test_runner {
    use std::fmt;

    /// Why a test case failed.
    #[derive(Debug, Clone)]
    pub struct TestCaseError {
        message: String,
    }

    impl TestCaseError {
        /// An assertion failure with a rendered message.
        pub fn fail(message: impl Into<String>) -> Self {
            TestCaseError {
                message: message.into(),
            }
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str(&self.message)
        }
    }

    /// Per-test configuration (`cases` is the only knob this workspace
    /// uses).
    #[derive(Debug, Clone, Copy)]
    pub struct Config {
        /// Number of random cases to run.
        pub cases: u32,
    }

    impl Config {
        /// Config running `cases` random cases.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 64 }
        }
    }
}

/// Value-generation strategies.
pub mod strategy {
    use crate::__rng::{Rng, StdRng};
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating random values of one type.
    ///
    /// Unlike real proptest there is no value tree: `generate` draws a
    /// final value directly (no shrinking).
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draw one value.
        fn generate(&self, rng: &mut StdRng) -> Self::Value;

        /// Transform generated values.
        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, f }
        }

        /// Generate a value, then generate from a strategy derived from
        /// it.
        fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap { inner: self, f }
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;

        fn generate(&self, rng: &mut StdRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
        type Value = S2::Value;

        fn generate(&self, rng: &mut StdRng) -> Self::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    /// Always yields a clone of one value.
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }

    impl<T> Strategy for Range<T>
    where
        T: rand::SampleUniform,
    {
        type Value = T;

        fn generate(&self, rng: &mut StdRng) -> T {
            rng.gen_range(self.clone())
        }
    }

    impl<T> Strategy for RangeInclusive<T>
    where
        T: rand::SampleUniform,
    {
        type Value = T;

        fn generate(&self, rng: &mut StdRng) -> T {
            rng.gen_range(self.clone())
        }
    }

    macro_rules! impl_tuple_strategy {
        ($($s:ident / $v:ident),+) => {
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);

                fn generate(&self, rng: &mut StdRng) -> Self::Value {
                    #[allow(non_snake_case)]
                    let ($($s,)+) = self;
                    ($($s.generate(rng),)+)
                }
            }
        };
    }
    impl_tuple_strategy!(A / a, B / b);
    impl_tuple_strategy!(A / a, B / b, C / c);
    impl_tuple_strategy!(A / a, B / b, C / c, D / d);
}

/// Collection strategies.
pub mod collection {
    use crate::__rng::{Rng, StdRng};
    use crate::strategy::Strategy;
    use std::ops::{Range, RangeInclusive};

    /// Inclusive bounds on a generated collection's length.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// Strategy for `Vec`s whose elements come from `element`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generate vectors with lengths in `size` (a `usize`, `a..b`, or
    /// `a..=b`).
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Self::Value {
            let len = if self.size.lo == self.size.hi {
                self.size.lo
            } else {
                rng.gen_range(self.size.lo..=self.size.hi)
            };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// The glob-import surface, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::test_runner::TestCaseError;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Declare property tests. Supports an optional
/// `#![proptest_config(expr)]` header followed by `#[test] fn name(args in
/// strategies) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            (<$crate::test_runner::Config as ::std::default::Default>::default())
            $($rest)*
        }
    };
}

/// Internal expansion of [`proptest!`] — one `#[test]` per item, each
/// running `cfg.cases` deterministic cases.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ( ($cfg:expr) $( #[test] fn $name:ident ( $( $arg:ident in $strat:expr ),+ $(,)? ) $body:block )* ) => {
        $(
            #[test]
            fn $name() {
                let __cfg: $crate::test_runner::Config = $cfg;
                // Deterministic per-test seed: failures reproduce exactly.
                let mut __seed = 0xB10C_5EEDu64;
                for b in stringify!($name).bytes() {
                    __seed = __seed.wrapping_mul(0x100_0000_01B3).wrapping_add(b as u64);
                }
                let mut __rng = <$crate::__rng::StdRng as $crate::__rng::SeedableRng>::seed_from_u64(__seed);
                for __case in 0..__cfg.cases {
                    $( let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng); )+
                    let __outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    if let ::std::result::Result::Err(e) = __outcome {
                        panic!(
                            "proptest {} failed at case {}/{} (seed {:#x}): {}",
                            stringify!($name), __case + 1, __cfg.cases, __seed, e
                        );
                    }
                }
            }
        )*
    };
}

/// Assert within a proptest body; failure aborts the case with a message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Equality assertion within a proptest body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l == *__r,
            "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), __l, __r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(*__l == *__r, $($fmt)+);
    }};
}

/// Inequality assertion within a proptest body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l != *__r,
            "assertion failed: {} != {}\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            __l
        );
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_in_bounds(x in 0i64..10, y in 2usize..=4) {
            prop_assert!((0..10).contains(&x));
            prop_assert!((2..=4).contains(&y));
        }

        #[test]
        fn vec_lengths_respect_size(v in crate::collection::vec(0i64..3, 2usize..=5)) {
            prop_assert!((2..=5).contains(&v.len()));
            for e in &v {
                prop_assert!((0..3).contains(e));
            }
        }

        #[test]
        fn map_and_flat_map_compose(
            v in (1usize..4).prop_flat_map(|n| crate::collection::vec(0i64..5, n))
                .prop_map(|v| v.len())
        ) {
            prop_assert!((1..4).contains(&v));
        }
    }

    #[test]
    fn prop_assert_threads_errors() {
        fn body(cond: bool) -> Result<(), TestCaseError> {
            prop_assert!(cond, "doomed");
            Ok(())
        }
        assert!(body(true).is_ok());
        let err = body(false).unwrap_err();
        assert!(err.to_string().contains("doomed"));
    }
}
