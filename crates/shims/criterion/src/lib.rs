//! Offline stand-in for the `criterion` benchmarking crate.
//!
//! The build environment has no network access, so the workspace's
//! criterion benches compile against this minimal harness instead. It
//! keeps the same structure (`criterion_group!` / `criterion_main!`,
//! benchmark groups, `Bencher::iter`) but replaces statistical sampling
//! with a plain mean over `sample_size` timed iterations (after one
//! warm-up), printed to stdout. Good enough to run the benches and read
//! relative numbers; not a statistics engine.

use std::fmt;
use std::time::Instant;

/// Re-export of the standard optimization barrier under criterion's name.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifier `function/parameter` for one measurement.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Build from a function name and a parameter rendering.
    pub fn new(function: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{function}/{parameter}"),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Timing callback handed to benchmark closures.
pub struct Bencher {
    sample_size: usize,
    /// Mean seconds per iteration of the last `iter` call.
    last_mean: f64,
}

impl Bencher {
    /// Time `f` over `sample_size` iterations (plus one warm-up).
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        black_box(f()); // warm-up, excluded
        let t0 = Instant::now();
        for _ in 0..self.sample_size {
            black_box(f());
        }
        self.last_mean = t0.elapsed().as_secs_f64() / self.sample_size as f64;
    }
}

/// A named group of measurements.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timed iterations per bench (criterion's minimum
    /// is 10; any positive value is accepted here).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Measure one closure and print its mean iteration time.
    pub fn bench_function<I, F>(&mut self, id: I, mut f: F) -> &mut Self
    where
        I: Into<BenchmarkId>,
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher {
            sample_size: self.sample_size,
            last_mean: 0.0,
        };
        f(&mut b);
        println!(
            "{}/{}: {:.6} s/iter (mean of {})",
            self.name, id, b.last_mean, self.sample_size
        );
        self
    }

    /// End the group (no-op; kept for API compatibility).
    pub fn finish(self) {}
}

/// The top-level harness handle.
#[derive(Default)]
pub struct Criterion {
    default_sample_size: usize,
}

impl Criterion {
    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = if self.default_sample_size == 0 {
            10
        } else {
            self.default_sample_size
        };
        BenchmarkGroup {
            name: name.into(),
            sample_size,
            _parent: self,
        }
    }

    /// Measure a stand-alone closure outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        let mut g = BenchmarkGroup {
            name: "bench".to_string(),
            sample_size: 10,
            _parent: self,
        };
        g.bench_function(id, f);
        drop(g);
        self
    }
}

/// Declare a group function running each target against one `Criterion`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declare `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_times_and_prints() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.sample_size(3);
        let mut runs = 0usize;
        g.bench_function("count", |b| b.iter(|| runs += 1));
        g.finish();
        assert_eq!(runs, 4); // 1 warm-up + 3 samples
    }

    #[test]
    fn benchmark_id_renders() {
        assert_eq!(BenchmarkId::new("f", "p").to_string(), "f/p");
    }
}
