//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access and no vendored registry,
//! so this workspace ships a minimal, self-contained implementation of the
//! exact API surface it consumes: [`rngs::StdRng`] (xoshiro256++ seeded by
//! SplitMix64), [`SeedableRng::seed_from_u64`], and the [`Rng`] methods
//! `gen`, `gen_range`, and `gen_bool`.
//!
//! Determinism is the only hard requirement for the datagen crate (same
//! seed → same synthetic database across runs and platforms); statistical
//! quality is provided by xoshiro256++, which passes BigCrush. The stream
//! is *not* compatible with the real `rand` crate — all consumers in this
//! workspace only rely on determinism, never on specific draws.

use std::ops::{Range, RangeInclusive};

/// Low-level source of 64 random bits.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Types that can be drawn uniformly from their full domain (the `rand`
/// `Standard` distribution, collapsed into a trait).
pub trait Standard: Sized {
    /// Draw a value.
    fn draw(rng: &mut dyn RngCore) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn draw(rng: &mut dyn RngCore) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn draw(rng: &mut dyn RngCore) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn draw(rng: &mut dyn RngCore) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    fn draw(rng: &mut dyn RngCore) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Integer types supporting uniform range sampling.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform draw from `[lo, hi)`; `lo < hi` must hold.
    fn sample_half_open(lo: Self, hi: Self, rng: &mut dyn RngCore) -> Self;
    /// Uniform draw from `[lo, hi]`; `lo <= hi` must hold.
    fn sample_inclusive(lo: Self, hi: Self, rng: &mut dyn RngCore) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open(lo: Self, hi: Self, rng: &mut dyn RngCore) -> Self {
                assert!(lo < hi, "gen_range: empty range");
                let span = (hi as i128).wrapping_sub(lo as i128) as u128;
                // Modulo bias is below 2^-64 for every span this workspace
                // draws; accepted for a shim.
                let off = (rng.next_u64() as u128) % span;
                ((lo as i128) + off as i128) as $t
            }
            fn sample_inclusive(lo: Self, hi: Self, rng: &mut dyn RngCore) -> Self {
                assert!(lo <= hi, "gen_range: empty inclusive range");
                let span = ((hi as i128).wrapping_sub(lo as i128) as u128) + 1;
                let off = (rng.next_u64() as u128) % span;
                ((lo as i128) + off as i128) as $t
            }
        }
    )*};
}
impl_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Range argument accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw a value from the range.
    fn sample(self, rng: &mut dyn RngCore) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample(self, rng: &mut dyn RngCore) -> T {
        T::sample_half_open(self.start, self.end, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample(self, rng: &mut dyn RngCore) -> T {
        T::sample_inclusive(*self.start(), *self.end(), rng)
    }
}

/// The user-facing random-value API (blanket-implemented for every
/// [`RngCore`], mirroring `rand`).
pub trait Rng: RngCore {
    /// Draw a value of type `T` from its standard distribution.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::draw(self)
    }

    /// Draw uniformly from a range.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        Self: Sized,
        T: SampleUniform,
        R: SampleRange<T>,
    {
        range.sample(self)
    }

    /// Bernoulli draw with success probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of [0,1]");
        <f64 as Standard>::draw(self) < p
    }
}

impl<R: RngCore> Rng for R {}

/// Deterministic construction from seeds.
pub trait SeedableRng: Sized {
    /// Build from a 64-bit seed (SplitMix64 state expansion).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named RNGs, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard RNG: xoshiro256++ seeded via SplitMix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let a: u64 = StdRng::seed_from_u64(7).gen();
        let b: u64 = StdRng::seed_from_u64(7).gen();
        let c: u64 = StdRng::seed_from_u64(8).gen();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..10_000 {
            let x = rng.gen_range(-5i32..5);
            assert!((-5..5).contains(&x));
            let y = rng.gen_range(3usize..=7);
            assert!((3..=7).contains(&y));
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..100 {
            assert!(!rng.gen_bool(0.0));
            assert!(rng.gen_bool(1.0));
        }
    }

    #[test]
    fn full_domain_ints_hit_negatives() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut saw_negative = false;
        for _ in 0..64 {
            if rng.gen::<i64>() < 0 {
                saw_negative = true;
            }
        }
        assert!(saw_negative);
    }
}
