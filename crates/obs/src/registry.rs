//! The metric registry: named series, parent chaining, snapshots, and
//! Prometheus text exposition.
//!
//! Registration (`counter` / `gauge` / `histogram`) is get-or-create on
//! a read-write-locked map — call it once at setup and keep the handle;
//! observations on the handle never touch the registry again. A *child*
//! registry ([`Registry::child`] / [`Registry::scoped`]) registers every
//! series in its parent too and chains the cores, so scoped deltas stay
//! exact while the process-wide default registry aggregates everything
//! for exposition.

use crate::metrics::{
    Counter, CounterCore, Gauge, GaugeCore, Histogram, HistogramCore, DURATION_BUCKETS,
};
use crate::span::EventLog;
use std::cell::RefCell;
use std::collections::btree_map::Entry;
use std::collections::BTreeMap;
use std::marker::PhantomData;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock, RwLock};

/// What a series is, for `# TYPE` lines and snapshot delta semantics.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MetricKind {
    Counter,
    Gauge,
    Histogram,
}

impl MetricKind {
    fn as_str(self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
            MetricKind::Histogram => "histogram",
        }
    }
}

/// A series identity: metric name plus its sorted label set.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord)]
struct SeriesKey {
    name: String,
    labels: Vec<(String, String)>,
}

impl SeriesKey {
    fn new(name: &str, labels: &[(&str, &str)]) -> Self {
        let mut labels: Vec<(String, String)> = labels
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect();
        labels.sort();
        Self {
            name: name.to_string(),
            labels,
        }
    }

    /// `name{k="v",…}` with escaped label values (bare name if no
    /// labels) — the identity used by snapshots and exposition.
    fn render(&self, extra: Option<(&str, &str)>, suffix: &str) -> String {
        let mut out = String::with_capacity(self.name.len() + 16);
        out.push_str(&self.name);
        out.push_str(suffix);
        if self.labels.is_empty() && extra.is_none() {
            return out;
        }
        out.push('{');
        let mut first = true;
        for (k, v) in self
            .labels
            .iter()
            .map(|(k, v)| (k.as_str(), v.as_str()))
            .chain(extra)
        {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(k);
            out.push_str("=\"");
            escape_label_into(&mut out, v);
            out.push('"');
        }
        out.push('}');
        out
    }
}

fn escape_label_into(out: &mut String, v: &str) {
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
}

fn escape_help(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

enum Metric {
    Counter(Arc<CounterCore>),
    Gauge(Arc<GaugeCore>),
    Histogram(Arc<HistogramCore>),
}

struct Inner {
    id: u64,
    parent: Option<Registry>,
    series: RwLock<BTreeMap<SeriesKey, Metric>>,
    /// name → (kind, help); first registration wins.
    meta: RwLock<BTreeMap<String, (MetricKind, String)>>,
    pub(crate) events: Mutex<EventLog>,
}

static NEXT_ID: AtomicU64 = AtomicU64::new(1);

/// A metric registry. Cheap to clone (an `Arc`); see the module docs
/// for the parent-chaining model.
#[derive(Clone)]
pub struct Registry {
    inner: Arc<Inner>,
}

impl Default for Registry {
    fn default() -> Self {
        Self::new()
    }
}

impl Registry {
    /// A standalone root registry (no parent).
    pub fn new() -> Self {
        Self::with_parent(None)
    }

    /// A child of the process-wide default registry: the idiom for
    /// per-engine scoping. Scope-local deltas are exact; everything
    /// still aggregates into [`default_registry`] for exposition.
    pub fn scoped() -> Self {
        default_registry().child()
    }

    /// A child of `self`; observations chain upward into `self`.
    pub fn child(&self) -> Self {
        Self::with_parent(Some(self.clone()))
    }

    fn with_parent(parent: Option<Registry>) -> Self {
        Self {
            inner: Arc::new(Inner {
                id: NEXT_ID.fetch_add(1, Ordering::Relaxed),
                parent,
                series: RwLock::new(BTreeMap::new()),
                meta: RwLock::new(BTreeMap::new()),
                events: Mutex::new(EventLog::new(0)),
            }),
        }
    }

    /// A process-unique id, stable for the registry's lifetime. Hot
    /// paths key per-thread handle caches on it.
    pub fn id(&self) -> u64 {
        self.inner.id
    }

    fn note_meta(&self, name: &str, kind: MetricKind, help: &str) {
        let mut meta = self.inner.meta.write().expect("obs meta poisoned");
        meta.entry(name.to_string())
            .or_insert_with(|| (kind, help.to_string()));
    }

    /// Get or register a counter series. Keep the returned handle; this
    /// lookup is not meant for hot paths.
    pub fn counter(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Counter {
        let key = SeriesKey::new(name, labels);
        if let Some(Metric::Counter(core)) =
            self.inner.series.read().expect("obs poisoned").get(&key)
        {
            return Counter { core: core.clone() };
        }
        // Resolve the parent's core before taking our write lock (the
        // chain is acyclic, so lock order is always child → parent).
        let parent = self
            .inner
            .parent
            .as_ref()
            .map(|p| p.counter(name, help, labels).core);
        let mut series = self.inner.series.write().expect("obs poisoned");
        let core = match series.entry(key) {
            Entry::Occupied(e) => match e.get() {
                Metric::Counter(core) => core.clone(),
                _ => panic!("metric `{name}` already registered with a different type"),
            },
            Entry::Vacant(e) => {
                let core = CounterCore::new(parent);
                e.insert(Metric::Counter(core.clone()));
                core
            }
        };
        drop(series);
        self.note_meta(name, MetricKind::Counter, help);
        Counter { core }
    }

    /// Get or register a gauge series.
    pub fn gauge(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Gauge {
        let key = SeriesKey::new(name, labels);
        if let Some(Metric::Gauge(core)) = self.inner.series.read().expect("obs poisoned").get(&key)
        {
            return Gauge { core: core.clone() };
        }
        let parent = self
            .inner
            .parent
            .as_ref()
            .map(|p| p.gauge(name, help, labels).core);
        let mut series = self.inner.series.write().expect("obs poisoned");
        let core = match series.entry(key) {
            Entry::Occupied(e) => match e.get() {
                Metric::Gauge(core) => core.clone(),
                _ => panic!("metric `{name}` already registered with a different type"),
            },
            Entry::Vacant(e) => {
                let core = GaugeCore::new(parent);
                e.insert(Metric::Gauge(core.clone()));
                core
            }
        };
        drop(series);
        self.note_meta(name, MetricKind::Gauge, help);
        Gauge { core }
    }

    /// Get or register a histogram series with the given upper bounds
    /// (must be finite and strictly increasing; a `+Inf` bucket is
    /// implicit). First registration pins the bounds.
    pub fn histogram(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        bounds: &[f64],
    ) -> Histogram {
        debug_assert!(
            bounds.windows(2).all(|w| w[0] < w[1]) && bounds.iter().all(|b| b.is_finite()),
            "histogram `{name}` bounds must be finite and strictly increasing"
        );
        let key = SeriesKey::new(name, labels);
        if let Some(Metric::Histogram(core)) =
            self.inner.series.read().expect("obs poisoned").get(&key)
        {
            return Histogram { core: core.clone() };
        }
        let parent = self
            .inner
            .parent
            .as_ref()
            .map(|p| p.histogram(name, help, labels, bounds).core);
        let mut series = self.inner.series.write().expect("obs poisoned");
        let core = match series.entry(key) {
            Entry::Occupied(e) => match e.get() {
                Metric::Histogram(core) => core.clone(),
                _ => panic!("metric `{name}` already registered with a different type"),
            },
            Entry::Vacant(e) => {
                let core = HistogramCore::new(Arc::from(bounds), parent);
                e.insert(Metric::Histogram(core.clone()));
                core
            }
        };
        drop(series);
        self.note_meta(name, MetricKind::Histogram, help);
        Histogram { core }
    }

    /// Shorthand: a duration histogram with [`DURATION_BUCKETS`].
    pub fn duration_histogram(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Histogram {
        self.histogram(name, help, labels, DURATION_BUCKETS)
    }

    /// A point-in-time copy of every series (histograms as `_count` and
    /// `_sum`). Use [`Snapshot::since`] for interval deltas.
    pub fn snapshot(&self) -> Snapshot {
        let mut out = BTreeMap::new();
        let series = self.inner.series.read().expect("obs poisoned");
        for (key, metric) in series.iter() {
            match metric {
                Metric::Counter(core) => {
                    out.insert(
                        key.render(None, ""),
                        (
                            MetricKind::Counter,
                            core.value.load(Ordering::Relaxed) as f64,
                        ),
                    );
                }
                Metric::Gauge(core) => {
                    out.insert(
                        key.render(None, ""),
                        (MetricKind::Gauge, core.value.load(Ordering::Relaxed) as f64),
                    );
                }
                Metric::Histogram(core) => {
                    out.insert(
                        key.render(None, "_count"),
                        (
                            MetricKind::Counter,
                            core.count.load(Ordering::Relaxed) as f64,
                        ),
                    );
                    out.insert(key.render(None, "_sum"), (MetricKind::Counter, core.sum()));
                }
            }
        }
        Snapshot { series: out }
    }

    /// Render every series in Prometheus text exposition format 0.0.4:
    /// stable (sorted) ordering, one `# HELP`/`# TYPE` pair per name,
    /// cumulative histogram buckets with a `+Inf` terminator.
    pub fn render(&self) -> String {
        let series = self.inner.series.read().expect("obs poisoned");
        let meta = self.inner.meta.read().expect("obs meta poisoned");
        let mut out = String::new();
        let mut last_name: Option<&str> = None;
        for (key, metric) in series.iter() {
            if last_name != Some(key.name.as_str()) {
                last_name = Some(key.name.as_str());
                if let Some((kind, help)) = meta.get(&key.name) {
                    out.push_str("# HELP ");
                    out.push_str(&key.name);
                    out.push(' ');
                    out.push_str(&escape_help(help));
                    out.push('\n');
                    out.push_str("# TYPE ");
                    out.push_str(&key.name);
                    out.push(' ');
                    out.push_str(kind.as_str());
                    out.push('\n');
                }
            }
            match metric {
                Metric::Counter(core) => {
                    let v = core.value.load(Ordering::Relaxed);
                    out.push_str(&key.render(None, ""));
                    out.push(' ');
                    out.push_str(&v.to_string());
                    out.push('\n');
                }
                Metric::Gauge(core) => {
                    let v = core.value.load(Ordering::Relaxed);
                    out.push_str(&key.render(None, ""));
                    out.push(' ');
                    out.push_str(&v.to_string());
                    out.push('\n');
                }
                Metric::Histogram(core) => {
                    let mut cum = 0u64;
                    for (i, bound) in core.bounds.iter().enumerate() {
                        cum += core.buckets[i].load(Ordering::Relaxed);
                        let le = format_f64(*bound);
                        out.push_str(&key.render(Some(("le", &le)), "_bucket"));
                        out.push(' ');
                        out.push_str(&cum.to_string());
                        out.push('\n');
                    }
                    let total = core.count.load(Ordering::Relaxed);
                    out.push_str(&key.render(Some(("le", "+Inf")), "_bucket"));
                    out.push(' ');
                    out.push_str(&total.to_string());
                    out.push('\n');
                    out.push_str(&key.render(None, "_sum"));
                    out.push(' ');
                    out.push_str(&format_f64(core.sum()));
                    out.push('\n');
                    out.push_str(&key.render(None, "_count"));
                    out.push(' ');
                    out.push_str(&total.to_string());
                    out.push('\n');
                }
            }
        }
        out
    }

    /// Cap the span/event ring buffer (0 disables event capture; spans
    /// still record their histograms).
    pub fn set_event_capacity(&self, cap: usize) {
        self.inner
            .events
            .lock()
            .expect("obs events poisoned")
            .set_capacity(cap);
    }

    pub(crate) fn events(&self) -> &Mutex<EventLog> {
        &self.inner.events
    }

    /// Install `self` as the current thread's ambient registry until
    /// the guard drops (restores the previous scope, so scopes nest).
    pub fn enter(&self) -> ScopeGuard {
        let prev = CURRENT.with(|c| c.borrow_mut().replace(self.clone()));
        ScopeGuard {
            prev,
            installed: true,
            _not_send: PhantomData,
        }
    }
}

/// Restores the previous ambient registry on drop. Not `Send`: it must
/// drop on the thread that created it.
pub struct ScopeGuard {
    prev: Option<Registry>,
    installed: bool,
    _not_send: PhantomData<*const ()>,
}

impl Drop for ScopeGuard {
    fn drop(&mut self) {
        if self.installed {
            CURRENT.with(|c| *c.borrow_mut() = self.prev.take());
        }
    }
}

thread_local! {
    static CURRENT: RefCell<Option<Registry>> = const { RefCell::new(None) };
}

static DEFAULT: OnceLock<Registry> = OnceLock::new();

/// The process-wide root registry. Every scoped registry chains into
/// it; [`crate::render`] and the scrape endpoint expose it. The event
/// ring capacity is seeded from `INFINE_TRACE_EVENTS` on first use.
pub fn default_registry() -> &'static Registry {
    DEFAULT.get_or_init(|| {
        let registry = Registry::new();
        if let Ok(cap) = std::env::var("INFINE_TRACE_EVENTS") {
            if let Ok(cap) = cap.trim().parse::<usize>() {
                registry.set_event_capacity(cap);
            }
        }
        registry
    })
}

/// Run `f` against the current thread's ambient registry (the default
/// registry when no scope is entered).
pub fn with_current<R>(f: impl FnOnce(&Registry) -> R) -> R {
    CURRENT.with(|c| match &*c.borrow() {
        Some(registry) => f(registry),
        None => f(default_registry()),
    })
}

/// A clone of the current thread's ambient registry.
pub fn current_registry() -> Registry {
    with_current(|r| r.clone())
}

/// The ambient registry captured on one thread for installation on
/// another — the bridge that carries a scope across `infine-exec` pool
/// workers (scoped threads never inherit thread-locals).
#[derive(Clone)]
pub struct ThreadContext {
    current: Option<Registry>,
}

impl ThreadContext {
    /// Capture the calling thread's ambient registry (if any).
    pub fn capture() -> Self {
        Self {
            current: CURRENT.with(|c| c.borrow().clone()),
        }
    }

    /// Install the captured scope on the calling thread until the guard
    /// drops. Capturing a thread with no scope installs no scope.
    pub fn install(&self) -> ScopeGuard {
        match &self.current {
            Some(registry) => registry.enter(),
            None => ScopeGuard {
                prev: None,
                installed: false,
                _not_send: PhantomData,
            },
        }
    }
}

/// An immutable copy of a registry's series at one instant.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Snapshot {
    series: BTreeMap<String, (MetricKind, f64)>,
}

impl Snapshot {
    /// The delta from `earlier` to `self`: counters (and histogram
    /// `_count`/`_sum`) subtract; gauges keep the newer absolute value.
    /// Series absent from `earlier` count from zero.
    pub fn since(&self, earlier: &Snapshot) -> Snapshot {
        let mut out = BTreeMap::new();
        for (key, (kind, value)) in &self.series {
            let value = match kind {
                MetricKind::Gauge => *value,
                _ => {
                    let before = earlier.series.get(key).map(|(_, v)| *v).unwrap_or(0.0);
                    value - before
                }
            };
            out.insert(key.clone(), (*kind, value));
        }
        Snapshot { series: out }
    }

    /// Value of one fully-labelled series, e.g.
    /// `infine_round_seconds_count{engine="sharded"}`.
    pub fn get(&self, series: &str) -> Option<f64> {
        self.series.get(series).map(|(_, v)| *v)
    }

    /// Sum over every label set of `name` (exact name match; label
    /// permutations of other metrics never alias because `{` cannot
    /// appear in a metric name).
    pub fn total(&self, name: &str) -> f64 {
        self.series
            .range(name.to_string()..)
            .take_while(|(key, _)| {
                key.as_bytes().get(name.len()).is_none_or(|b| *b == b'{') && key.starts_with(name)
            })
            .map(|(_, (_, v))| *v)
            .sum()
    }

    /// Iterate `(series, kind, value)` in stable sorted order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, MetricKind, f64)> {
        self.series
            .iter()
            .map(|(key, (kind, value))| (key.as_str(), *kind, *value))
    }

    pub fn is_empty(&self) -> bool {
        self.series.is_empty()
    }

    /// One flat JSON object, `{"series": value, …}`, stable ordering.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        let mut first = true;
        for (key, (_, value)) in &self.series {
            if !first {
                out.push(',');
            }
            first = false;
            out.push('"');
            for c in key.chars() {
                match c {
                    '"' => out.push_str("\\\""),
                    '\\' => out.push_str("\\\\"),
                    c => out.push(c),
                }
            }
            out.push_str("\":");
            out.push_str(&format_f64(*value));
        }
        out.push('}');
        out
    }
}

/// Shortest clean decimal for exposition: integers drop the fraction,
/// everything else uses Rust's shortest round-trip formatting.
pub(crate) fn format_f64(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}
