//! # infine-obs
//!
//! Dependency-free, std-only observability for the InFine workspace:
//! a lock-free metrics registry, span timing with an optional event
//! ring buffer, and Prometheus text-format exposition. The workspace
//! builds offline, so this crate plays the role `prometheus` +
//! `tracing` would otherwise — same shim philosophy as
//! `crates/shims/`, but a first-class subsystem rather than a stub.
//!
//! ## Model
//!
//! * **Handles are the hot path.** Register once
//!   ([`Registry::counter`] / [`gauge`](Registry::gauge) /
//!   [`histogram`](Registry::histogram)), keep the handle; every
//!   observation is a handful of relaxed atomic ops — no locks, no
//!   allocation, cheap enough to be always-on.
//! * **Scoped registries chain to their parent.** [`Registry::scoped`]
//!   makes a child of the process-wide [`default_registry`]; bumps on a
//!   child's handles also land in the parent's same-named series. A
//!   maintenance engine owns a scope for exact per-round deltas while
//!   exposition aggregates everything process-wide — this is what fixes
//!   the historical `KernelCounters` race between concurrent engines.
//! * **Ambient scope.** [`Registry::enter`] installs a registry as the
//!   current thread's ambient scope (guard-restored); deeply nested
//!   code (the validation kernel) resolves handles via
//!   [`with_current`]. [`ThreadContext`] carries the scope across
//!   `infine-exec` pool workers.
//! * **Spans.** [`Registry::span_timer`] preregisters a span;
//!   [`span`] opens an ad-hoc one against the ambient registry (lands
//!   in `infine_span_seconds{span="…"}`). Guards record wall time into
//!   histograms on drop, and — when the event ring is enabled via
//!   [`Registry::set_event_capacity`] or `INFINE_TRACE_EVENTS` — push
//!   JSON-drainable events ([`Registry::drain_events_json`]).
//! * **Exposition.** [`render`] produces Prometheus text format 0.0.4
//!   with stable ordering; [`serve_from_env`] (`INFINE_METRICS_ADDR`)
//!   starts a scrape endpoint, [`dump_if_requested`]
//!   (`INFINE_METRICS_DUMP`) writes a file at exit.
//!
//! ## Example
//!
//! ```
//! use infine_obs::Registry;
//!
//! let registry = Registry::new();
//! let checks = registry.counter("demo_checks_total", "Probe checks.", &[]);
//! let latency = registry.duration_histogram("demo_seconds", "Round time.", &[]);
//! checks.add(3);
//! latency.observe(0.004);
//! let text = registry.render();
//! assert!(text.contains("demo_checks_total 3"));
//! assert!(text.contains("demo_seconds_count 1"));
//! ```

mod metrics;
mod registry;
mod server;
mod span;

pub use metrics::{Counter, Gauge, Histogram, DURATION_BUCKETS, FANOUT_BUCKETS};
pub use registry::{
    current_registry, default_registry, with_current, MetricKind, Registry, ScopeGuard, Snapshot,
    ThreadContext,
};
pub use server::{dump_if_requested, serve, serve_from_env};
pub use span::{span, Event, Span, SpanGuard, SpanTimer};

/// Render the process-wide default registry in Prometheus text format.
pub fn render() -> String {
    default_registry().render()
}

/// Snapshot the process-wide default registry.
pub fn snapshot() -> Snapshot {
    default_registry().snapshot()
}
