//! Span timing and the event ring buffer.
//!
//! A [`SpanTimer`] is a preregistered handle (histogram + identity);
//! [`SpanTimer::start`] returns a guard that records wall time into the
//! histogram on drop. When the owning registry's event capacity is
//! nonzero, each completed span also pushes an [`Event`] into a bounded
//! ring buffer, drainable as JSON lines — a flight recorder for soaks,
//! off by default so steady-state spans never allocate.

use crate::metrics::Histogram;
use crate::registry::{format_f64, with_current, Registry};
use std::cell::Cell;
use std::collections::VecDeque;
use std::sync::OnceLock;
use std::time::Instant;

/// One completed span (or point event) in the ring buffer.
#[derive(Clone, Debug)]
pub struct Event {
    /// Monotone sequence number within the registry.
    pub seq: u64,
    /// Microseconds since the first obs timestamp taken in-process.
    pub at_micros: u64,
    pub name: String,
    pub labels: Vec<(String, String)>,
    /// Wall time for spans; `None` for point events.
    pub duration_secs: Option<f64>,
    /// Span nesting depth on the recording thread (outermost = 1).
    pub depth: u32,
}

impl Event {
    /// One JSON object on one line.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"seq\":");
        out.push_str(&self.seq.to_string());
        out.push_str(",\"t_us\":");
        out.push_str(&self.at_micros.to_string());
        out.push_str(",\"span\":\"");
        json_escape_into(&mut out, &self.name);
        out.push('"');
        if !self.labels.is_empty() {
            out.push_str(",\"labels\":{");
            for (i, (k, v)) in self.labels.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push('"');
                json_escape_into(&mut out, k);
                out.push_str("\":\"");
                json_escape_into(&mut out, v);
                out.push('"');
            }
            out.push('}');
        }
        if let Some(d) = self.duration_secs {
            out.push_str(",\"dur_s\":");
            out.push_str(&format_f64(d));
        }
        out.push_str(",\"depth\":");
        out.push_str(&self.depth.to_string());
        out.push('}');
        out
    }
}

fn json_escape_into(out: &mut String, v: &str) {
    for c in v.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
}

/// Bounded ring of recent events; capacity 0 = disabled.
pub(crate) struct EventLog {
    cap: usize,
    seq: u64,
    buf: VecDeque<Event>,
}

impl EventLog {
    pub(crate) fn new(cap: usize) -> Self {
        Self {
            cap,
            seq: 0,
            buf: VecDeque::new(),
        }
    }

    pub(crate) fn set_capacity(&mut self, cap: usize) {
        self.cap = cap;
        while self.buf.len() > cap {
            self.buf.pop_front();
        }
    }

    pub(crate) fn enabled(&self) -> bool {
        self.cap > 0
    }

    pub(crate) fn push(&mut self, mut event: Event) {
        if self.cap == 0 {
            return;
        }
        self.seq += 1;
        event.seq = self.seq;
        if self.buf.len() == self.cap {
            self.buf.pop_front();
        }
        self.buf.push_back(event);
    }

    pub(crate) fn drain(&mut self) -> Vec<Event> {
        self.buf.drain(..).collect()
    }
}

static EPOCH: OnceLock<Instant> = OnceLock::new();

fn micros_since_epoch(now: Instant) -> u64 {
    let epoch = *EPOCH.get_or_init(|| now);
    now.duration_since(epoch).as_micros() as u64
}

thread_local! {
    static SPAN_DEPTH: Cell<u32> = const { Cell::new(0) };
}

/// A reusable span handle: resolve once, `start()` per occurrence.
#[derive(Clone)]
pub struct SpanTimer {
    registry: Registry,
    hist: Histogram,
    name: String,
    labels: Vec<(String, String)>,
}

impl Registry {
    /// A span handle recording into histogram `name` (duration buckets)
    /// with the given label set.
    pub fn span_timer(&self, name: &str, labels: &[(&str, &str)]) -> SpanTimer {
        let hist = self.duration_histogram(name, "Span wall time in seconds.", labels);
        SpanTimer {
            registry: self.clone(),
            hist,
            name: name.to_string(),
            labels: labels
                .iter()
                .map(|(k, v)| (k.to_string(), v.to_string()))
                .collect(),
        }
    }

    /// Drain the event ring buffer as newline-delimited JSON (empty
    /// string when no events are buffered).
    pub fn drain_events_json(&self) -> String {
        let events = self.events().lock().expect("obs events poisoned").drain();
        let mut out = String::new();
        for event in &events {
            out.push_str(&event.to_json());
            out.push('\n');
        }
        out
    }

    /// Push a point event (no duration) into the ring buffer.
    pub fn event(&self, name: &str, labels: &[(&str, &str)]) {
        let mut log = self.events().lock().expect("obs events poisoned");
        if !log.enabled() {
            return;
        }
        log.push(Event {
            seq: 0,
            at_micros: micros_since_epoch(Instant::now()),
            name: name.to_string(),
            labels: labels
                .iter()
                .map(|(k, v)| (k.to_string(), v.to_string()))
                .collect(),
            duration_secs: None,
            depth: SPAN_DEPTH.with(|d| d.get()),
        });
    }
}

impl SpanTimer {
    /// Begin the span; the returned guard records on drop.
    pub fn start(&self) -> SpanGuard<'_> {
        SPAN_DEPTH.with(|d| d.set(d.get() + 1));
        SpanGuard {
            timer: self,
            t0: Instant::now(),
        }
    }
}

/// Records the span's wall time (and an event, when enabled) on drop.
pub struct SpanGuard<'a> {
    timer: &'a SpanTimer,
    t0: Instant,
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        let now = Instant::now();
        let elapsed = now.duration_since(self.t0);
        let depth = SPAN_DEPTH.with(|d| {
            let depth = d.get();
            d.set(depth.saturating_sub(1));
            depth
        });
        self.timer.hist.observe_duration(elapsed);
        let mut log = self
            .timer
            .registry
            .events()
            .lock()
            .expect("obs events poisoned");
        if log.enabled() {
            log.push(Event {
                seq: 0,
                at_micros: micros_since_epoch(now),
                name: self.timer.name.clone(),
                labels: self.timer.labels.clone(),
                duration_secs: Some(elapsed.as_secs_f64()),
                depth,
            });
        }
    }
}

/// An owned span against the *current* registry, recorded into
/// `infine_span_seconds{span="<name>", …}` — the ad-hoc counterpart to
/// a preregistered [`SpanTimer`].
pub struct Span {
    timer: SpanTimer,
    t0: Instant,
}

/// Open an ad-hoc span on the ambient registry; drop the guard to
/// record it.
pub fn span(name: &str, labels: &[(&str, &str)]) -> Span {
    let mut all: Vec<(&str, &str)> = Vec::with_capacity(labels.len() + 1);
    all.push(("span", name));
    all.extend_from_slice(labels);
    let mut timer = with_current(|r| r.span_timer("infine_span_seconds", &all));
    // Events report the caller's span name, not the histogram it lands in.
    timer.name = name.to_string();
    SPAN_DEPTH.with(|d| d.set(d.get() + 1));
    Span {
        timer,
        t0: Instant::now(),
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let now = Instant::now();
        let elapsed = now.duration_since(self.t0);
        let depth = SPAN_DEPTH.with(|d| {
            let depth = d.get();
            d.set(depth.saturating_sub(1));
            depth
        });
        self.timer.hist.observe_duration(elapsed);
        let mut log = self
            .timer
            .registry
            .events()
            .lock()
            .expect("obs events poisoned");
        if log.enabled() {
            log.push(Event {
                seq: 0,
                at_micros: micros_since_epoch(now),
                name: self.timer.name.clone(),
                labels: self.timer.labels.clone(),
                duration_secs: Some(elapsed.as_secs_f64()),
                depth,
            });
        }
    }
}
