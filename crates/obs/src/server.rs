//! Opt-in exposition plumbing: a minimal scrape endpoint on a std
//! `TcpListener` thread, plus an exit-time file dump — both driven by
//! env vars so production binaries pay nothing unless asked.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, ToSocketAddrs};
use std::path::PathBuf;
use std::sync::OnceLock;

/// Serve the default registry in Prometheus text format on `addr`
/// (e.g. `127.0.0.1:9187`; port 0 picks a free port). Spawns one
/// detached `infine-metrics` thread that re-renders per request; any
/// HTTP request path gets the full exposition. Returns the bound
/// address.
pub fn serve<A: ToSocketAddrs>(addr: A) -> std::io::Result<SocketAddr> {
    let listener = TcpListener::bind(addr)?;
    let local = listener.local_addr()?;
    std::thread::Builder::new()
        .name("infine-metrics".into())
        .spawn(move || {
            for stream in listener.incoming() {
                let Ok(mut stream) = stream else { continue };
                // Drain (one read of) the request; the response is the
                // same regardless of what was asked.
                let mut req = [0u8; 1024];
                let _ = stream.read(&mut req);
                let body = crate::render();
                let head = format!(
                    "HTTP/1.1 200 OK\r\n\
                     Content-Type: text/plain; version=0.0.4; charset=utf-8\r\n\
                     Content-Length: {}\r\n\
                     Connection: close\r\n\r\n",
                    body.len()
                );
                let _ = stream
                    .write_all(head.as_bytes())
                    .and_then(|()| stream.write_all(body.as_bytes()));
            }
        })?;
    Ok(local)
}

/// Start the scrape endpoint if `INFINE_METRICS_ADDR` is set. Idempotent
/// (first call wins); returns the bound address when serving.
pub fn serve_from_env() -> Option<SocketAddr> {
    static STARTED: OnceLock<Option<SocketAddr>> = OnceLock::new();
    *STARTED.get_or_init(|| {
        let addr = std::env::var("INFINE_METRICS_ADDR").ok()?;
        match serve(addr.trim()) {
            Ok(bound) => {
                eprintln!("infine-obs: serving metrics on http://{bound}/metrics");
                Some(bound)
            }
            Err(err) => {
                eprintln!("infine-obs: cannot serve metrics on {addr}: {err}");
                None
            }
        }
    })
}

/// Write the default registry's exposition to the file named by
/// `INFINE_METRICS_DUMP`, if set. Call at process exit (the bench bins
/// and examples do); returns the path written.
pub fn dump_if_requested() -> Option<PathBuf> {
    let path = PathBuf::from(std::env::var_os("INFINE_METRICS_DUMP")?);
    match std::fs::write(&path, crate::render()) {
        Ok(()) => Some(path),
        Err(err) => {
            eprintln!(
                "infine-obs: cannot dump metrics to {}: {err}",
                path.display()
            );
            None
        }
    }
}
