//! Lock-free metric handles: counters, gauges, and fixed-bucket
//! histograms.
//!
//! Every handle wraps an `Arc` around an atomic core, so clones are
//! cheap and observations are wait-free relaxed atomics — no locks, no
//! allocation. Cores registered in a *child* registry carry a pointer to
//! the same-named core in the parent, and every observation walks that
//! chain: a scoped registry (one per maintenance engine) keeps an exact
//! per-scope delta while the process-wide registry still aggregates the
//! totals for exposition.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Shared state behind a [`Counter`] handle.
pub(crate) struct CounterCore {
    pub(crate) value: AtomicU64,
    pub(crate) parent: Option<Arc<CounterCore>>,
}

impl CounterCore {
    pub(crate) fn new(parent: Option<Arc<CounterCore>>) -> Arc<Self> {
        Arc::new(Self {
            value: AtomicU64::new(0),
            parent,
        })
    }
}

/// A monotonically increasing counter. Clone freely; all clones share
/// the same cell. Increments propagate up the registry parent chain.
#[derive(Clone)]
pub struct Counter {
    pub(crate) core: Arc<CounterCore>,
}

impl Counter {
    /// Add 1.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n` to this counter and to every parent-registry counter it
    /// chains to.
    #[inline]
    pub fn add(&self, n: u64) {
        let mut core = Some(&self.core);
        while let Some(c) = core {
            c.value.fetch_add(n, Ordering::Relaxed);
            core = c.parent.as_ref();
        }
    }

    /// Current value of this registry's cell (parents excluded).
    #[inline]
    pub fn get(&self) -> u64 {
        self.core.value.load(Ordering::Relaxed)
    }

    /// Reset this registry's cell to zero. Parents are left alone: a
    /// scoped reset must not erase process-wide history.
    pub fn reset(&self) {
        self.core.value.store(0, Ordering::Relaxed);
    }
}

/// Shared state behind a [`Gauge`] handle.
pub(crate) struct GaugeCore {
    pub(crate) value: AtomicI64,
    pub(crate) parent: Option<Arc<GaugeCore>>,
}

impl GaugeCore {
    pub(crate) fn new(parent: Option<Arc<GaugeCore>>) -> Arc<Self> {
        Arc::new(Self {
            value: AtomicI64::new(0),
            parent,
        })
    }
}

/// A gauge: a value that can go up and down (queue depths, occupancy).
/// `add`/`sub` propagate up the parent chain so process-wide exposition
/// sees the sum of all scopes; `set` is scope-local because an absolute
/// value cannot be meaningfully merged into a parent.
#[derive(Clone)]
pub struct Gauge {
    pub(crate) core: Arc<GaugeCore>,
}

impl Gauge {
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    #[inline]
    pub fn dec(&self) {
        self.add(-1);
    }

    /// Add `n` (may be negative) here and in every chained parent.
    #[inline]
    pub fn add(&self, n: i64) {
        let mut core = Some(&self.core);
        while let Some(c) = core {
            c.value.fetch_add(n, Ordering::Relaxed);
            core = c.parent.as_ref();
        }
    }

    #[inline]
    pub fn sub(&self, n: i64) {
        self.add(-n);
    }

    /// Set this registry's cell to an absolute value (scope-local; the
    /// parent chain is not touched).
    #[inline]
    pub fn set(&self, v: i64) {
        self.core.value.store(v, Ordering::Relaxed);
    }

    #[inline]
    pub fn get(&self) -> i64 {
        self.core.value.load(Ordering::Relaxed)
    }
}

/// Shared state behind a [`Histogram`] handle.
pub(crate) struct HistogramCore {
    /// Upper bounds (`le`, inclusive), strictly increasing, finite.
    pub(crate) bounds: Arc<[f64]>,
    /// One cell per bound plus a final `+Inf` cell. Non-cumulative;
    /// exposition accumulates at render time.
    pub(crate) buckets: Box<[AtomicU64]>,
    pub(crate) count: AtomicU64,
    /// Sum of observed values as `f64` bits (CAS-loop accumulation).
    pub(crate) sum_bits: AtomicU64,
    pub(crate) parent: Option<Arc<HistogramCore>>,
}

impl HistogramCore {
    pub(crate) fn new(bounds: Arc<[f64]>, parent: Option<Arc<HistogramCore>>) -> Arc<Self> {
        let buckets = (0..=bounds.len())
            .map(|_| AtomicU64::new(0))
            .collect::<Vec<_>>()
            .into_boxed_slice();
        Arc::new(Self {
            bounds,
            buckets,
            count: AtomicU64::new(0),
            sum_bits: AtomicU64::new(0f64.to_bits()),
            parent,
        })
    }

    fn record(&self, v: f64) {
        // First bucket whose upper bound is >= v (Prometheus `le` is
        // inclusive); everything past the last bound lands in +Inf.
        let idx = self.bounds.partition_point(|b| *b < v);
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        let mut cur = self.sum_bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + v).to_bits();
            match self.sum_bits.compare_exchange_weak(
                cur,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(seen) => cur = seen,
            }
        }
    }

    pub(crate) fn sum(&self) -> f64 {
        f64::from_bits(self.sum_bits.load(Ordering::Relaxed))
    }
}

/// A fixed-bucket histogram. Observations propagate up the parent
/// chain; each core buckets with its own bounds, so a scope and its
/// parent can even disagree on resolution without losing counts.
#[derive(Clone)]
pub struct Histogram {
    pub(crate) core: Arc<HistogramCore>,
}

impl Histogram {
    /// Record one observation here and in every chained parent.
    #[inline]
    pub fn observe(&self, v: f64) {
        let mut core = Some(&self.core);
        while let Some(c) = core {
            c.record(v);
            core = c.parent.as_ref();
        }
    }

    /// Record a wall-time duration in seconds.
    #[inline]
    pub fn observe_duration(&self, d: Duration) {
        self.observe(d.as_secs_f64());
    }

    /// Number of observations in this registry's cells.
    pub fn count(&self) -> u64 {
        self.core.count.load(Ordering::Relaxed)
    }

    /// Sum of observed values in this registry's cells.
    pub fn sum(&self) -> f64 {
        self.core.sum()
    }

    /// The configured upper bounds (`+Inf` excluded).
    pub fn bounds(&self) -> &[f64] {
        &self.core.bounds
    }

    /// Per-bucket (non-cumulative) counts; the final entry is `+Inf`.
    pub fn bucket_counts(&self) -> Vec<u64> {
        self.core
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect()
    }
}

/// Default wall-time buckets in seconds: 10 µs up to one minute. Wide
/// enough for a kernel probe batch and a full sharded round alike.
pub const DURATION_BUCKETS: &[f64] = &[
    1e-5, 1e-4, 1e-3, 5e-3, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 60.0,
];

/// Small-cardinality buckets (shard fan-out occupancy, batch sizes).
pub const FANOUT_BUCKETS: &[f64] = &[1.0, 2.0, 4.0, 8.0, 16.0, 32.0];
