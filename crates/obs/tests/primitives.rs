//! Satellite coverage for the `infine-obs` primitives: histogram bucket
//! semantics, exposition-format golden output, label escaping, span
//! nesting, registry parent chaining, snapshots, the scrape endpoint,
//! and a concurrency smoke.

use infine_obs::{span, MetricKind, Registry, ThreadContext};
use std::io::{Read, Write};
use std::net::TcpStream;

#[test]
fn histogram_bucket_boundaries_are_le_inclusive() {
    let registry = Registry::new();
    let hist = registry.histogram("h", "test", &[], &[1.0, 2.0, 5.0]);
    // On-boundary values land in the bucket whose `le` they equal.
    for v in [0.5, 1.0, 1.5, 2.0, 5.0, 7.0, f64::INFINITY] {
        hist.observe(v);
    }
    assert_eq!(hist.bucket_counts(), vec![2, 2, 1, 2]);
    assert_eq!(hist.count(), 7);
    assert!(hist.sum().is_infinite());
}

#[test]
fn histogram_inf_sum_count_invariants() {
    let registry = Registry::new();
    let hist = registry.histogram("h", "test", &[], &[0.1, 1.0]);
    let values = [0.05, 0.1, 0.25, 3.0, 100.0];
    for v in values {
        hist.observe(v);
    }
    // +Inf cumulative count == total count == sum of all buckets.
    let buckets = hist.bucket_counts();
    assert_eq!(buckets.iter().sum::<u64>(), hist.count());
    assert_eq!(hist.count(), values.len() as u64);
    assert!((hist.sum() - values.iter().sum::<f64>()).abs() < 1e-9);
    // Rendered buckets are cumulative and terminated by +Inf == count.
    let text = registry.render();
    assert!(text.contains("h_bucket{le=\"0.1\"} 2"));
    assert!(text.contains("h_bucket{le=\"1\"} 3"));
    assert!(text.contains("h_bucket{le=\"+Inf\"} 5"));
    assert!(text.contains("h_count 5"));
}

#[test]
fn exposition_golden_stable_ordering_and_escaping() {
    let registry = Registry::new();
    // Registered deliberately out of name order; labels out of key order.
    registry
        .histogram("z_seconds", "Latency.", &[], &[0.5])
        .observe(0.25);
    registry
        .counter(
            "a_total",
            "Things.",
            &[("table", "supplier"), ("kind", "ins")],
        )
        .add(7);
    registry
        .counter(
            "a_total",
            "Things.",
            &[("kind", "del"), ("table", "na\"tion\\\n")],
        )
        .add(2);
    registry.gauge("m_depth", "Queue depth.", &[]).set(-3);
    let golden = "\
# HELP a_total Things.
# TYPE a_total counter
a_total{kind=\"del\",table=\"na\\\"tion\\\\\\n\"} 2
a_total{kind=\"ins\",table=\"supplier\"} 7
# HELP m_depth Queue depth.
# TYPE m_depth gauge
m_depth -3
# HELP z_seconds Latency.
# TYPE z_seconds histogram
z_seconds_bucket{le=\"0.5\"} 1
z_seconds_bucket{le=\"+Inf\"} 1
z_seconds_sum 0.25
z_seconds_count 1
";
    assert_eq!(registry.render(), golden);
    // Stable: a second render is byte-identical.
    assert_eq!(registry.render(), golden);
}

#[test]
fn registration_is_get_or_create() {
    let registry = Registry::new();
    let a = registry.counter("c_total", "first help wins", &[("x", "1")]);
    let b = registry.counter("c_total", "ignored", &[("x", "1")]);
    a.add(1);
    b.add(2);
    assert_eq!(a.get(), 3);
    assert!(registry.render().contains("# HELP c_total first help wins"));
}

#[test]
fn child_registry_chains_into_parent() {
    let parent = Registry::new();
    let child_a = parent.child();
    let child_b = parent.child();
    child_a.counter("k_total", "t", &[]).add(5);
    child_b.counter("k_total", "t", &[]).add(11);
    // Per-scope deltas are exact; the parent aggregates both.
    assert_eq!(child_a.counter("k_total", "t", &[]).get(), 5);
    assert_eq!(child_b.counter("k_total", "t", &[]).get(), 11);
    assert_eq!(parent.counter("k_total", "t", &[]).get(), 16);
    // Gauges chain add/sub but not set.
    child_a.gauge("g", "t", &[]).add(4);
    child_b.gauge("g", "t", &[]).sub(1);
    assert_eq!(parent.gauge("g", "t", &[]).get(), 3);
    // Histograms chain observations.
    child_a.histogram("h", "t", &[], &[1.0]).observe(0.5);
    assert_eq!(parent.histogram("h", "t", &[], &[1.0]).count(), 1);
}

#[test]
fn snapshot_since_subtracts_counters_keeps_gauges() {
    let registry = Registry::new();
    let c = registry.counter("c_total", "t", &[]);
    let g = registry.gauge("g", "t", &[]);
    let h = registry.duration_histogram("h_seconds", "t", &[]);
    c.add(10);
    g.set(5);
    h.observe(1.0);
    let before = registry.snapshot();
    c.add(7);
    g.set(2);
    h.observe(3.0);
    h.observe(0.5);
    let delta = registry.snapshot().since(&before);
    assert_eq!(delta.get("c_total"), Some(7.0));
    assert_eq!(delta.get("g"), Some(2.0));
    assert_eq!(delta.get("h_seconds_count"), Some(2.0));
    assert_eq!(delta.get("h_seconds_sum"), Some(3.5));
    assert_eq!(delta.total("c_total"), 7.0);
    // `total` must not match prefix-named metrics.
    registry.counter("c_total_extra", "t", &[]).add(99);
    let snap = registry.snapshot();
    assert_eq!(snap.total("c_total"), 17.0);
    // JSON emission is a flat object with stable ordering.
    let json = delta.to_json();
    assert!(json.starts_with('{') && json.ends_with('}'));
    assert!(json.contains("\"c_total\":7"));
    // Kinds survive iteration.
    assert!(delta
        .iter()
        .any(|(k, kind, _)| k == "g" && kind == MetricKind::Gauge));
}

#[test]
fn span_guards_nest_and_each_level_records() {
    let registry = Registry::new();
    let outer = registry.span_timer("round_seconds", &[("engine", "t")]);
    let inner = registry.span_timer("phase_seconds", &[("phase", "merge")]);
    {
        let _o = outer.start();
        {
            let _i = inner.start();
        }
        {
            let _i = inner.start();
        }
    }
    let outer_hist = registry.duration_histogram("round_seconds", "", &[("engine", "t")]);
    let inner_hist = registry.duration_histogram("phase_seconds", "", &[("phase", "merge")]);
    assert_eq!(outer_hist.count(), 1);
    assert_eq!(inner_hist.count(), 2);
    // The outer span's wall time covers both inner spans.
    assert!(outer_hist.sum() >= inner_hist.sum());
}

#[test]
fn span_events_drain_as_json_lines() {
    let registry = Registry::new();
    registry.set_event_capacity(4);
    let outer = registry.span_timer("round_seconds", &[]);
    let inner = registry.span_timer("phase_seconds", &[("phase", "merge")]);
    {
        let _o = outer.start();
        let _i = inner.start();
    }
    let lines: Vec<String> = registry
        .drain_events_json()
        .lines()
        .map(str::to_string)
        .collect();
    // Inner drops first (depth 2), then outer (depth 1).
    assert_eq!(lines.len(), 2);
    assert!(lines[0].contains("\"span\":\"phase_seconds\""));
    assert!(lines[0].contains("\"depth\":2"));
    assert!(lines[0].contains("\"dur_s\":"));
    assert!(lines[1].contains("\"span\":\"round_seconds\""));
    assert!(lines[1].contains("\"depth\":1"));
    // Drained: a second drain is empty.
    assert!(registry.drain_events_json().is_empty());
    // Ring bound: the buffer keeps only the newest `cap` events.
    for _ in 0..9 {
        let _s = outer.start();
    }
    assert_eq!(registry.drain_events_json().lines().count(), 4);
    // Histograms recorded regardless of the ring.
    assert_eq!(
        registry
            .duration_histogram("round_seconds", "", &[])
            .count(),
        10
    );
}

#[test]
fn ambient_scope_enter_and_thread_context() {
    let scoped = Registry::new();
    {
        let _guard = scoped.enter();
        let _s = span("work", &[("table", "supplier")]);
        // The ambient registry is the scoped one inside the guard.
        assert_eq!(infine_obs::current_registry().id(), scoped.id());
        let ctx = ThreadContext::capture();
        std::thread::spawn(move || {
            let _guard = ctx.install();
            infine_obs::with_current(|r| r.counter("cross_total", "t", &[]).inc());
        })
        .join()
        .unwrap();
    }
    // Span + cross-thread counter landed in the scoped registry, not the
    // process default.
    assert_eq!(scoped.counter("cross_total", "t", &[]).get(), 1);
    let text = scoped.render();
    assert!(text.contains("infine_span_seconds_count{span=\"work\",table=\"supplier\"} 1"));
    assert!(!infine_obs::render().contains("cross_total"));
}

#[test]
fn concurrency_smoke_sums_exactly() {
    const THREADS: usize = 8;
    const OBS: usize = 10_000;
    let registry = Registry::new();
    let counter = registry.counter("smoke_total", "t", &[]);
    let hist = registry.histogram("smoke_seconds", "t", &[], &[0.5]);
    std::thread::scope(|scope| {
        for _ in 0..THREADS {
            let counter = counter.clone();
            let hist = hist.clone();
            scope.spawn(move || {
                for i in 0..OBS {
                    counter.inc();
                    hist.observe(if i % 2 == 0 { 0.25 } else { 0.75 });
                }
            });
        }
    });
    assert_eq!(counter.get(), (THREADS * OBS) as u64);
    assert_eq!(hist.count(), (THREADS * OBS) as u64);
    assert_eq!(hist.bucket_counts(), vec![(THREADS * OBS / 2) as u64; 2]);
    let expected_sum = (THREADS * OBS) as f64 * 0.5;
    assert!((hist.sum() - expected_sum).abs() < 1e-6);
}

#[test]
fn scrape_endpoint_serves_exposition() {
    infine_obs::default_registry()
        .counter("scrape_probe_total", "t", &[])
        .add(42);
    let addr = infine_obs::serve("127.0.0.1:0").expect("bind");
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .write_all(b"GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n")
        .expect("request");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("response");
    assert!(response.starts_with("HTTP/1.1 200 OK"));
    assert!(response.contains("text/plain; version=0.0.4"));
    assert!(response.contains("scrape_probe_total 42"));
}
