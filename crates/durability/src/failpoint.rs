//! Fault injection for the kill-and-recover and chaos soaks.
//!
//! A fail point is a named site in the durability/service code that, when
//! armed, fires an injected fault on its *n*-th hit. Three fault shapes
//! exist: [`FailAction::Panic`] kills the worker thread exactly where a
//! real crash could strike (before a WAL append, mid-append with a torn
//! record already on disk, after a snapshot temp file is written but
//! before the rename, after a round is applied but before its report is
//! sent); [`FailAction::Err`] makes the site return an injected
//! `io::Error`, either transient (retryable — `ErrorKind::Interrupted`,
//! the EINTR/ENOSPC-blip stand-in) or fatal (`ErrorKind::InvalidData`);
//! [`FailAction::Delay`] stalls the site to simulate a slow disk. The
//! soaks arm sites, drive churn through the injected faults, and pin the
//! final state equal to an unfaulted run.
//!
//! Arming is runtime state, not a cfg gate: integration tests and the
//! soaks live outside the crate, so the hooks must exist in release
//! builds. Unarmed hits are one mutex-free `Arc` null-check beyond a
//! `Mutex` lock only taken when at least one site is armed; production
//! callers pass [`FailPoints::none`] and pay a single branch.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Fault before the WAL record for a round is written: on panic the
/// round is lost entirely and recovery must converge without it; on an
/// injected error the append is retried (transient) or the round is
/// dropped with an `Err` report (fatal / retries exhausted).
pub const WAL_APPEND: &str = "wal_append";
/// Crash after a *prefix* of the WAL record hits the file: recovery sees
/// a torn tail and must truncate-and-warn, never panic. Panic-only —
/// a torn write that returns instead of crashing cannot happen.
pub const WAL_APPEND_TORN: &str = "wal_append_torn";
/// Fault after the snapshot temp file is written but before the atomic
/// rename: no new snapshot exists and the temp file must be ignored
/// (crash) or the publication retried (injected error).
pub const SNAPSHOT_WRITE: &str = "snapshot_write";
/// Crash after the round is durably logged and applied, but before its
/// report is sent: recovery replays a round the engine already ran.
/// Panic-only — the site has no error path.
pub const ROUND_COMMIT: &str = "round_commit";
/// Fault after a directory entry changes (snapshot rename landed, or a
/// fresh WAL segment was created) but before the parent directory is
/// fsynced: a crash here may lose the entry itself even though the file
/// contents were synced, and recovery must still converge from the
/// previous snapshot + intact log suffix.
pub const DIR_FSYNC: &str = "dir_fsync";

/// What an armed fail point does when it fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailAction {
    /// Kill the calling thread (the injected "crash").
    Panic,
    /// Return an injected `io::Error` from the site. `transient: true`
    /// uses `ErrorKind::Interrupted` (classified retryable); `false`
    /// uses `ErrorKind::InvalidData` (fatal, never retried).
    Err {
        /// Whether the injected error should classify as retryable.
        transient: bool,
    },
    /// Sleep this long at the site, then continue normally (slow disk).
    Delay {
        /// Stall duration in milliseconds.
        ms: u64,
    },
}

#[derive(Debug, Clone, Copy)]
struct Armed {
    /// Hits to absorb before the first fire (0 = next hit fires).
    skip: u64,
    /// How many consecutive hits fire once `skip` is exhausted; the
    /// site disarms when this reaches zero.
    fires: u64,
    action: FailAction,
}

/// A shared set of armed fail-point sites with hit countdowns.
#[derive(Debug, Clone, Default)]
pub struct FailPoints {
    // None = nothing ever armed (the production fast path).
    armed: Option<Arc<Mutex<HashMap<String, Armed>>>>,
}

impl FailPoints {
    /// No fail points; every [`FailPoints::hit`] is a no-op branch.
    pub fn none() -> FailPoints {
        FailPoints::default()
    }

    /// Fail points from `INFINE_FAILPOINT`, a comma-separated list of:
    ///
    /// - `site:N` — panic on the N-th hit (N = 1 kills on the first);
    /// - `site:N:err` — return a transient injected error once;
    /// - `site:N:err!` — return a fatal injected error once;
    /// - `site:N:delay=MS` — stall MS milliseconds once.
    ///
    /// Unset or malformed entries arm nothing.
    pub fn from_env() -> FailPoints {
        let mut fp = FailPoints::none();
        let Ok(spec) = std::env::var("INFINE_FAILPOINT") else {
            return fp;
        };
        for part in spec.split(',') {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            let mut fields = part.split(':');
            let site = fields.next().unwrap_or_default();
            let Ok(nth) = fields.next().unwrap_or("1").parse::<u64>() else {
                continue;
            };
            match fields.next() {
                None => fp.arm(site, nth),
                Some("err") => fp.arm_action(site, nth, 1, FailAction::Err { transient: true }),
                Some("err!") => fp.arm_action(site, nth, 1, FailAction::Err { transient: false }),
                Some(d) => {
                    if let Some(ms) = d.strip_prefix("delay=").and_then(|m| m.parse().ok()) {
                        fp.arm_action(site, nth, 1, FailAction::Delay { ms });
                    }
                }
            }
        }
        fp
    }

    /// Arm `site` to panic on its `nth` hit (1-based; 0 is clamped to 1).
    pub fn arm(&mut self, site: &str, nth: u64) {
        self.arm_action(site, nth, 1, FailAction::Panic);
    }

    /// Arm `site` to return an injected `io::Error` on its `nth` hit and
    /// the `times - 1` hits after it (so a transient error armed with
    /// `times` > retry budget exhausts the retry policy).
    pub fn arm_err(&mut self, site: &str, nth: u64, times: u64, transient: bool) {
        self.arm_action(site, nth, times, FailAction::Err { transient });
    }

    /// Arm `site` to stall `ms` milliseconds on its `nth` hit and the
    /// `times - 1` hits after it.
    pub fn arm_delay(&mut self, site: &str, nth: u64, times: u64, ms: u64) {
        self.arm_action(site, nth, times, FailAction::Delay { ms });
    }

    fn arm_action(&mut self, site: &str, nth: u64, times: u64, action: FailAction) {
        let armed = self
            .armed
            .get_or_insert_with(|| Arc::new(Mutex::new(HashMap::new())));
        armed.lock().unwrap().insert(
            site.to_string(),
            Armed {
                skip: nth.max(1) - 1,
                fires: times.max(1),
                action,
            },
        );
    }

    /// True iff any site is armed (used to skip torn-write staging).
    pub fn any_armed(&self) -> bool {
        self.armed
            .as_ref()
            .is_some_and(|a| !a.lock().unwrap().is_empty())
    }

    /// True iff `site` specifically is armed (the torn-append path must
    /// decide whether to stage a partial write *before* hitting).
    pub fn is_armed(&self, site: &str) -> bool {
        self.armed
            .as_ref()
            .is_some_and(|a| a.lock().unwrap().contains_key(site))
    }

    /// True iff the *next* [`FailPoints::hit`] at `site` will panic. The
    /// torn-append path stages its partial write only on the hit that
    /// actually crashes — a staged-but-surviving append would corrupt
    /// the log mid-file, which no real crash can do. Err/Delay actions
    /// never report true: the append survives them, so nothing may be
    /// staged.
    pub fn will_fire(&self, site: &str) -> bool {
        self.armed.as_ref().is_some_and(|a| {
            a.lock().unwrap().get(site).is_some_and(|armed| {
                armed.skip == 0 && armed.fires > 0 && armed.action == FailAction::Panic
            })
        })
    }

    // Advance the countdown for `site` and return the action to perform
    // now, if any. The lock is released before the caller acts (a Delay
    // must not stall other sites; a Panic must not poison the map).
    fn advance(&self, site: &str) -> Option<FailAction> {
        let armed = self.armed.as_ref()?;
        let mut armed = armed.lock().unwrap();
        let entry = armed.get_mut(site)?;
        if entry.skip > 0 {
            entry.skip -= 1;
            return None;
        }
        entry.fires -= 1;
        let action = entry.action;
        if entry.fires == 0 {
            // Disarms as it finishes firing so a recovered worker does
            // not immediately die again.
            armed.remove(site);
        }
        Some(action)
    }

    /// Register a hit at a site with no error path. A due `Panic` kills
    /// the calling thread; a due `Delay` stalls it; a due `Err` degrades
    /// to a panic (an error cannot be returned from here) so a misarmed
    /// soak fails loudly instead of silently skipping the injection.
    pub fn hit(&self, site: &str) {
        match self.advance(site) {
            None => {}
            Some(FailAction::Panic) => panic!("failpoint {site:?} fired (injected crash)"),
            Some(FailAction::Delay { ms }) => std::thread::sleep(Duration::from_millis(ms)),
            Some(FailAction::Err { .. }) => {
                panic!("failpoint {site:?}: Err action armed at a panic-only site")
            }
        }
    }

    /// Register a hit at a fallible site. A due `Err` returns the
    /// injected `io::Error`; a due `Panic` kills the thread; a due
    /// `Delay` stalls and returns `Ok`.
    pub fn hit_io(&self, site: &str) -> std::io::Result<()> {
        match self.advance(site) {
            None => Ok(()),
            Some(FailAction::Panic) => panic!("failpoint {site:?} fired (injected crash)"),
            Some(FailAction::Delay { ms }) => {
                std::thread::sleep(Duration::from_millis(ms));
                Ok(())
            }
            Some(FailAction::Err { transient }) => {
                let kind = if transient {
                    std::io::ErrorKind::Interrupted
                } else {
                    std::io::ErrorKind::InvalidData
                };
                Err(std::io::Error::new(
                    kind,
                    format!("failpoint {site:?} fired (injected error, transient={transient})"),
                ))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unarmed_hits_are_noops() {
        let fp = FailPoints::none();
        fp.hit(WAL_APPEND);
        fp.hit("anything");
        assert!(fp.hit_io(WAL_APPEND).is_ok());
        assert!(!fp.any_armed());
    }

    #[test]
    fn fires_on_nth_hit_and_disarms() {
        let mut fp = FailPoints::none();
        fp.arm(SNAPSHOT_WRITE, 3);
        fp.hit(SNAPSHOT_WRITE);
        assert!(!fp.will_fire(SNAPSHOT_WRITE));
        fp.hit(SNAPSHOT_WRITE);
        assert!(fp.will_fire(SNAPSHOT_WRITE));
        let fp2 = fp.clone();
        let died = std::panic::catch_unwind(move || fp2.hit(SNAPSHOT_WRITE));
        assert!(died.is_err());
        // The firing disarmed the site (shared state with the clone).
        fp.hit(SNAPSHOT_WRITE);
        assert!(!fp.any_armed());
    }

    #[test]
    fn other_sites_do_not_fire() {
        let mut fp = FailPoints::none();
        fp.arm(WAL_APPEND, 1);
        fp.hit(SNAPSHOT_WRITE);
        fp.hit(ROUND_COMMIT);
        assert!(fp.any_armed());
    }

    #[test]
    fn err_action_returns_injected_errors_then_disarms() {
        let mut fp = FailPoints::none();
        fp.arm_err(WAL_APPEND, 2, 2, true);
        assert!(fp.hit_io(WAL_APPEND).is_ok());
        // Err actions must never trigger torn-write staging.
        assert!(!fp.will_fire(WAL_APPEND));
        for _ in 0..2 {
            let err = fp.hit_io(WAL_APPEND).unwrap_err();
            assert_eq!(err.kind(), std::io::ErrorKind::Interrupted);
        }
        assert!(fp.hit_io(WAL_APPEND).is_ok());
        assert!(!fp.any_armed());
    }

    #[test]
    fn fatal_err_uses_invalid_data() {
        let mut fp = FailPoints::none();
        fp.arm_err(SNAPSHOT_WRITE, 1, 1, false);
        let err = fp.hit_io(SNAPSHOT_WRITE).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
    }

    #[test]
    fn delay_action_stalls_then_continues() {
        let mut fp = FailPoints::none();
        fp.arm_delay(WAL_APPEND, 1, 1, 20);
        let t0 = std::time::Instant::now();
        assert!(fp.hit_io(WAL_APPEND).is_ok());
        assert!(t0.elapsed() >= Duration::from_millis(20));
        assert!(!fp.any_armed());
    }

    #[test]
    fn from_env_syntax_round_trips() {
        // from_env reads a process-global; build the same shapes via the
        // parser's internals by arming directly and comparing behavior.
        let mut fp = FailPoints::none();
        fp.arm_action("a", 1, 1, FailAction::Err { transient: true });
        fp.arm_action("b", 1, 1, FailAction::Err { transient: false });
        fp.arm_action("c", 1, 1, FailAction::Delay { ms: 1 });
        assert_eq!(
            fp.hit_io("a").unwrap_err().kind(),
            std::io::ErrorKind::Interrupted
        );
        assert_eq!(
            fp.hit_io("b").unwrap_err().kind(),
            std::io::ErrorKind::InvalidData
        );
        assert!(fp.hit_io("c").is_ok());
    }
}
