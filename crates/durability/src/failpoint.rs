//! Fault injection for the kill-and-recover soak.
//!
//! A fail point is a named site in the durability/service code that, when
//! armed, panics on its *n*-th hit — killing the worker thread exactly
//! where a real crash could strike (before a WAL append, mid-append with
//! a torn record already on disk, after a snapshot temp file is written
//! but before the rename, after a round is applied but before its report
//! is sent). The soak arms one site, drives churn until the worker dies,
//! recovers, and pins recovered state equal to a never-crashed run.
//!
//! Arming is runtime state, not a cfg gate: integration tests and the
//! soak live outside the crate, so the hooks must exist in release
//! builds. Unarmed hits are one mutex-free `Arc` null-check beyond a
//! `Mutex` lock only taken when at least one site is armed; production
//! callers pass [`FailPoints::none`] and pay a single branch.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// Crash before the WAL record for a round is written: the round is lost
/// entirely and recovery must converge without it.
pub const WAL_APPEND: &str = "wal_append";
/// Crash after a *prefix* of the WAL record hits the file: recovery sees
/// a torn tail and must truncate-and-warn, never panic.
pub const WAL_APPEND_TORN: &str = "wal_append_torn";
/// Crash after the snapshot temp file is written but before the atomic
/// rename: no new snapshot exists and the temp file must be ignored.
pub const SNAPSHOT_WRITE: &str = "snapshot_write";
/// Crash after the round is durably logged and applied, but before its
/// report is sent: recovery replays a round the engine already ran.
pub const ROUND_COMMIT: &str = "round_commit";

/// A shared set of armed fail-point sites with hit countdowns.
#[derive(Debug, Clone, Default)]
pub struct FailPoints {
    // None = nothing ever armed (the production fast path).
    armed: Option<Arc<Mutex<HashMap<String, u64>>>>,
}

impl FailPoints {
    /// No fail points; every [`FailPoints::hit`] is a no-op branch.
    pub fn none() -> FailPoints {
        FailPoints::default()
    }

    /// Fail points from `INFINE_FAILPOINT` (`"site:N"` or a
    /// comma-separated list; `N` = 1 kills on the first hit). Unset or
    /// malformed entries arm nothing.
    pub fn from_env() -> FailPoints {
        let mut fp = FailPoints::none();
        if let Ok(spec) = std::env::var("INFINE_FAILPOINT") {
            for part in spec.split(',') {
                if let Some((site, n)) = part.trim().split_once(':') {
                    if let Ok(n) = n.parse::<u64>() {
                        fp.arm(site, n);
                    }
                } else if !part.trim().is_empty() {
                    fp.arm(part.trim(), 1);
                }
            }
        }
        fp
    }

    /// Arm `site` to panic on its `nth` hit (1-based; 0 is clamped to 1).
    pub fn arm(&mut self, site: &str, nth: u64) {
        let armed = self
            .armed
            .get_or_insert_with(|| Arc::new(Mutex::new(HashMap::new())));
        armed.lock().unwrap().insert(site.to_string(), nth.max(1));
    }

    /// True iff any site is armed (used to skip torn-write staging).
    pub fn any_armed(&self) -> bool {
        self.armed
            .as_ref()
            .is_some_and(|a| !a.lock().unwrap().is_empty())
    }

    /// True iff `site` specifically is armed (the torn-append path must
    /// decide whether to stage a partial write *before* hitting).
    pub fn is_armed(&self, site: &str) -> bool {
        self.armed
            .as_ref()
            .is_some_and(|a| a.lock().unwrap().contains_key(site))
    }

    /// True iff the *next* [`FailPoints::hit`] at `site` will fire. The
    /// torn-append path stages its partial write only on the hit that
    /// actually crashes — a staged-but-surviving append would corrupt
    /// the log mid-file, which no real crash can do.
    pub fn will_fire(&self, site: &str) -> bool {
        self.armed
            .as_ref()
            .is_some_and(|a| a.lock().unwrap().get(site) == Some(&1))
    }

    /// Register a hit at `site`; panics (killing the calling thread —
    /// the injected "crash") when the countdown armed for it reaches
    /// zero. Disarms the site as it fires so a recovered worker does not
    /// immediately die again.
    pub fn hit(&self, site: &str) {
        let Some(armed) = &self.armed else { return };
        let mut armed = armed.lock().unwrap();
        let fire = match armed.get_mut(site) {
            Some(n) => {
                *n -= 1;
                *n == 0
            }
            None => false,
        };
        if fire {
            armed.remove(site);
            drop(armed);
            panic!("failpoint {site:?} fired (injected crash)");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unarmed_hits_are_noops() {
        let fp = FailPoints::none();
        fp.hit(WAL_APPEND);
        fp.hit("anything");
        assert!(!fp.any_armed());
    }

    #[test]
    fn fires_on_nth_hit_and_disarms() {
        let mut fp = FailPoints::none();
        fp.arm(SNAPSHOT_WRITE, 3);
        fp.hit(SNAPSHOT_WRITE);
        fp.hit(SNAPSHOT_WRITE);
        let fp2 = fp.clone();
        let died = std::panic::catch_unwind(move || fp2.hit(SNAPSHOT_WRITE));
        assert!(died.is_err());
        // The firing disarmed the site (shared state with the clone).
        fp.hit(SNAPSHOT_WRITE);
        assert!(!fp.any_armed());
    }

    #[test]
    fn other_sites_do_not_fire() {
        let mut fp = FailPoints::none();
        fp.arm(WAL_APPEND, 1);
        fp.hit(SNAPSHOT_WRITE);
        fp.hit(ROUND_COMMIT);
        assert!(fp.any_armed());
    }
}
