//! CRC-32 (IEEE 802.3 polynomial, the zlib/PNG variant), table-driven.
//!
//! Every WAL record and snapshot body carries one of these checksums; the
//! build is offline so the implementation lives here instead of pulling
//! `crc32fast`. The table is computed at compile time.

const POLY: u32 = 0xEDB8_8320;

const TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ POLY
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

/// CRC-32 of `bytes` (initial value all-ones, final complement — the
/// standard IEEE presentation, matching `crc32fast` / zlib).
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = u32::MAX;
    for &b in bytes {
        crc = (crc >> 8) ^ TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // The canonical check value for CRC-32/IEEE.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn single_bit_flips_change_the_checksum() {
        let data = b"incremental maintenance".to_vec();
        let base = crc32(&data);
        for i in 0..data.len() {
            for bit in 0..8 {
                let mut corrupt = data.clone();
                corrupt[i] ^= 1 << bit;
                assert_ne!(
                    crc32(&corrupt),
                    base,
                    "flip at byte {i} bit {bit} undetected"
                );
            }
        }
    }
}
