//! Checksummed, atomically-published state snapshots.
//!
//! A snapshot captures the service's full engine state at a round
//! boundary (`epoch` = number of rounds incorporated), in the
//! vacuum-canonical form — byte-equal to a from-scratch rebuild — that
//! PR 5's invariant guarantees. Publication is write-to-temp →
//! `sync` → atomic rename, so a crash at any point leaves either the
//! previous set of snapshots or the previous set plus one complete new
//! snapshot, never a half-written `.snap` file.
//!
//! ## File format (`snap-<epoch>.snap`)
//!
//! ```text
//! magic "INFSNP01" (8) | version u32 | epoch u64 | crc32 u32 | len u64 | payload
//! ```
//!
//! The CRC covers the payload. [`SnapshotStore::load_newest`] walks the
//! directory newest-first and returns the first snapshot that validates,
//! recording every skipped (corrupt) candidate — the fallback path the
//! corruption matrix exercises.

use crate::crc32::crc32;
use crate::failpoint::{FailPoints, DIR_FSYNC, SNAPSHOT_WRITE};
use crate::{fsync_dir, segment_epoch, DurabilityError};
use std::fs;
use std::io::Write;
use std::path::PathBuf;

const MAGIC: &[u8; 8] = b"INFSNP01";
const VERSION: u32 = 1;
const HEADER_LEN: usize = 8 + 4 + 8 + 4 + 8;

/// How many published snapshots to retain. Two: the newest plus one
/// fallback in case the newest is found corrupt at recovery time.
pub const KEEP_SNAPSHOTS: usize = 2;

/// Name of the snapshot file for an epoch (zero-padded for lexical =
/// numeric ordering).
pub fn snapshot_name(epoch: u64) -> String {
    format!("snap-{epoch:020}.snap")
}

/// A directory of published snapshots.
#[derive(Debug, Clone)]
pub struct SnapshotStore {
    dir: PathBuf,
    failpoints: FailPoints,
}

/// The result of a successful [`SnapshotStore::publish`]: the snapshot
/// is durably renamed (and the directory fsynced) by the time one of
/// these exists. Pruning older snapshots is best-effort — a prune I/O
/// failure must not fail (or re-run) a cut that already landed, so it
/// surfaces here as warnings instead of an `Err`.
#[derive(Debug)]
pub struct PublishOutcome {
    /// Epochs still on disk after pruning, ascending. An epoch whose
    /// deletion failed stays listed (it *is* still on disk), keeping the
    /// caller's WAL `retain_from` conservative.
    pub retained: Vec<u64>,
    /// Human-readable descriptions of prune failures, if any.
    pub prune_warnings: Vec<String>,
}

/// A snapshot that passed validation at load time.
#[derive(Debug)]
pub struct LoadedSnapshot {
    /// Rounds incorporated in the snapshot (its commitlog epoch).
    pub epoch: u64,
    /// The opaque engine-state payload handed to
    /// [`SnapshotStore::publish`].
    pub payload: Vec<u8>,
    /// Newer snapshots that failed validation and were skipped, newest
    /// first: `(epoch, why)`.
    pub skipped: Vec<(u64, String)>,
}

impl SnapshotStore {
    /// Store over `dir` (created on first publish).
    pub fn new(dir: impl Into<PathBuf>, failpoints: FailPoints) -> SnapshotStore {
        SnapshotStore {
            dir: dir.into(),
            failpoints,
        }
    }

    /// Atomically publish the snapshot for `epoch` and prune, keeping
    /// the newest [`KEEP_SNAPSHOTS`]. Returns the epochs retained after
    /// pruning (ascending) — the caller prunes WAL segments below the
    /// smallest. The [`SNAPSHOT_WRITE`] failpoint fires after the temp
    /// file is complete but before the rename: a crash there leaves a
    /// stray `.tmp` and no new snapshot, and an injected error surfaces
    /// to the retry path with the rename still pending (a retried
    /// publish simply rewrites the temp file). The [`DIR_FSYNC`]
    /// failpoint fires after the rename but before the directory fsync
    /// that makes the rename itself durable.
    ///
    /// Every `Err` return happens no later than the directory fsync, and
    /// a publish up to that point is idempotent (rewrite temp,
    /// re-rename), so retry policies may safely re-run a failed publish.
    /// After that point nothing fails: pruning is best-effort and its failures are
    /// reported via [`PublishOutcome::prune_warnings`] — returning an
    /// error for a cut that already durably landed would make the caller
    /// re-run (or worse, fail) a snapshot that succeeded.
    pub fn publish(&self, epoch: u64, payload: &[u8]) -> Result<PublishOutcome, DurabilityError> {
        fs::create_dir_all(&self.dir)?;
        let tmp = self.dir.join(format!("snap-{epoch:020}.tmp"));
        let mut file = fs::File::create(&tmp)?;
        let mut header = Vec::with_capacity(HEADER_LEN);
        header.extend_from_slice(MAGIC);
        header.extend_from_slice(&VERSION.to_le_bytes());
        header.extend_from_slice(&epoch.to_le_bytes());
        header.extend_from_slice(&crc32(payload).to_le_bytes());
        header.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        file.write_all(&header)?;
        file.write_all(payload)?;
        file.sync_data()?;
        drop(file);
        self.failpoints.hit_io(SNAPSHOT_WRITE)?;
        fs::rename(&tmp, self.dir.join(snapshot_name(epoch)))?;
        self.failpoints.hit_io(DIR_FSYNC)?;
        fsync_dir(&self.dir)?;
        Ok(self.prune())
    }

    /// Load the newest snapshot that validates, skipping (and reporting)
    /// corrupt ones. An unreadable snapshot file (I/O error on read) is
    /// skippable damage exactly like a checksum mismatch — the fallback
    /// snapshot exists for precisely this case, so recovery must not
    /// abort on it. `Ok(None)` means no snapshot file validates.
    pub fn load_newest(&self) -> Result<Option<LoadedSnapshot>, DurabilityError> {
        let mut skipped = Vec::new();
        for (epoch, path) in self.list()?.into_iter().rev() {
            let checked = match fs::read(&path) {
                Ok(bytes) => Self::validate(&bytes, epoch),
                Err(e) => Err(format!("unreadable: {e}")),
            };
            match checked {
                Ok(payload) => {
                    return Ok(Some(LoadedSnapshot {
                        epoch,
                        payload,
                        skipped,
                    }))
                }
                Err(why) => skipped.push((epoch, why)),
            }
        }
        Ok(None)
    }

    /// Epochs of the snapshots currently on disk (ascending; validity
    /// not checked).
    pub fn epochs(&self) -> Result<Vec<u64>, DurabilityError> {
        Ok(self.list()?.into_iter().map(|(e, _)| e).collect())
    }

    fn list(&self) -> Result<Vec<(u64, PathBuf)>, DurabilityError> {
        let mut out = Vec::new();
        if !self.dir.exists() {
            return Ok(out);
        }
        for entry in fs::read_dir(&self.dir)? {
            let path = entry?.path();
            if let Some(epoch) = segment_epoch(&path, "snap-", ".snap") {
                out.push((epoch, path));
            }
        }
        out.sort_unstable();
        Ok(out)
    }

    // Best-effort: called only after a publish durably landed, so no
    // failure in here may surface as an `Err` (see `publish`). A
    // snapshot that could not be deleted stays in `retained`.
    fn prune(&self) -> PublishOutcome {
        let mut out = PublishOutcome {
            retained: Vec::new(),
            prune_warnings: Vec::new(),
        };
        let snaps = match self.list() {
            Ok(snaps) => snaps,
            Err(e) => {
                out.prune_warnings
                    .push(format!("snapshot prune skipped (cannot list dir): {e}"));
                return out;
            }
        };
        let cut = snaps.len().saturating_sub(KEEP_SNAPSHOTS);
        for (i, (epoch, path)) in snaps.iter().enumerate() {
            if i < cut {
                if let Err(e) = fs::remove_file(path) {
                    out.prune_warnings
                        .push(format!("snapshot prune failed for epoch {epoch}: {e}"));
                    out.retained.push(*epoch);
                }
            } else {
                out.retained.push(*epoch);
            }
        }
        // Stray temp files from crashed publishes are garbage by
        // definition (the rename never happened).
        if let Ok(entries) = fs::read_dir(&self.dir) {
            for path in entries.flatten().map(|e| e.path()) {
                if path.extension().is_some_and(|e| e == "tmp") {
                    let _ = fs::remove_file(path);
                }
            }
        }
        out
    }

    fn validate(bytes: &[u8], name_epoch: u64) -> Result<Vec<u8>, String> {
        if bytes.len() < HEADER_LEN {
            return Err(format!("file too short ({} bytes)", bytes.len()));
        }
        if &bytes[..8] != MAGIC {
            return Err("bad magic".into());
        }
        if u32::from_le_bytes(bytes[8..12].try_into().unwrap()) != VERSION {
            return Err("unsupported version".into());
        }
        let epoch = u64::from_le_bytes(bytes[12..20].try_into().unwrap());
        if epoch != name_epoch {
            return Err(format!(
                "header epoch {epoch} does not match file name epoch {name_epoch}"
            ));
        }
        let crc = u32::from_le_bytes(bytes[20..24].try_into().unwrap());
        let len = u64::from_le_bytes(bytes[24..32].try_into().unwrap());
        if len != (bytes.len() - HEADER_LEN) as u64 {
            return Err(format!(
                "length mismatch: header says {len}, file carries {}",
                bytes.len() - HEADER_LEN
            ));
        }
        let payload = &bytes[HEADER_LEN..];
        if crc32(payload) != crc {
            return Err("checksum mismatch".into());
        }
        Ok(payload.to_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store(tag: &str) -> SnapshotStore {
        let dir = std::env::temp_dir().join(format!(
            "infine-snap-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_dir_all(&dir);
        SnapshotStore::new(dir, FailPoints::none())
    }

    #[test]
    fn publish_load_round_trip() {
        let s = store("roundtrip");
        s.publish(3, b"state-at-3").unwrap();
        let kept = s.publish(7, b"state-at-7").unwrap();
        assert_eq!(kept.retained, vec![3, 7]);
        assert!(kept.prune_warnings.is_empty());
        let loaded = s.load_newest().unwrap().unwrap();
        assert_eq!(loaded.epoch, 7);
        assert_eq!(loaded.payload, b"state-at-7");
        assert!(loaded.skipped.is_empty());
        fs::remove_dir_all(&s.dir).unwrap();
    }

    #[test]
    fn pruning_keeps_the_newest_two() {
        let s = store("prune");
        for e in [1, 2, 3, 4] {
            s.publish(e, format!("state-{e}").as_bytes()).unwrap();
        }
        assert_eq!(s.epochs().unwrap(), vec![3, 4]);
        fs::remove_dir_all(&s.dir).unwrap();
    }

    #[test]
    fn corrupt_newest_falls_back_to_previous() {
        let s = store("fallback");
        s.publish(1, b"good-old").unwrap();
        s.publish(2, b"good-new").unwrap();
        let newest = s.dir.join(snapshot_name(2));
        let mut bytes = fs::read(&newest).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        fs::write(&newest, &bytes).unwrap();
        let loaded = s.load_newest().unwrap().unwrap();
        assert_eq!(loaded.epoch, 1);
        assert_eq!(loaded.payload, b"good-old");
        assert_eq!(loaded.skipped.len(), 1);
        assert!(loaded.skipped[0].1.contains("checksum"));
        fs::remove_dir_all(&s.dir).unwrap();
    }

    #[test]
    fn bit_flips_anywhere_never_validate_silently() {
        let s = store("bitflip");
        s.publish(5, b"the snapshot payload").unwrap();
        let path = s.dir.join(snapshot_name(5));
        let pristine = fs::read(&path).unwrap();
        for i in 0..pristine.len() {
            let mut corrupt = pristine.clone();
            corrupt[i] ^= 0x10;
            fs::write(&path, &corrupt).unwrap();
            assert!(
                s.load_newest().unwrap().is_none(),
                "flip at byte {i} validated silently"
            );
        }
        fs::write(&path, &pristine).unwrap();
        assert!(s.load_newest().unwrap().is_some());
        fs::remove_dir_all(&s.dir).unwrap();
    }

    #[test]
    fn unreadable_newest_falls_back_to_previous() {
        let s = store("unreadable");
        s.publish(1, b"good-old").unwrap();
        s.publish(2, b"good-new").unwrap();
        // Make the newest snapshot unreadable without relying on
        // permissions (tests may run as root): replace the file with a
        // same-named directory so `fs::read` fails with EISDIR.
        let newest = s.dir.join(snapshot_name(2));
        fs::remove_file(&newest).unwrap();
        fs::create_dir(&newest).unwrap();
        let loaded = s.load_newest().unwrap().unwrap();
        assert_eq!(loaded.epoch, 1);
        assert_eq!(loaded.payload, b"good-old");
        assert_eq!(loaded.skipped.len(), 1);
        assert!(loaded.skipped[0].1.contains("unreadable"));
        fs::remove_dir_all(&s.dir).unwrap();
    }

    #[test]
    fn prune_failure_is_a_warning_not_an_error() {
        let s = store("prune-warn");
        s.publish(1, b"one").unwrap();
        // Turn the epoch-1 snapshot into a non-empty directory:
        // `fs::remove_file` on it fails, so the prune triggered by the
        // third publish cannot delete it — which must not fail the cut.
        let oldest = s.dir.join(snapshot_name(1));
        fs::remove_file(&oldest).unwrap();
        fs::create_dir(&oldest).unwrap();
        fs::write(oldest.join("pin"), b"x").unwrap();
        s.publish(2, b"two").unwrap();
        let out = s.publish(3, b"three").unwrap();
        assert_eq!(out.retained, vec![1, 2, 3]);
        assert_eq!(out.prune_warnings.len(), 1);
        assert!(out.prune_warnings[0].contains("epoch 1"));
        // The cut itself landed despite the prune failure.
        assert_eq!(s.load_newest().unwrap().unwrap().epoch, 3);
        fs::remove_dir_all(&s.dir).unwrap();
    }

    #[test]
    fn failpoint_leaves_no_published_snapshot() {
        let s = store("fp");
        s.publish(1, b"base").unwrap();
        let mut fp = FailPoints::none();
        fp.arm(SNAPSHOT_WRITE, 1);
        let s2 = SnapshotStore::new(s.dir.clone(), fp);
        let died = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            s2.publish(2, b"never-lands").unwrap()
        }));
        assert!(died.is_err());
        // The temp file exists, the published set is unchanged.
        let loaded = s.load_newest().unwrap().unwrap();
        assert_eq!(loaded.epoch, 1);
        // The next successful publish sweeps the stray temp file.
        s.publish(3, b"after-recovery").unwrap();
        let strays: Vec<_> = fs::read_dir(&s.dir)
            .unwrap()
            .filter(|e| {
                e.as_ref()
                    .unwrap()
                    .path()
                    .extension()
                    .is_some_and(|x| x == "tmp")
            })
            .collect();
        assert!(strays.is_empty());
        fs::remove_dir_all(&s.dir).unwrap();
    }
}
