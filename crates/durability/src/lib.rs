//! # infine-durability
//!
//! Crash-safe storage for the incremental maintenance service: a
//! write-ahead commitlog ([`wal`]), checksummed atomically-published
//! state snapshots ([`snapshot`]), the [`SnapshotPolicy`] deciding when
//! to cut one, and runtime [`FailPoints`] for kill-and-recover testing.
//!
//! The crate is storage only — it moves opaque byte payloads produced by
//! the service layer (`infine-incremental`), which owns the engine-state
//! and round encodings (built on `infine_relation::wire`). Recovery is:
//! load the newest valid snapshot, [`wal::scan`] the commitlog suffix
//! from its epoch, replay the salvaged rounds through the normal round
//! path. Both layers share one failure philosophy: arbitrary on-disk
//! corruption is *detected and reported*, never a panic and never
//! silently accepted (per-record and per-snapshot CRC-32, versioned
//! headers, contiguity checks, truncate-and-warn tails).

pub mod crc32;
pub mod failpoint;
pub mod policy;
pub mod snapshot;
pub mod wal;

pub use crc32::crc32;
pub use failpoint::{FailAction, FailPoints};
pub use policy::{RetryPolicy, SnapshotPolicy};
pub use snapshot::{LoadedSnapshot, PublishOutcome, SnapshotStore, KEEP_SNAPSHOTS};
pub use wal::{LogScan, Wal, WalRound};

use std::fmt;
use std::path::Path;

/// A durability-layer failure: I/O, or on-disk state too damaged to use.
#[derive(Debug)]
pub enum DurabilityError {
    /// Filesystem error.
    Io(std::io::Error),
    /// Persisted bytes failed validation in a way that has no fallback
    /// (e.g. a snapshot payload whose inner decoding fails after its
    /// checksum passed, or a spec mismatch at restore time).
    Corrupt(String),
    /// Recovery was requested but no snapshot validates.
    NoSnapshot,
}

impl fmt::Display for DurabilityError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DurabilityError::Io(e) => write!(f, "durability I/O error: {e}"),
            DurabilityError::Corrupt(msg) => write!(f, "durable state corrupt: {msg}"),
            DurabilityError::NoSnapshot => write!(f, "no valid snapshot to recover from"),
        }
    }
}

impl DurabilityError {
    /// Is this failure worth retrying? Only I/O blips that plausibly
    /// clear on their own qualify: `Interrupted` (EINTR — also the
    /// injected-transient stand-in), `WouldBlock`, and `TimedOut`.
    /// Corruption, validation failures, and every other I/O kind are
    /// fatal — retrying them cannot help and would mask real damage.
    pub fn is_transient(&self) -> bool {
        use std::io::ErrorKind;
        match self {
            DurabilityError::Io(e) => matches!(
                e.kind(),
                ErrorKind::Interrupted | ErrorKind::WouldBlock | ErrorKind::TimedOut
            ),
            DurabilityError::Corrupt(_) | DurabilityError::NoSnapshot => false,
        }
    }
}

impl std::error::Error for DurabilityError {}

impl From<std::io::Error> for DurabilityError {
    fn from(e: std::io::Error) -> Self {
        DurabilityError::Io(e)
    }
}

/// Fsync a directory so a just-renamed or just-created entry survives a
/// power cut. File-content `sync_data` alone does not make the *name*
/// durable: the rename/create lives in the directory inode, and losing
/// it while WAL segments pruned below a new snapshot survive would
/// strand recovery on an older snapshot with a missing log suffix.
fn fsync_dir(dir: &Path) -> std::io::Result<()> {
    std::fs::File::open(dir)?.sync_all()
}

/// Parse the epoch out of a `<prefix><epoch-digits><suffix>` file name;
/// `None` for anything else (shared by the WAL and snapshot stores).
fn segment_epoch(path: &Path, prefix: &str, suffix: &str) -> Option<u64> {
    let name = path.file_name()?.to_str()?;
    let digits = name.strip_prefix(prefix)?.strip_suffix(suffix)?;
    if digits.is_empty() || !digits.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    digits.parse().ok()
}
