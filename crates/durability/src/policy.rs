//! When to cut a snapshot and truncate the commitlog.

/// Snapshot cadence for a durable service. Both triggers are optional
/// and OR-ed; [`SnapshotPolicy::never`] (the default) means snapshots
/// happen only on an explicit `Request::Snapshot`.
///
/// Due-ness is a pure function of counters the recovery path recomputes
/// deterministically from the log itself (rounds and encoded bytes since
/// the last snapshot), so a crashed run and its replay agree on where
/// snapshots — and the vacuums they imply — happen.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SnapshotPolicy {
    /// Snapshot after this many rounds since the last snapshot.
    pub every_rounds: Option<u64>,
    /// Snapshot once this many WAL bytes accumulate since the last one.
    pub max_wal_bytes: Option<u64>,
}

impl SnapshotPolicy {
    /// Only explicit snapshot requests.
    pub fn never() -> SnapshotPolicy {
        SnapshotPolicy::default()
    }

    /// Snapshot every `n` rounds (n = 0 is clamped to 1).
    pub fn every_rounds(n: u64) -> SnapshotPolicy {
        SnapshotPolicy {
            every_rounds: Some(n.max(1)),
            max_wal_bytes: None,
        }
    }

    /// Snapshot when the log grows past `bytes` since the last snapshot.
    pub fn max_wal_bytes(bytes: u64) -> SnapshotPolicy {
        SnapshotPolicy {
            every_rounds: None,
            max_wal_bytes: Some(bytes),
        }
    }

    /// Combine with a byte bound.
    pub fn or_max_wal_bytes(mut self, bytes: u64) -> SnapshotPolicy {
        self.max_wal_bytes = Some(bytes);
        self
    }

    /// Is a snapshot due, given rounds and WAL bytes accumulated since
    /// the last snapshot?
    pub fn due(&self, rounds_since: u64, bytes_since: u64) -> bool {
        self.every_rounds.is_some_and(|n| rounds_since >= n)
            || self.max_wal_bytes.is_some_and(|b| bytes_since >= b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn never_is_never_due() {
        assert!(!SnapshotPolicy::never().due(1_000_000, u64::MAX));
    }

    #[test]
    fn round_trigger() {
        let p = SnapshotPolicy::every_rounds(5);
        assert!(!p.due(4, u64::MAX - 1));
        assert!(p.due(5, 0));
    }

    #[test]
    fn byte_trigger_ors_in() {
        let p = SnapshotPolicy::every_rounds(5).or_max_wal_bytes(1024);
        assert!(p.due(0, 1024));
        assert!(p.due(5, 0));
        assert!(!p.due(4, 1023));
    }
}
