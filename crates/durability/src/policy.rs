//! When to cut a snapshot and truncate the commitlog, and how to retry
//! transient durability faults.

use std::time::Duration;

use crate::DurabilityError;

/// Snapshot cadence for a durable service. Both triggers are optional
/// and OR-ed; [`SnapshotPolicy::never`] (the default) means snapshots
/// happen only on an explicit `Request::Snapshot`.
///
/// Due-ness is a pure function of counters the recovery path recomputes
/// deterministically from the log itself (rounds and encoded bytes since
/// the last snapshot), so a crashed run and its replay agree on where
/// snapshots — and the vacuums they imply — happen.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SnapshotPolicy {
    /// Snapshot after this many rounds since the last snapshot.
    pub every_rounds: Option<u64>,
    /// Snapshot once this many WAL bytes accumulate since the last one.
    pub max_wal_bytes: Option<u64>,
}

impl SnapshotPolicy {
    /// Only explicit snapshot requests.
    pub fn never() -> SnapshotPolicy {
        SnapshotPolicy::default()
    }

    /// Snapshot every `n` rounds (n = 0 is clamped to 1).
    pub fn every_rounds(n: u64) -> SnapshotPolicy {
        SnapshotPolicy {
            every_rounds: Some(n.max(1)),
            max_wal_bytes: None,
        }
    }

    /// Snapshot when the log grows past `bytes` since the last snapshot.
    pub fn max_wal_bytes(bytes: u64) -> SnapshotPolicy {
        SnapshotPolicy {
            every_rounds: None,
            max_wal_bytes: Some(bytes),
        }
    }

    /// Combine with a byte bound.
    pub fn or_max_wal_bytes(mut self, bytes: u64) -> SnapshotPolicy {
        self.max_wal_bytes = Some(bytes);
        self
    }

    /// Is a snapshot due, given rounds and WAL bytes accumulated since
    /// the last snapshot?
    pub fn due(&self, rounds_since: u64, bytes_since: u64) -> bool {
        self.every_rounds.is_some_and(|n| rounds_since >= n)
            || self.max_wal_bytes.is_some_and(|b| bytes_since >= b)
    }
}

/// Bounded retry with exponential backoff and deterministic jitter for
/// transient durability faults (see [`DurabilityError::is_transient`]).
///
/// Jitter is a pure function of `(jitter_seed, attempt)` — no system
/// randomness — so a soak run and its diagnosis replay sleep the exact
/// same schedule. Each backoff lands in `[base/2, base)` of the capped
/// exponential step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts including the first (1 = never retry).
    pub max_attempts: u32,
    /// Backoff before the first retry; doubles per retry.
    pub base_backoff: Duration,
    /// Cap on any single backoff.
    pub max_backoff: Duration,
    /// Seed for the deterministic jitter stream.
    pub jitter_seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy::attempts(4)
    }
}

impl RetryPolicy {
    /// Fail on the first error, transient or not.
    pub fn none() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 1,
            base_backoff: Duration::ZERO,
            max_backoff: Duration::ZERO,
            jitter_seed: 0,
        }
    }

    /// `n` total attempts (clamped to ≥ 1) with millisecond-scale
    /// backoff suited to EINTR/slow-sync blips: 2ms base, 50ms cap.
    pub fn attempts(n: u32) -> RetryPolicy {
        RetryPolicy {
            max_attempts: n.max(1),
            base_backoff: Duration::from_millis(2),
            max_backoff: Duration::from_millis(50),
            jitter_seed: 0x1AF1_AE00,
        }
    }

    /// Override the jitter seed (soaks derive it from their case seed).
    pub fn seeded(mut self, seed: u64) -> RetryPolicy {
        self.jitter_seed = seed;
        self
    }

    /// The backoff to sleep before retry number `attempt` (1-based).
    pub fn backoff(&self, attempt: u32) -> Duration {
        let doublings = attempt.saturating_sub(1).min(16);
        let step = self
            .base_backoff
            .saturating_mul(1u32 << doublings)
            .min(self.max_backoff)
            .max(self.base_backoff.min(self.max_backoff));
        // splitmix64 of (seed ^ attempt) → fraction in [1/2, 1).
        let frac = splitmix64(self.jitter_seed ^ u64::from(attempt)) % 512;
        step / 2 + step.mul_f64(frac as f64 / 1024.0)
    }

    /// Run `op`, retrying transient failures up to the attempt budget
    /// with jittered backoff. `on_retry(attempt, err)` fires before each
    /// sleep (attempt = the 1-based attempt that just failed) so callers
    /// can count injected-vs-real retries. Fatal errors and the final
    /// exhausted attempt return immediately.
    pub fn run<T>(
        &self,
        mut op: impl FnMut() -> Result<T, DurabilityError>,
        mut on_retry: impl FnMut(u32, &DurabilityError),
    ) -> Result<T, DurabilityError> {
        let mut attempt = 1;
        loop {
            match op() {
                Ok(v) => return Ok(v),
                Err(e) if attempt < self.max_attempts && e.is_transient() => {
                    on_retry(attempt, &e);
                    std::thread::sleep(self.backoff(attempt));
                    attempt += 1;
                }
                Err(e) => return Err(e),
            }
        }
    }
}

fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn never_is_never_due() {
        assert!(!SnapshotPolicy::never().due(1_000_000, u64::MAX));
    }

    #[test]
    fn round_trigger() {
        let p = SnapshotPolicy::every_rounds(5);
        assert!(!p.due(4, u64::MAX - 1));
        assert!(p.due(5, 0));
    }

    #[test]
    fn byte_trigger_ors_in() {
        let p = SnapshotPolicy::every_rounds(5).or_max_wal_bytes(1024);
        assert!(p.due(0, 1024));
        assert!(p.due(5, 0));
        assert!(!p.due(4, 1023));
    }

    fn transient() -> DurabilityError {
        DurabilityError::Io(std::io::Error::new(std::io::ErrorKind::Interrupted, "blip"))
    }

    fn fatal() -> DurabilityError {
        DurabilityError::Corrupt("bad".into())
    }

    #[test]
    fn retry_absorbs_transient_failures_within_budget() {
        let p = RetryPolicy {
            base_backoff: Duration::ZERO,
            max_backoff: Duration::ZERO,
            ..RetryPolicy::attempts(3)
        };
        let mut calls = 0;
        let mut retries = 0;
        let out = p.run(
            || {
                calls += 1;
                if calls < 3 {
                    Err(transient())
                } else {
                    Ok(calls)
                }
            },
            |_, _| retries += 1,
        );
        assert_eq!(out.unwrap(), 3);
        assert_eq!(retries, 2);
    }

    #[test]
    fn retry_exhaustion_and_fatal_errors_pass_through() {
        let p = RetryPolicy {
            base_backoff: Duration::ZERO,
            max_backoff: Duration::ZERO,
            ..RetryPolicy::attempts(2)
        };
        let mut calls = 0;
        let out: Result<(), _> = p.run(
            || {
                calls += 1;
                Err(transient())
            },
            |_, _| {},
        );
        assert!(out.is_err());
        assert_eq!(calls, 2);

        calls = 0;
        let out: Result<(), _> = p.run(
            || {
                calls += 1;
                Err(fatal())
            },
            |_, _| {},
        );
        assert!(out.is_err());
        assert_eq!(calls, 1, "fatal errors must not be retried");
    }

    #[test]
    fn backoff_is_deterministic_bounded_and_grows() {
        let p = RetryPolicy::attempts(8);
        for attempt in 1..=8 {
            assert_eq!(p.backoff(attempt), p.backoff(attempt));
            assert!(p.backoff(attempt) < p.max_backoff);
        }
        assert!(p.backoff(6) > p.backoff(1));
        let other = RetryPolicy::attempts(8).seeded(99);
        assert_ne!(
            (1..=8).map(|a| p.backoff(a)).collect::<Vec<_>>(),
            (1..=8).map(|a| other.backoff(a)).collect::<Vec<_>>(),
            "jitter must depend on the seed"
        );
    }
}
