//! Write-ahead commitlog segments.
//!
//! One segment per snapshot epoch: `wal-<epoch>.log` holds every round
//! ingested *after* the snapshot cut at `epoch` (round indexes
//! `epoch+1 ..`). Appends are flushed (`sync_data`) before the round runs
//! in the engine, so any round the caller observed as accepted is
//! recoverable. Cutting a snapshot rotates to a fresh segment and prunes
//! segments older than the oldest retained snapshot.
//!
//! ## Segment format
//!
//! ```text
//! header : magic "INFWAL01" (8) | version u32 | epoch u64
//! record : len u32 | crc32 u32 | payload (len bytes)
//! payload: tag u8 (1 = round, 2 = clean-shutdown) | body
//! round  : round_index u64 | opaque round bytes
//! ```
//!
//! All integers little-endian; the CRC covers the payload only. A torn or
//! corrupted record — short file, bad CRC, unknown tag, non-contiguous
//! round index — ends the scan at that point: everything before it is
//! replayed, everything after is discarded with a warning, and nothing
//! panics ([`scan`] is total over arbitrary bytes).

use crate::crc32::crc32;
use crate::failpoint::{FailPoints, DIR_FSYNC, WAL_APPEND, WAL_APPEND_TORN};
use crate::{fsync_dir, segment_epoch, DurabilityError};
use std::fs;
use std::io::{Read, Write};
use std::path::{Path, PathBuf};

const MAGIC: &[u8; 8] = b"INFWAL01";
const VERSION: u32 = 1;
const HEADER_LEN: usize = 8 + 4 + 8;

const TAG_ROUND: u8 = 1;
const TAG_CLEAN_SHUTDOWN: u8 = 2;

/// Name of the segment file for a snapshot epoch (zero-padded so
/// lexicographic directory order is numeric order).
pub fn segment_name(epoch: u64) -> String {
    format!("wal-{epoch:020}.log")
}

/// An open, appendable commitlog segment.
#[derive(Debug)]
pub struct Wal {
    dir: PathBuf,
    file: fs::File,
    epoch: u64,
    segment_bytes: u64,
    failpoints: FailPoints,
}

impl Wal {
    /// Create (truncating) the segment for `epoch` under `dir`. Called
    /// right after the snapshot at `epoch` is published: any previous
    /// content of this segment is either inside that snapshot or
    /// abandoned garbage.
    pub fn create(
        dir: impl Into<PathBuf>,
        epoch: u64,
        failpoints: FailPoints,
    ) -> Result<Wal, DurabilityError> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        let path = dir.join(segment_name(epoch));
        let mut file = fs::File::create(&path)?;
        let mut header = Vec::with_capacity(HEADER_LEN);
        header.extend_from_slice(MAGIC);
        header.extend_from_slice(&VERSION.to_le_bytes());
        header.extend_from_slice(&epoch.to_le_bytes());
        file.write_all(&header)?;
        file.sync_data()?;
        // The new segment's *name* lives in the directory inode; without
        // this fsync a crash could lose the file while a snapshot-side
        // prune of older segments survives.
        failpoints.hit_io(DIR_FSYNC)?;
        fsync_dir(&dir)?;
        Ok(Wal {
            dir,
            file,
            epoch,
            segment_bytes: 0,
            failpoints,
        })
    }

    /// Epoch of the open segment.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Record bytes appended to the open segment (header excluded) —
    /// the counter [`SnapshotPolicy::due`](crate::SnapshotPolicy::due)
    /// consumes, and exactly what a deterministic replay recomputes.
    pub fn segment_bytes(&self) -> u64 {
        self.segment_bytes
    }

    /// Size in bytes of the record a `payload`-byte round would append
    /// (for replay to recompute byte counters without touching disk).
    pub fn round_record_len(round_bytes: usize) -> u64 {
        // len + crc + tag + round_index + body
        (4 + 4 + 1 + 8 + round_bytes) as u64
    }

    /// Append one round record and flush it to disk. Returns the bytes
    /// appended. Failpoints: [`WAL_APPEND`] crashes, errors, or stalls
    /// before any byte is written; [`WAL_APPEND_TORN`] crashes after a
    /// strict prefix of the record is written and synced (a real torn
    /// write).
    ///
    /// On a write or sync error the staged tail is rolled back
    /// (truncated to the last good record) before the error is returned,
    /// so a retried append starts from a clean end-of-log instead of
    /// stacking a duplicate record behind a partial one.
    pub fn append_round(&mut self, round_index: u64, body: &[u8]) -> Result<u64, DurabilityError> {
        self.failpoints.hit_io(WAL_APPEND)?;
        let mut payload = Vec::with_capacity(1 + 8 + body.len());
        payload.push(TAG_ROUND);
        payload.extend_from_slice(&round_index.to_le_bytes());
        payload.extend_from_slice(body);
        let record = Self::frame(&payload);
        if self.failpoints.will_fire(WAL_APPEND_TORN) {
            // Land a strict prefix on disk, then die: the scanner must
            // see exactly what a mid-write power cut leaves behind.
            let torn = record.len() / 2;
            self.file.write_all(&record[..torn])?;
            self.file.sync_data()?;
        }
        self.failpoints.hit(WAL_APPEND_TORN);
        let write = (|| {
            self.file.write_all(&record)?;
            self.file.sync_data()
        })();
        if let Err(e) = write {
            self.rollback_tail();
            return Err(e.into());
        }
        self.segment_bytes += record.len() as u64;
        Ok(record.len() as u64)
    }

    // Truncate any partially-written bytes past the last good record and
    // restore the append cursor, best-effort: if this also fails, the
    // torn tail stays — which the scanner already handles (truncate and
    // warn), so the log is no worse off than after a crash.
    fn rollback_tail(&mut self) {
        use std::io::{Seek, SeekFrom};
        let good = HEADER_LEN as u64 + self.segment_bytes;
        let _ = self.file.set_len(good);
        let _ = self.file.seek(SeekFrom::Start(good));
    }

    /// Append the clean-shutdown marker and flush. The next [`scan`]
    /// reports `clean_shutdown` and recovery can skip tail suspicion.
    pub fn mark_clean_shutdown(&mut self) -> Result<(), DurabilityError> {
        let record = Self::frame(&[TAG_CLEAN_SHUTDOWN]);
        self.file.write_all(&record)?;
        self.file.sync_data()?;
        self.segment_bytes += record.len() as u64;
        Ok(())
    }

    /// Switch to a fresh segment for `new_epoch` (after its snapshot is
    /// published) and delete segments older than `retain_from` — the
    /// epoch of the oldest snapshot still retained, whose replay suffix
    /// must stay intact.
    pub fn rotate(&mut self, new_epoch: u64, retain_from: u64) -> Result<(), DurabilityError> {
        let next = Wal::create(self.dir.clone(), new_epoch, self.failpoints.clone())?;
        *self = next;
        prune_segments(&self.dir, retain_from)?;
        Ok(())
    }

    fn frame(payload: &[u8]) -> Vec<u8> {
        let mut record = Vec::with_capacity(8 + payload.len());
        record.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        record.extend_from_slice(&crc32(payload).to_le_bytes());
        record.extend_from_slice(payload);
        record
    }
}

/// Delete segment files with an epoch below `retain_from`.
pub fn prune_segments(dir: &Path, retain_from: u64) -> Result<(), DurabilityError> {
    for (epoch, path) in list_segments(dir)? {
        if epoch < retain_from {
            fs::remove_file(path)?;
        }
    }
    Ok(())
}

fn list_segments(dir: &Path) -> Result<Vec<(u64, PathBuf)>, DurabilityError> {
    let mut out = Vec::new();
    for entry in fs::read_dir(dir)? {
        let path = entry?.path();
        if let Some(epoch) = segment_epoch(&path, "wal-", ".log") {
            out.push((epoch, path));
        }
    }
    out.sort_unstable();
    Ok(out)
}

/// One replayable round salvaged from the log.
#[derive(Debug)]
pub struct WalRound {
    /// The round's index in the service's logical stream (1-based).
    pub round_index: u64,
    /// The opaque round body handed to
    /// [`Wal::append_round`] (decoded by the service layer).
    pub body: Vec<u8>,
}

/// Everything a scan salvaged from the segments at or after an epoch.
#[derive(Debug, Default)]
pub struct LogScan {
    /// Salvaged rounds in append order (contiguous round indexes).
    pub rounds: Vec<WalRound>,
    /// True iff the log ends in an intact clean-shutdown marker.
    pub clean_shutdown: bool,
    /// Human-readable description of a torn/corrupt tail, if the scan
    /// stopped early. Everything in `rounds` precedes the damage.
    pub warning: Option<String>,
}

/// Scan the commitlog suffix starting at the segment for `from_epoch`
/// (the epoch of the snapshot being recovered). Total over arbitrary
/// bytes: damage is reported via [`LogScan::warning`], never a panic,
/// and everything before the damage is returned.
pub fn scan(dir: &Path, from_epoch: u64) -> Result<LogScan, DurabilityError> {
    let segments: Vec<(u64, PathBuf)> = list_segments(dir)?
        .into_iter()
        .filter(|&(e, _)| e >= from_epoch)
        .collect();
    let mut out = LogScan::default();
    let mut next_round = from_epoch + 1;
    let mut expected_epoch = from_epoch;
    for (i, (epoch, path)) in segments.iter().enumerate() {
        let last = i + 1 == segments.len();
        if *epoch != expected_epoch {
            out.warning = Some(format!(
                "commitlog gap: expected segment epoch {expected_epoch}, found {epoch}; \
                 discarding {} later segment(s)",
                segments.len() - i
            ));
            out.clean_shutdown = false;
            return Ok(out);
        }
        let mut bytes = Vec::new();
        fs::File::open(path)?.read_to_end(&mut bytes)?;
        match scan_segment(&bytes, *epoch, &mut next_round, &mut out) {
            SegmentEnd::Clean => {
                // A marker mid-chain (not in the newest segment) means
                // the shutdown predates later segments; only the final
                // segment's verdict stands.
                out.clean_shutdown = last;
            }
            SegmentEnd::Eof => out.clean_shutdown = false,
            SegmentEnd::Damaged(msg) => {
                out.warning = Some(if last {
                    format!("{}: {msg}", path.display())
                } else {
                    format!(
                        "{}: {msg}; discarding {} later segment(s)",
                        path.display(),
                        segments.len() - i - 1
                    )
                });
                out.clean_shutdown = false;
                return Ok(out);
            }
        }
        expected_epoch = next_round - 1;
    }
    Ok(out)
}

enum SegmentEnd {
    /// Ended with an intact clean-shutdown marker.
    Clean,
    /// Ended at end-of-file after a complete record.
    Eof,
    /// Ended at a torn or corrupt record.
    Damaged(String),
}

fn scan_segment(bytes: &[u8], epoch: u64, next_round: &mut u64, out: &mut LogScan) -> SegmentEnd {
    if bytes.len() < HEADER_LEN
        || &bytes[..8] != MAGIC
        || u32::from_le_bytes(bytes[8..12].try_into().unwrap()) != VERSION
    {
        return SegmentEnd::Damaged("bad segment header".into());
    }
    let header_epoch = u64::from_le_bytes(bytes[12..HEADER_LEN].try_into().unwrap());
    if header_epoch != epoch {
        return SegmentEnd::Damaged(format!(
            "segment header epoch {header_epoch} does not match file name epoch {epoch}"
        ));
    }
    let mut pos = HEADER_LEN;
    let mut end = SegmentEnd::Eof;
    while pos < bytes.len() {
        if bytes.len() - pos < 8 {
            return SegmentEnd::Damaged(format!("torn record frame at offset {pos}"));
        }
        let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().unwrap()) as usize;
        let crc = u32::from_le_bytes(bytes[pos + 4..pos + 8].try_into().unwrap());
        if bytes.len() - pos - 8 < len {
            return SegmentEnd::Damaged(format!("torn record payload at offset {pos}"));
        }
        let payload = &bytes[pos + 8..pos + 8 + len];
        if crc32(payload) != crc {
            return SegmentEnd::Damaged(format!("checksum mismatch at offset {pos}"));
        }
        match payload.first() {
            Some(&TAG_ROUND) if len >= 9 => {
                let round_index = u64::from_le_bytes(payload[1..9].try_into().unwrap());
                if round_index != *next_round {
                    return SegmentEnd::Damaged(format!(
                        "non-contiguous round index {round_index} (expected {next_round}) at offset {pos}"
                    ));
                }
                out.rounds.push(WalRound {
                    round_index,
                    body: payload[9..].to_vec(),
                });
                *next_round += 1;
                end = SegmentEnd::Eof;
            }
            Some(&TAG_CLEAN_SHUTDOWN) if len == 1 => {
                end = SegmentEnd::Clean;
            }
            _ => {
                return SegmentEnd::Damaged(format!("malformed record payload at offset {pos}"));
            }
        }
        pos += 8 + len;
    }
    end
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "infine-wal-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn append_scan_round_trip() {
        let dir = tmpdir("roundtrip");
        let mut wal = Wal::create(&dir, 0, FailPoints::none()).unwrap();
        let b1 = wal.append_round(1, b"round-one").unwrap();
        assert_eq!(b1, Wal::round_record_len(b"round-one".len()));
        wal.append_round(2, b"round-two").unwrap();
        wal.mark_clean_shutdown().unwrap();

        let log = scan(&dir, 0).unwrap();
        assert!(log.warning.is_none());
        assert!(log.clean_shutdown);
        assert_eq!(log.rounds.len(), 2);
        assert_eq!(log.rounds[0].round_index, 1);
        assert_eq!(log.rounds[0].body, b"round-one");
        assert_eq!(log.rounds[1].body, b"round-two");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn unclean_log_has_no_marker() {
        let dir = tmpdir("unclean");
        let mut wal = Wal::create(&dir, 0, FailPoints::none()).unwrap();
        wal.append_round(1, b"x").unwrap();
        let log = scan(&dir, 0).unwrap();
        assert!(!log.clean_shutdown);
        assert!(log.warning.is_none());
        assert_eq!(log.rounds.len(), 1);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn rotation_spans_segments_and_prunes() {
        let dir = tmpdir("rotate");
        let mut wal = Wal::create(&dir, 0, FailPoints::none()).unwrap();
        wal.append_round(1, b"a").unwrap();
        wal.append_round(2, b"b").unwrap();
        wal.rotate(2, 0).unwrap();
        assert_eq!(wal.segment_bytes(), 0);
        wal.append_round(3, b"c").unwrap();

        // From epoch 0: all three rounds, across two segments.
        let log = scan(&dir, 0).unwrap();
        assert_eq!(
            log.rounds.iter().map(|r| r.round_index).collect::<Vec<_>>(),
            vec![1, 2, 3]
        );
        // From epoch 2: only the suffix.
        let log = scan(&dir, 2).unwrap();
        assert_eq!(log.rounds.len(), 1);
        assert_eq!(log.rounds[0].round_index, 3);

        // Prune below epoch 2: the old segment disappears.
        wal.rotate(3, 2).unwrap();
        assert!(!dir.join(segment_name(0)).exists());
        assert!(dir.join(segment_name(2)).exists());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tail_is_truncated_with_warning() {
        let dir = tmpdir("torn");
        let mut wal = Wal::create(&dir, 0, FailPoints::none()).unwrap();
        wal.append_round(1, b"keep-me").unwrap();
        wal.append_round(2, b"lose-me").unwrap();
        let path = dir.join(segment_name(0));
        let bytes = fs::read(&path).unwrap();
        // Chop mid-way through the second record.
        fs::write(&path, &bytes[..bytes.len() - 3]).unwrap();
        let log = scan(&dir, 0).unwrap();
        assert_eq!(log.rounds.len(), 1);
        assert_eq!(log.rounds[0].body, b"keep-me");
        assert!(log.warning.unwrap().contains("torn"));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn every_bit_flip_is_detected_or_harmless() {
        let dir = tmpdir("bitflip");
        let mut wal = Wal::create(&dir, 0, FailPoints::none()).unwrap();
        wal.append_round(1, b"alpha").unwrap();
        wal.append_round(2, b"beta").unwrap();
        wal.mark_clean_shutdown().unwrap();
        let path = dir.join(segment_name(0));
        let pristine = fs::read(&path).unwrap();
        let reference = scan(&dir, 0).unwrap();
        for i in 0..pristine.len() {
            let mut corrupt = pristine.clone();
            corrupt[i] ^= 0x01;
            fs::write(&path, &corrupt).unwrap();
            // Total over arbitrary bytes: no panic, and either the
            // damage is flagged or the scan is (vacuously) unchanged.
            let log = scan(&dir, 0).unwrap();
            assert!(
                log.warning.is_some()
                    || log.rounds.len() < reference.rounds.len()
                    || !log.clean_shutdown
                    || (log.rounds.len() == reference.rounds.len()
                        && log
                            .rounds
                            .iter()
                            .zip(&reference.rounds)
                            .all(|(a, b)| { a.round_index == b.round_index && a.body == b.body })),
                "flip at byte {i} silently altered the scan"
            );
        }
        fs::write(&path, &pristine).unwrap();
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_failpoint_leaves_a_salvageable_prefix() {
        let dir = tmpdir("fp-torn");
        let mut fp = FailPoints::none();
        // Second hit fires: round 1 lands whole, round 2 is torn.
        fp.arm(WAL_APPEND_TORN, 2);
        let mut wal = Wal::create(&dir, 0, fp).unwrap();
        wal.append_round(1, b"good").unwrap();
        let died = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            wal.append_round(2, b"torn-me").unwrap()
        }));
        assert!(died.is_err());
        let log = scan(&dir, 0).unwrap();
        assert_eq!(log.rounds.len(), 1);
        assert!(log.warning.unwrap().contains("torn"));
        fs::remove_dir_all(&dir).unwrap();
    }
}
