//! # infine-exec
//!
//! A scoped, work-stealing fork-join pool for the discovery pipeline's
//! embarrassingly parallel loops — hand-rolled on `std::thread` because
//! the build environment is offline (no rayon).
//!
//! Design:
//!
//! * **Scoped**: every [`par_map`] / [`par_map_with`] call spawns its
//!   workers inside a [`std::thread::scope`], so borrowed inputs
//!   (`&Relation`, `&PliCache` internals) flow in without `'static`
//!   bounds and all workers are joined before the call returns.
//! * **Work-stealing**: item indices are dealt to per-worker deques in
//!   contiguous chunks; a worker drains its own deque from the front
//!   (preserving chunk locality) and, when empty, steals *half the
//!   remaining range* off the back of the first non-empty victim — one
//!   handoff then feeds many tasks locally, so steal traffic (and victim
//!   lock contention) is logarithmic in the imbalance instead of linear
//!   in the task count. Coarse tasks (a partition product, a base-table
//!   mine, an FD revalidation) make a mutex-guarded deque entirely
//!   adequate — contention is one lock op per task.
//! * **Deterministic output**: results are written back by item index, so
//!   the returned `Vec` is ordered exactly as the input regardless of
//!   which worker ran what. Callers get byte-identical results to the
//!   sequential path as long as each task is a pure function of its item.
//! * **Nesting-safe**: a task that itself calls `par_map` runs the inner
//!   call inline (a thread-local marks pool workers), so parallel step-1
//!   base mining does not multiply threads with the per-level parallelism
//!   inside each miner.
//!
//! Thread count: `INFINE_THREADS` env var when set, else
//! [`std::thread::available_parallelism`]; [`set_parallelism`] overrides
//! both at runtime (used by the sequential-vs-parallel equivalence
//! tests). With one thread every entry point degrades to an inline loop —
//! no threads are spawned at all.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Pool counters, resolved against the caller's ambient `infine-obs`
/// registry once per parallel entry point (never per item).
struct PoolMetrics {
    tasks: infine_obs::Counter,
    steals: infine_obs::Counter,
    inline: infine_obs::Counter,
}

impl PoolMetrics {
    fn resolve() -> Self {
        infine_obs::with_current(|r| Self {
            tasks: r.counter(
                "infine_exec_tasks_total",
                "Items executed on pool worker threads.",
                &[],
            ),
            steals: r.counter(
                "infine_exec_steals_total",
                "Half-range steals between pool workers.",
                &[],
            ),
            inline: r.counter(
                "infine_exec_inline_tasks_total",
                "Items executed inline (single worker, tiny input, or nested call).",
                &[],
            ),
        })
    }
}

/// Runtime override for the worker count (0 = not set).
static PARALLELISM_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// True while the current thread is a pool worker (nested calls run
    /// inline instead of spawning a second tier of threads).
    static IN_POOL: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

/// The number of worker threads parallel entry points will use.
///
/// Resolution order: [`set_parallelism`] override, `INFINE_THREADS` env
/// var, [`std::thread::available_parallelism`] (1 if unavailable).
pub fn parallelism() -> usize {
    let o = PARALLELISM_OVERRIDE.load(Ordering::Relaxed);
    if o > 0 {
        return o;
    }
    if let Ok(s) = std::env::var("INFINE_THREADS") {
        if let Ok(n) = s.trim().parse::<usize>() {
            return n.max(1);
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Override the worker count process-wide (1 forces the sequential path;
/// 0 clears the override). Intended for tests and benches.
pub fn set_parallelism(n: usize) {
    PARALLELISM_OVERRIDE.store(n, Ordering::Relaxed);
}

/// Is the current thread already running inside a pool worker?
pub fn in_worker() -> bool {
    IN_POOL.with(|f| f.get())
}

/// True when a parallel entry point called *now* would run inline: the
/// pool has a single worker, or the caller is itself a pool worker.
/// Optimization hints (batch prefetches, hoisted fan-outs) should no-op
/// in this state rather than pay their batching overhead for nothing.
pub fn sequential() -> bool {
    in_worker() || parallelism() <= 1
}

/// Parallel indexed map with per-worker state: `init` runs once per
/// worker (scratch buffers), `f` once per item. Results come back in
/// input order. Falls back to an inline loop when the pool would have a
/// single worker, the input is tiny, or the caller is itself a pool
/// worker.
pub fn par_map_with<T, S, R, I, F>(items: &[T], init: I, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, usize, &T) -> R + Sync,
{
    let workers = parallelism().min(items.len());
    if workers <= 1 || in_worker() {
        if !items.is_empty() {
            PoolMetrics::resolve().inline.add(items.len() as u64);
        }
        let mut state = init();
        return items
            .iter()
            .enumerate()
            .map(|(i, t)| f(&mut state, i, t))
            .collect();
    }
    let metrics = PoolMetrics::resolve();
    // Pool workers are fresh scoped threads: carry the caller's ambient
    // registry scope across so worker-side observations (kernel checks,
    // cache hits) land in the caller's engine scope, not the default.
    let obs_ctx = infine_obs::ThreadContext::capture();

    // Deal contiguous index chunks to per-worker deques.
    let n = items.len();
    let chunk = n.div_ceil(workers);
    let deques: Vec<Mutex<VecDeque<usize>>> = (0..workers)
        .map(|w| {
            let lo = w * chunk;
            let hi = ((w + 1) * chunk).min(n);
            Mutex::new((lo..hi).collect())
        })
        .collect();

    let mut slots: Vec<Option<R>> = Vec::with_capacity(n);
    slots.resize_with(n, || None);
    let mut partials: Vec<Vec<(usize, R)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                let deques = &deques;
                let f = &f;
                let init = &init;
                let metrics = &metrics;
                let obs_ctx = &obs_ctx;
                scope.spawn(move || {
                    IN_POOL.with(|flag| flag.set(true));
                    let _obs_scope = obs_ctx.install();
                    let mut steals = 0u64;
                    let mut state = init();
                    let mut out: Vec<(usize, R)> = Vec::new();
                    loop {
                        // Own work first (front: chunk order), then steal
                        // half the remaining range off the back of the
                        // first non-empty victim: run the stolen range's
                        // first index now, queue the rest locally. The
                        // victim's lock is released before the thief's own
                        // deque is touched, so no worker ever holds two
                        // locks (no lock-order deadlock between mutual
                        // thieves).
                        let job = deques[w].lock().expect("pool poisoned").pop_front();
                        let job = job.or_else(|| {
                            (1..workers).find_map(|d| {
                                let mut stolen = {
                                    let mut victim =
                                        deques[(w + d) % workers].lock().expect("pool poisoned");
                                    let len = victim.len();
                                    if len == 0 {
                                        return None;
                                    }
                                    // Back half (rounded up), ascending
                                    // order preserved — the victim keeps
                                    // the front of its chunk, the thief
                                    // continues the back.
                                    victim.split_off(len - len.div_ceil(2))
                                };
                                let first = stolen.pop_front();
                                if !stolen.is_empty() {
                                    deques[w].lock().expect("pool poisoned").extend(stolen);
                                }
                                steals += 1;
                                first
                            })
                        });
                        // Every index is claimed exactly once (dealt, then
                        // only moved between deques): an all-empty scan
                        // means the remaining work is already running on
                        // other workers — possibly queued locally behind
                        // them after a steal — so this worker retires
                        // instead of spinning against the stragglers.
                        let Some(i) = job else { break };
                        out.push((i, f(&mut state, i, &items[i])));
                    }
                    metrics.tasks.add(out.len() as u64);
                    metrics.steals.add(steals);
                    IN_POOL.with(|flag| flag.set(false));
                    out
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("pool worker panicked"))
            .collect()
    });
    for (i, r) in partials.drain(..).flatten() {
        debug_assert!(slots[i].is_none(), "item {i} executed twice");
        slots[i] = Some(r);
    }
    slots
        .into_iter()
        .map(|s| s.expect("item never executed"))
        .collect()
}

/// Parallel map without per-worker state. Results in input order.
pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    par_map_with(items, || (), |(), i, t| f(i, t))
}

/// Parallel indexed map over *mutable* items (each item is visited by
/// exactly one worker — the use case is a fleet of stateful engines, one
/// task per engine). Results in input order; same inline fallback rules
/// as [`par_map`].
///
/// Mutability is laundered through one `Mutex` per item: every index is
/// claimed exactly once by the pool, so each lock is taken exactly once
/// and never contended — the cost is one uncontended lock op per item,
/// noise for the coarse tasks this pool is built for.
pub fn par_map_mut<T, R, F>(items: &mut [T], f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, &mut T) -> R + Sync,
{
    let cells: Vec<Mutex<&mut T>> = items.iter_mut().map(Mutex::new).collect();
    par_map(&cells, |i, cell| {
        let mut item = cell.lock().expect("pool poisoned");
        f(i, &mut item)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU32;

    /// `PARALLELISM_OVERRIDE` is process-global and libtest runs tests
    /// concurrently — every test that sets or observes it serializes
    /// here (same pattern as `tests/parallel_equivalence.rs`).
    static OVERRIDE_LOCK: Mutex<()> = Mutex::new(());

    fn with_override<R>(n: usize, run: impl FnOnce() -> R) -> R {
        let _guard = OVERRIDE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        set_parallelism(n);
        let out = run();
        set_parallelism(0);
        out
    }

    #[test]
    fn results_are_input_ordered() {
        let items: Vec<usize> = (0..1000).collect();
        let out = par_map(&items, |i, &x| {
            assert_eq!(i, x);
            x * 2
        });
        assert_eq!(out, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn steal_half_keeps_results_input_ordered_at_1_2_4_workers() {
        // Uneven per-item cost forces real stealing: early indices sleep,
        // so the workers owning the front chunks lag and the rest steal
        // half-ranges off them. Results must stay input-ordered and
        // identical at every worker count.
        let items: Vec<usize> = (0..97).collect();
        let expected: Vec<usize> = items.iter().map(|&x| x * x).collect();
        for workers in [1usize, 2, 4] {
            let out = with_override(workers, || {
                par_map(&items, |_, &x| {
                    if x < 8 {
                        std::thread::sleep(std::time::Duration::from_millis(2));
                    }
                    x * x
                })
            });
            assert_eq!(out, expected, "diverged at {workers} workers");
        }
    }

    #[test]
    fn every_item_runs_exactly_once() {
        let hits: Vec<AtomicU32> = (0..257).map(|_| AtomicU32::new(0)).collect();
        let items: Vec<usize> = (0..hits.len()).collect();
        par_map(&items, |_, &x| hits[x].fetch_add(1, Ordering::Relaxed));
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn per_worker_state_is_reused() {
        // The init counter ≤ worker count regardless of item count.
        with_override(4, || {
            let inits = AtomicU32::new(0);
            let items: Vec<u32> = (0..100).collect();
            let out = par_map_with(
                &items,
                || {
                    inits.fetch_add(1, Ordering::Relaxed);
                    0u32
                },
                |scratch, _, &x| {
                    *scratch += 1;
                    x
                },
            );
            assert_eq!(out, items);
            assert!(inits.load(Ordering::Relaxed) <= 4);
        });
    }

    #[test]
    fn nested_calls_run_inline() {
        let out = with_override(4, || {
            let items: Vec<usize> = (0..8).collect();
            par_map(&items, |_, &x| {
                let inner: Vec<usize> = (0..4).collect();
                // If this spawned threads per outer item we would see
                // in_worker() == false inside; instead it must run inline.
                let inner_out = par_map(&inner, |_, &y| {
                    assert!(in_worker());
                    y + x
                });
                inner_out.iter().sum::<usize>()
            })
        });
        let expected = (0..4).map(|y| y + 1).sum::<usize>();
        assert_eq!(out[1], expected);
    }

    #[test]
    fn sequential_override_spawns_nothing() {
        let out = with_override(1, || {
            par_map(&[1, 2, 3], |_, &x| {
                assert!(!in_worker());
                x
            })
        });
        assert_eq!(out, vec![1, 2, 3]);
    }

    #[test]
    fn par_map_mut_mutates_every_item_once() {
        for workers in [1usize, 4] {
            let out = with_override(workers, || {
                let mut items: Vec<u32> = (0..100).collect();
                let doubled = par_map_mut(&mut items, |_, x| {
                    *x *= 2;
                    *x
                });
                assert_eq!(doubled, items);
                items
            });
            assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<_>>());
        }
    }

    #[test]
    fn obs_scope_propagates_to_workers() {
        with_override(4, || {
            let scoped = infine_obs::Registry::new();
            let _guard = scoped.enter();
            let items: Vec<usize> = (0..64).collect();
            par_map(&items, |_, &x| {
                // Observations made *inside a pool worker* must land in
                // the caller's ambient registry, not the default.
                infine_obs::with_current(|r| r.counter("exec_probe_total", "t", &[]).inc());
                x
            });
            assert_eq!(scoped.counter("exec_probe_total", "t", &[]).get(), 64);
            assert_eq!(
                scoped.counter("infine_exec_tasks_total", "t", &[]).get(),
                64
            );
        });
    }

    #[test]
    fn inline_path_counts_inline_tasks() {
        with_override(1, || {
            let scoped = infine_obs::Registry::new();
            let _guard = scoped.enter();
            par_map(&[1, 2, 3], |_, &x| x);
            assert_eq!(
                scoped
                    .counter("infine_exec_inline_tasks_total", "t", &[])
                    .get(),
                3
            );
            assert_eq!(scoped.counter("infine_exec_tasks_total", "t", &[]).get(), 0);
        });
    }

    #[test]
    fn empty_input_is_fine() {
        let out: Vec<u32> = par_map(&[] as &[u32], |_, &x| x);
        assert!(out.is_empty());
    }
}
