//! TANE (Huhtala et al., ICDE 1998 / Comput. J. 1999).
//!
//! Level-wise discovery over the attribute-set lattice with the classic
//! machinery: stripped partitions with the refinement validity test,
//! `C⁺(X)` candidate-rhs pruning, key pruning, and prefix-join level
//! generation. Constant attributes are handled at level 0 (`∅ → a`) and
//! excluded from the lattice universe, as in every miner of this crate.

use crate::fd::{Fd, FdSet};
use crate::levelwise::constant_attrs;
use infine_partitions::PliCache;
use infine_relation::{AttrSet, Relation};
use std::collections::{HashMap, HashSet};

/// Discover all minimal FDs over `attrs` in `rel` with TANE.
pub fn tane(rel: &Relation, attrs: AttrSet) -> FdSet {
    let obs = crate::obs::MinerObs::resolve("TANE");
    let _span = obs.start();
    let mut result = FdSet::new();
    let constants = constant_attrs(rel, attrs);
    for a in constants.iter() {
        result.insert_minimal(Fd::new(AttrSet::EMPTY, a));
    }
    let universe = attrs.difference(constants);
    if universe.len() < 2 {
        return result; // no non-trivial FD is possible
    }
    let mut cache = PliCache::with_attrs(rel, universe);

    // C⁺ per lattice node; C⁺(∅) = R. Nodes that were never generated
    // (supersets of pruned keys) get their C⁺ computed on demand by the
    // recursive intersection — required for the key-pruning rule to stay
    // complete (see `cplus_of`).
    let mut cplus: HashMap<AttrSet, AttrSet> = HashMap::new();
    cplus.insert(AttrSet::EMPTY, universe);

    let mut level: Vec<AttrSet> = universe.iter().map(AttrSet::single).collect();
    let mut level_t0 = std::time::Instant::now();
    while !level.is_empty() {
        // Materialize the whole level's partitions up front (in parallel
        // when the pool is active): each node refines a cached partition
        // from the previous level, so every subsequent `get` below is a
        // hit. Partitions are pure functions of (relation, set) — the FD
        // decisions, and hence the output, are identical either way.
        cache.prefetch(&level);

        // ---- compute dependencies ----
        for &x in &level {
            let mut cp = x
                .iter()
                .map(|a| cplus_of(&mut cplus, universe, x.without(a)))
                .fold(universe, AttrSet::intersect);
            for a in x.intersect(cp).iter() {
                let lhs = x.without(a);
                let d_lhs = cache.get(lhs).distinct_count();
                let d_x = cache.get(x).distinct_count();
                if d_lhs == d_x {
                    result.insert_minimal(Fd::new(lhs, a));
                    cp = cp.without(a);
                    cp = cp.difference(universe.difference(x)); // drop R \ X
                }
            }
            cplus.insert(x, cp);
        }

        // ---- prune ----
        let mut survivors: Vec<AttrSet> = Vec::new();
        for &x in &level {
            let cp = cplus[&x];
            if cp.is_empty() {
                continue; // delete X
            }
            if cache.get(x).is_key() {
                for a in cp.difference(x).iter() {
                    // X → a is output iff a ∈ ∩_{B∈X} C⁺(X ∪ {a} \ {B}).
                    // Siblings never generated get a recursive C⁺, which
                    // can over-approximate (it misses refinements from
                    // skipped nodes), so candidates passing the test are
                    // double-checked for minimality against the data.
                    let all_contain = x.iter().all(|b| {
                        let sibling = x.with(a).without(b);
                        cplus_of(&mut cplus, universe, sibling).contains(a)
                    });
                    if all_contain {
                        // Counting-only kernel checks: none of these
                        // products feed lattice descent (X is deleted
                        // below), so nothing is materialized for them.
                        let minimal = x.iter().all(|b| !cache.check(x.without(b), a));
                        let valid = cache.check(x, a);
                        if valid && minimal {
                            result.insert_minimal(Fd::new(x, a));
                        }
                    }
                }
                continue; // delete X (supersets of keys are never minimal lhs)
            }
            survivors.push(x);
        }

        // ---- generate next level (prefix join + subset check) ----
        level = generate_next_level(&survivors);
        level_t0 = obs.level_done(level_t0);
    }
    result
}

/// `C⁺` of an arbitrary lattice node, computed (and memoized) by the
/// recursive intersection `C⁺(X) = ∩_{a∈X} C⁺(X \ {a})` when the node was
/// never processed as a level member. Values stored during level
/// processing (which include the FD-test refinements) take precedence.
///
/// For skipped nodes this is an over-approximation of the true `C⁺`; the
/// key-pruning caller compensates with a direct minimality re-check.
fn cplus_of(cplus: &mut HashMap<AttrSet, AttrSet>, universe: AttrSet, set: AttrSet) -> AttrSet {
    if let Some(&c) = cplus.get(&set) {
        return c;
    }
    let c = set
        .iter()
        .map(|a| cplus_of(cplus, universe, set.without(a)))
        .fold(universe, AttrSet::intersect);
    cplus.insert(set, c);
    c
}

/// Prefix-join generation: combine two sets sharing all but their maximum
/// attribute; keep a candidate only if *every* immediate subset survived.
fn generate_next_level(level: &[AttrSet]) -> Vec<AttrSet> {
    let present: HashSet<AttrSet> = level.iter().copied().collect();
    let mut by_prefix: HashMap<AttrSet, Vec<usize>> = HashMap::new();
    for &x in level {
        let max = x.iter().last().expect("nonempty level sets");
        by_prefix.entry(x.without(max)).or_default().push(max);
    }
    let mut out = Vec::new();
    for (prefix, maxes) in &by_prefix {
        let mut ms = maxes.clone();
        ms.sort_unstable();
        for i in 0..ms.len() {
            for j in (i + 1)..ms.len() {
                let candidate = prefix.with(ms[i]).with(ms[j]);
                let all_subsets_present =
                    candidate.immediate_subsets().all(|s| present.contains(&s));
                if all_subsets_present {
                    out.push(candidate);
                }
            }
        }
    }
    out.sort_by_key(|s| s.bits());
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fd::same_fds;
    use crate::levelwise::{mine_fds, mine_fds_bruteforce};
    use infine_relation::{relation_from_rows, Value};

    fn rel() -> Relation {
        relation_from_rows(
            "t",
            &["a", "b", "c", "d"],
            &[
                &[Value::Int(1), Value::Int(10), Value::Int(0), Value::Int(7)],
                &[Value::Int(2), Value::Int(10), Value::Int(0), Value::Int(7)],
                &[Value::Int(3), Value::Int(20), Value::Int(1), Value::Int(7)],
                &[Value::Int(4), Value::Int(20), Value::Int(1), Value::Int(7)],
                &[Value::Int(5), Value::Int(30), Value::Int(0), Value::Int(7)],
            ],
        )
    }

    #[test]
    fn tane_matches_levelwise_and_bruteforce() {
        let r = rel();
        let t = tane(&r, r.attr_set());
        let l = mine_fds(&r, r.attr_set());
        let b = mine_fds_bruteforce(&r, r.attr_set());
        assert!(
            same_fds(&t, &l),
            "\ntane: {:?}\nlevelwise: {:?}",
            t.to_sorted_vec(),
            l.to_sorted_vec()
        );
        assert!(same_fds(&t, &b));
    }

    #[test]
    fn tane_on_paper_counterexample_tables() {
        // The Theorem 3 instances L and R from the paper's appendix.
        let l = relation_from_rows(
            "L",
            &["x", "a"],
            &[
                &[Value::Int(0), Value::Int(0)],
                &[Value::Int(1), Value::Int(0)],
                &[Value::Int(1), Value::Int(1)],
                &[Value::Int(2), Value::Int(2)],
            ],
        );
        let fds = tane(&l, l.attr_set());
        // a → x holds (0→0/1? no: a=0 maps to x∈{0,1}) — verify against oracle
        let oracle = mine_fds_bruteforce(&l, l.attr_set());
        assert!(same_fds(&fds, &oracle));
    }

    #[test]
    fn tane_respects_attribute_restriction() {
        let r = rel();
        let attrs: AttrSet = [0usize, 1, 2].into_iter().collect();
        let t = tane(&r, attrs);
        for fd in t.iter() {
            assert!(fd.attrs().is_subset(attrs));
        }
        assert!(same_fds(&t, &mine_fds(&r, attrs)));
    }

    #[test]
    fn tane_single_attribute_universe() {
        let r = relation_from_rows("t", &["a"], &[&[Value::Int(1)], &[Value::Int(2)]]);
        let t = tane(&r, r.attr_set());
        assert!(t.is_empty());
    }

    #[test]
    fn tane_all_constant() {
        let r = relation_from_rows(
            "t",
            &["a", "b"],
            &[
                &[Value::Int(1), Value::Int(2)],
                &[Value::Int(1), Value::Int(2)],
            ],
        );
        let t = tane(&r, r.attr_set());
        assert_eq!(t.len(), 2); // ∅→a, ∅→b
    }

    #[test]
    fn prefix_join_requires_all_subsets() {
        // {0,1}, {0,2} present but {1,2} absent → {0,1,2} not generated.
        let level = vec![
            [0usize, 1].into_iter().collect::<AttrSet>(),
            [0usize, 2].into_iter().collect::<AttrSet>(),
        ];
        assert!(generate_next_level(&level).is_empty());
        let level = vec![
            [0usize, 1].into_iter().collect::<AttrSet>(),
            [0usize, 2].into_iter().collect::<AttrSet>(),
            [1usize, 2].into_iter().collect::<AttrSet>(),
        ];
        assert_eq!(
            generate_next_level(&level),
            vec![[0usize, 1, 2].into_iter().collect::<AttrSet>()]
        );
    }
}
