//! The common interface over the four baseline FD-discovery algorithms.

use crate::depminer::depminer;
use crate::fastfds::fastfds;
use crate::fd::FdSet;
use crate::fun::fun;
use crate::hyfd::hyfd;
use crate::levelwise::mine_fds;
use crate::tane::tane;
use infine_relation::{AttrSet, Relation};

/// The discovery algorithms available in this crate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Algorithm {
    /// TANE — level-wise, partition-based, C⁺ pruning.
    Tane,
    /// FUN — level-wise over free sets, cardinality counting.
    Fun,
    /// FastFDs — difference sets + depth-first minimal covers.
    FastFds,
    /// DepMiner — maximal agree sets + minimal transversals (related-work
    /// baseline, not part of the paper's Fig. 3 comparison).
    DepMiner,
    /// HyFD — hybrid sampling/induction/validation.
    HyFd,
    /// The plain shared level-wise miner (InFine's internal base miner).
    Levelwise,
}

impl Algorithm {
    /// All baseline algorithms the paper compares against (Fig. 3/4).
    pub const BASELINES: [Algorithm; 4] = [
        Algorithm::HyFd,
        Algorithm::FastFds,
        Algorithm::Fun,
        Algorithm::Tane,
    ];

    /// Display name matching the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            Algorithm::Tane => "TANE",
            Algorithm::Fun => "FUN",
            Algorithm::FastFds => "FastFDs",
            Algorithm::DepMiner => "DepMiner",
            Algorithm::HyFd => "HyFD",
            Algorithm::Levelwise => "Levelwise",
        }
    }

    /// Run discovery over all attributes of a relation.
    pub fn discover(self, rel: &Relation) -> FdSet {
        self.discover_restricted(rel, rel.attr_set())
    }

    /// Run discovery restricted to an attribute subset (InFine step 1's
    /// projection pruning hands the projected attribute set here).
    pub fn discover_restricted(self, rel: &Relation, attrs: AttrSet) -> FdSet {
        match self {
            Algorithm::Tane => tane(rel, attrs),
            Algorithm::Fun => fun(rel, attrs),
            Algorithm::FastFds => fastfds(rel, attrs),
            Algorithm::DepMiner => depminer(rel, attrs),
            Algorithm::HyFd => hyfd(rel, attrs),
            Algorithm::Levelwise => mine_fds(rel, attrs),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fd::same_fds;
    use infine_relation::{relation_from_rows, Value};

    #[test]
    fn all_algorithms_agree() {
        let r = relation_from_rows(
            "t",
            &["a", "b", "c"],
            &[
                &[Value::Int(1), Value::Int(1), Value::Int(2)],
                &[Value::Int(2), Value::Int(1), Value::Int(2)],
                &[Value::Int(3), Value::Int(2), Value::Int(2)],
                &[Value::Int(4), Value::Int(2), Value::Int(3)],
            ],
        );
        let reference = Algorithm::Tane.discover(&r);
        for algo in [
            Algorithm::Fun,
            Algorithm::FastFds,
            Algorithm::DepMiner,
            Algorithm::HyFd,
            Algorithm::Levelwise,
        ] {
            let fds = algo.discover(&r);
            assert!(
                same_fds(&fds, &reference),
                "{} disagrees with TANE:\n{:?}\nvs\n{:?}",
                algo.name(),
                fds.to_sorted_vec(),
                reference.to_sorted_vec()
            );
        }
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(Algorithm::Tane.name(), "TANE");
        assert_eq!(Algorithm::HyFd.name(), "HyFD");
        assert_eq!(Algorithm::BASELINES.len(), 4);
    }
}
