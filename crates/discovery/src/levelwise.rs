//! Generic level-wise (lattice) FD mining.
//!
//! This is the machinery behind the paper's Algorithms 2 and 3: explore
//! candidate lhs sets per rhs attribute bottom-up, prune candidates whose
//! lhs has a valid subset (in the already-discovered output `Dout` *or* in
//! the externally-known FD set `DV` — lines 8–9 of Algorithm 2), validate
//! with stripped partitions, and stop when a level generates nothing.
//!
//! The same code doubles as the plain miner used by InFine step 1 on base
//! tables (empty `known` set) and as the approximate-FD miner (`g3`
//! validity) used to surface AFDs that later become exact on views.

use crate::fd::{Fd, FdSet};
use infine_partitions::PliCache;
use infine_relation::{AttrId, AttrSet, Relation};

/// Attributes that are constant over the relation's rows (`∅ → a` holds).
///
/// Constants are excluded from lattice universes everywhere: a constant
/// attribute can never be part of a *minimal* lhs (it refines nothing) and
/// as a rhs it is covered by the level-0 FD `∅ → a`.
pub fn constant_attrs(rel: &Relation, attrs: AttrSet) -> AttrSet {
    // Live rows: `distinct_count` skips tombstoned rows, and a relation
    // whose every row is dead is an empty instance.
    if rel.live_rows() == 0 {
        // Every FD (vacuously) holds on an empty instance; by convention we
        // report every attribute as constant.
        return attrs;
    }
    attrs
        .iter()
        .filter(|&a| rel.distinct_count(a) <= 1)
        .collect()
}

/// Validity oracle for candidate FDs.
pub trait Validity {
    /// Does `lhs → rhs` hold (for this oracle's notion of "hold")?
    fn holds(&mut self, lhs: AttrSet, rhs: AttrId) -> bool;

    /// Hint that every listed candidate is about to be checked. Oracles
    /// backed by a [`PliCache`] compute the partitions those checks will
    /// need in parallel (see [`PliCache::prefetch`]); the default is a
    /// no-op. Must not change any verdict — only when work happens.
    fn prefetch(&mut self, _candidates: &[(AttrSet, AttrId)]) {}
}

/// Exact validity through a [`PliCache`].
pub struct ExactValidity<'a, 'r>(pub &'a mut PliCache<'r>);

impl Validity for ExactValidity<'_, '_> {
    fn holds(&mut self, lhs: AttrSet, rhs: AttrId) -> bool {
        self.0.check(lhs, rhs)
    }

    fn prefetch(&mut self, candidates: &[(AttrSet, AttrId)]) {
        // The counting kernel answers each check from π_lhs and the rhs
        // code column — `π_{lhs∪rhs}` is never materialized, so only the
        // lhs partitions are worth batch-computing.
        let sets: Vec<AttrSet> = candidates.iter().map(|&(lhs, _)| lhs).collect();
        self.0.prefetch(&sets);
    }
}

/// `g3 ≤ ε` validity (approximate FDs) through a [`PliCache`].
pub struct ApproxValidity<'a, 'r> {
    /// The partition provider.
    pub cache: &'a mut PliCache<'r>,
    /// Error threshold (fraction of rows to delete).
    pub epsilon: f64,
}

impl Validity for ApproxValidity<'_, '_> {
    fn holds(&mut self, lhs: AttrSet, rhs: AttrId) -> bool {
        self.cache.g3(lhs, rhs) <= self.epsilon
    }

    fn prefetch(&mut self, candidates: &[(AttrSet, AttrId)]) {
        // g3 needs the lhs partition only (the rhs enters via its codes).
        let sets: Vec<AttrSet> = candidates.iter().map(|&(lhs, _)| lhs).collect();
        self.cache.prefetch(&sets);
    }
}

/// Mine the minimal FDs over `attrs` that are *new* w.r.t. `known`.
///
/// An FD is pruned (neither validated nor extended) when a subset-lhs FD
/// with the same rhs exists in `known` or in the output so far — exactly
/// the pruning of Algorithm 2 lines 8–9. With an empty `known` this is a
/// complete minimal-FD miner.
///
/// `max_lhs` caps the explored lhs size (defaults to `attrs.len() - 1`).
pub fn mine_new_fds_with<V: Validity>(
    validity: &mut V,
    rel: &Relation,
    attrs: AttrSet,
    known: &FdSet,
    max_lhs: Option<usize>,
) -> FdSet {
    mine_new_fds_via(validity, constant_attrs(rel, attrs), attrs, known, max_lhs)
}

/// [`mine_new_fds_with`] with the level-0 constant set supplied by the
/// caller instead of computed from a [`Relation`] — the whole lattice
/// walk then runs against the oracle alone, which lets virtual-view
/// backends mine without any materialized relation to hand. `constants`
/// must equal the attributes for which `∅ → a` holds under `validity`'s
/// notion of validity (all of `attrs` for an empty instance).
pub fn mine_new_fds_via<V: Validity>(
    validity: &mut V,
    constants: AttrSet,
    attrs: AttrSet,
    known: &FdSet,
    max_lhs: Option<usize>,
) -> FdSet {
    let obs = crate::obs::MinerObs::resolve("Levelwise");
    let _span = obs.start();
    let mut found = FdSet::new();
    if attrs.is_empty() {
        return found;
    }
    let max_lhs = max_lhs.unwrap_or_else(|| attrs.len().saturating_sub(1));

    // Level 0: constant attributes.
    for a in constants.iter() {
        if !known.has_subset_lhs(AttrSet::EMPTY, a) {
            found.insert_minimal(Fd::new(AttrSet::EMPTY, a));
        }
    }
    let universe = attrs.difference(constants);

    for rhs in universe.iter() {
        if known.has_subset_lhs(AttrSet::EMPTY, rhs) {
            continue; // ∅ → rhs already known
        }
        let lhs_universe = universe.without(rhs);
        // Level 1 candidates.
        let mut level: Vec<AttrSet> = lhs_universe.iter().map(AttrSet::single).collect();
        let mut depth = 1usize;
        let mut level_t0 = std::time::Instant::now();
        while !level.is_empty() && depth <= max_lhs {
            // The subset-pruning outcome is fixed before any validation of
            // this level runs: an FD found *at* this level has a lhs of the
            // same size as every candidate, so it can only "prune" the
            // identical candidate (which is never revisited). Settling the
            // survivor list up front is therefore behavior-preserving, and
            // lets the oracle prefetch the whole level's partitions in one
            // parallel batch.
            let survivors: Vec<AttrSet> = level
                .iter()
                .copied()
                .filter(|&lhs| !known.has_subset_lhs(lhs, rhs) && !found.has_subset_lhs(lhs, rhs))
                .collect();
            if !infine_exec::sequential() {
                let candidates: Vec<(AttrSet, AttrId)> =
                    survivors.iter().map(|&lhs| (lhs, rhs)).collect();
                validity.prefetch(&candidates);
            }
            let mut extendable: Vec<AttrSet> = Vec::new();
            for &lhs in &survivors {
                if validity.holds(lhs, rhs) {
                    found.insert_minimal(Fd::new(lhs, rhs));
                } else {
                    extendable.push(lhs);
                }
            }
            // Generate the next level by max-attribute extension: each set
            // is produced exactly once, from its parent without its
            // maximum attribute.
            let mut next = Vec::new();
            for &lhs in &extendable {
                let max_attr = lhs.iter().last().expect("non-empty lhs");
                for b in lhs_universe.iter() {
                    if b > max_attr {
                        next.push(lhs.with(b));
                    }
                }
            }
            level = next;
            depth += 1;
            level_t0 = obs.level_done(level_t0);
        }
    }
    found
}

/// Seeded upward lattice walk: find the minimal valid strict supersets of
/// the invalid `seeds`, pruning against `known`.
///
/// This is the "targeted lattice search" shared by incremental cover
/// maintenance (seeds = FDs broken by an insert batch) and sharded cover
/// merging (seeds = fragment-cover candidates that fail globally). It is
/// complete whenever every set strictly between a seed and a minimal
/// valid superset is itself invalid — which holds in both uses, because
/// any such intermediate set is a proper subset of a minimal valid lhs:
///
/// * after an insert-only batch every newly minimal FD `Y → a` was valid
///   before the batch, so its pre-batch minimal subset either survived
///   (then `Y` is not minimal) or broke and seeds the walk;
/// * a fragment-valid candidate `W → a` that fails on the union seeds
///   every globally minimal `X ⊇ W → a` (validity is anti-monotone in
///   rows, so each fragment cover contains some subset of `X`).
pub fn extend_seeds<V: Validity>(
    validity: &mut V,
    universe: AttrSet,
    seeds: &[Fd],
    known: &FdSet,
) -> FdSet {
    let mut found = FdSet::new();
    let mut by_rhs: std::collections::HashMap<AttrId, Vec<AttrSet>> =
        std::collections::HashMap::new();
    for fd in seeds {
        by_rhs.entry(fd.rhs).or_default().push(fd.lhs);
    }
    for (rhs, seeds) in by_rhs {
        let lhs_universe = universe.without(rhs);
        let mut seen: std::collections::HashSet<AttrSet> = std::collections::HashSet::new();
        let mut level: Vec<AttrSet> = seeds;
        while !level.is_empty() {
            let mut next: Vec<AttrSet> = Vec::new();
            for &lhs in &level {
                for b in lhs_universe.difference(lhs).iter() {
                    let cand = lhs.with(b);
                    if !seen.insert(cand) {
                        continue;
                    }
                    if known.has_subset_lhs(cand, rhs) || found.has_subset_lhs(cand, rhs) {
                        continue; // any validation would be non-minimal
                    }
                    if validity.holds(cand, rhs) {
                        found.insert_minimal(Fd::new(cand, rhs));
                    } else {
                        next.push(cand);
                    }
                }
            }
            level = next;
        }
    }
    found
}

/// Exact-FD variant of [`mine_new_fds_with`] with its own cache.
pub fn mine_new_fds(rel: &Relation, attrs: AttrSet, known: &FdSet) -> FdSet {
    let mut cache = PliCache::with_attrs(rel, attrs);
    let mut v = ExactValidity(&mut cache);
    mine_new_fds_with(&mut v, rel, attrs, known, None)
}

/// All minimal exact FDs over `attrs` (empty `known` set).
pub fn mine_fds(rel: &Relation, attrs: AttrSet) -> FdSet {
    mine_new_fds(rel, attrs, &FdSet::new())
}

/// All minimal approximate FDs over `attrs` at threshold `epsilon`
/// (`g3 ≤ ε`); exact FDs are a subset (ε = 0 degenerates to exact mining).
pub fn mine_afds(rel: &Relation, attrs: AttrSet, epsilon: f64) -> FdSet {
    let mut cache = PliCache::with_attrs(rel, attrs);
    let mut v = ApproxValidity {
        cache: &mut cache,
        epsilon,
    };
    mine_new_fds_with(&mut v, rel, attrs, &FdSet::new(), None)
}

/// Reference oracle: brute-force minimal FD discovery by pairwise row
/// comparison over every candidate. Exponential ×  quadratic — tests only.
pub fn mine_fds_bruteforce(rel: &Relation, attrs: AttrSet) -> FdSet {
    use infine_partitions::fd_holds_bruteforce;
    let mut found = FdSet::new();
    let constants = constant_attrs(rel, attrs);
    for a in constants.iter() {
        found.insert_minimal(Fd::new(AttrSet::EMPTY, a));
    }
    let universe = attrs.difference(constants);
    for rhs in universe.iter() {
        let lhs_universe = universe.without(rhs);
        // enumerate all subsets by increasing size
        let mut all: Vec<AttrSet> = subsets_of(lhs_universe);
        all.sort_by_key(|s| (s.len(), s.bits()));
        for lhs in all {
            if lhs.is_empty() {
                continue;
            }
            if found.has_subset_lhs(lhs, rhs) {
                continue;
            }
            if fd_holds_bruteforce(rel, lhs, rhs) {
                found.insert_minimal(Fd::new(lhs, rhs));
            }
        }
    }
    found
}

fn subsets_of(set: AttrSet) -> Vec<AttrSet> {
    let mut out = set.strict_subsets();
    out.push(set);
    out.push(AttrSet::EMPTY);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fd::same_fds;
    use infine_relation::{relation_from_rows, Value};

    fn rel() -> Relation {
        relation_from_rows(
            "t",
            &["a", "b", "c", "d"],
            &[
                &[Value::Int(1), Value::Int(10), Value::Int(0), Value::Int(7)],
                &[Value::Int(2), Value::Int(10), Value::Int(0), Value::Int(7)],
                &[Value::Int(3), Value::Int(20), Value::Int(1), Value::Int(7)],
                &[Value::Int(4), Value::Int(20), Value::Int(1), Value::Int(7)],
                &[Value::Int(5), Value::Int(30), Value::Int(0), Value::Int(7)],
            ],
        )
    }

    #[test]
    fn matches_bruteforce_on_sample() {
        let r = rel();
        let fast = mine_fds(&r, r.attr_set());
        let slow = mine_fds_bruteforce(&r, r.attr_set());
        assert!(
            same_fds(&fast, &slow),
            "\nfast: {:?}\nslow: {:?}",
            fast.to_sorted_vec(),
            slow.to_sorted_vec()
        );
    }

    #[test]
    fn finds_constants_as_empty_lhs() {
        let r = rel();
        let fds = mine_fds(&r, r.attr_set());
        assert!(fds.contains(&Fd::new(AttrSet::EMPTY, 3))); // d constant
    }

    #[test]
    fn key_attribute_determines_everything() {
        let r = rel();
        let fds = mine_fds(&r, r.attr_set());
        // a is a key: a→b, a→c minimal (a→d shadowed by ∅→d)
        assert!(fds.contains(&Fd::new(AttrSet::single(0), 1)));
        assert!(fds.contains(&Fd::new(AttrSet::single(0), 2)));
        assert!(!fds.contains(&Fd::new(AttrSet::single(0), 3)));
    }

    #[test]
    fn b_determines_c_minimally() {
        let r = rel();
        let fds = mine_fds(&r, r.attr_set());
        assert!(fds.contains(&Fd::new(AttrSet::single(1), 2))); // 10→0, 20→1, 30→0
                                                                // c does not determine b (c=0 maps to b∈{10,30})
        assert!(!fds.contains(&Fd::new(AttrSet::single(2), 1)));
    }

    #[test]
    fn known_fds_prune_output() {
        let r = rel();
        let known = FdSet::from_fds([Fd::new(AttrSet::single(1), 2)]);
        let fds = mine_new_fds(&r, r.attr_set(), &known);
        // b→c is known → not re-reported, nor any superset
        assert!(!fds.contains(&Fd::new(AttrSet::single(1), 2)));
        for fd in fds.iter() {
            assert!(!(fd.rhs == 2 && AttrSet::single(1).is_subset(fd.lhs)));
        }
    }

    #[test]
    fn restricted_attrs_limit_scope() {
        let r = rel();
        let attrs: AttrSet = [0usize, 1].into_iter().collect();
        let fds = mine_fds(&r, attrs);
        for fd in fds.iter() {
            assert!(fd.attrs().is_subset(attrs));
        }
        // a→b still found within the restriction
        assert!(fds.contains(&Fd::new(AttrSet::single(0), 1)));
    }

    #[test]
    fn afds_include_exact_and_near_fds() {
        let r = relation_from_rows(
            "t",
            &["x", "y"],
            &[
                &[Value::Int(1), Value::Int(1)],
                &[Value::Int(1), Value::Int(1)],
                &[Value::Int(1), Value::Int(1)],
                &[Value::Int(1), Value::Int(2)], // one violation of x→y
                &[Value::Int(2), Value::Int(3)],
            ],
        );
        let exact = mine_fds(&r, r.attr_set());
        assert!(!exact.contains(&Fd::new(AttrSet::single(0), 1)));
        let afds = mine_afds(&r, r.attr_set(), 0.25); // 1/5 violations allowed
        assert!(afds.contains(&Fd::new(AttrSet::single(0), 1)));
        // ε = 0 degenerates to exact
        let zero = mine_afds(&r, r.attr_set(), 0.0);
        assert!(same_fds(&zero, &exact));
    }

    #[test]
    fn empty_relation_reports_all_constant() {
        let r = relation_from_rows("t", &["a", "b"], &[]);
        let fds = mine_fds(&r, r.attr_set());
        assert!(fds.contains(&Fd::new(AttrSet::EMPTY, 0)));
        assert!(fds.contains(&Fd::new(AttrSet::EMPTY, 1)));
        assert_eq!(fds.len(), 2);
    }

    #[test]
    fn max_lhs_caps_exploration() {
        let r = rel();
        let mut cache = infine_partitions::PliCache::new(&r);
        let mut v = ExactValidity(&mut cache);
        let fds = mine_new_fds_with(&mut v, &r, r.attr_set(), &FdSet::new(), Some(1));
        for fd in fds.iter() {
            assert!(fd.lhs.len() <= 1);
        }
    }
}
