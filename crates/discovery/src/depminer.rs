//! DepMiner (Lopes, Petit & Lakhal, EDBT 2000) — reference [20] of the
//! InFine paper's related work.
//!
//! Tuple-oriented like FastFDs, but organized around *maximal* agree
//! sets: for each rhs attribute `a`, collect the agree sets that do not
//! contain `a` and are ⊆-maximal (`max(AG, a)`). A set `X` is a minimal
//! FD lhs for `a` exactly when `X` is a minimal transversal of the
//! hypergraph of their complements `{R \ M : M ∈ max(AG, a)}` — every
//! pair of tuples agreeing on `M ∌ a` must be split by at least one lhs
//! attribute outside `M`.
//!
//! Sharing the agree-set computation shape with FastFDs but pruning to
//! maximal sets first gives DepMiner its distinct cost profile (fewer,
//! larger hyperedges).

use crate::fd::{Fd, FdSet};
use crate::levelwise::constant_attrs;
use infine_partitions::Pli;
use infine_relation::{AttrId, AttrSet, Relation};
use std::collections::HashSet;

/// Discover all minimal FDs over `attrs` in `rel` with DepMiner.
pub fn depminer(rel: &Relation, attrs: AttrSet) -> FdSet {
    let obs = crate::obs::MinerObs::resolve("DepMiner");
    let _span = obs.start();
    let mut result = FdSet::new();
    let constants = constant_attrs(rel, attrs);
    for a in constants.iter() {
        result.insert_minimal(Fd::new(AttrSet::EMPTY, a));
    }
    let universe = attrs.difference(constants);
    if universe.len() < 2 {
        return result;
    }

    // DepMiner is phase-based: agree-set construction, then the per-rhs
    // transversal search — each phase recorded as one "level".
    let phase_t0 = std::time::Instant::now();
    let agree_sets = compute_agree_sets(rel, universe);
    let phase_t0 = obs.level_done(phase_t0);

    for rhs in universe.iter() {
        // max(AG, rhs): maximal agree sets not containing rhs. The empty
        // agree set participates: a pair agreeing on nothing still rules
        // out ∅ → rhs once it disagrees on rhs — represented by keeping ∅
        // when present (its complement is the full universe minus rhs).
        let not_containing: Vec<AttrSet> = agree_sets
            .iter()
            .copied()
            .filter(|ag| !ag.contains(rhs))
            .collect();
        let maximal = maximal_sets(&not_containing);
        // Hyperedges: complements within the universe, rhs removed.
        let mut edges: Vec<AttrSet> = maximal
            .iter()
            .map(|&m| universe.difference(m).without(rhs))
            .collect();
        // Pairs agreeing *nowhere relevant* are invisible to the stripped
        // partitions; as in FastFDs, the full edge keeps transversals
        // non-empty and is harmless when redundant.
        edges.push(universe.without(rhs));
        let edges = minimize_sets(&edges);
        if edges.iter().any(|e| e.is_empty()) {
            continue; // some pair differs only on rhs: no FD possible
        }
        for lhs in minimal_transversals(&edges, universe.without(rhs)) {
            result.insert_minimal(Fd::new(lhs, rhs));
        }
    }
    obs.level_done(phase_t0);
    result
}

/// Distinct agree sets of tuple pairs co-occurring in some class of a
/// single-attribute partition (identical to the FastFDs front end).
fn compute_agree_sets(rel: &Relation, universe: AttrSet) -> Vec<AttrSet> {
    let mut seen_pairs: HashSet<(u32, u32)> = HashSet::new();
    let mut agree: HashSet<AttrSet> = HashSet::new();
    let attrs: Vec<AttrId> = universe.iter().collect();
    // Hoisted code columns, as in the FastFDs front end: the pair loop
    // is O(pairs · |attrs|) cell reads.
    let cols: Vec<&[u32]> = attrs
        .iter()
        .map(|&a| rel.column(a).codes.as_slice())
        .collect();
    for &a in &attrs {
        let pli = Pli::for_attr(rel, a);
        for class in pli.classes() {
            for i in 0..class.len() {
                for j in (i + 1)..class.len() {
                    let pair = (class[i], class[j]);
                    if !seen_pairs.insert(pair) {
                        continue;
                    }
                    let mut ag = AttrSet::EMPTY;
                    for (bi, &b) in attrs.iter().enumerate() {
                        if cols[bi][pair.0 as usize] == cols[bi][pair.1 as usize] {
                            ag = ag.with(b);
                        }
                    }
                    agree.insert(ag);
                }
            }
        }
    }
    agree.into_iter().collect()
}

/// Keep only the ⊆-maximal sets.
fn maximal_sets(sets: &[AttrSet]) -> Vec<AttrSet> {
    let mut sorted: Vec<AttrSet> = sets.to_vec();
    sorted.sort_by_key(|s| std::cmp::Reverse(s.len()));
    sorted.dedup();
    let mut out: Vec<AttrSet> = Vec::new();
    for s in sorted {
        if !out.iter().any(|m| s.is_subset(*m)) {
            out.push(s);
        }
    }
    out
}

/// Keep only the ⊆-minimal sets.
fn minimize_sets(sets: &[AttrSet]) -> Vec<AttrSet> {
    let mut sorted: Vec<AttrSet> = sets.to_vec();
    sorted.sort_by_key(|s| s.len());
    sorted.dedup();
    let mut out: Vec<AttrSet> = Vec::new();
    for s in sorted {
        if !out.iter().any(|m| m.is_subset(s)) {
            out.push(s);
        }
    }
    out
}

/// All minimal transversals (hitting sets) of the hyperedges, by ordered
/// depth-first branching (every minimal transversal has each chosen
/// attribute uniquely hitting some edge, so the ascending-order walk
/// visits all of them; non-minimal outputs are pruned by the caller's
/// antichain insertion and a subset guard here).
fn minimal_transversals(edges: &[AttrSet], candidates: AttrSet) -> Vec<AttrSet> {
    let mut out = Vec::new();
    let order: Vec<AttrId> = candidates.iter().collect();
    dfs(edges, AttrSet::EMPTY, &order, &mut out);
    // final antichain filter
    let mut minimal: Vec<AttrSet> = Vec::new();
    let mut sorted = out;
    sorted.sort_by_key(|s| s.len());
    for s in sorted {
        if !minimal.iter().any(|m| m.is_subset(s)) {
            minimal.push(s);
        }
    }
    minimal
}

fn dfs(remaining: &[AttrSet], path: AttrSet, order: &[AttrId], out: &mut Vec<AttrSet>) {
    if remaining.is_empty() {
        if !out.iter().any(|c| c.is_subset(path)) {
            out.push(path);
        }
        return;
    }
    for (i, &a) in order.iter().enumerate() {
        let still: Vec<AttrSet> = remaining
            .iter()
            .copied()
            .filter(|e| !e.contains(a))
            .collect();
        if still.len() == remaining.len() {
            continue; // `a` hits nothing new
        }
        dfs(&still, path.with(a), &order[i + 1..], out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fd::same_fds;
    use crate::levelwise::mine_fds_bruteforce;
    use crate::tane::tane;
    use infine_relation::{relation_from_rows, Value};

    fn rel() -> Relation {
        relation_from_rows(
            "t",
            &["a", "b", "c", "d"],
            &[
                &[Value::Int(1), Value::Int(10), Value::Int(0), Value::Int(7)],
                &[Value::Int(2), Value::Int(10), Value::Int(0), Value::Int(7)],
                &[Value::Int(3), Value::Int(20), Value::Int(1), Value::Int(7)],
                &[Value::Int(4), Value::Int(20), Value::Int(1), Value::Int(7)],
                &[Value::Int(5), Value::Int(30), Value::Int(0), Value::Int(7)],
            ],
        )
    }

    #[test]
    fn depminer_matches_tane_and_bruteforce() {
        let r = rel();
        let d = depminer(&r, r.attr_set());
        let t = tane(&r, r.attr_set());
        assert!(
            same_fds(&d, &t),
            "\ndepminer: {:?}\ntane: {:?}",
            d.to_sorted_vec(),
            t.to_sorted_vec()
        );
        assert!(same_fds(&d, &mine_fds_bruteforce(&r, r.attr_set())));
    }

    #[test]
    fn depminer_all_distinct_rows() {
        let r = relation_from_rows(
            "t",
            &["a", "b"],
            &[
                &[Value::Int(1), Value::Int(10)],
                &[Value::Int(2), Value::Int(20)],
                &[Value::Int(3), Value::Int(30)],
            ],
        );
        let d = depminer(&r, r.attr_set());
        assert!(same_fds(&d, &mine_fds_bruteforce(&r, r.attr_set())));
    }

    #[test]
    fn depminer_with_nulls() {
        let r = relation_from_rows(
            "t",
            &["a", "b", "c"],
            &[
                &[Value::Null, Value::Int(1), Value::Int(1)],
                &[Value::Null, Value::Int(1), Value::Int(1)],
                &[Value::Int(1), Value::Int(2), Value::Int(1)],
                &[Value::Int(2), Value::Int(2), Value::Int(2)],
            ],
        );
        let d = depminer(&r, r.attr_set());
        assert!(same_fds(&d, &mine_fds_bruteforce(&r, r.attr_set())));
    }

    #[test]
    fn maximal_and_minimal_set_helpers() {
        let sets = vec![
            [0usize].into_iter().collect::<AttrSet>(),
            [0usize, 1].into_iter().collect::<AttrSet>(),
            [2usize].into_iter().collect::<AttrSet>(),
        ];
        let max = maximal_sets(&sets);
        assert_eq!(max.len(), 2);
        assert!(max.contains(&[0usize, 1].into_iter().collect()));
        let min = minimize_sets(&sets);
        assert_eq!(min.len(), 2);
        assert!(min.contains(&[0usize].into_iter().collect()));
    }

    #[test]
    fn transversals_of_simple_hypergraph() {
        // edges {0,1}, {1,2}: minimal transversals {1}, {0,2}
        let edges = vec![
            [0usize, 1].into_iter().collect::<AttrSet>(),
            [1usize, 2].into_iter().collect::<AttrSet>(),
        ];
        let ts = minimal_transversals(&edges, AttrSet::all(3));
        assert_eq!(ts.len(), 2);
        assert!(ts.contains(&AttrSet::single(1)));
        assert!(ts.contains(&[0usize, 2].into_iter().collect()));
    }
}
