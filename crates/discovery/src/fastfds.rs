//! FastFDs (Wyss, Giannella & Robertson, DaWaK 2001).
//!
//! Tuple-oriented discovery: compute *agree sets* (the attribute sets on
//! which tuple pairs coincide), complement them into *difference sets*,
//! and, per rhs attribute, search depth-first for the minimal attribute
//! sets covering every difference set — these are exactly the minimal FD
//! left-hand sides.
//!
//! Agree sets are derived from stripped single-attribute partitions: only
//! pairs co-occurring in some class can agree on anything. Pairs agreeing
//! nowhere contribute the full difference set `R`, which is added when the
//! partitions do not account for every pair (it is harmless when spurious
//! — see the module tests).
//!
//! The quadratic pair enumeration is intrinsic to the algorithm and is why
//! FastFDs is the slowest baseline on the paper's larger views (Fig. 3);
//! the benches scale data accordingly.

use crate::fd::{Fd, FdSet};
use crate::levelwise::constant_attrs;
use infine_partitions::Pli;
use infine_relation::{AttrId, AttrSet, Relation};
use std::collections::HashSet;

/// Discover all minimal FDs over `attrs` in `rel` with FastFDs.
pub fn fastfds(rel: &Relation, attrs: AttrSet) -> FdSet {
    let obs = crate::obs::MinerObs::resolve("FastFDs");
    let _span = obs.start();
    let mut result = FdSet::new();
    let constants = constant_attrs(rel, attrs);
    for a in constants.iter() {
        result.insert_minimal(Fd::new(AttrSet::EMPTY, a));
    }
    let universe = attrs.difference(constants);
    if universe.len() < 2 {
        return result;
    }

    // FastFDs has no lattice levels; its two phases (agree/difference
    // set construction, then the per-rhs cover search) stand in as the
    // "level" observations.
    let phase_t0 = std::time::Instant::now();
    let agree_sets = compute_agree_sets(rel, universe);
    let phase_t0 = obs.level_done(phase_t0);
    // Difference sets: complements of agree sets within the universe.
    let mut diff_sets: HashSet<AttrSet> =
        agree_sets.iter().map(|&a| universe.difference(a)).collect();
    diff_sets.remove(&AttrSet::EMPTY); // duplicate tuples: no constraint
                                       // The full difference set R accounts for pairs agreeing nowhere. It is
                                       // redundant unless no smaller difference set exists for some rhs, and
                                       // harmless otherwise (every non-empty lhs covers R \ {a}).
    diff_sets.insert(universe);

    for rhs in universe.iter() {
        // D_a: difference sets containing a, with a removed; minimized.
        let with_rhs: Vec<AttrSet> = diff_sets
            .iter()
            .filter(|d| d.contains(rhs))
            .map(|d| d.without(rhs))
            .collect();
        let minimal_diffs = minimize_sets(&with_rhs);
        if minimal_diffs.is_empty() {
            // no pair ever disagrees on rhs while agreeing elsewhere —
            // handled by the constant case; nothing to do here.
            continue;
        }
        if minimal_diffs.iter().any(|d| d.is_empty()) {
            // some pair disagrees *only* on rhs: no FD with this rhs holds.
            continue;
        }
        let mut covers = Vec::new();
        let order = order_by_coverage(&minimal_diffs, universe.without(rhs));
        find_covers(&minimal_diffs, AttrSet::EMPTY, &order, &mut covers);
        for lhs in covers {
            result.insert_minimal(Fd::new(lhs, rhs));
        }
    }
    obs.level_done(phase_t0);
    result
}

/// All distinct agree sets of tuple pairs co-occurring in at least one
/// single-attribute partition class.
fn compute_agree_sets(rel: &Relation, universe: AttrSet) -> Vec<AttrSet> {
    let mut seen_pairs: HashSet<(u32, u32)> = HashSet::new();
    let mut agree: HashSet<AttrSet> = HashSet::new();
    let attrs: Vec<AttrId> = universe.iter().collect();
    // Hoisted code columns: the pair loop is O(pairs · |attrs|) cell
    // reads, and slice indexing beats per-cell column lookup.
    let cols: Vec<&[u32]> = attrs
        .iter()
        .map(|&a| rel.column(a).codes.as_slice())
        .collect();
    for &a in &attrs {
        let pli = Pli::for_attr(rel, a);
        for class in pli.classes() {
            for i in 0..class.len() {
                for j in (i + 1)..class.len() {
                    let pair = (class[i], class[j]);
                    if !seen_pairs.insert(pair) {
                        continue;
                    }
                    let mut ag = AttrSet::EMPTY;
                    for (bi, &b) in attrs.iter().enumerate() {
                        if cols[bi][pair.0 as usize] == cols[bi][pair.1 as usize] {
                            ag = ag.with(b);
                        }
                    }
                    agree.insert(ag);
                }
            }
        }
    }
    agree.into_iter().collect()
}

/// Keep only the ⊆-minimal sets.
fn minimize_sets(sets: &[AttrSet]) -> Vec<AttrSet> {
    let mut sorted: Vec<AttrSet> = sets.to_vec();
    sorted.sort_by_key(|s| s.len());
    sorted.dedup();
    let mut out: Vec<AttrSet> = Vec::new();
    for s in sorted {
        if !out.iter().any(|m| m.is_subset(s)) {
            out.push(s);
        }
    }
    out
}

/// Attributes ordered by how many difference sets they cover (descending,
/// ties by id) — the FastFDs search heuristic.
fn order_by_coverage(diffs: &[AttrSet], candidates: AttrSet) -> Vec<AttrId> {
    let mut counted: Vec<(usize, AttrId)> = candidates
        .iter()
        .map(|a| {
            let cnt = diffs.iter().filter(|d| d.contains(a)).count();
            (cnt, a)
        })
        .filter(|&(cnt, _)| cnt > 0)
        .collect();
    counted.sort_by(|x, y| y.0.cmp(&x.0).then(x.1.cmp(&y.1)));
    counted.into_iter().map(|(_, a)| a).collect()
}

/// Depth-first search for covers of the remaining difference sets.
///
/// Each branch fixes one attribute from the current ordering and recurses
/// on the still-uncovered sets with the *later* attributes only (the
/// classic FastFDs enumeration, which visits every cover exactly once).
/// Minimality of emitted covers is checked directly: every chosen
/// attribute must uniquely cover some difference set.
fn find_covers(remaining: &[AttrSet], path: AttrSet, order: &[AttrId], out: &mut Vec<AttrSet>) {
    if remaining.is_empty() {
        out.push(path);
        return;
    }
    for (i, &a) in order.iter().enumerate() {
        let still: Vec<AttrSet> = remaining
            .iter()
            .copied()
            .filter(|d| !d.contains(a))
            .collect();
        if still.len() == remaining.len() {
            continue; // a covers nothing new on this branch
        }
        let new_path = path.with(a);
        if still.is_empty() {
            // Every minimal cover is visited by this enumeration (each of
            // its attributes uniquely covers some difference set, so every
            // prefix makes progress); non-minimal covers emitted here are
            // evicted by the caller's antichain insertion. The subset
            // guard just keeps `out` small along the way.
            if !out.iter().any(|&c| c.is_subset(new_path)) {
                out.push(new_path);
            }
        } else {
            let sub_order: Vec<AttrId> = order[i + 1..]
                .iter()
                .copied()
                .filter(|&b| still.iter().any(|d| d.contains(b)))
                .collect();
            find_covers(&still, new_path, &sub_order, out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fd::same_fds;
    use crate::levelwise::mine_fds_bruteforce;
    use crate::tane::tane;
    use infine_relation::{relation_from_rows, Value};

    fn rel() -> Relation {
        relation_from_rows(
            "t",
            &["a", "b", "c", "d"],
            &[
                &[Value::Int(1), Value::Int(10), Value::Int(0), Value::Int(7)],
                &[Value::Int(2), Value::Int(10), Value::Int(0), Value::Int(7)],
                &[Value::Int(3), Value::Int(20), Value::Int(1), Value::Int(7)],
                &[Value::Int(4), Value::Int(20), Value::Int(1), Value::Int(7)],
                &[Value::Int(5), Value::Int(30), Value::Int(0), Value::Int(7)],
            ],
        )
    }

    #[test]
    fn fastfds_matches_tane_and_bruteforce() {
        let r = rel();
        let f = fastfds(&r, r.attr_set());
        let t = tane(&r, r.attr_set());
        assert!(
            same_fds(&f, &t),
            "\nfastfds: {:?}\ntane: {:?}",
            f.to_sorted_vec(),
            t.to_sorted_vec()
        );
        assert!(same_fds(&f, &mine_fds_bruteforce(&r, r.attr_set())));
    }

    #[test]
    fn all_distinct_rows_still_yield_key_fds() {
        // No two rows agree anywhere except... every attribute is a key.
        let r = relation_from_rows(
            "t",
            &["a", "b"],
            &[
                &[Value::Int(1), Value::Int(10)],
                &[Value::Int(2), Value::Int(20)],
                &[Value::Int(3), Value::Int(30)],
            ],
        );
        let f = fastfds(&r, r.attr_set());
        // a→b and b→a hold (both keys); agree sets are empty so the full
        // difference set R path must produce them.
        assert!(f.contains(&Fd::new(AttrSet::single(0), 1)));
        assert!(f.contains(&Fd::new(AttrSet::single(1), 0)));
        assert!(same_fds(&f, &mine_fds_bruteforce(&r, r.attr_set())));
    }

    #[test]
    fn duplicate_rows_are_not_violations() {
        let r = relation_from_rows(
            "t",
            &["a", "b"],
            &[
                &[Value::Int(1), Value::Int(10)],
                &[Value::Int(1), Value::Int(10)],
                &[Value::Int(2), Value::Int(20)],
            ],
        );
        let f = fastfds(&r, r.attr_set());
        assert!(f.contains(&Fd::new(AttrSet::single(0), 1)));
        assert!(same_fds(&f, &mine_fds_bruteforce(&r, r.attr_set())));
    }

    #[test]
    fn no_fd_when_rhs_varies_under_equal_lhs() {
        let r = relation_from_rows(
            "t",
            &["a", "b"],
            &[
                &[Value::Int(1), Value::Int(10)],
                &[Value::Int(1), Value::Int(20)],
            ],
        );
        let f = fastfds(&r, r.attr_set());
        // a→b violated; a is constant so ∅→a is the minimal FD with rhs a
        // (b→a holds but is shadowed by ∅→a).
        assert!(!f.contains(&Fd::new(AttrSet::single(0), 1)));
        assert!(f.contains(&Fd::new(AttrSet::EMPTY, 0)));
        assert!(!f.contains(&Fd::new(AttrSet::single(1), 0)));
        assert!(same_fds(&f, &mine_fds_bruteforce(&r, r.attr_set())));
    }

    #[test]
    fn minimize_sets_keeps_antichain() {
        let sets = vec![
            [0usize, 1].into_iter().collect::<AttrSet>(),
            [0usize].into_iter().collect::<AttrSet>(),
            [1usize, 2].into_iter().collect::<AttrSet>(),
        ];
        let m = minimize_sets(&sets);
        assert_eq!(m.len(), 2);
        assert!(m.contains(&AttrSet::single(0)));
    }
}
