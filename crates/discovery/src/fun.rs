//! FUN (Novelli & Cicchetti, ICDT 2001).
//!
//! Cardinality-driven level-wise discovery: the lattice is restricted to
//! *free sets* — attribute sets whose cardinality (number of distinct
//! value combinations) strictly exceeds that of every strict subset. Only
//! free sets can be minimal FD left-hand sides, and the FD validity test
//! is pure counting: `X → a` holds iff `|X| = |X ∪ {a}|`.
//!
//! This reimplementation keeps FUN's defining ideas (free-set pruning,
//! cardinality-equality validity, key cut-off) on top of the shared PLI
//! substrate; the embedded-dependency extension of the original paper is
//! out of scope, as in the InFine evaluation.

use crate::fd::{Fd, FdSet};
use crate::levelwise::constant_attrs;
use infine_partitions::PliCache;
use infine_relation::{AttrSet, Relation};
use std::collections::{HashMap, HashSet};

/// Discover all minimal FDs over `attrs` in `rel` with FUN.
pub fn fun(rel: &Relation, attrs: AttrSet) -> FdSet {
    let obs = crate::obs::MinerObs::resolve("FUN");
    let _span = obs.start();
    let mut result = FdSet::new();
    let constants = constant_attrs(rel, attrs);
    for a in constants.iter() {
        result.insert_minimal(Fd::new(AttrSet::EMPTY, a));
    }
    let universe = attrs.difference(constants);
    if universe.len() < 2 {
        return result;
    }
    let nrows = rel.nrows();
    let mut cache = PliCache::with_attrs(rel, universe);
    let mut card: HashMap<AttrSet, usize> = HashMap::new();
    card.insert(AttrSet::EMPTY, 1.min(nrows));

    // Level 1: singletons; all are free (constants were excluded, so
    // |{a}| > 1 = |∅|).
    let mut free_level: Vec<AttrSet> = universe.iter().map(AttrSet::single).collect();
    for &x in &free_level {
        let c = cache.get(x).distinct_count();
        card.insert(x, c);
    }

    let mut level_t0 = std::time::Instant::now();
    while !free_level.is_empty() {
        // Emit FDs: for each free X and attribute a outside X, the FD
        // X → a holds iff adding a does not increase the cardinality —
        // exactly the counting kernel's verdict against π_X (already
        // cached: free sets got their partition when their cardinality
        // was computed). No `X ∪ {a}` product is materialized for these
        // checks, so the old per-level product prefetch has nothing left
        // to batch; only genuine candidate partitions (below) are still
        // prefetched. Minimality is guaranteed by free-set pruning plus
        // the subset check against already-found FDs.
        let mut keys: HashSet<AttrSet> = HashSet::new();
        for &x in &free_level {
            let cx = card[&x];
            if cx == nrows {
                // X is a key: it determines every attribute. Supersets of
                // keys are non-free; stop expanding through X.
                for a in universe.difference(x).iter() {
                    if !result.has_subset_lhs(x, a) {
                        result.insert_minimal(Fd::new(x, a));
                    }
                }
                keys.insert(x);
                continue;
            }
            for a in universe.difference(x).iter() {
                if result.has_subset_lhs(x, a) {
                    continue;
                }
                if cache.check(x, a) {
                    result.insert_minimal(Fd::new(x, a));
                }
            }
        }

        // Generate the next level of free-set candidates: prefix join of
        // non-key free sets, then keep candidates that are genuinely free
        // (cardinality strictly above every immediate subset) — non-free
        // sets cannot be minimal lhs and their supersets are non-free too.
        let expandable: Vec<AttrSet> = free_level
            .iter()
            .copied()
            .filter(|x| !keys.contains(x))
            .collect();
        let present: HashSet<AttrSet> = expandable.iter().copied().collect();
        let mut by_prefix: HashMap<AttrSet, Vec<usize>> = HashMap::new();
        for &x in &expandable {
            let max = x.iter().last().expect("nonempty");
            by_prefix.entry(x.without(max)).or_default().push(max);
        }
        // Candidate generation is pure set logic; settle the list first so
        // the cardinality partitions can be prefetched in one batch.
        let mut cands: Vec<AttrSet> = Vec::new();
        for (prefix, maxes) in &by_prefix {
            let mut ms = maxes.clone();
            ms.sort_unstable();
            for i in 0..ms.len() {
                for j in (i + 1)..ms.len() {
                    let cand = prefix.with(ms[i]).with(ms[j]);
                    if cand.immediate_subsets().all(|s| present.contains(&s)) {
                        cands.push(cand);
                    }
                }
            }
        }
        cands.sort_by_key(|s| s.bits());
        cands.dedup();
        if !infine_exec::sequential() {
            let uncarded: Vec<AttrSet> = cands
                .iter()
                .copied()
                .filter(|c| !card.contains_key(c))
                .collect();
            cache.prefetch(&uncarded);
        }
        let mut next: Vec<AttrSet> = Vec::new();
        for cand in cands {
            let c = *card
                .entry(cand)
                .or_insert_with(|| cache.get(cand).distinct_count());
            // free ⇔ strictly larger than every immediate subset
            let is_free = cand.immediate_subsets().all(|s| card[&s] < c);
            if is_free {
                next.push(cand);
            }
        }
        free_level = next;
        level_t0 = obs.level_done(level_t0);
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fd::same_fds;
    use crate::levelwise::mine_fds_bruteforce;
    use crate::tane::tane;
    use infine_relation::{relation_from_rows, Value};

    fn rel() -> Relation {
        relation_from_rows(
            "t",
            &["a", "b", "c", "d"],
            &[
                &[Value::Int(1), Value::Int(10), Value::Int(0), Value::Int(7)],
                &[Value::Int(2), Value::Int(10), Value::Int(0), Value::Int(7)],
                &[Value::Int(3), Value::Int(20), Value::Int(1), Value::Int(7)],
                &[Value::Int(4), Value::Int(20), Value::Int(1), Value::Int(7)],
                &[Value::Int(5), Value::Int(30), Value::Int(0), Value::Int(7)],
            ],
        )
    }

    #[test]
    fn fun_matches_tane_and_bruteforce() {
        let r = rel();
        let f = fun(&r, r.attr_set());
        let t = tane(&r, r.attr_set());
        let b = mine_fds_bruteforce(&r, r.attr_set());
        assert!(
            same_fds(&f, &t),
            "\nfun: {:?}\ntane: {:?}",
            f.to_sorted_vec(),
            t.to_sorted_vec()
        );
        assert!(same_fds(&f, &b));
    }

    #[test]
    fn fun_key_shortcut_emits_key_fds() {
        let r = relation_from_rows(
            "t",
            &["id", "x", "y"],
            &[
                &[Value::Int(1), Value::Int(5), Value::Int(5)],
                &[Value::Int(2), Value::Int(5), Value::Int(6)],
                &[Value::Int(3), Value::Int(6), Value::Int(6)],
            ],
        );
        let f = fun(&r, r.attr_set());
        assert!(f.contains(&Fd::new(AttrSet::single(0), 1)));
        assert!(f.contains(&Fd::new(AttrSet::single(0), 2)));
        assert!(same_fds(&f, &mine_fds_bruteforce(&r, r.attr_set())));
    }

    #[test]
    fn fun_two_attribute_bijection() {
        let r = relation_from_rows(
            "t",
            &["a", "b"],
            &[
                &[Value::Int(1), Value::Int(10)],
                &[Value::Int(2), Value::Int(20)],
                &[Value::Int(1), Value::Int(10)],
            ],
        );
        let f = fun(&r, r.attr_set());
        assert!(f.contains(&Fd::new(AttrSet::single(0), 1)));
        assert!(f.contains(&Fd::new(AttrSet::single(1), 0)));
    }

    #[test]
    fn fun_restriction() {
        let r = rel();
        let attrs: AttrSet = [1usize, 2, 3].into_iter().collect();
        let f = fun(&r, attrs);
        let b = mine_fds_bruteforce(&r, attrs);
        assert!(same_fds(&f, &b));
    }
}
