//! Functional dependencies, FD sets, and Armstrong-axiom reasoning.
//!
//! Throughout the workspace FDs are *canonical*: a single rhs attribute
//! and (when stored in an [`FdSet`] via [`FdSet::insert_minimal`]) a
//! subset-minimal lhs. The empty lhs is allowed and denotes a constant
//! attribute (`∅ → a`).

use infine_relation::{AttrId, AttrSet, Schema};
use std::collections::HashMap;
use std::fmt;

/// A canonical functional dependency `lhs → rhs`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Fd {
    /// Left-hand side attribute set (may be empty: constant column).
    pub lhs: AttrSet,
    /// Right-hand side attribute.
    pub rhs: AttrId,
}

impl Fd {
    /// Construct, asserting non-triviality (`rhs ∉ lhs`).
    pub fn new(lhs: AttrSet, rhs: AttrId) -> Fd {
        assert!(!lhs.contains(rhs), "trivial FD: rhs {rhs} ∈ lhs {lhs:?}");
        Fd { lhs, rhs }
    }

    /// Render with attribute names from a schema.
    pub fn render(&self, schema: &Schema) -> String {
        let lhs = if self.lhs.is_empty() {
            "∅".to_string()
        } else {
            schema.render_set(self.lhs)
        };
        format!("{lhs} → {}", schema.name(self.rhs))
    }

    /// All attributes mentioned by the FD.
    pub fn attrs(&self) -> AttrSet {
        self.lhs.with(self.rhs)
    }
}

impl fmt::Display for Fd {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?} → {}", self.lhs, self.rhs)
    }
}

/// A set of canonical FDs, stored per rhs attribute.
///
/// [`FdSet::insert_minimal`] maintains the *antichain* invariant per rhs:
/// no stored lhs is a subset of another. All reasoning helpers (closure,
/// implication, covers) work regardless of that invariant, so the set can
/// also hold raw collections via [`FdSet::insert_unchecked`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FdSet {
    by_rhs: HashMap<AttrId, Vec<AttrSet>>,
}

impl FdSet {
    /// Empty set.
    pub fn new() -> FdSet {
        FdSet::default()
    }

    /// Build from an iterator, minimally.
    pub fn from_fds(fds: impl IntoIterator<Item = Fd>) -> FdSet {
        let mut s = FdSet::new();
        for fd in fds {
            s.insert_minimal(fd);
        }
        s
    }

    /// Number of stored FDs.
    pub fn len(&self) -> usize {
        self.by_rhs.values().map(Vec::len).sum()
    }

    /// True iff no FD is stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Insert keeping the per-rhs antichain: drop the FD if a stored lhs
    /// is a subset; evict stored supersets. Returns true iff inserted.
    pub fn insert_minimal(&mut self, fd: Fd) -> bool {
        let lhss = self.by_rhs.entry(fd.rhs).or_default();
        if lhss.iter().any(|&x| x.is_subset(fd.lhs)) {
            return false;
        }
        lhss.retain(|&x| !fd.lhs.is_subset(x));
        lhss.push(fd.lhs);
        true
    }

    /// Insert without minimality maintenance (deduplicates exact matches).
    pub fn insert_unchecked(&mut self, fd: Fd) -> bool {
        let lhss = self.by_rhs.entry(fd.rhs).or_default();
        if lhss.contains(&fd.lhs) {
            return false;
        }
        lhss.push(fd.lhs);
        true
    }

    /// Remove an exact FD; returns true iff it was present.
    pub fn remove(&mut self, fd: &Fd) -> bool {
        if let Some(lhss) = self.by_rhs.get_mut(&fd.rhs) {
            if let Some(pos) = lhss.iter().position(|&x| x == fd.lhs) {
                lhss.swap_remove(pos);
                return true;
            }
        }
        false
    }

    /// Exact membership.
    pub fn contains(&self, fd: &Fd) -> bool {
        self.by_rhs
            .get(&fd.rhs)
            .map(|v| v.contains(&fd.lhs))
            .unwrap_or(false)
    }

    /// Is there a stored `X → rhs` with `X ⊆ lhs`? (The subset-pruning
    /// test of Algorithms 2, 3, and 5.)
    pub fn has_subset_lhs(&self, lhs: AttrSet, rhs: AttrId) -> bool {
        self.by_rhs
            .get(&rhs)
            .map(|v| v.iter().any(|&x| x.is_subset(lhs)))
            .unwrap_or(false)
    }

    /// The stored lhs sets for one rhs.
    pub fn lhss_for(&self, rhs: AttrId) -> &[AttrSet] {
        self.by_rhs.get(&rhs).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Rhs attributes that have at least one FD.
    pub fn rhs_attrs(&self) -> impl Iterator<Item = AttrId> + '_ {
        self.by_rhs
            .iter()
            .filter(|(_, v)| !v.is_empty())
            .map(|(&a, _)| a)
    }

    /// Iterate all FDs (unordered).
    pub fn iter(&self) -> impl Iterator<Item = Fd> + '_ {
        self.by_rhs
            .iter()
            .flat_map(|(&rhs, lhss)| lhss.iter().map(move |&lhs| Fd { lhs, rhs }))
    }

    /// Sorted vector of FDs — canonical order for comparisons and output.
    pub fn to_sorted_vec(&self) -> Vec<Fd> {
        let mut v: Vec<Fd> = self.iter().collect();
        v.sort();
        v
    }

    /// Merge another set (minimally).
    pub fn extend_minimal(&mut self, other: &FdSet) {
        for fd in other.iter() {
            self.insert_minimal(fd);
        }
    }

    /// Attribute-set closure `X⁺` under the stored FDs (Armstrong).
    ///
    /// Linear passes to a fixpoint; at ≤ 64 attributes and the FD-set
    /// sizes of this workload the simple loop beats index maintenance.
    pub fn closure(&self, attrs: AttrSet) -> AttrSet {
        let mut closed = attrs;
        loop {
            let before = closed;
            for (&rhs, lhss) in &self.by_rhs {
                if closed.contains(rhs) {
                    continue;
                }
                if lhss.iter().any(|&lhs| lhs.is_subset(closed)) {
                    closed = closed.with(rhs);
                }
            }
            if closed == before {
                return closed;
            }
        }
    }

    /// Does the stored set logically imply `fd`?
    pub fn implies(&self, fd: &Fd) -> bool {
        self.closure(fd.lhs).contains(fd.rhs)
    }

    /// Logical equivalence with another set (mutual implication).
    pub fn equivalent(&self, other: &FdSet) -> bool {
        self.iter().all(|fd| other.implies(&fd)) && other.iter().all(|fd| self.implies(&fd))
    }

    /// A minimal cover: every lhs is reduced (no extraneous attribute) and
    /// every FD not implied by the others is kept.
    pub fn minimal_cover(&self) -> FdSet {
        // 1. reduce lhs attributes
        let mut reduced = FdSet::new();
        for fd in self.iter() {
            let mut lhs = fd.lhs;
            loop {
                let mut shrunk = false;
                for a in lhs.iter() {
                    let candidate = lhs.without(a);
                    if self.closure(candidate).contains(fd.rhs) {
                        lhs = candidate;
                        shrunk = true;
                        break;
                    }
                }
                if !shrunk {
                    break;
                }
            }
            reduced.insert_minimal(Fd { lhs, rhs: fd.rhs });
        }
        // 2. drop FDs implied by the remaining ones (sequential scan over
        // the working set; once dropped an FD cannot justify later drops)
        let all: Vec<Fd> = reduced.to_sorted_vec();
        let mut kept = vec![true; all.len()];
        for i in 0..all.len() {
            kept[i] = false;
            let rest: FdSet = all
                .iter()
                .enumerate()
                .filter(|&(j, _)| kept[j])
                .map(|(_, &fd)| fd)
                .collect::<Vec<_>>()
                .into_iter()
                .fold(FdSet::new(), |mut s, fd| {
                    s.insert_unchecked(fd);
                    s
                });
            if !rest.implies(&all[i]) {
                kept[i] = true;
            }
        }
        let mut cover = FdSet::new();
        for (i, fd) in all.iter().enumerate() {
            if kept[i] {
                cover.insert_minimal(*fd);
            }
        }
        cover
    }

    /// All ⊆-minimal candidate keys of a relation with attribute set
    /// `universe`, derived from the stored FDs: the minimal `K` with
    /// `closure(K) = universe`.
    ///
    /// Classic application of the closure machinery (database design /
    /// normalization); level-wise search with antichain pruning, seeded
    /// with the attributes that appear in no rhs (those belong to every
    /// key).
    pub fn candidate_keys(&self, universe: AttrSet) -> Vec<AttrSet> {
        if universe.is_empty() {
            return vec![AttrSet::EMPTY];
        }
        // Attributes that appear in no rhs cannot be derived, so they
        // belong to every key (the "core").
        let determined: AttrSet = self
            .by_rhs
            .iter()
            .filter(|(_, lhss)| !lhss.is_empty())
            .map(|(&a, _)| a)
            .collect();
        let core = universe.difference(determined);
        if universe.is_subset(self.closure(core)) {
            return vec![core];
        }
        // Grow the core with subsets of the derivable attributes,
        // level-wise, max-attribute extension, antichain pruning.
        let pool = universe.intersect(determined);
        let mut found: Vec<AttrSet> = Vec::new();
        let mut level: Vec<AttrSet> = pool.iter().map(|a| core.with(a)).collect();
        while !level.is_empty() {
            let mut extendable = Vec::new();
            for &k in &level {
                if found.iter().any(|f| f.is_subset(k)) {
                    continue;
                }
                if universe.is_subset(self.closure(k)) {
                    found.push(k);
                } else {
                    extendable.push(k);
                }
            }
            let mut next = Vec::new();
            for &k in &extendable {
                let max_ext = k
                    .difference(core)
                    .iter()
                    .last()
                    .expect("extension part is non-empty past level 1");
                for b in pool.iter() {
                    if b > max_ext {
                        next.push(k.with(b));
                    }
                }
            }
            level = next;
        }
        found.sort_by_key(|s| (s.len(), s.bits()));
        found
    }

    /// Render all FDs with a schema, sorted, one per line.
    pub fn render(&self, schema: &Schema) -> String {
        self.to_sorted_vec()
            .iter()
            .map(|fd| fd.render(schema))
            .collect::<Vec<_>>()
            .join("\n")
    }
}

impl FromIterator<Fd> for FdSet {
    fn from_iter<T: IntoIterator<Item = Fd>>(iter: T) -> Self {
        FdSet::from_fds(iter)
    }
}

/// Do two FD sets contain exactly the same FDs (as sets, not logically)?
pub fn same_fds(a: &FdSet, b: &FdSet) -> bool {
    a.to_sorted_vec() == b.to_sorted_vec()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(bits: &[AttrId]) -> AttrSet {
        bits.iter().copied().collect()
    }

    #[test]
    fn insert_minimal_keeps_antichain() {
        let mut s = FdSet::new();
        assert!(s.insert_minimal(Fd::new(set(&[0, 1]), 2)));
        // superset rejected
        assert!(!s.insert_minimal(Fd::new(set(&[0, 1, 3]), 2)));
        // subset evicts superset
        assert!(s.insert_minimal(Fd::new(set(&[0]), 2)));
        assert_eq!(s.len(), 1);
        assert!(s.contains(&Fd::new(set(&[0]), 2)));
    }

    #[test]
    #[should_panic(expected = "trivial FD")]
    fn trivial_fd_rejected() {
        Fd::new(set(&[0, 1]), 1);
    }

    #[test]
    fn closure_transitivity() {
        // a→b, b→c  ⇒  {a}+ = {a,b,c}
        let s = FdSet::from_fds([Fd::new(set(&[0]), 1), Fd::new(set(&[1]), 2)]);
        assert_eq!(s.closure(set(&[0])), set(&[0, 1, 2]));
        assert!(s.implies(&Fd::new(set(&[0]), 2)));
        assert!(!s.implies(&Fd::new(set(&[2]), 0)));
    }

    #[test]
    fn closure_handles_empty_lhs() {
        // ∅→a (constant), a,b→c
        let s = FdSet::from_fds([Fd::new(AttrSet::EMPTY, 0), Fd::new(set(&[0, 1]), 2)]);
        assert_eq!(s.closure(set(&[1])), set(&[0, 1, 2]));
    }

    #[test]
    fn equivalence_is_logical() {
        // {a→b, b→c} ≡ {a→b, b→c, a→c}
        let s1 = FdSet::from_fds([Fd::new(set(&[0]), 1), Fd::new(set(&[1]), 2)]);
        let mut s2 = s1.clone();
        s2.insert_unchecked(Fd::new(set(&[0]), 2));
        assert!(s1.equivalent(&s2));
        let s3 = FdSet::from_fds([Fd::new(set(&[0]), 1)]);
        assert!(!s1.equivalent(&s3));
    }

    #[test]
    fn minimal_cover_reduces_lhs_and_drops_implied() {
        // a→b; ab→c (lhs reducible to a); a→c (implied once reduced)
        let mut s = FdSet::new();
        s.insert_unchecked(Fd::new(set(&[0]), 1));
        s.insert_unchecked(Fd::new(set(&[0, 1]), 2));
        s.insert_unchecked(Fd::new(set(&[0]), 2));
        let cover = s.minimal_cover();
        assert!(cover.equivalent(&s));
        assert!(
            cover.len() <= 2,
            "cover too large: {:?}",
            cover.to_sorted_vec()
        );
        assert!(cover.contains(&Fd::new(set(&[0]), 1)));
    }

    #[test]
    fn has_subset_lhs_checks_per_rhs() {
        let s = FdSet::from_fds([Fd::new(set(&[0]), 2)]);
        assert!(s.has_subset_lhs(set(&[0, 1]), 2));
        assert!(!s.has_subset_lhs(set(&[1]), 2));
        assert!(!s.has_subset_lhs(set(&[0, 1]), 3));
    }

    #[test]
    fn sorted_vec_is_deterministic() {
        let s = FdSet::from_fds([
            Fd::new(set(&[2]), 0),
            Fd::new(set(&[1]), 0),
            Fd::new(set(&[0]), 1),
        ]);
        let v = s.to_sorted_vec();
        assert_eq!(v.len(), 3);
        let mut sorted = v.clone();
        sorted.sort();
        assert_eq!(v, sorted);
    }

    #[test]
    fn extend_minimal_merges() {
        let mut a = FdSet::from_fds([Fd::new(set(&[0, 1]), 2)]);
        let b = FdSet::from_fds([Fd::new(set(&[0]), 2), Fd::new(set(&[3]), 4)]);
        a.extend_minimal(&b);
        assert_eq!(a.len(), 2);
        assert!(a.contains(&Fd::new(set(&[0]), 2)));
    }

    #[test]
    fn candidate_keys_textbook_example() {
        // R(a,b,c,d): a→b, b→c. Keys: {a,d} (d underived, a derives b,c).
        let s = FdSet::from_fds([Fd::new(set(&[0]), 1), Fd::new(set(&[1]), 2)]);
        let keys = s.candidate_keys(AttrSet::all(4));
        assert_eq!(keys, vec![set(&[0, 3])]);
    }

    #[test]
    fn candidate_keys_multiple_minimal() {
        // a→b, b→a, plus c underived: keys {a,c} and {b,c}.
        let s = FdSet::from_fds([Fd::new(set(&[0]), 1), Fd::new(set(&[1]), 0)]);
        let keys = s.candidate_keys(AttrSet::all(3));
        assert_eq!(keys, vec![set(&[0, 2]), set(&[1, 2])]);
    }

    #[test]
    fn candidate_keys_no_fds_means_whole_relation() {
        let keys = FdSet::new().candidate_keys(AttrSet::all(3));
        assert_eq!(keys, vec![AttrSet::all(3)]);
    }

    #[test]
    fn candidate_keys_are_an_antichain_of_superkeys() {
        // chain a→b→c→d plus d→a: every singleton is a key.
        let s = FdSet::from_fds([
            Fd::new(set(&[0]), 1),
            Fd::new(set(&[1]), 2),
            Fd::new(set(&[2]), 3),
            Fd::new(set(&[3]), 0),
        ]);
        let keys = s.candidate_keys(AttrSet::all(4));
        assert_eq!(keys.len(), 4);
        for k in &keys {
            assert_eq!(k.len(), 1);
            assert_eq!(s.closure(*k), AttrSet::all(4));
        }
    }

    #[test]
    fn render_uses_names() {
        let schema = Schema::base("t", &["x", "y", "z"]);
        let fd = Fd::new(set(&[0, 1]), 2);
        assert_eq!(fd.render(&schema), "x,y → z");
        assert_eq!(Fd::new(AttrSet::EMPTY, 0).render(&schema), "∅ → x");
    }
}
