//! # infine-discovery
//!
//! From-scratch reimplementations of the four FD-discovery baselines the
//! InFine paper evaluates against — TANE, FUN, FastFDs, and HyFD — plus
//! the shared FD representation ([`Fd`]/[`FdSet`], Armstrong reasoning)
//! and the generic level-wise miner that InFine's own Algorithms 2 and 3
//! reuse (candidate pruning against already-known FD sets, exact or
//! `g3`-approximate validity).
//!
//! All algorithms operate on the same storage and partition substrate,
//! making the benchmark comparison purely algorithmic.

pub mod algo;
pub mod depminer;
pub mod fastfds;
pub mod fd;
pub mod fun;
pub mod hyfd;
pub mod levelwise;
pub(crate) mod obs;
pub mod tane;

pub use algo::Algorithm;
pub use depminer::depminer;
pub use fastfds::fastfds;
pub use fd::{same_fds, Fd, FdSet};
pub use fun::fun;
pub use hyfd::hyfd;
pub use levelwise::{
    constant_attrs, extend_seeds, mine_afds, mine_fds, mine_fds_bruteforce, mine_new_fds,
    mine_new_fds_via, mine_new_fds_with, ApproxValidity, ExactValidity, Validity,
};
pub use tane::tane;
