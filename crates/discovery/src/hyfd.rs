//! HyFD (Papenbrock & Naumann, SIGMOD 2016).
//!
//! Hybrid discovery in three phases:
//!
//! 1. **Sampling** — compare "nearby" tuple pairs (neighbours inside each
//!    single-attribute partition class) and record their *agree sets*: the
//!    negative cover. This implementation is deterministic: adjacent pairs
//!    plus a stride-2 pass per class, no RNG.
//! 2. **Induction** — maintain a positive cover, initialized to `∅ → a`
//!    for every attribute, and *specialize* it against each agree set:
//!    any candidate `X → a` with `X ⊆ ag` and `a ∉ ag` is contradicted and
//!    replaced by its minimal extensions `X ∪ {b} → a`, `b ∉ ag`.
//! 3. **Validation** — check the surviving candidates against the data
//!    (stripped partitions), feeding every *observed* violation back into
//!    the specializer until the cover is violation-free.
//!
//! The result is exact: validation guarantees soundness, and the cover
//! invariant ("for every true FD `X → a` the cover holds some `Y → a`,
//! `Y ⊆ X`") guarantees completeness regardless of sampling quality — a
//! weak sample only shifts work from phase 2 to phase 3, which is the
//! trade-off the original paper exploits.

use crate::fd::{Fd, FdSet};
use crate::levelwise::constant_attrs;
use infine_partitions::PliCache;
use infine_relation::{AttrId, AttrSet, Relation};
use std::collections::HashSet;

/// Discover all minimal FDs over `attrs` in `rel` with HyFD.
pub fn hyfd(rel: &Relation, attrs: AttrSet) -> FdSet {
    let obs = crate::obs::MinerObs::resolve("HyFD");
    let _span = obs.start();
    let mut result = FdSet::new();
    let constants = constant_attrs(rel, attrs);
    for a in constants.iter() {
        result.insert_minimal(Fd::new(AttrSet::EMPTY, a));
    }
    let universe = attrs.difference(constants);
    if universe.len() < 2 {
        return result;
    }

    // ---- Phase 1: sampling ----
    let mut negative: Vec<AttrSet> = sample_agree_sets(rel, universe).into_iter().collect();
    // Larger agree sets first: they contradict more candidates at once.
    negative.sort_by(|a, b| b.len().cmp(&a.len()).then(a.bits().cmp(&b.bits())));

    // ---- Phase 2: induction ----
    let mut cover = FdSet::new();
    for a in universe.iter() {
        cover.insert_unchecked(Fd::new(AttrSet::EMPTY, a));
    }
    for &ag in &negative {
        specialize(&mut cover, ag, universe);
    }

    // ---- Phase 3: validation ----
    let mut cache = PliCache::with_attrs(rel, universe);
    // Each validate-specialize round stands in for a lattice level.
    let mut level_t0 = std::time::Instant::now();
    loop {
        // Validate in ascending lhs size so subsets are settled first.
        let mut candidates = cover.to_sorted_vec();
        candidates.sort_by_key(|fd| (fd.lhs.len(), fd.lhs.bits(), fd.rhs));
        // Batch-compute the lhs partitions this round's kernel checks
        // will walk (products are never materialized; a few lhs are
        // wasted when an early specialization evicts a later candidate,
        // but the verdicts — and the output — are unchanged).
        if !infine_exec::sequential() {
            let round_sets: Vec<AttrSet> = candidates
                .iter()
                .filter(|fd| !fd.lhs.is_empty())
                .map(|fd| fd.lhs)
                .collect();
            cache.prefetch(&round_sets);
        }
        let mut new_violations: Vec<AttrSet> = Vec::new();
        for fd in &candidates {
            if !cover.contains(fd) {
                continue; // already specialized away this round
            }
            let pair = if fd.lhs.is_empty() {
                // universe excludes constants, so ∅ → a is always false:
                // any two rows with different rhs values witness it.
                let first_code = rel.code(0, fd.rhs);
                let other = (1..rel.nrows())
                    .find(|&r| rel.code(r, fd.rhs) != first_code)
                    .expect("rhs is non-constant in the lattice universe");
                Some((0u32, other as u32))
            } else {
                // The early-exiting kernel yields the violating pair as a
                // by-product of the validity check itself.
                cache.check_witness(fd.lhs, fd.rhs)
            };
            if let Some(pair) = pair {
                let ag = pair_agree_set(rel, pair, universe);
                new_violations.push(ag);
                specialize_one(&mut cover, *fd, ag, universe);
            }
        }
        level_t0 = obs.level_done(level_t0);
        if new_violations.is_empty() {
            break;
        }
    }

    for fd in cover.iter() {
        result.insert_minimal(fd);
    }
    result
}

/// Deterministic neighbourhood sampling: within every class of every
/// single-attribute partition, compare adjacent rows and rows at stride 2.
fn sample_agree_sets(rel: &Relation, universe: AttrSet) -> HashSet<AttrSet> {
    let attrs: Vec<AttrId> = universe.iter().collect();
    // Hoist the code columns: the pair loop reads O(pairs · |attrs|)
    // cells, and direct slice indexing beats per-cell column lookup.
    let cols: Vec<&[u32]> = attrs
        .iter()
        .map(|&a| rel.column(a).codes.as_slice())
        .collect();
    let mut agree: HashSet<AttrSet> = HashSet::new();
    for &a in &attrs {
        let pli = infine_partitions::Pli::for_attr(rel, a);
        for class in pli.classes() {
            for w in 1..=2usize {
                for i in w..class.len() {
                    let (r1, r2) = (class[i - w] as usize, class[i] as usize);
                    let mut ag = AttrSet::EMPTY;
                    for (bi, &b) in attrs.iter().enumerate() {
                        if cols[bi][r1] == cols[bi][r2] {
                            ag = ag.with(b);
                        }
                    }
                    agree.insert(ag);
                }
            }
        }
    }
    agree
}

/// The agree set of a violating row pair (the attributes of `universe` on
/// which the two rows coincide).
fn pair_agree_set(rel: &Relation, pair: (u32, u32), universe: AttrSet) -> AttrSet {
    let (r1, r2) = (pair.0 as usize, pair.1 as usize);
    let mut ag = AttrSet::EMPTY;
    for b in universe.iter() {
        if rel.code(r1, b) == rel.code(r2, b) {
            ag = ag.with(b);
        }
    }
    ag
}

/// Specialize the whole cover against one agree set.
fn specialize(cover: &mut FdSet, ag: AttrSet, universe: AttrSet) {
    for rhs in universe.difference(ag).iter() {
        let contradicted: Vec<AttrSet> = cover
            .lhss_for(rhs)
            .iter()
            .copied()
            .filter(|lhs| lhs.is_subset(ag))
            .collect();
        for lhs in contradicted {
            extend_candidate(cover, Fd::new(lhs, rhs), ag, universe);
        }
    }
}

/// Specialize a single contradicted candidate.
fn specialize_one(cover: &mut FdSet, fd: Fd, ag: AttrSet, universe: AttrSet) {
    debug_assert!(fd.lhs.is_subset(ag) && !ag.contains(fd.rhs));
    extend_candidate(cover, fd, ag, universe);
}

/// Remove `fd` and insert its minimal extensions avoiding the agree set.
fn extend_candidate(cover: &mut FdSet, fd: Fd, ag: AttrSet, universe: AttrSet) {
    cover.remove(&fd);
    for b in universe.difference(ag).iter() {
        if b == fd.rhs {
            continue;
        }
        let ext = fd.lhs.with(b);
        if !cover.has_subset_lhs(ext, fd.rhs) {
            cover.insert_minimal(Fd::new(ext, fd.rhs));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fd::same_fds;
    use crate::levelwise::mine_fds_bruteforce;
    use crate::tane::tane;
    use infine_relation::{relation_from_rows, Value};

    fn rel() -> Relation {
        relation_from_rows(
            "t",
            &["a", "b", "c", "d"],
            &[
                &[Value::Int(1), Value::Int(10), Value::Int(0), Value::Int(7)],
                &[Value::Int(2), Value::Int(10), Value::Int(0), Value::Int(7)],
                &[Value::Int(3), Value::Int(20), Value::Int(1), Value::Int(7)],
                &[Value::Int(4), Value::Int(20), Value::Int(1), Value::Int(7)],
                &[Value::Int(5), Value::Int(30), Value::Int(0), Value::Int(7)],
            ],
        )
    }

    #[test]
    fn hyfd_matches_tane_and_bruteforce() {
        let r = rel();
        let h = hyfd(&r, r.attr_set());
        let t = tane(&r, r.attr_set());
        assert!(
            same_fds(&h, &t),
            "\nhyfd: {:?}\ntane: {:?}",
            h.to_sorted_vec(),
            t.to_sorted_vec()
        );
        assert!(same_fds(&h, &mine_fds_bruteforce(&r, r.attr_set())));
    }

    #[test]
    fn hyfd_on_all_distinct_table() {
        let r = relation_from_rows(
            "t",
            &["a", "b", "c"],
            &[
                &[Value::Int(1), Value::Int(4), Value::Int(9)],
                &[Value::Int(2), Value::Int(5), Value::Int(8)],
                &[Value::Int(3), Value::Int(6), Value::Int(7)],
            ],
        );
        let h = hyfd(&r, r.attr_set());
        assert!(same_fds(&h, &mine_fds_bruteforce(&r, r.attr_set())));
    }

    #[test]
    fn hyfd_with_nulls_and_duplicates() {
        let r = relation_from_rows(
            "t",
            &["a", "b", "c"],
            &[
                &[Value::Null, Value::Int(1), Value::Int(1)],
                &[Value::Null, Value::Int(1), Value::Int(1)],
                &[Value::Int(1), Value::Int(2), Value::Int(1)],
                &[Value::Int(2), Value::Int(2), Value::Int(2)],
            ],
        );
        let h = hyfd(&r, r.attr_set());
        assert!(same_fds(&h, &mine_fds_bruteforce(&r, r.attr_set())));
    }

    #[test]
    fn specialization_keeps_cover_invariant() {
        let universe: AttrSet = AttrSet::all(3);
        let mut cover = FdSet::new();
        for a in universe.iter() {
            cover.insert_unchecked(Fd::new(AttrSet::EMPTY, a));
        }
        // agree set {0,1}: contradicts ∅→2
        specialize(&mut cover, [0usize, 1].into_iter().collect(), universe);
        // ∅→2 replaced by {2}? no — extensions avoid ag: b ∈ universe\ag = {2},
        // but b == rhs → no extension: rhs 2 has no candidate left.
        assert!(cover.lhss_for(2).is_empty());
        // ∅→0 and ∅→1 untouched (0,1 ∈ ag)
        assert_eq!(cover.lhss_for(0), &[AttrSet::EMPTY]);
        assert_eq!(cover.lhss_for(1), &[AttrSet::EMPTY]);
    }

    #[test]
    fn hyfd_restriction_matches_oracle() {
        let r = rel();
        let attrs: AttrSet = [0usize, 2, 3].into_iter().collect();
        let h = hyfd(&r, attrs);
        assert!(same_fds(&h, &mine_fds_bruteforce(&r, attrs)));
    }
}
