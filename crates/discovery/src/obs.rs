//! Miner instrumentation: one handle bundle per miner invocation.
//!
//! Every miner resolves a [`MinerObs`] against the ambient `infine-obs`
//! registry on entry (so timings land in the caller's engine scope) and
//! records two series, both labelled by algorithm:
//!
//! * `infine_miner_seconds{algo}` — wall time of the whole invocation,
//!   recorded by a span guard;
//! * `infine_miner_level_seconds{algo}` — wall time of each lattice
//!   level (level-wise miners), validation round (HyFD), or phase
//!   (FastFDs / DepMiner, which have no lattice levels).

use std::time::Instant;

pub(crate) struct MinerObs {
    total: infine_obs::SpanTimer,
    level: infine_obs::Histogram,
}

impl MinerObs {
    pub(crate) fn resolve(algo: &'static str) -> Self {
        infine_obs::with_current(|r| {
            // Pin the help text before the span timer's generic one.
            r.duration_histogram(
                "infine_miner_seconds",
                "Wall time of one full miner invocation.",
                &[("algo", algo)],
            );
            Self {
                total: r.span_timer("infine_miner_seconds", &[("algo", algo)]),
                level: r.duration_histogram(
                    "infine_miner_level_seconds",
                    "Wall time of one lattice level / round / phase of a miner.",
                    &[("algo", algo)],
                ),
            }
        })
    }

    /// Guard timing the whole invocation (records on drop).
    pub(crate) fn start(&self) -> infine_obs::SpanGuard<'_> {
        self.total.start()
    }

    /// Record one level ending now; returns the next level's start.
    pub(crate) fn level_done(&self, t0: Instant) -> Instant {
        let now = Instant::now();
        self.level.observe_duration(now.duration_since(t0));
        now
    }
}
