//! Attribute identifiers and attribute-set bitsets.
//!
//! Every schema position gets a dense [`AttrId`]; sets of attributes are a
//! single `u64` bitset ([`AttrSet`]). All lattice traversal, minimality
//! pruning, and closure computation in the workspace operates on these,
//! which is the main reason the level-wise miners stay cheap: subset and
//! superset tests compile to one AND and one compare.
//!
//! The 64-attribute cap covers every view in the paper's evaluation (the
//! widest view has 15 attributes; the widest base table 18). Constructors
//! assert the cap instead of silently wrapping.

use std::fmt;

/// Index of an attribute within a [`crate::Schema`].
pub type AttrId = usize;

/// A set of attributes over a schema with at most 64 positions.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct AttrSet(u64);

impl AttrSet {
    /// Maximum number of attributes representable.
    pub const MAX_ATTRS: usize = 64;

    /// The empty set.
    pub const EMPTY: AttrSet = AttrSet(0);

    /// Singleton set `{a}`.
    #[inline]
    pub fn single(a: AttrId) -> Self {
        assert!(a < Self::MAX_ATTRS, "attribute id {a} out of range");
        AttrSet(1u64 << a)
    }

    /// Set containing attributes `0..n`.
    #[inline]
    pub fn all(n: usize) -> Self {
        assert!(n <= Self::MAX_ATTRS, "{n} attributes exceed the 64 cap");
        if n == Self::MAX_ATTRS {
            AttrSet(u64::MAX)
        } else {
            AttrSet((1u64 << n) - 1)
        }
    }

    /// Build from raw bits. Callers own the interpretation.
    #[inline]
    pub const fn from_bits(bits: u64) -> Self {
        AttrSet(bits)
    }

    /// Raw bits.
    #[inline]
    pub const fn bits(self) -> u64 {
        self.0
    }

    /// True iff no attribute is present.
    #[inline]
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Number of attributes in the set.
    #[inline]
    pub fn len(self) -> usize {
        self.0.count_ones() as usize
    }

    /// Membership test.
    #[inline]
    pub fn contains(self, a: AttrId) -> bool {
        a < Self::MAX_ATTRS && self.0 & (1u64 << a) != 0
    }

    /// `self ∪ {a}`.
    #[inline]
    pub fn with(self, a: AttrId) -> Self {
        assert!(a < Self::MAX_ATTRS, "attribute id {a} out of range");
        AttrSet(self.0 | (1u64 << a))
    }

    /// `self \ {a}`.
    #[inline]
    pub fn without(self, a: AttrId) -> Self {
        AttrSet(self.0 & !(1u64 << (a % Self::MAX_ATTRS)))
    }

    /// Set union.
    #[inline]
    pub fn union(self, other: Self) -> Self {
        AttrSet(self.0 | other.0)
    }

    /// Set intersection.
    #[inline]
    pub fn intersect(self, other: Self) -> Self {
        AttrSet(self.0 & other.0)
    }

    /// Set difference `self \ other`.
    #[inline]
    pub fn difference(self, other: Self) -> Self {
        AttrSet(self.0 & !other.0)
    }

    /// `self ⊆ other`.
    #[inline]
    pub fn is_subset(self, other: Self) -> bool {
        self.0 & !other.0 == 0
    }

    /// `self ⊂ other` (strict).
    #[inline]
    pub fn is_strict_subset(self, other: Self) -> bool {
        self.0 != other.0 && self.is_subset(other)
    }

    /// `self ⊇ other`.
    #[inline]
    pub fn is_superset(self, other: Self) -> bool {
        other.is_subset(self)
    }

    /// True iff the sets share at least one attribute.
    #[inline]
    pub fn intersects(self, other: Self) -> bool {
        self.0 & other.0 != 0
    }

    /// Iterate attribute ids in ascending order.
    #[inline]
    pub fn iter(self) -> AttrSetIter {
        AttrSetIter(self.0)
    }

    /// The lowest attribute id, if any.
    #[inline]
    pub fn first(self) -> Option<AttrId> {
        if self.0 == 0 {
            None
        } else {
            Some(self.0.trailing_zeros() as usize)
        }
    }

    /// All subsets of `self` obtained by removing exactly one attribute
    /// (the "immediate generalizations" used by minimality checks).
    pub fn immediate_subsets(self) -> impl Iterator<Item = AttrSet> {
        self.iter().map(move |a| self.without(a))
    }

    /// Enumerate every *strict, non-empty* subset of `self`.
    ///
    /// Used by tests and by brute-force oracles; exponential, so only call
    /// on small sets.
    pub fn strict_subsets(self) -> Vec<AttrSet> {
        let bits = self.0;
        let mut out = Vec::new();
        if bits == 0 {
            return out; // the empty set has no strict subsets
        }
        // Standard sub-mask enumeration.
        let mut sub = bits;
        loop {
            sub = (sub - 1) & bits;
            if sub == 0 {
                break;
            }
            out.push(AttrSet(sub));
        }
        out
    }

    /// Collect into a `Vec<AttrId>`.
    pub fn to_vec(self) -> Vec<AttrId> {
        self.iter().collect()
    }
}

impl FromIterator<AttrId> for AttrSet {
    fn from_iter<T: IntoIterator<Item = AttrId>>(iter: T) -> Self {
        let mut s = AttrSet::EMPTY;
        for a in iter {
            s = s.with(a);
        }
        s
    }
}

impl IntoIterator for AttrSet {
    type Item = AttrId;
    type IntoIter = AttrSetIter;
    fn into_iter(self) -> AttrSetIter {
        self.iter()
    }
}

/// Ascending iterator over the attribute ids of an [`AttrSet`].
pub struct AttrSetIter(u64);

impl Iterator for AttrSetIter {
    type Item = AttrId;

    #[inline]
    fn next(&mut self) -> Option<AttrId> {
        if self.0 == 0 {
            None
        } else {
            let a = self.0.trailing_zeros() as usize;
            self.0 &= self.0 - 1;
            Some(a)
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.0.count_ones() as usize;
        (n, Some(n))
    }
}

impl ExactSizeIterator for AttrSetIter {}

impl fmt::Debug for AttrSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, a) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{a}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_and_single() {
        assert!(AttrSet::EMPTY.is_empty());
        assert_eq!(AttrSet::EMPTY.len(), 0);
        let s = AttrSet::single(5);
        assert_eq!(s.len(), 1);
        assert!(s.contains(5));
        assert!(!s.contains(4));
    }

    #[test]
    fn all_covers_prefix() {
        let s = AttrSet::all(10);
        assert_eq!(s.len(), 10);
        assert!(s.contains(0) && s.contains(9) && !s.contains(10));
        assert_eq!(AttrSet::all(64).len(), 64);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn single_panics_past_cap() {
        let _ = AttrSet::single(64);
    }

    #[test]
    fn set_algebra_laws() {
        let a: AttrSet = [0, 2, 4].into_iter().collect();
        let b: AttrSet = [2, 3].into_iter().collect();
        assert_eq!(a.union(b).to_vec(), vec![0, 2, 3, 4]);
        assert_eq!(a.intersect(b).to_vec(), vec![2]);
        assert_eq!(a.difference(b).to_vec(), vec![0, 4]);
        assert!(a.intersects(b));
        assert!(!a.difference(b).intersects(b));
    }

    #[test]
    fn subset_relations() {
        let a: AttrSet = [1, 3].into_iter().collect();
        let b: AttrSet = [1, 2, 3].into_iter().collect();
        assert!(a.is_subset(b));
        assert!(a.is_strict_subset(b));
        assert!(!b.is_subset(a));
        assert!(b.is_superset(a));
        assert!(a.is_subset(a));
        assert!(!a.is_strict_subset(a));
    }

    #[test]
    fn iteration_is_ascending_and_exact() {
        let s: AttrSet = [7, 1, 63, 0].into_iter().collect();
        let v = s.to_vec();
        assert_eq!(v, vec![0, 1, 7, 63]);
        assert_eq!(s.iter().len(), 4);
        assert_eq!(s.first(), Some(0));
        assert_eq!(AttrSet::EMPTY.first(), None);
    }

    #[test]
    fn immediate_subsets_drop_one_attribute_each() {
        let s: AttrSet = [0, 1, 2].into_iter().collect();
        let subs: Vec<_> = s.immediate_subsets().collect();
        assert_eq!(subs.len(), 3);
        for sub in subs {
            assert_eq!(sub.len(), 2);
            assert!(sub.is_strict_subset(s));
        }
    }

    #[test]
    fn strict_subsets_enumerates_all() {
        let s: AttrSet = [0, 1, 2].into_iter().collect();
        let subs = s.strict_subsets();
        // 2^3 - 2 = 6 strict non-empty subsets.
        assert_eq!(subs.len(), 6);
        for sub in &subs {
            assert!(sub.is_strict_subset(s));
            assert!(!sub.is_empty());
        }
    }

    #[test]
    fn without_is_noop_for_absent_attr() {
        let s: AttrSet = [0, 1].into_iter().collect();
        assert_eq!(s.without(5), s);
    }
}
