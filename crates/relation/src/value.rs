//! Cell values stored in relations.
//!
//! FD discovery only ever needs *equality* of values, so the concrete type
//! zoo is kept small and every variant is hashable. Floating-point values
//! are compared by their bit pattern (`f64::to_bits`), which gives a total
//! equivalence relation at the price of distinguishing `-0.0` from `0.0`
//! and unifying nothing across NaN payloads — both acceptable for
//! dictionary encoding.

use std::fmt;

/// A single cell value.
///
/// `Null` is an ordinary value for dictionary-encoding purposes: two nulls
/// receive the same code. This realizes the "null = null" convention for FD
/// satisfaction chosen in DESIGN.md §2 (the paper is null-semantics
/// agnostic). Join-key matching applies SQL semantics separately by
/// consulting [`Value::is_null`].
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Value {
    /// SQL NULL.
    Null,
    /// 64-bit signed integer.
    Int(i64),
    /// Floating point, stored as raw bits so the type is `Eq + Hash`.
    Float(u64),
    /// UTF-8 string.
    Str(Box<str>),
    /// Boolean flag.
    Bool(bool),
    /// Date as days since an arbitrary epoch (calendar math is out of scope).
    Date(i32),
}

impl Value {
    /// Build a `Float` from an `f64`.
    pub fn float(f: f64) -> Self {
        Value::Float(f.to_bits())
    }

    /// Build a `Str` from anything string-like.
    pub fn str(s: impl Into<Box<str>>) -> Self {
        Value::Str(s.into())
    }

    /// True iff the value is SQL NULL.
    #[inline]
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// The float payload, if this is a `Float`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Float(b) => Some(f64::from_bits(*b)),
            _ => None,
        }
    }

    /// The integer payload, if this is an `Int`.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// The string payload, if this is a `Str`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Approximate heap + inline footprint in bytes, used by the memory
    /// accounting in the bench harness.
    pub fn approx_bytes(&self) -> usize {
        std::mem::size_of::<Value>()
            + match self {
                Value::Str(s) => s.len(),
                _ => 0,
            }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "NULL"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(b) => write!(f, "{}", f64::from_bits(*b)),
            Value::Str(s) => write!(f, "{s}"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Date(d) => write!(f, "D{d}"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<i32> for Value {
    fn from(v: i32) -> Self {
        Value::Int(v as i64)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::str(v)
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::str(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::float(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;
    use std::hash::{Hash, Hasher};

    fn hash_of(v: &Value) -> u64 {
        let mut h = DefaultHasher::new();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn nulls_are_equal_and_hash_alike() {
        assert_eq!(Value::Null, Value::Null);
        assert_eq!(hash_of(&Value::Null), hash_of(&Value::Null));
    }

    #[test]
    fn floats_compare_by_bits() {
        assert_eq!(Value::float(1.5), Value::float(1.5));
        assert_ne!(Value::float(0.0), Value::float(-0.0));
        // NaN equals itself under bit comparison: required for dictionary
        // encoding to terminate with one code per distinct bit pattern.
        assert_eq!(Value::float(f64::NAN), Value::float(f64::NAN));
    }

    #[test]
    fn display_round_trips_simple_values() {
        assert_eq!(Value::Int(42).to_string(), "42");
        assert_eq!(Value::str("abc").to_string(), "abc");
        assert_eq!(Value::Null.to_string(), "NULL");
        assert_eq!(Value::Bool(true).to_string(), "true");
    }

    #[test]
    fn conversions_produce_expected_variants() {
        assert_eq!(Value::from(7i64), Value::Int(7));
        assert_eq!(Value::from("x"), Value::str("x"));
        assert_eq!(Value::from(true), Value::Bool(true));
        assert_eq!(Value::from(2.0f64), Value::float(2.0));
    }

    #[test]
    fn is_null_only_for_null() {
        assert!(Value::Null.is_null());
        assert!(!Value::Int(0).is_null());
        assert!(!Value::str("").is_null());
    }

    #[test]
    fn accessors_return_payloads() {
        assert_eq!(Value::Int(3).as_i64(), Some(3));
        assert_eq!(Value::float(2.5).as_f64(), Some(2.5));
        assert_eq!(Value::str("hi").as_str(), Some("hi"));
        assert_eq!(Value::Null.as_i64(), None);
    }

    #[test]
    fn approx_bytes_counts_string_payload() {
        let base = Value::Int(1).approx_bytes();
        assert_eq!(Value::str("abcd").approx_bytes(), base + 4);
    }
}
