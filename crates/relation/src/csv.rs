//! Minimal CSV reader/writer (RFC-4180-ish) for relations.
//!
//! No third-party CSV crate is in the offline allowlist, and the needs here
//! are modest: load the generated datasets, export view results for
//! inspection. Quoted fields with embedded commas, quotes, and newlines are
//! supported; the empty field and the literal `NULL` both decode to
//! [`Value::Null`].

use crate::relation::{Relation, RelationBuilder};
use crate::schema::Schema;
use crate::value::Value;
use std::fmt::Write as _;
use std::io::{self, BufRead, BufReader, BufWriter, Read, Write};

/// How to interpret CSV fields.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TypeInference {
    /// Try i64, then f64, then bool; fall back to string.
    #[default]
    Auto,
    /// Keep everything as strings (except NULL).
    Strings,
}

fn parse_field(field: &str, inference: TypeInference) -> Value {
    if field.is_empty() || field == "NULL" {
        return Value::Null;
    }
    if inference == TypeInference::Strings {
        return Value::str(field);
    }
    if let Ok(i) = field.parse::<i64>() {
        return Value::Int(i);
    }
    if let Ok(f) = field.parse::<f64>() {
        return Value::float(f);
    }
    match field {
        "true" | "TRUE" => Value::Bool(true),
        "false" | "FALSE" => Value::Bool(false),
        _ => Value::str(field),
    }
}

/// Split one CSV record that is already known to end at a record boundary.
fn split_record(line: &str) -> Vec<String> {
    let mut fields = Vec::new();
    let mut cur = String::new();
    let mut chars = line.chars().peekable();
    let mut in_quotes = false;
    while let Some(c) = chars.next() {
        if in_quotes {
            match c {
                '"' => {
                    if chars.peek() == Some(&'"') {
                        chars.next();
                        cur.push('"');
                    } else {
                        in_quotes = false;
                    }
                }
                _ => cur.push(c),
            }
        } else {
            match c {
                '"' => in_quotes = true,
                ',' => fields.push(std::mem::take(&mut cur)),
                _ => cur.push(c),
            }
        }
    }
    fields.push(cur);
    fields
}

/// True iff `line` has an unterminated quoted field (record continues on
/// the next physical line).
fn record_is_open(line: &str) -> bool {
    let mut in_quotes = false;
    let mut chars = line.chars().peekable();
    while let Some(c) = chars.next() {
        if c == '"' {
            if in_quotes && chars.peek() == Some(&'"') {
                chars.next();
            } else {
                in_quotes = !in_quotes;
            }
        }
    }
    in_quotes
}

/// Read a relation from CSV with a header row of attribute names. The
/// relation is named `name` and its attributes get lineage `name.attr`.
pub fn read_csv<R: Read>(name: &str, reader: R, inference: TypeInference) -> io::Result<Relation> {
    let mut lines = BufReader::new(reader).lines();
    let header = match lines.next() {
        Some(h) => h?,
        None => {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "empty CSV: missing header",
            ))
        }
    };
    let names = split_record(header.trim_end_matches('\r'));
    let name_refs: Vec<&str> = names.iter().map(String::as_str).collect();
    let schema = Schema::base(name, &name_refs);
    let ncols = schema.len();
    let mut builder = RelationBuilder::new(name, schema);

    let mut pending = String::new();
    for line in lines {
        let line = line?;
        let line = line.trim_end_matches('\r');
        if !pending.is_empty() {
            pending.push('\n');
            pending.push_str(line);
        } else {
            pending.push_str(line);
        }
        if record_is_open(&pending) {
            continue; // quoted newline: keep accumulating
        }
        if pending.is_empty() {
            continue; // skip blank lines
        }
        let fields = split_record(&pending);
        if fields.len() != ncols {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!(
                    "record has {} fields, header has {ncols}: {pending:?}",
                    fields.len()
                ),
            ));
        }
        builder.push_row(fields.iter().map(|f| parse_field(f, inference)).collect());
        pending.clear();
    }
    if !pending.is_empty() {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "unterminated quoted field at EOF",
        ));
    }
    Ok(builder.finish())
}

fn escape_field(out: &mut String, field: &str) {
    if field.contains(',') || field.contains('"') || field.contains('\n') || field == "NULL" {
        out.push('"');
        for c in field.chars() {
            if c == '"' {
                out.push('"');
            }
            out.push(c);
        }
        out.push('"');
    } else {
        out.push_str(field);
    }
}

/// Write a relation as CSV with a header row.
pub fn write_csv<W: Write>(rel: &Relation, writer: W) -> io::Result<()> {
    let mut w = BufWriter::new(writer);
    let mut line = String::new();
    for (i, n) in rel.schema.names().enumerate() {
        if i > 0 {
            line.push(',');
        }
        escape_field(&mut line, n);
    }
    writeln!(w, "{line}")?;
    for row in 0..rel.nrows() {
        line.clear();
        for col in 0..rel.ncols() {
            if col > 0 {
                line.push(',');
            }
            let v = rel.value(row, col);
            if v.is_null() {
                // empty field decodes back to NULL
            } else {
                let mut s = String::new();
                let _ = write!(s, "{v}");
                escape_field(&mut line, &s);
            }
        }
        writeln!(w, "{line}")?;
    }
    w.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_simple() {
        let csv = "a,b\n1,x\n2,y\n";
        let r = read_csv("t", csv.as_bytes(), TypeInference::Auto).unwrap();
        assert_eq!(r.nrows(), 2);
        assert_eq!(r.value(0, 0), &Value::Int(1));
        assert_eq!(r.value(1, 1), &Value::str("y"));
        let mut out = Vec::new();
        write_csv(&r, &mut out).unwrap();
        assert_eq!(String::from_utf8(out).unwrap(), csv);
    }

    #[test]
    fn nulls_decode_from_empty_and_literal() {
        let csv = "a,b\n,NULL\n1,z\n";
        let r = read_csv("t", csv.as_bytes(), TypeInference::Auto).unwrap();
        assert!(r.value(0, 0).is_null());
        assert!(r.value(0, 1).is_null());
        assert_eq!(r.value(1, 1), &Value::str("z"));
    }

    #[test]
    fn quoted_fields_with_commas_and_quotes() {
        let csv = "a\n\"x,y\"\n\"he said \"\"hi\"\"\"\n";
        let r = read_csv("t", csv.as_bytes(), TypeInference::Strings).unwrap();
        assert_eq!(r.value(0, 0), &Value::str("x,y"));
        assert_eq!(r.value(1, 0), &Value::str("he said \"hi\""));
    }

    #[test]
    fn quoted_newlines_span_records() {
        let csv = "a,b\n\"line1\nline2\",3\n";
        let r = read_csv("t", csv.as_bytes(), TypeInference::Auto).unwrap();
        assert_eq!(r.nrows(), 1);
        assert_eq!(r.value(0, 0), &Value::str("line1\nline2"));
        assert_eq!(r.value(0, 1), &Value::Int(3));
    }

    #[test]
    fn type_inference_detects_numbers_and_bools() {
        let csv = "a,b,c,d\n12,3.5,true,word\n";
        let r = read_csv("t", csv.as_bytes(), TypeInference::Auto).unwrap();
        assert_eq!(r.value(0, 0), &Value::Int(12));
        assert_eq!(r.value(0, 1), &Value::float(3.5));
        assert_eq!(r.value(0, 2), &Value::Bool(true));
        assert_eq!(r.value(0, 3), &Value::str("word"));
    }

    #[test]
    fn literal_null_string_survives_round_trip_quoted() {
        // A *string* "NULL" must be distinguishable from SQL NULL: the
        // writer quotes it, and quoted NULL... decodes as the string? No —
        // our reader maps the bare token NULL to Value::Null but quoted
        // fields come back as the same text. We accept the ambiguity for
        // the bare token and verify the quoted form keeps row counts sane.
        let csv = "a\n\"NULL\"\n";
        let r = read_csv("t", csv.as_bytes(), TypeInference::Strings).unwrap();
        assert_eq!(r.nrows(), 1);
    }

    #[test]
    fn arity_mismatch_is_an_error() {
        let csv = "a,b\n1\n";
        assert!(read_csv("t", csv.as_bytes(), TypeInference::Auto).is_err());
    }

    #[test]
    fn missing_header_is_an_error() {
        assert!(read_csv("t", "".as_bytes(), TypeInference::Auto).is_err());
    }

    #[test]
    fn write_escapes_null_lookalike_and_commas() {
        let mut b = RelationBuilder::new("t", Schema::base("t", &["a"]));
        b.push_row(vec![Value::str("NULL")]);
        b.push_row(vec![Value::str("x,y")]);
        b.push_row(vec![Value::Null]);
        let r = b.finish();
        let mut out = Vec::new();
        write_csv(&r, &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert_eq!(text, "a\n\"NULL\"\n\"x,y\"\n\n");
    }
}
