//! Dependency-free binary codec for the relation layer.
//!
//! The durability subsystem (`infine-durability`, the incremental
//! service's commitlog + snapshots) persists relations, dictionaries, and
//! delta batches. This module is the one place that knows their byte
//! layout: a little-endian, length-prefixed format with explicit tags —
//! no derives, no external serialization crates (the build is offline).
//!
//! Design rules, enforced by every decoder here:
//!
//! * **Never panic, never allocate unboundedly.** Decoders validate
//!   counts against the bytes actually remaining before reserving
//!   anything, and every structural invariant a later consumer relies on
//!   (codes within dictionary range, column lengths equal to the row
//!   count, tombstone ids in range) is checked at decode time. Corrupted
//!   input surfaces as [`WireError`], not as UB or a panic three layers
//!   later.
//! * **Verbatim round-trips.** `decode(encode(x))` reproduces `x`
//!   *byte-for-byte* where it matters: dictionary order, codes, null
//!   codes, and tombstone bitmaps all survive exactly, so persisted
//!   engine state is indistinguishable from never-persisted state.
//!
//! Integrity (CRCs, file headers, versioning) is layered on top by the
//! durability crate; this module is pure in-memory encoding.

use crate::attrs::AttrSet;
use crate::relation::{Column, Database, Relation, Tombstones};
use crate::schema::{Attribute, Origin, Schema};
use crate::value::Value;
use crate::{DeltaBatch, DeltaRelation};
use std::fmt;
use std::sync::Arc;

/// A malformed byte stream (truncation, bad tag, violated invariant).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireError(pub String);

impl WireError {
    fn new(msg: impl Into<String>) -> WireError {
        WireError(msg.into())
    }
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "wire decode error: {}", self.0)
    }
}

impl std::error::Error for WireError {}

/// Append-only byte sink for the codec.
#[derive(Debug, Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// Empty writer.
    pub fn new() -> Writer {
        Writer::default()
    }

    /// The encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True iff nothing was written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    pub fn bool(&mut self, v: bool) {
        self.buf.push(v as u8);
    }

    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn i32(&mut self, v: i32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// usize as u64 (the format is architecture-independent).
    pub fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }

    /// Length-prefixed UTF-8.
    pub fn str(&mut self, s: &str) {
        self.u32(s.len() as u32);
        self.buf.extend_from_slice(s.as_bytes());
    }

    /// `None` as 0, `Some(v)` as 1 + v.
    pub fn opt_u32(&mut self, v: Option<u32>) {
        match v {
            None => self.u8(0),
            Some(v) => {
                self.u8(1);
                self.u32(v);
            }
        }
    }
}

/// Bounds-checked cursor over an encoded byte slice.
#[derive(Debug)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Cursor at the start of `buf`.
    pub fn new(buf: &'a [u8]) -> Reader<'a> {
        Reader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// True iff every byte was consumed.
    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8], WireError> {
        if self.remaining() < n {
            return Err(WireError::new(format!(
                "truncated: {what} needs {n} bytes, {} remain",
                self.remaining()
            )));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    pub fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1, "u8")?[0])
    }

    pub fn bool(&mut self) -> Result<bool, WireError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            b => Err(WireError::new(format!("invalid bool byte {b}"))),
        }
    }

    pub fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.take(4, "u32")?.try_into().unwrap()))
    }

    pub fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.take(8, "u64")?.try_into().unwrap()))
    }

    pub fn i64(&mut self) -> Result<i64, WireError> {
        Ok(i64::from_le_bytes(self.take(8, "i64")?.try_into().unwrap()))
    }

    pub fn i32(&mut self) -> Result<i32, WireError> {
        Ok(i32::from_le_bytes(self.take(4, "i32")?.try_into().unwrap()))
    }

    pub fn usize(&mut self) -> Result<usize, WireError> {
        let v = self.u64()?;
        usize::try_from(v).map_err(|_| WireError::new(format!("usize overflow: {v}")))
    }

    pub fn str(&mut self) -> Result<String, WireError> {
        let len = self.u32()? as usize;
        let bytes = self.take(len, "string payload")?;
        String::from_utf8(bytes.to_vec()).map_err(|_| WireError::new("invalid UTF-8 in string"))
    }

    pub fn opt_u32(&mut self) -> Result<Option<u32>, WireError> {
        match self.u8()? {
            0 => Ok(None),
            1 => Ok(Some(self.u32()?)),
            b => Err(WireError::new(format!("invalid option byte {b}"))),
        }
    }

    /// A count of items each at least `min_bytes` wide. Rejects counts
    /// that could not possibly fit the remaining bytes *before* any
    /// allocation happens — a bit-flipped count must fail cleanly, not
    /// attempt a multi-gigabyte reserve.
    pub fn count(&mut self, min_bytes: usize, what: &str) -> Result<usize, WireError> {
        let n = self.u32()? as usize;
        if n.saturating_mul(min_bytes.max(1)) > self.remaining() {
            return Err(WireError::new(format!(
                "implausible count: {n} {what} cannot fit in {} remaining bytes",
                self.remaining()
            )));
        }
        Ok(n)
    }
}

// ---- value ----

const VAL_NULL: u8 = 0;
const VAL_INT: u8 = 1;
const VAL_FLOAT: u8 = 2;
const VAL_STR: u8 = 3;
const VAL_BOOL: u8 = 4;
const VAL_DATE: u8 = 5;

/// Encode one [`Value`] (tag byte + payload).
pub fn write_value(w: &mut Writer, v: &Value) {
    match v {
        Value::Null => w.u8(VAL_NULL),
        Value::Int(i) => {
            w.u8(VAL_INT);
            w.i64(*i);
        }
        Value::Float(bits) => {
            w.u8(VAL_FLOAT);
            w.u64(*bits);
        }
        Value::Str(s) => {
            w.u8(VAL_STR);
            w.str(s);
        }
        Value::Bool(b) => {
            w.u8(VAL_BOOL);
            w.bool(*b);
        }
        Value::Date(d) => {
            w.u8(VAL_DATE);
            w.i32(*d);
        }
    }
}

/// Decode one [`Value`].
pub fn read_value(r: &mut Reader) -> Result<Value, WireError> {
    Ok(match r.u8()? {
        VAL_NULL => Value::Null,
        VAL_INT => Value::Int(r.i64()?),
        VAL_FLOAT => Value::Float(r.u64()?),
        VAL_STR => Value::Str(r.str()?.into()),
        VAL_BOOL => Value::Bool(r.bool()?),
        VAL_DATE => Value::Date(r.i32()?),
        t => return Err(WireError::new(format!("unknown value tag {t}"))),
    })
}

// ---- schema ----

/// Encode a [`Schema`] (ordered attributes with optional lineage).
pub fn write_schema(w: &mut Writer, s: &Schema) {
    w.u32(s.len() as u32);
    for attr in s.iter() {
        w.str(&attr.name);
        match &attr.origin {
            None => w.bool(false),
            Some(o) => {
                w.bool(true);
                w.str(&o.relation);
                w.str(&o.attribute);
            }
        }
    }
}

/// Decode a [`Schema`].
pub fn read_schema(r: &mut Reader) -> Result<Schema, WireError> {
    let n = r.count(5, "schema attributes")?;
    let mut s = Schema::new();
    for _ in 0..n {
        let name = r.str()?;
        let attr = if r.bool()? {
            let relation = r.str()?;
            let attribute = r.str()?;
            Attribute::with_origin(name, Origin::new(relation, attribute))
        } else {
            Attribute::new(name)
        };
        if s.len() >= AttrSet::MAX_ATTRS || s.id_of(&attr.name).is_some() {
            return Err(WireError::new(format!(
                "invalid schema: duplicate or overflowing attribute {:?}",
                attr.name
            )));
        }
        s.push(attr);
    }
    Ok(s)
}

// ---- relation ----

fn write_column(w: &mut Writer, col: &Column) {
    w.u32(col.codes.len() as u32);
    for &c in &col.codes {
        w.u32(c);
    }
    w.u32(col.dict.len() as u32);
    for v in col.dict.iter() {
        write_value(w, v);
    }
    w.opt_u32(col.null_code);
}

fn read_column(r: &mut Reader, nrows: usize) -> Result<Column, WireError> {
    let ncodes = r.count(4, "codes")?;
    if ncodes != nrows {
        return Err(WireError::new(format!(
            "column has {ncodes} codes but the relation has {nrows} rows"
        )));
    }
    let mut codes = Vec::with_capacity(ncodes);
    for _ in 0..ncodes {
        codes.push(r.u32()?);
    }
    let dict_len = r.count(1, "dictionary values")?;
    let mut dict = Vec::with_capacity(dict_len);
    for _ in 0..dict_len {
        dict.push(read_value(r)?);
    }
    if let Some(&bad) = codes.iter().find(|&&c| c as usize >= dict_len) {
        return Err(WireError::new(format!(
            "code {bad} out of range for a dictionary of {dict_len} values"
        )));
    }
    let null_code = r.opt_u32()?;
    if let Some(nc) = null_code {
        if nc as usize >= dict_len {
            return Err(WireError::new(format!(
                "null code {nc} out of range for a dictionary of {dict_len} values"
            )));
        }
    }
    Ok(Column {
        codes,
        dict: Arc::new(dict),
        null_code,
    })
}

/// Encode a [`Relation`] verbatim: name, schema, per-column codes +
/// dictionaries + null codes, and the tombstone set (as dead row ids) —
/// the decoded relation is indistinguishable from the original,
/// including dictionary-code assignment and dead-row bookkeeping.
pub fn write_relation(w: &mut Writer, rel: &Relation) {
    w.str(&rel.name);
    write_schema(w, &rel.schema);
    w.usize(rel.nrows());
    w.u32(rel.ncols() as u32);
    for c in 0..rel.ncols() {
        write_column(w, rel.column(c));
    }
    let dead: Vec<u32> = (0..rel.nrows() as u32)
        .filter(|&row| !rel.is_live(row as usize))
        .collect();
    w.u32(dead.len() as u32);
    for d in dead {
        w.u32(d);
    }
}

/// Decode a [`Relation`]; every invariant the storage layer relies on is
/// validated (column lengths, code ranges, tombstone ids).
pub fn read_relation(r: &mut Reader) -> Result<Relation, WireError> {
    let name = r.str()?;
    let schema = read_schema(r)?;
    let nrows = r.usize()?;
    if schema.is_empty() && nrows != 0 {
        // Nothing below would cross-check nrows against column lengths
        // (there are no columns), and row-bearing zero-column relations
        // do not exist upstream.
        return Err(WireError::new(format!(
            "zero-column relation claims {nrows} rows"
        )));
    }
    let ncols = r.count(9, "columns")?;
    if ncols != schema.len() {
        return Err(WireError::new(format!(
            "relation has {ncols} columns but its schema has {}",
            schema.len()
        )));
    }
    let mut columns = Vec::with_capacity(ncols);
    for _ in 0..ncols {
        columns.push(read_column(r, nrows)?);
    }
    let ndead = r.count(4, "tombstones")?;
    let tombstones = if ndead == 0 {
        None
    } else {
        let mut t = Tombstones::default();
        t.resize(nrows);
        for _ in 0..ndead {
            let row = r.u32()? as usize;
            if row >= nrows {
                return Err(WireError::new(format!(
                    "tombstoned row {row} out of range ({nrows} rows)"
                )));
            }
            if !t.kill(row) {
                return Err(WireError::new(format!("duplicate tombstone for row {row}")));
            }
        }
        Some(Box::new(t))
    };
    Ok(Relation::from_parts(
        name, schema, columns, nrows, tombstones,
    ))
}

// ---- deltas ----

/// Encode a [`DeltaBatch`].
pub fn write_delta_batch(w: &mut Writer, batch: &DeltaBatch) {
    w.u32(batch.deletes.len() as u32);
    for &d in &batch.deletes {
        w.u32(d);
    }
    w.u32(batch.inserts.len() as u32);
    for row in &batch.inserts {
        w.u32(row.len() as u32);
        for v in row {
            write_value(w, v);
        }
    }
}

/// Decode a [`DeltaBatch`].
pub fn read_delta_batch(r: &mut Reader) -> Result<DeltaBatch, WireError> {
    let ndel = r.count(4, "deletes")?;
    let mut deletes = Vec::with_capacity(ndel);
    for _ in 0..ndel {
        deletes.push(r.u32()?);
    }
    let nins = r.count(4, "insert rows")?;
    let mut inserts = Vec::with_capacity(nins);
    for _ in 0..nins {
        let arity = r.count(1, "insert values")?;
        let mut row = Vec::with_capacity(arity);
        for _ in 0..arity {
            row.push(read_value(r)?);
        }
        inserts.push(row);
    }
    Ok(DeltaBatch { deletes, inserts })
}

/// Encode a [`DeltaRelation`] (target + batch).
pub fn write_delta_relation(w: &mut Writer, delta: &DeltaRelation) {
    w.str(&delta.target);
    write_delta_batch(w, &delta.batch);
}

/// Decode a [`DeltaRelation`].
pub fn read_delta_relation(r: &mut Reader) -> Result<DeltaRelation, WireError> {
    let target = r.str()?;
    let batch = read_delta_batch(r)?;
    Ok(DeltaRelation { target, batch })
}

// ---- database ----

/// Encode a [`Database`] with its relations in name order (the map is
/// unordered; the encoding must be deterministic for checksums).
pub fn write_database(w: &mut Writer, db: &Database) {
    let mut names: Vec<&str> = db.names().collect();
    names.sort_unstable();
    w.u32(names.len() as u32);
    for name in names {
        write_relation(w, db.expect(name));
    }
}

/// Decode a [`Database`].
pub fn read_database(r: &mut Reader) -> Result<Database, WireError> {
    let n = r.count(8, "relations")?;
    let mut db = Database::new();
    for _ in 0..n {
        let rel = read_relation(r)?;
        if db.get(&rel.name).is_some() {
            return Err(WireError::new(format!(
                "duplicate relation {:?} in database",
                rel.name
            )));
        }
        db.insert(rel);
    }
    Ok(db)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::relation::relation_from_rows;

    fn sample() -> Relation {
        relation_from_rows(
            "t",
            &["a", "b", "c"],
            &[
                &[Value::Int(1), Value::str("x"), Value::Null],
                &[Value::Int(2), Value::str("y"), Value::float(1.5)],
                &[Value::Int(1), Value::Null, Value::Bool(true)],
                &[Value::Int(3), Value::str("x"), Value::Date(812)],
            ],
        )
    }

    fn assert_relations_identical(a: &Relation, b: &Relation) {
        assert_eq!(a.name, b.name);
        assert_eq!(a.schema, b.schema);
        assert_eq!(a.nrows(), b.nrows());
        assert_eq!(a.ncols(), b.ncols());
        for c in 0..a.ncols() {
            assert_eq!(a.column(c).codes, b.column(c).codes);
            assert_eq!(a.column(c).dict.as_slice(), b.column(c).dict.as_slice());
            assert_eq!(a.column(c).null_code, b.column(c).null_code);
        }
        assert_eq!(a.live_row_ids(), b.live_row_ids());
    }

    #[test]
    fn relation_round_trips_verbatim() {
        let rel = sample();
        let mut w = Writer::new();
        write_relation(&mut w, &rel);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        let back = read_relation(&mut r).unwrap();
        assert!(r.is_empty());
        assert_relations_identical(&rel, &back);
    }

    #[test]
    fn tombstoned_relation_round_trips() {
        let rel = sample();
        let mut index = crate::DictIndexes::build(&rel);
        let (rel, _) = rel.apply_delta_tombstoned(&[1, 3], &[], "t".to_string(), &mut index);
        assert!(rel.has_tombstones());
        let mut w = Writer::new();
        write_relation(&mut w, &rel);
        let bytes = w.into_bytes();
        let back = read_relation(&mut Reader::new(&bytes)).unwrap();
        assert_relations_identical(&rel, &back);
        assert_eq!(back.tombstone_count(), 2);
        assert!(!back.is_live(1) && !back.is_live(3));
    }

    #[test]
    fn delta_batch_round_trips() {
        let mut batch = DeltaBatch::new();
        batch
            .delete(3)
            .delete(0)
            .insert(vec![Value::Null, Value::str("z")])
            .insert(vec![Value::Int(-7), Value::float(-0.0)]);
        let mut w = Writer::new();
        write_delta_batch(&mut w, &batch);
        let bytes = w.into_bytes();
        let back = read_delta_batch(&mut Reader::new(&bytes)).unwrap();
        assert_eq!(back.deletes, batch.deletes);
        assert_eq!(back.inserts, batch.inserts);
    }

    #[test]
    fn empty_batch_round_trips() {
        let mut w = Writer::new();
        write_delta_batch(&mut w, &DeltaBatch::new());
        let bytes = w.into_bytes();
        let back = read_delta_batch(&mut Reader::new(&bytes)).unwrap();
        assert!(back.is_empty());
    }

    #[test]
    fn database_round_trips_in_name_order() {
        let mut db = Database::new();
        db.insert(sample());
        db.insert(relation_from_rows(
            "u",
            &["k"],
            &[&[Value::Int(1)], &[Value::Int(2)]],
        ));
        let mut w = Writer::new();
        write_database(&mut w, &db);
        let bytes = w.into_bytes();
        // Deterministic encoding: a second pass produces identical bytes.
        let mut w2 = Writer::new();
        write_database(&mut w2, &db);
        assert_eq!(bytes, w2.into_bytes());
        let back = read_database(&mut Reader::new(&bytes)).unwrap();
        assert_eq!(back.len(), 2);
        assert_relations_identical(db.expect("t"), back.expect("t"));
        assert_relations_identical(db.expect("u"), back.expect("u"));
    }

    #[test]
    fn truncated_input_errors_cleanly() {
        let mut w = Writer::new();
        write_relation(&mut w, &sample());
        let bytes = w.into_bytes();
        for cut in 0..bytes.len() {
            let mut r = Reader::new(&bytes[..cut]);
            assert!(
                read_relation(&mut r).is_err(),
                "truncation at {cut} was not detected"
            );
        }
    }

    #[test]
    fn out_of_range_code_is_rejected() {
        let rel = sample();
        let mut w = Writer::new();
        write_relation(&mut w, &rel);
        let mut bytes = w.into_bytes();
        // Corrupt the first code of column 0 to a huge value. Layout:
        // name(4+1) schema(...) nrows(8) ncols(4) then codes count (4)
        // and the first code. Rather than hand-compute the offset, flip
        // high bits across the buffer and assert no decode ever panics.
        let mut rejected = 0;
        for i in 0..bytes.len() {
            let orig = bytes[i];
            bytes[i] ^= 0x80;
            let mut r = Reader::new(&bytes);
            match read_relation(&mut r) {
                Ok(rel2) => {
                    // A benign flip (e.g. inside a string payload) must
                    // still produce a structurally sound relation.
                    for c in 0..rel2.ncols() {
                        for row in 0..rel2.nrows() {
                            let _ = rel2.value(row, c);
                        }
                    }
                }
                Err(_) => rejected += 1,
            }
            bytes[i] = orig;
        }
        assert!(rejected > 0, "no corruption was ever detected");
    }
}
