//! Delta batches: inserts and deletes against a [`Relation`].
//!
//! The incremental-maintenance layer (`infine-partitions::delta`,
//! `infine-incremental`) consumes base-table change feeds expressed as
//! [`DeltaBatch`]es. Applying a batch produces a new relation plus an
//! [`AppliedDelta`] — the row-id remapping that downstream structures
//! (PLIs, caches) need to patch themselves instead of rebuilding.
//!
//! Conventions — **the delete contract** (one place, every consumer):
//!
//! * Deletes address rows of the relation *before* the batch. Their
//!   *order is irrelevant* and *duplicates are deduplicated*, identically
//!   in every consumer: [`Relation::apply_delta`],
//!   [`Relation::apply_delta_tombstoned`](crate::vacuum),
//!   [`DeltaBatch::then`]/[`DeltaBatch::try_then`], [`RowMap::rebase_batch`]
//!   (the tombstone layer's logical→physical translation), and the
//!   sharded router's batch splitting all reduce the delete list to the
//!   *set* of targeted rows before acting. Out-of-range ids panic in the
//!   relation-level APIs and surface as `Err` at the service boundary
//!   ([`DeltaBatch::try_then`]).
//! * Surviving rows keep their relative order and are compacted to the
//!   front; inserted rows are appended afterwards in batch order. Column
//!   dictionaries are append-only, so every surviving row keeps its
//!   dictionary codes — the invariant that makes PLI patching sound.
//!
//! [`RowMap::rebase_batch`]: crate::vacuum::RowMap::rebase_batch

use crate::relation::{Column, Relation};
use crate::value::Value;
use std::collections::HashMap;

/// A set of row deletions and insertions against one relation instance.
#[derive(Debug, Clone, Default)]
pub struct DeltaBatch {
    /// Row ids (in the pre-batch relation) to delete.
    pub deletes: Vec<u32>,
    /// Rows to append; each must match the relation's arity.
    pub inserts: Vec<Vec<Value>>,
}

impl DeltaBatch {
    /// An empty batch.
    pub fn new() -> Self {
        DeltaBatch::default()
    }

    /// Queue a row deletion (pre-batch row id).
    pub fn delete(&mut self, row: u32) -> &mut Self {
        self.deletes.push(row);
        self
    }

    /// Queue a row insertion.
    pub fn insert(&mut self, row: Vec<Value>) -> &mut Self {
        self.inserts.push(row);
        self
    }

    /// True iff the batch changes nothing.
    pub fn is_empty(&self) -> bool {
        self.deletes.is_empty() && self.inserts.is_empty()
    }

    /// Number of queued deletes (before deduplication).
    pub fn num_deletes(&self) -> usize {
        self.deletes.len()
    }

    /// Number of queued inserts.
    pub fn num_inserts(&self) -> usize {
        self.inserts.len()
    }

    /// Compose two sequential batches into one: applying the result to a
    /// relation of `old_nrows` rows is equivalent to applying `self` and
    /// then `next` (whose deletes address the intermediate state) —
    /// row-for-row equal values and identical surviving-row order.
    ///
    /// A `next` delete that targets a row inserted by `self` cancels the
    /// insert instead of surviving as a delete, so the coalesced batch
    /// never references rows the base relation does not have. One
    /// observable (and harmless) difference from sequential application:
    /// a cancelled insert's fresh values never enter the dictionaries, so
    /// dictionary *codes* may differ — values never do.
    ///
    /// Panics when a delete of `self` is out of range for `old_nrows` or
    /// a delete of `next` is out of range for the intermediate state —
    /// the same contract as [`Relation::apply_delta`]. Use
    /// [`DeltaBatch::try_then`] where malformed input must surface as an
    /// error instead (the maintenance service's ingestion boundary).
    ///
    /// Per the module-level delete contract, the coalesced batch's
    /// deletes come out deduplicated and sorted ascending.
    pub fn then(&self, next: &DeltaBatch, old_nrows: usize) -> DeltaBatch {
        self.try_then(next, old_nrows)
            .unwrap_or_else(|msg| panic!("{msg}"))
    }

    /// Non-panicking [`DeltaBatch::then`]: composes the batches or
    /// explains why they cannot be composed (an out-of-range delete in
    /// either input). No allocation-heavy work happens before validation,
    /// so an `Err` leaves nothing half-built.
    pub fn try_then(&self, next: &DeltaBatch, old_nrows: usize) -> Result<DeltaBatch, String> {
        // Replay self's remap without touching any relation data.
        let mut deleted = vec![false; old_nrows];
        for &d in &self.deletes {
            if (d as usize) >= old_nrows {
                return Err(format!(
                    "delete of row {d} out of range (relation has {old_nrows} rows)"
                ));
            }
            deleted[d as usize] = true;
        }
        // survivors[mid_rid] = pre-batch rid, for mid rids below the
        // insert boundary.
        let survivors: Vec<u32> = (0..old_nrows as u32)
            .filter(|&r| !deleted[r as usize])
            .collect();
        let first_inserted = survivors.len();
        let mid_nrows = first_inserted + self.inserts.len();

        let mut out = DeltaBatch::new();
        let mut insert_alive = vec![true; self.inserts.len()];
        for &d in &next.deletes {
            let d = d as usize;
            if d >= mid_nrows {
                return Err(format!(
                    "coalesced delete of row {d} out of range (intermediate state has {mid_nrows} rows)"
                ));
            }
            if d < first_inserted {
                deleted[survivors[d] as usize] = true;
            } else {
                insert_alive[d - first_inserted] = false;
            }
        }
        // Emit the combined delete *set*, deduplicated and ascending —
        // the canonical form of the module-level delete contract.
        out.deletes = (0..old_nrows as u32)
            .filter(|&r| deleted[r as usize])
            .collect();
        out.inserts = self
            .inserts
            .iter()
            .zip(&insert_alive)
            .filter(|(_, &alive)| alive)
            .map(|(row, _)| row.clone())
            .chain(next.inserts.iter().cloned())
            .collect();
        Ok(out)
    }

    /// Project the insert rows onto a column subset (the scoped-relation
    /// mirror of [`Relation::project`]); deletes are shared because row
    /// ids are position-stable across projection.
    pub fn project(&self, attrs: &[usize]) -> DeltaBatch {
        DeltaBatch {
            deletes: self.deletes.clone(),
            inserts: self
                .inserts
                .iter()
                .map(|row| attrs.iter().map(|&a| row[a].clone()).collect())
                .collect(),
        }
    }
}

/// A [`DeltaBatch`] addressed to a named base relation — the unit the
/// maintenance engine ingests.
#[derive(Debug, Clone)]
pub struct DeltaRelation {
    /// Name of the base relation the batch applies to.
    pub target: String,
    /// The changes.
    pub batch: DeltaBatch,
}

impl DeltaRelation {
    /// Address `batch` to the base relation `target`.
    pub fn new(target: impl Into<String>, batch: DeltaBatch) -> Self {
        DeltaRelation {
            target: target.into(),
            batch,
        }
    }
}

/// The row-id bookkeeping produced by [`Relation::apply_delta`]: how the
/// old instance's rows map into the new one, and where inserts start.
#[derive(Debug, Clone)]
pub struct AppliedDelta {
    /// Rows of the relation before the batch.
    pub old_nrows: usize,
    /// Rows after the batch.
    pub new_nrows: usize,
    /// Old row id → new row id (`None` = deleted). Surviving rows are
    /// compacted in order, so the mapped ids are strictly increasing.
    pub remap: Vec<Option<u32>>,
    /// New row ids `>= first_inserted` are the batch's inserted rows, in
    /// batch order.
    pub first_inserted: u32,
}

impl AppliedDelta {
    /// Number of rows actually deleted (after deduplication).
    pub fn num_deleted(&self) -> usize {
        self.remap.iter().filter(|m| m.is_none()).count()
    }

    /// Number of rows inserted.
    pub fn num_inserted(&self) -> usize {
        self.new_nrows - (self.first_inserted as usize)
    }

    /// True iff the batch changed nothing.
    pub fn is_noop(&self) -> bool {
        self.num_deleted() == 0 && self.num_inserted() == 0
    }
}

/// Persistent value → dictionary-code indexes for one relation lineage.
///
/// [`Relation::apply_delta`] must look inserted values up in each
/// column's dictionary; rebuilding that lookup per batch costs a full
/// dictionary hash pass. Because dictionaries are append-only across
/// delta application, the index stays valid forever — callers applying
/// many batches (the maintenance engine) build it once and thread it
/// through [`Relation::apply_delta_indexed`], paying only `O(|batch|)`
/// hashing per round.
#[derive(Debug, Default, Clone)]
pub struct DictIndexes {
    per_column: Vec<HashMap<Value, u32>>,
}

impl DictIndexes {
    /// Build from a relation's current dictionaries.
    pub fn build(rel: &Relation) -> DictIndexes {
        DictIndexes {
            per_column: (0..rel.ncols())
                .map(|c| {
                    rel.column(c)
                        .dict
                        .iter()
                        .enumerate()
                        .map(|(i, v)| (v.clone(), i as u32))
                        .collect()
                })
                .collect(),
        }
    }

    /// Assert the index matches a relation's arity (it must come from the
    /// same lineage).
    pub(crate) fn assert_arity(&self, ncols: usize) {
        assert_eq!(
            self.per_column.len(),
            ncols,
            "dictionary index arity mismatch (build it from this relation lineage)"
        );
    }

    /// Dictionary code for `v` in column `c`, extending `col`'s dictionary
    /// (and this index) when the value is fresh.
    pub(crate) fn encode(&mut self, c: usize, v: &Value, col: &mut Column) -> u32 {
        let idx = &mut self.per_column[c];
        match idx.get(v) {
            Some(&code) => code,
            None => {
                let code = col.dict.len() as u32;
                if v.is_null() {
                    col.null_code = Some(code);
                }
                std::sync::Arc::make_mut(&mut col.dict).push(v.clone());
                idx.insert(v.clone(), code);
                code
            }
        }
    }
}

impl Relation {
    /// Apply a delta batch, producing the post-batch relation and the
    /// row-id remapping.
    ///
    /// Surviving rows keep their dictionary codes (dictionaries are
    /// append-only); inserted values reuse existing codes where the value
    /// is already in the dictionary and extend it otherwise. Cost is
    /// `O(nrows + dict + |batch| · ncols)`; repeated callers should hold
    /// a [`DictIndexes`] and use [`Relation::apply_delta_indexed`] to
    /// drop the per-batch dictionary pass.
    pub fn apply_delta(
        &self,
        batch: &DeltaBatch,
        name: impl Into<String>,
    ) -> (Relation, AppliedDelta) {
        let mut index = if batch.inserts.is_empty() {
            DictIndexes::default()
        } else {
            DictIndexes::build(self)
        };
        self.apply_delta_indexed(batch, name, &mut index)
    }

    /// [`Relation::apply_delta`] with a caller-maintained dictionary
    /// index (extended in place as fresh values appear).
    pub fn apply_delta_indexed(
        &self,
        batch: &DeltaBatch,
        name: impl Into<String>,
        index: &mut DictIndexes,
    ) -> (Relation, AppliedDelta) {
        self.clone().apply_delta_owned(batch, name, index)
    }

    /// Consuming variant of [`Relation::apply_delta_indexed`] — the
    /// maintenance-loop workhorse. Owning `self` lets dictionary
    /// extension reuse the (now unique) `Arc` in place instead of
    /// deep-cloning a whole dictionary the first time a batch brings a
    /// fresh value, and delete-free batches keep the code vectors as-is
    /// (pure append, no compaction copy).
    pub fn apply_delta_owned(
        self,
        batch: &DeltaBatch,
        name: impl Into<String>,
        index: &mut DictIndexes,
    ) -> (Relation, AppliedDelta) {
        debug_assert!(
            !self.has_tombstones(),
            "compacting apply on a tombstoned relation: vacuum first, or use apply_delta_tombstoned"
        );
        let old_nrows = self.nrows();
        let ncols = self.ncols();
        let mut deleted = vec![false; old_nrows];
        for &d in &batch.deletes {
            let d = d as usize;
            assert!(
                d < old_nrows,
                "delete of row {d} out of range (relation has {old_nrows} rows)"
            );
            deleted[d] = true;
        }
        for row in &batch.inserts {
            assert_eq!(row.len(), ncols, "insert arity mismatch");
        }

        let mut remap: Vec<Option<u32>> = Vec::with_capacity(old_nrows);
        let mut survivors: Vec<u32> = Vec::with_capacity(old_nrows);
        for (row, &dead) in deleted.iter().enumerate() {
            if dead {
                remap.push(None);
            } else {
                remap.push(Some(survivors.len() as u32));
                survivors.push(row as u32);
            }
        }
        let first_inserted = survivors.len() as u32;
        let new_nrows = survivors.len() + batch.inserts.len();
        let has_deletes = survivors.len() < old_nrows;

        let schema = self.schema.clone();
        let mut columns: Vec<Column> = self
            .into_columns()
            .into_iter()
            .map(|mut col| {
                if has_deletes {
                    col.codes = survivors.iter().map(|&r| col.codes[r as usize]).collect();
                }
                col
            })
            .collect();

        if !batch.inserts.is_empty() {
            index.assert_arity(ncols);
            for row in &batch.inserts {
                for (c, v) in row.iter().enumerate() {
                    let col = &mut columns[c];
                    let code = index.encode(c, v, col);
                    col.codes.push(code);
                }
            }
        }

        let rel = Relation::from_columns(name, schema, columns, new_nrows);
        (
            rel,
            AppliedDelta {
                old_nrows,
                new_nrows,
                remap,
                first_inserted,
            },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::relation::relation_from_rows;

    fn sample() -> Relation {
        relation_from_rows(
            "t",
            &["a", "b"],
            &[
                &[Value::Int(1), Value::str("x")],
                &[Value::Int(2), Value::str("y")],
                &[Value::Int(1), Value::Null],
                &[Value::Int(3), Value::str("y")],
            ],
        )
    }

    #[test]
    fn deletes_compact_and_remap() {
        let r = sample();
        let mut b = DeltaBatch::new();
        b.delete(1).delete(1).delete(3);
        let (r2, ad) = r.apply_delta(&b, "t'");
        assert_eq!(r2.nrows(), 2);
        assert_eq!(ad.num_deleted(), 2);
        assert_eq!(ad.remap, vec![Some(0), None, Some(1), None]);
        assert_eq!(r2.value(0, 0), &Value::Int(1));
        assert_eq!(r2.value(1, 1), &Value::Null);
        // codes survive compaction
        assert_eq!(r2.code(0, 0), r.code(0, 0));
        assert_eq!(r2.code(1, 0), r.code(2, 0));
    }

    #[test]
    fn inserts_reuse_and_extend_dictionaries() {
        let r = sample();
        let mut b = DeltaBatch::new();
        b.insert(vec![Value::Int(2), Value::str("z")]); // 2 reused, z fresh
        b.insert(vec![Value::Int(9), Value::str("z")]); // 9 fresh, z reused
        let (r2, ad) = r.apply_delta(&b, "t'");
        assert_eq!(r2.nrows(), 6);
        assert_eq!(ad.first_inserted, 4);
        assert_eq!(ad.num_inserted(), 2);
        assert_eq!(r2.code(4, 0), r.code(1, 0)); // Int(2) reused
        assert_eq!(r2.code(4, 1), r2.code(5, 1)); // z shares a fresh code
        assert_eq!(r2.value(5, 0), &Value::Int(9));
        assert_eq!(r2.distinct_count(0), 4); // 1,2,3,9 (after batch)
    }

    #[test]
    fn inserted_null_registers_null_code() {
        let r = relation_from_rows("t", &["a"], &[&[Value::Int(1)]]);
        let mut b = DeltaBatch::new();
        b.insert(vec![Value::Null]);
        let (r2, _) = r.apply_delta(&b, "t'");
        assert!(r2.is_null(1, 0));
        assert!(!r2.is_null(0, 0));
    }

    #[test]
    fn mixed_batch_roundtrip_matches_rebuild() {
        let r = sample();
        let mut b = DeltaBatch::new();
        b.delete(0).insert(vec![Value::Int(7), Value::Null]);
        let (r2, _) = r.apply_delta(&b, "t'");
        let rebuilt = relation_from_rows(
            "t'",
            &["a", "b"],
            &[
                &[Value::Int(2), Value::str("y")],
                &[Value::Int(1), Value::Null],
                &[Value::Int(3), Value::str("y")],
                &[Value::Int(7), Value::Null],
            ],
        );
        assert_eq!(r2.nrows(), rebuilt.nrows());
        for row in 0..r2.nrows() {
            assert_eq!(r2.row(row), rebuilt.row(row));
        }
    }

    #[test]
    fn projected_batch_mirrors_full_batch() {
        let r = sample();
        let p = r.project(&[1], "p");
        let mut b = DeltaBatch::new();
        b.delete(2).insert(vec![Value::Int(5), Value::str("w")]);
        let (r2, ad_full) = r.apply_delta(&b, "r'");
        let (p2, ad_proj) = p.apply_delta(&b.project(&[1]), "p'");
        assert_eq!(ad_full.remap, ad_proj.remap);
        for row in 0..p2.nrows() {
            assert_eq!(p2.value(row, 0), r2.value(row, 1));
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_delete_panics() {
        let r = sample();
        let mut b = DeltaBatch::new();
        b.delete(99);
        r.apply_delta(&b, "t'");
    }

    #[test]
    #[should_panic(expected = "arity mismatch")]
    fn wrong_arity_insert_panics() {
        let r = sample();
        let mut b = DeltaBatch::new();
        b.insert(vec![Value::Int(1)]);
        r.apply_delta(&b, "t'");
    }

    /// `apply(then(b1, b2))` must equal `apply(b1); apply(b2)` row-values
    /// for-row (dictionary codes may differ when an insert is cancelled).
    fn assert_coalesce_equivalent(r: &Relation, b1: &DeltaBatch, b2: &DeltaBatch) {
        let (mid, _) = r.apply_delta(b1, "mid");
        let (sequential, _) = mid.apply_delta(b2, "out");
        let coalesced_batch = b1.then(b2, r.nrows());
        let (coalesced, _) = r.apply_delta(&coalesced_batch, "out");
        assert_eq!(sequential.nrows(), coalesced.nrows());
        for row in 0..sequential.nrows() {
            assert_eq!(sequential.row(row), coalesced.row(row), "row {row} differs");
        }
    }

    #[test]
    fn then_composes_deletes_and_inserts() {
        let r = sample();
        let mut b1 = DeltaBatch::new();
        b1.delete(1)
            .insert(vec![Value::Int(7), Value::str("w")])
            .insert(vec![Value::Int(8), Value::str("x")]);
        // next deletes one original survivor (mid rid 0 = pre rid 0) and
        // one of b1's inserts (mid rid 3 = first insert), then inserts.
        let mut b2 = DeltaBatch::new();
        b2.delete(0)
            .delete(3)
            .insert(vec![Value::Int(9), Value::Null]);
        assert_coalesce_equivalent(&r, &b1, &b2);
        let c = b1.then(&b2, r.nrows());
        // The cancelled insert never reaches the coalesced batch.
        assert_eq!(c.num_inserts(), 2);
        assert!(c.inserts.iter().all(|row| row[0] != Value::Int(7)));
        // Deletes come out as the deduplicated ascending set.
        assert_eq!(c.deletes, vec![0, 1]);
    }

    #[test]
    fn duplicate_and_unordered_deletes_are_one_contract() {
        // The same delete set, expressed with duplicates and out of
        // order, must act identically through apply_delta, then, and the
        // tombstoned path.
        let r = sample();
        let mut messy = DeltaBatch::new();
        messy.delete(3).delete(1).delete(3).delete(1);
        let mut clean = DeltaBatch::new();
        clean.delete(1).delete(3);

        let (a, ad_a) = r.apply_delta(&messy, "a");
        let (b, ad_b) = r.apply_delta(&clean, "b");
        assert_eq!(ad_a.remap, ad_b.remap);
        for row in 0..a.nrows() {
            assert_eq!(a.row(row), b.row(row));
        }

        let empty = DeltaBatch::new();
        assert_eq!(
            messy.then(&empty, r.nrows()).deletes,
            clean.then(&empty, r.nrows()).deletes
        );

        let mut idx = DictIndexes::build(&r);
        let (t, ad_t) =
            r.clone()
                .apply_delta_tombstoned(&messy.deletes, &messy.inserts, "t", &mut idx);
        assert_eq!(ad_t.num_deleted(), 2);
        assert_eq!(t.live_rows(), 2);
    }

    #[test]
    fn try_then_reports_malformed_batches_without_panicking() {
        let r = sample();
        let mut b1 = DeltaBatch::new();
        b1.delete(0);
        let mut bad = DeltaBatch::new();
        bad.delete(3); // intermediate state has 3 rows: 0..=2
        let err = b1.try_then(&bad, r.nrows()).unwrap_err();
        assert!(err.contains("out of range"), "{err}");
        let mut bad_first = DeltaBatch::new();
        bad_first.delete(99);
        let err = bad_first.try_then(&b1, r.nrows()).unwrap_err();
        assert!(err.contains("out of range"), "{err}");
    }

    #[test]
    fn then_delete_then_reinsert_same_key() {
        let r = sample();
        // Round 1 deletes row 2; round 2 re-inserts the same values.
        let mut b1 = DeltaBatch::new();
        b1.delete(2);
        let mut b2 = DeltaBatch::new();
        b2.insert(vec![Value::Int(1), Value::Null]);
        assert_coalesce_equivalent(&r, &b1, &b2);
    }

    #[test]
    fn then_with_empty_sides_is_identity() {
        let r = sample();
        let mut b = DeltaBatch::new();
        b.delete(0).insert(vec![Value::Int(5), Value::str("q")]);
        let empty = DeltaBatch::new();
        assert_coalesce_equivalent(&r, &b, &empty);
        assert_coalesce_equivalent(&r, &empty, &b);
        let c = empty.then(&b, r.nrows());
        assert_eq!(c.deletes, b.deletes);
        assert_eq!(c.inserts, b.inserts);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn then_rejects_out_of_range_second_delete() {
        let r = sample();
        let mut b1 = DeltaBatch::new();
        b1.delete(0);
        let mut b2 = DeltaBatch::new();
        b2.delete(3); // intermediate state has 3 rows: 0..=2
        b1.then(&b2, r.nrows());
    }

    #[test]
    fn empty_batch_is_noop() {
        let r = sample();
        let (r2, ad) = r.apply_delta(&DeltaBatch::new(), "t'");
        assert!(ad.is_noop());
        assert_eq!(r2.nrows(), r.nrows());
        assert_eq!(ad.first_inserted as usize, r.nrows());
    }
}
