//! # infine-relation
//!
//! Relational storage substrate for the InFine reproduction: typed values,
//! dictionary-encoded columnar relations, schemas with base-table lineage,
//! and `u64`-bitset attribute sets.
//!
//! Everything downstream — the SPJ algebra, the partition (PLI) machinery,
//! the four baseline FD-discovery algorithms, and InFine itself — builds on
//! the types exported here.
//!
//! ## Null semantics
//!
//! The paper (Definition 1, remark below it) is explicitly agnostic to null
//! semantics. This implementation fixes the convention once:
//!
//! * **FD satisfaction**: `NULL = NULL` — all nulls of a column share one
//!   dictionary code, so partition refinement treats them as one class.
//! * **Join keys** (in `infine-algebra`): SQL semantics — a `NULL` key
//!   matches nothing, which is what makes tuples "dangle" and produces the
//!   paper's upstaged FDs.

pub mod attrs;
pub mod csv;
pub mod delta;
pub mod relation;
pub mod schema;
pub mod vacuum;
pub mod value;
pub mod wire;

pub use attrs::{AttrId, AttrSet, AttrSetIter};
pub use csv::{read_csv, write_csv, TypeInference};
pub use delta::{AppliedDelta, DeltaBatch, DeltaRelation, DictIndexes};
pub use relation::{relation_from_rows, Column, Database, Relation, RelationBuilder};
pub use schema::{Attribute, Origin, Schema};
pub use vacuum::RowMap;
pub use value::Value;
