//! Tombstoned delta application and the vacuum pass.
//!
//! [`Relation::apply_delta`](crate::Relation::apply_delta) pays one full
//! column compaction per delete batch — `O(nrows · ncols)` however small
//! the batch — and its dictionaries only ever grow. Long-lived engines
//! under churn therefore pay O(table) value-level work per delete round
//! and hold memory proportional to *total historical inserts*. This
//! module fixes both:
//!
//! * [`Relation::apply_delta_tombstoned`] marks deleted rows in a
//!   tombstone bitmap (`O(|Δ|)` bit flips) and appends inserts — no
//!   column compaction, no row-id shifts. Surviving rows keep their
//!   physical ids, so the returned [`AppliedDelta`] remap is the
//!   *identity* on live rows and downstream structures (PLIs, violation
//!   witnesses, join indexes) patch without moving a single surviving id.
//! * [`Relation::vacuum`] restores the compact invariant on demand: dead
//!   rows are dropped, dictionary codes are re-assigned in
//!   first-appearance order over the live rows, and dictionary values no
//!   live row references — including values only dead rows ever held,
//!   the historical-insert leak — are garbage-collected. The vacuumed
//!   relation is **byte-equal** to rebuilding from the live rows with
//!   [`relation_from_rows`](crate::relation_from_rows): same codes, same
//!   dictionaries, same `null_code`.
//! * [`RowMap`] bridges the two addressings: callers keep speaking the
//!   compacted *logical* row-id dialect (the [`DeltaBatch`] contract),
//!   while the relation stores rows at stable *physical* positions.
//!   Translating a batch is `O(|Δ|)` lookups plus one `retain` pass over
//!   a flat `u32` array — the only per-round cost still proportional to
//!   the live row count, and it is a 4-byte-per-row integer sweep, not a
//!   value-level column rewrite per view node.
//!
//! Deletes in a tombstoned batch address **physical** row ids (translate
//! logical batches through [`RowMap::rebase_batch`] first); the
//! delete-dedup contract of [`DeltaBatch`] applies unchanged.

use crate::delta::{AppliedDelta, DeltaBatch, DictIndexes};
use crate::relation::Relation;

/// Logical → physical row-id map for one tombstoned relation lineage.
///
/// Logical ids are the ids a compacting [`Relation::apply_delta`] would
/// expose: live rows numbered `0..live_rows` in physical order. The map
/// is maintained by [`RowMap::rebase_batch`] across every tombstoned
/// batch and reset to the identity after a [`Relation::vacuum`].
#[derive(Debug, Clone, Default)]
pub struct RowMap {
    phys: Vec<u32>,
}

impl RowMap {
    /// Identity map over a compact relation of `n` rows.
    pub fn identity(n: usize) -> RowMap {
        RowMap {
            phys: (0..n as u32).collect(),
        }
    }

    /// Number of logical (live) rows.
    pub fn len(&self) -> usize {
        self.phys.len()
    }

    /// True iff no live rows remain.
    pub fn is_empty(&self) -> bool {
        self.phys.is_empty()
    }

    /// Physical id of one logical row.
    #[inline]
    pub fn physical(&self, logical: u32) -> u32 {
        self.phys[logical as usize]
    }

    /// Translate a logical batch's deletes into the physical dialect
    /// [`Relation::apply_delta_tombstoned`] consumes, updating the map to
    /// the post-batch state (deleted logical entries drop, insert
    /// physical ids append). `phys_rows` is the relation's current
    /// physical row count (inserted rows land at `phys_rows..`). Inserts
    /// are untouched — pass `batch.inserts` to the apply alongside the
    /// returned physical deletes, no copy needed.
    ///
    /// Deletes are deduplicated here (the shared [`DeltaBatch`] contract)
    /// and panic when out of logical range — the same contract as
    /// [`Relation::apply_delta`].
    pub fn rebase_batch(&mut self, batch: &DeltaBatch, phys_rows: usize) -> Vec<u32> {
        let n = self.phys.len();
        let mut out: Vec<u32> = Vec::new();
        if !batch.deletes.is_empty() {
            let mut dead = vec![false; n];
            for &d in &batch.deletes {
                let d = d as usize;
                assert!(
                    d < n,
                    "delete of row {d} out of range (relation has {n} live rows)"
                );
                if !dead[d] {
                    dead[d] = true;
                    out.push(self.phys[d]);
                }
            }
            let mut w = 0usize;
            for (l, &is_dead) in dead.iter().enumerate() {
                if !is_dead {
                    self.phys[w] = self.phys[l];
                    w += 1;
                }
            }
            self.phys.truncate(w);
        }
        self.phys
            .extend(phys_rows as u32..(phys_rows + batch.inserts.len()) as u32);
        out
    }

    /// Reset to the identity over `n` rows (after a vacuum).
    pub fn reset_identity(&mut self, n: usize) {
        self.phys.clear();
        self.phys.extend(0..n as u32);
    }
}

impl Relation {
    /// Apply a delta without compacting: deletes tombstone their rows in
    /// place, inserts append. Delete ids address **physical** rows
    /// (translate logical batches through [`RowMap::rebase_batch`],
    /// which also hands the inserts through by reference — no copy);
    /// duplicates are deduplicated like everywhere else, and re-deleting
    /// an already-dead row is a no-op.
    ///
    /// The returned [`AppliedDelta`] spans the physical row space:
    /// `remap` is the identity for surviving rows (`Some(id)` — including
    /// rows tombstoned by *earlier* batches, which no downstream
    /// structure references), `None` exactly for the rows this batch
    /// killed, and inserts occupy `first_inserted..new_nrows`. The remap
    /// is monotone and identity-on-survivors, so every existing patch
    /// consumer (PLI patching, witness remaps, join indexes) works
    /// unchanged — survivors simply never move.
    pub fn apply_delta_tombstoned(
        self,
        deletes: &[u32],
        inserts: &[Vec<crate::value::Value>],
        name: impl Into<String>,
        index: &mut DictIndexes,
    ) -> (Relation, AppliedDelta) {
        let old_nrows = self.nrows();
        let ncols = self.ncols();
        for row in inserts {
            assert_eq!(row.len(), ncols, "insert arity mismatch");
        }

        let (schema, mut columns, _, tombstones) = self.into_parts();
        let mut tombstones = tombstones.unwrap_or_default();
        tombstones.resize(old_nrows);

        let mut remap: Vec<Option<u32>> = (0..old_nrows as u32).map(Some).collect();
        for &d in deletes {
            let d = d as usize;
            assert!(
                d < old_nrows,
                "delete of row {d} out of range (relation has {old_nrows} physical rows)"
            );
            if tombstones.kill(d) {
                remap[d] = None;
            }
        }

        let first_inserted = old_nrows as u32;
        let new_nrows = old_nrows + inserts.len();
        tombstones.resize(new_nrows);

        if !inserts.is_empty() {
            index.assert_arity(ncols);
            for row in inserts {
                for (c, v) in row.iter().enumerate() {
                    let col = &mut columns[c];
                    let code = index.encode(c, v, col);
                    col.codes.push(code);
                }
            }
        }

        let tombstones = (tombstones.dead_count() > 0).then_some(tombstones);
        let rel = Relation::from_parts(name.into(), schema, columns, new_nrows, tombstones);
        (
            rel,
            AppliedDelta {
                old_nrows,
                new_nrows,
                remap,
                first_inserted,
            },
        )
    }

    /// Restore the compact invariant: drop tombstoned rows, re-assign
    /// dictionary codes in first-appearance order over the live rows, and
    /// garbage-collect dictionary values no live row references.
    ///
    /// The result is byte-equal to rebuilding the relation from its live
    /// rows with [`relation_from_rows`](crate::relation_from_rows). The
    /// returned [`AppliedDelta`] is a pure monotone remap (old physical
    /// id → compact id for live rows, `None` for dead ones, no inserts)
    /// — feed it to the same patch machinery delta batches use to carry
    /// PLIs, witnesses, and join indexes across the move. Dictionary
    /// codes change: rebuild any [`DictIndexes`] and re-borrow any cached
    /// code columns afterwards.
    ///
    /// Vacuuming a compact relation returns it unchanged (with an
    /// identity remap).
    pub fn vacuum(self) -> (Relation, AppliedDelta) {
        let old_nrows = self.nrows();
        if !self.has_tombstones() {
            let applied = AppliedDelta {
                old_nrows,
                new_nrows: old_nrows,
                remap: (0..old_nrows as u32).map(Some).collect(),
                first_inserted: old_nrows as u32,
            };
            return (self, applied);
        }

        let live: Vec<u32> = self.live_row_ids();
        let new_nrows = live.len();
        let mut remap: Vec<Option<u32>> = vec![None; old_nrows];
        for (new_id, &old_id) in live.iter().enumerate() {
            remap[old_id as usize] = Some(new_id as u32);
        }

        let name = self.name.clone();
        let (schema, columns, _, _) = self.into_parts();
        let columns = columns
            .into_iter()
            .map(|col| {
                // First-appearance re-encode over the live rows: exactly
                // the code assignment RelationBuilder would produce.
                const UNASSIGNED: u32 = u32::MAX;
                let mut code_remap = vec![UNASSIGNED; col.dict.len()];
                let mut dict: Vec<crate::value::Value> = Vec::new();
                let mut null_code = None;
                let mut codes = Vec::with_capacity(new_nrows);
                for &row in &live {
                    let old_code = col.codes[row as usize] as usize;
                    let mut code = code_remap[old_code];
                    if code == UNASSIGNED {
                        code = dict.len() as u32;
                        code_remap[old_code] = code;
                        let v = col.dict[old_code].clone();
                        if v.is_null() {
                            null_code = Some(code);
                        }
                        dict.push(v);
                    }
                    codes.push(code);
                }
                crate::relation::Column {
                    codes,
                    dict: std::sync::Arc::new(dict),
                    null_code,
                }
            })
            .collect();

        let rel = Relation::from_parts(name, schema, columns, new_nrows, None);
        (
            rel,
            AppliedDelta {
                old_nrows,
                new_nrows,
                remap,
                first_inserted: new_nrows as u32,
            },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::relation::relation_from_rows;
    use crate::value::Value;

    fn sample() -> Relation {
        relation_from_rows(
            "t",
            &["a", "b"],
            &[
                &[Value::Int(1), Value::str("x")],
                &[Value::Int(2), Value::str("y")],
                &[Value::Int(1), Value::Null],
                &[Value::Int(3), Value::str("y")],
            ],
        )
    }

    /// Values of the live rows, in logical order.
    fn live_values(rel: &Relation) -> Vec<Vec<Value>> {
        rel.live_row_ids()
            .into_iter()
            .map(|r| rel.row(r as usize))
            .collect()
    }

    /// The rebuild oracle: a fresh relation from the live rows.
    fn rebuild(rel: &Relation) -> Relation {
        let rows = live_values(rel);
        let refs: Vec<&[Value]> = rows.iter().map(|r| r.as_slice()).collect();
        let names: Vec<&str> = (0..rel.ncols()).map(|c| rel.schema.name(c)).collect();
        relation_from_rows(&rel.name, &names, &refs)
    }

    fn assert_byte_equal(a: &Relation, b: &Relation) {
        assert_eq!(a.nrows(), b.nrows());
        assert_eq!(a.ncols(), b.ncols());
        for c in 0..a.ncols() {
            assert_eq!(a.column(c).codes, b.column(c).codes, "codes col {c}");
            assert_eq!(
                a.column(c).dict.as_slice(),
                b.column(c).dict.as_slice(),
                "dict col {c}"
            );
            assert_eq!(a.column(c).null_code, b.column(c).null_code);
        }
    }

    #[test]
    fn tombstoned_deletes_keep_physical_rows() {
        let r = sample();
        let mut idx = DictIndexes::build(&r);
        let mut b = DeltaBatch::new();
        b.delete(1).delete(1).delete(3);
        let (r2, ad) = r.apply_delta_tombstoned(&b.deletes, &b.inserts, "t", &mut idx);
        assert_eq!(r2.nrows(), 4); // physical rows unchanged
        assert_eq!(r2.live_rows(), 2);
        assert_eq!(ad.num_deleted(), 2);
        assert_eq!(ad.remap, vec![Some(0), None, Some(2), None]);
        assert!(r2.is_live(0) && !r2.is_live(1));
        assert_eq!(r2.live_row_ids(), vec![0, 2]);
        // distinct counts skip dead rows: a ∈ {1}, b ∈ {x, NULL}
        assert_eq!(r2.distinct_count(0), 1);
        assert_eq!(r2.distinct_count(1), 2);
    }

    #[test]
    fn tombstoned_inserts_append_and_redelete_is_noop() {
        let r = sample();
        let mut idx = DictIndexes::build(&r);
        let mut b = DeltaBatch::new();
        b.delete(0).insert(vec![Value::Int(9), Value::str("z")]);
        let (r2, ad) = r.apply_delta_tombstoned(&b.deletes, &b.inserts, "t", &mut idx);
        assert_eq!(r2.nrows(), 5);
        assert_eq!(r2.live_rows(), 4);
        assert_eq!(ad.first_inserted, 4);
        assert_eq!(r2.value(4, 0), &Value::Int(9));
        // delete the same physical row again: already dead, no double count
        let mut b2 = DeltaBatch::new();
        b2.delete(0);
        let (r3, ad2) = r2.apply_delta_tombstoned(&b2.deletes, &b2.inserts, "t", &mut idx);
        assert_eq!(r3.live_rows(), 4);
        assert_eq!(ad2.num_deleted(), 0);
        assert_eq!(ad2.remap[0], Some(0)); // earlier-dead rows keep identity
    }

    #[test]
    fn vacuum_is_byte_equal_to_rebuild() {
        let r = sample();
        let mut idx = DictIndexes::build(&r);
        // Kill the first x and the first 1 so first-appearance order of
        // the surviving values differs from historical code order.
        let mut b = DeltaBatch::new();
        b.delete(0)
            .insert(vec![Value::Int(5), Value::str("x")])
            .insert(vec![Value::Null, Value::str("w")]);
        let (r2, _) = r.apply_delta_tombstoned(&b.deletes, &b.inserts, "t", &mut idx);
        let oracle = rebuild(&r2);
        let (v, applied) = r2.vacuum();
        assert!(!v.has_tombstones());
        assert_eq!(applied.num_deleted(), 1);
        assert_eq!(applied.num_inserted(), 0);
        assert_byte_equal(&v, &oracle);
    }

    #[test]
    fn vacuum_drops_dead_only_dictionary_values() {
        let r = sample();
        let mut idx = DictIndexes::build(&r);
        let mut b = DeltaBatch::new();
        b.insert(vec![Value::Int(42), Value::str("ghost")]);
        let (r2, _) = r.apply_delta_tombstoned(&b.deletes, &b.inserts, "t", &mut idx);
        // Kill the fresh row: its values must leave the dictionaries.
        let mut b2 = DeltaBatch::new();
        b2.delete(4);
        let (r3, _) = r2.apply_delta_tombstoned(&b2.deletes, &b2.inserts, "t", &mut idx);
        assert!(r3.column(0).dict.contains(&Value::Int(42)));
        let (v, _) = r3.vacuum();
        assert!(!v.column(0).dict.contains(&Value::Int(42)));
        assert!(!v.column(1).dict.contains(&Value::str("ghost")));
        assert_byte_equal(&v, &rebuild(&v));
    }

    #[test]
    fn vacuum_of_compact_relation_is_identity() {
        let r = sample();
        let before = rebuild(&r);
        let (v, applied) = r.vacuum();
        assert!(applied.is_noop());
        assert_byte_equal(&v, &before);
    }

    #[test]
    fn row_map_tracks_logical_addressing_across_rounds() {
        let mut r = sample();
        let mut idx = DictIndexes::build(&r);
        let mut map = RowMap::identity(r.nrows());
        // Mirror relation maintained with compacting applies.
        let mut mirror = sample();

        let rounds: Vec<DeltaBatch> = vec![
            {
                let mut b = DeltaBatch::new();
                b.delete(1).insert(vec![Value::Int(7), Value::str("q")]);
                b
            },
            {
                let mut b = DeltaBatch::new();
                b.delete(0)
                    .delete(2)
                    .insert(vec![Value::Int(8), Value::Null]);
                b
            },
            {
                let mut b = DeltaBatch::new();
                b.delete(0);
                b
            },
        ];
        for batch in rounds {
            let phys = map.rebase_batch(&batch, r.nrows());
            let (r2, _) = r.apply_delta_tombstoned(&phys, &batch.inserts, "t", &mut idx);
            r = r2;
            let (m2, _) = mirror.apply_delta(&batch, "t");
            mirror = m2;
            assert_eq!(map.len(), mirror.nrows());
            assert_eq!(map.len(), r.live_rows());
            for l in 0..map.len() {
                assert_eq!(
                    r.row(map.physical(l as u32) as usize),
                    mirror.row(l),
                    "logical row {l} diverged"
                );
            }
        }
        // Vacuum + identity reset keeps the correspondence.
        let (v, _) = r.vacuum();
        map.reset_identity(v.nrows());
        for l in 0..map.len() {
            assert_eq!(v.row(l), mirror.row(l));
        }
        assert_byte_equal(&v, &rebuild(&v));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn row_map_rejects_out_of_range_logical_delete() {
        let mut map = RowMap::identity(3);
        let mut b = DeltaBatch::new();
        b.delete(3);
        map.rebase_batch(&b, 3);
    }

    #[test]
    fn projection_shares_tombstones() {
        let r = sample();
        let mut idx = DictIndexes::build(&r);
        let mut b = DeltaBatch::new();
        b.delete(2);
        let (r2, _) = r.apply_delta_tombstoned(&b.deletes, &b.inserts, "t", &mut idx);
        let p = r2.project(&[1], "p");
        assert_eq!(p.live_rows(), 3);
        assert!(!p.is_live(2));
        assert_eq!(p.distinct_count(0), 2); // x, y — NULL row is dead
    }
}
