//! Dictionary-encoded columnar relations.
//!
//! FD mining, partition construction, and hash joins all operate on dense
//! `u32` codes rather than raw values: each column keeps a dictionary
//! mapping codes to [`Value`]s, assigned in first-appearance order at build
//! time. Equality of codes is equality of values — including `NULL = NULL`,
//! which is the FD-satisfaction convention documented in DESIGN.md; the
//! SQL null-key rule for joins is applied by the algebra layer via
//! [`Relation::is_null`].

use crate::attrs::{AttrId, AttrSet};
use crate::schema::Schema;
use crate::value::Value;
use std::collections::HashMap;
use std::sync::Arc;

/// One dictionary-encoded column.
///
/// The dictionary is behind an [`Arc`]: row-level operations (`gather`,
/// `project`, delta application) share it copy-on-write instead of
/// cloning every value — which makes derived relations and incremental
/// maintenance cheap. Mutating constructors extend it through
/// [`Arc::make_mut`], so sharing is transparent to callers.
#[derive(Debug, Clone, Default)]
pub struct Column {
    /// Per-row dictionary codes.
    pub codes: Vec<u32>,
    /// Code → value. Codes are assigned in first-appearance order.
    pub dict: Arc<Vec<Value>>,
    /// The code assigned to `Value::Null`, if any null was seen.
    pub null_code: Option<u32>,
}

impl Column {
    /// Number of distinct values present in the dictionary.
    ///
    /// After row filtering the dictionary may be a superset of the codes in
    /// use; callers needing exact distinct counts over *rows* should use
    /// [`Relation::distinct_count`].
    pub fn dict_len(&self) -> usize {
        self.dict.len()
    }

    /// Value for a row.
    #[inline]
    pub fn value(&self, row: usize) -> &Value {
        &self.dict[self.codes[row] as usize]
    }

    /// Approximate heap footprint in bytes (codes + dictionary payloads).
    pub fn approx_bytes(&self) -> usize {
        self.codes.len() * std::mem::size_of::<u32>()
            + self.dict.iter().map(Value::approx_bytes).sum::<usize>()
    }
}

/// Tombstone state of a relation: which physical rows are dead.
///
/// A tombstoned delete ([`Relation::apply_delta_tombstoned`]) marks rows
/// here instead of compacting the code vectors — `O(|Δ|)` bit flips
/// instead of an `O(nrows · ncols)` rewrite. Dead rows keep their values
/// and dictionary codes until [`Relation::vacuum`] restores the compact
/// invariant; consumers that must be exact (partition construction, the
/// counting kernel's class scans, `distinct_count`) skip them via
/// [`Relation::is_live`].
#[derive(Debug, Clone, Default)]
pub struct Tombstones {
    /// One bit per physical row; set = dead.
    bits: Vec<u64>,
    /// Number of set bits.
    dead: usize,
}

impl Tombstones {
    #[inline]
    pub(crate) fn is_dead(&self, row: usize) -> bool {
        (self.bits[row >> 6] >> (row & 63)) & 1 == 1
    }

    /// Mark a row dead; returns false when it already was.
    pub(crate) fn kill(&mut self, row: usize) -> bool {
        let (word, bit) = (row >> 6, 1u64 << (row & 63));
        if self.bits[word] & bit != 0 {
            return false;
        }
        self.bits[word] |= bit;
        self.dead += 1;
        true
    }

    pub(crate) fn resize(&mut self, nrows: usize) {
        self.bits.resize(nrows.div_ceil(64), 0);
    }

    /// Number of dead rows.
    pub(crate) fn dead_count(&self) -> usize {
        self.dead
    }
}

/// A named relation instance: schema + columnar data.
#[derive(Debug, Clone)]
pub struct Relation {
    /// Instance name (base-table name, or a derived label for views).
    pub name: String,
    /// The schema.
    pub schema: Schema,
    columns: Vec<Column>,
    nrows: usize,
    /// Dead-row bitmap; `None` = compact (every physical row live).
    tombstones: Option<Box<Tombstones>>,
}

impl Relation {
    /// An empty relation over `schema`.
    pub fn empty(name: impl Into<String>, schema: Schema) -> Self {
        let ncols = schema.len();
        Relation {
            name: name.into(),
            schema,
            columns: vec![Column::default(); ncols],
            nrows: 0,
            tombstones: None,
        }
    }

    /// Number of *physical* rows, dead rows included. Row ids across the
    /// crate (codes, PLIs, deltas) address this physical space; compact
    /// relations have `nrows() == live_rows()`.
    #[inline]
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of live (non-tombstoned) rows.
    #[inline]
    pub fn live_rows(&self) -> usize {
        match &self.tombstones {
            Some(t) => self.nrows - t.dead,
            None => self.nrows,
        }
    }

    /// True iff any row is tombstoned.
    #[inline]
    pub fn has_tombstones(&self) -> bool {
        self.tombstones.as_ref().is_some_and(|t| t.dead > 0)
    }

    /// Number of tombstoned rows.
    #[inline]
    pub fn tombstone_count(&self) -> usize {
        self.tombstones.as_ref().map_or(0, |t| t.dead)
    }

    /// Is the physical row live (not tombstoned)?
    #[inline]
    pub fn is_live(&self, row: usize) -> bool {
        match &self.tombstones {
            Some(t) => !t.is_dead(row),
            None => true,
        }
    }

    /// Physical ids of the live rows, ascending.
    pub fn live_row_ids(&self) -> Vec<u32> {
        (0..self.nrows as u32)
            .filter(|&r| self.is_live(r as usize))
            .collect()
    }

    /// Internal: tear the relation apart for tombstoned patching/vacuum.
    pub(crate) fn into_parts(self) -> (Schema, Vec<Column>, usize, Option<Box<Tombstones>>) {
        (self.schema, self.columns, self.nrows, self.tombstones)
    }

    /// Internal: reassemble from parts (tombstoned constructors).
    pub(crate) fn from_parts(
        name: String,
        schema: Schema,
        columns: Vec<Column>,
        nrows: usize,
        tombstones: Option<Box<Tombstones>>,
    ) -> Relation {
        Relation {
            name,
            schema,
            columns,
            nrows,
            tombstones,
        }
    }

    /// Number of columns.
    #[inline]
    pub fn ncols(&self) -> usize {
        self.columns.len()
    }

    /// Column accessor.
    #[inline]
    pub fn column(&self, attr: AttrId) -> &Column {
        &self.columns[attr]
    }

    /// Consume the relation, yielding its columns (delta application
    /// reuses their allocations and dictionary `Arc`s).
    pub fn into_columns(self) -> Vec<Column> {
        self.columns
    }

    /// Dictionary code at (row, attr).
    #[inline]
    pub fn code(&self, row: usize, attr: AttrId) -> u32 {
        self.columns[attr].codes[row]
    }

    /// Value at (row, attr).
    #[inline]
    pub fn value(&self, row: usize, attr: AttrId) -> &Value {
        self.columns[attr].value(row)
    }

    /// True iff the cell is SQL NULL.
    #[inline]
    pub fn is_null(&self, row: usize, attr: AttrId) -> bool {
        match self.columns[attr].null_code {
            Some(nc) => self.columns[attr].codes[row] == nc,
            None => false,
        }
    }

    /// Materialize one row as owned values (diagnostics, CSV export).
    pub fn row(&self, row: usize) -> Vec<Value> {
        (0..self.ncols())
            .map(|c| self.value(row, c).clone())
            .collect()
    }

    /// Exact number of distinct values (codes) appearing in the *live*
    /// rows of a column. O(n) with a bitmap over the dictionary.
    pub fn distinct_count(&self, attr: AttrId) -> usize {
        let col = &self.columns[attr];
        let mut seen = vec![false; col.dict.len()];
        let mut n = 0;
        if let Some(t) = &self.tombstones {
            for (row, &c) in col.codes.iter().enumerate() {
                let idx = c as usize;
                if !t.is_dead(row) && !seen[idx] {
                    seen[idx] = true;
                    n += 1;
                }
            }
        } else {
            for &c in &col.codes {
                let idx = c as usize;
                if !seen[idx] {
                    seen[idx] = true;
                    n += 1;
                }
            }
        }
        n
    }

    /// Gather a subset of rows (by index) into a new relation sharing the
    /// same schema and dictionaries. Codes remain valid because the
    /// dictionary is append-only. The result is compact — callers
    /// gathering from a tombstoned relation pass live row ids.
    pub fn gather(&self, rows: &[u32], name: impl Into<String>) -> Relation {
        let columns = self
            .columns
            .iter()
            .map(|col| Column {
                codes: rows.iter().map(|&r| col.codes[r as usize]).collect(),
                dict: col.dict.clone(),
                null_code: col.null_code,
            })
            .collect();
        Relation {
            name: name.into(),
            schema: self.schema.clone(),
            columns,
            nrows: rows.len(),
            tombstones: None,
        }
    }

    /// Keep only the given attributes (in the order listed), producing a
    /// relation whose schema is the projection. Duplicate rows are *not*
    /// eliminated — SPJ views in the paper are bag-projections; distinctness
    /// is irrelevant to FD satisfaction (duplicates never violate an FD).
    /// Tombstones carry over: projection shares the physical row space.
    pub fn project(&self, attrs: &[AttrId], name: impl Into<String>) -> Relation {
        let mut schema = Schema::new();
        for &a in attrs {
            schema.push(self.schema.attr(a).clone());
        }
        let columns = attrs.iter().map(|&a| self.columns[a].clone()).collect();
        Relation {
            name: name.into(),
            schema,
            columns,
            nrows: self.nrows,
            tombstones: self.tombstones.clone(),
        }
    }

    /// Approximate heap footprint in bytes (tombstone bitmap included).
    pub fn approx_bytes(&self) -> usize {
        self.columns.iter().map(Column::approx_bytes).sum::<usize>()
            + self
                .tombstones
                .as_ref()
                .map_or(0, |t| t.bits.len() * std::mem::size_of::<u64>())
    }

    /// The full attribute set of this relation.
    pub fn attr_set(&self) -> AttrSet {
        self.schema.attr_set()
    }

    /// Build a relation directly from pre-encoded columns. Internal-ish
    /// constructor used by the algebra executor to avoid re-encoding.
    pub fn from_columns(
        name: impl Into<String>,
        schema: Schema,
        columns: Vec<Column>,
        nrows: usize,
    ) -> Relation {
        assert_eq!(schema.len(), columns.len(), "schema/column arity mismatch");
        for c in &columns {
            assert_eq!(c.codes.len(), nrows, "column length mismatch");
        }
        Relation {
            name: name.into(),
            schema,
            columns,
            nrows,
            tombstones: None,
        }
    }
}

/// Row-at-a-time builder performing dictionary encoding.
pub struct RelationBuilder {
    name: String,
    schema: Schema,
    columns: Vec<Column>,
    value_index: Vec<HashMap<Value, u32>>,
    nrows: usize,
}

impl RelationBuilder {
    /// Start building a relation over `schema`.
    pub fn new(name: impl Into<String>, schema: Schema) -> Self {
        let ncols = schema.len();
        RelationBuilder {
            name: name.into(),
            schema,
            columns: vec![Column::default(); ncols],
            value_index: (0..ncols).map(|_| HashMap::new()).collect(),
            nrows: 0,
        }
    }

    /// Append one row; arity must match the schema.
    pub fn push_row(&mut self, row: Vec<Value>) -> &mut Self {
        assert_eq!(row.len(), self.columns.len(), "row arity mismatch");
        for (c, v) in row.into_iter().enumerate() {
            let col = &mut self.columns[c];
            let idx = &mut self.value_index[c];
            let code = match idx.get(&v) {
                Some(&code) => code,
                None => {
                    let code = col.dict.len() as u32;
                    if v.is_null() {
                        col.null_code = Some(code);
                    }
                    Arc::make_mut(&mut col.dict).push(v.clone());
                    idx.insert(v, code);
                    code
                }
            };
            col.codes.push(code);
        }
        self.nrows += 1;
        self
    }

    /// Append many rows.
    pub fn extend_rows(&mut self, rows: impl IntoIterator<Item = Vec<Value>>) -> &mut Self {
        for r in rows {
            self.push_row(r);
        }
        self
    }

    /// Finish and return the relation.
    pub fn finish(self) -> Relation {
        Relation {
            name: self.name,
            schema: self.schema,
            columns: self.columns,
            nrows: self.nrows,
            tombstones: None,
        }
    }
}

/// A named collection of base relations (the `R` of the paper).
#[derive(Debug, Clone, Default)]
pub struct Database {
    relations: HashMap<String, Relation>,
}

impl Database {
    /// Empty database.
    pub fn new() -> Self {
        Database::default()
    }

    /// Insert (or replace) a relation under its own name.
    pub fn insert(&mut self, rel: Relation) {
        self.relations.insert(rel.name.clone(), rel);
    }

    /// Look up a relation by name.
    pub fn get(&self, name: &str) -> Option<&Relation> {
        self.relations.get(name)
    }

    /// Take a relation out of the database (owners patching a table in
    /// place remove, apply the delta, and re-insert).
    pub fn remove(&mut self, name: &str) -> Option<Relation> {
        self.relations.remove(name)
    }

    /// Look up a relation, panicking with a clear message when absent.
    pub fn expect(&self, name: &str) -> &Relation {
        self.get(name).unwrap_or_else(|| {
            panic!(
                "relation {:?} not in database (have: {:?})",
                name,
                self.names().collect::<Vec<_>>()
            )
        })
    }

    /// Iterate relation names (unordered).
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.relations.keys().map(String::as_str)
    }

    /// Number of relations.
    pub fn len(&self) -> usize {
        self.relations.len()
    }

    /// True iff no relation is stored.
    pub fn is_empty(&self) -> bool {
        self.relations.is_empty()
    }
}

/// Convenience macro-free helper to build a small relation from literal
/// rows, heavily used by tests and examples.
pub fn relation_from_rows(name: &str, attrs: &[&str], rows: &[&[Value]]) -> Relation {
    let mut b = RelationBuilder::new(name, Schema::base(name, attrs));
    for r in rows {
        b.push_row(r.to_vec());
    }
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Relation {
        relation_from_rows(
            "t",
            &["a", "b"],
            &[
                &[Value::Int(1), Value::str("x")],
                &[Value::Int(2), Value::str("y")],
                &[Value::Int(1), Value::Null],
                &[Value::Int(3), Value::Null],
            ],
        )
    }

    #[test]
    fn dictionary_codes_reflect_equality() {
        let r = sample();
        assert_eq!(r.nrows(), 4);
        assert_eq!(r.code(0, 0), r.code(2, 0)); // both Int(1)
        assert_ne!(r.code(0, 0), r.code(1, 0));
        // the two NULLs share a code: null = null
        assert_eq!(r.code(2, 1), r.code(3, 1));
        assert!(r.is_null(2, 1) && r.is_null(3, 1));
        assert!(!r.is_null(0, 1));
    }

    #[test]
    fn distinct_count_over_rows() {
        let r = sample();
        assert_eq!(r.distinct_count(0), 3); // 1,2,3
        assert_eq!(r.distinct_count(1), 3); // x,y,NULL
    }

    #[test]
    fn gather_preserves_codes_and_dict() {
        let r = sample();
        let g = r.gather(&[0, 2], "g");
        assert_eq!(g.nrows(), 2);
        assert_eq!(g.value(0, 0), &Value::Int(1));
        assert_eq!(g.value(1, 1), &Value::Null);
        // codes still comparable with the parent's dictionary
        assert_eq!(g.code(0, 0), r.code(0, 0));
        // distinct over the gathered rows, not the stale dictionary
        assert_eq!(g.distinct_count(0), 1);
    }

    #[test]
    fn project_reorders_schema() {
        let r = sample();
        let p = r.project(&[1, 0], "p");
        assert_eq!(p.schema.name(0), "b");
        assert_eq!(p.schema.name(1), "a");
        assert_eq!(p.value(1, 1), &Value::Int(2));
        assert_eq!(p.nrows(), r.nrows());
    }

    #[test]
    fn row_materializes_values() {
        let r = sample();
        assert_eq!(r.row(1), vec![Value::Int(2), Value::str("y")]);
    }

    #[test]
    fn database_round_trip() {
        let mut db = Database::new();
        db.insert(sample());
        assert!(db.get("t").is_some());
        assert_eq!(db.expect("t").nrows(), 4);
        assert_eq!(db.len(), 1);
    }

    #[test]
    #[should_panic(expected = "not in database")]
    fn database_expect_panics_on_missing() {
        Database::new().expect("nope");
    }

    #[test]
    #[should_panic(expected = "arity mismatch")]
    fn builder_rejects_wrong_arity() {
        let mut b = RelationBuilder::new("t", Schema::base("t", &["a"]));
        b.push_row(vec![Value::Int(1), Value::Int(2)]);
    }

    #[test]
    fn from_columns_checks_lengths() {
        let r = sample();
        let rebuilt = Relation::from_columns(
            "t2",
            r.schema.clone(),
            (0..r.ncols()).map(|c| r.column(c).clone()).collect(),
            r.nrows(),
        );
        assert_eq!(rebuilt.nrows(), 4);
    }

    #[test]
    fn empty_relation_has_no_rows() {
        let r = Relation::empty("e", Schema::base("e", &["a", "b"]));
        assert_eq!(r.nrows(), 0);
        assert_eq!(r.ncols(), 2);
        assert_eq!(r.approx_bytes(), 0);
    }
}
