//! Relation schemas with base-table lineage.
//!
//! View schemas carry, for each attribute, the base relation and attribute
//! it originates from. InFine's provenance machinery uses that lineage to
//! decide which side of a join an FD's attributes come from (Definitions
//! 6 and 7 of the paper quantify over `atts(R1)` / `atts(R2)`).

use crate::attrs::{AttrId, AttrSet};
use std::collections::HashMap;
use std::fmt;

/// Where an attribute of a (possibly derived) relation comes from.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Origin {
    /// Name of the base relation.
    pub relation: String,
    /// Attribute name within the base relation.
    pub attribute: String,
}

impl Origin {
    /// Construct an origin.
    pub fn new(relation: impl Into<String>, attribute: impl Into<String>) -> Self {
        Origin {
            relation: relation.into(),
            attribute: attribute.into(),
        }
    }
}

impl fmt::Display for Origin {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.{}", self.relation, self.attribute)
    }
}

/// One attribute of a schema.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Attribute {
    /// Display name. Unique within a schema (qualified when ambiguous).
    pub name: String,
    /// Base-table lineage, if known.
    pub origin: Option<Origin>,
}

impl Attribute {
    /// A plain attribute without lineage.
    pub fn new(name: impl Into<String>) -> Self {
        Attribute {
            name: name.into(),
            origin: None,
        }
    }

    /// An attribute with base-table lineage.
    pub fn with_origin(name: impl Into<String>, origin: Origin) -> Self {
        Attribute {
            name: name.into(),
            origin: Some(origin),
        }
    }
}

/// Ordered list of attributes with O(1) name lookup.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Schema {
    attrs: Vec<Attribute>,
    by_name: HashMap<String, AttrId>,
}

impl Schema {
    /// Empty schema.
    pub fn new() -> Self {
        Schema::default()
    }

    /// Schema from attribute names, with lineage pointing at `relation`.
    ///
    /// This is the standard constructor for base tables: the attribute
    /// `a` of relation `r` gets origin `r.a`.
    pub fn base(relation: &str, names: &[&str]) -> Self {
        let mut s = Schema::new();
        for n in names {
            s.push(Attribute::with_origin(*n, Origin::new(relation, *n)));
        }
        s
    }

    /// Schema from bare attribute names (no lineage).
    pub fn unqualified(names: &[&str]) -> Self {
        let mut s = Schema::new();
        for n in names {
            s.push(Attribute::new(*n));
        }
        s
    }

    /// Append an attribute; panics on duplicate names or overflow of the
    /// 64-attribute cap.
    pub fn push(&mut self, attr: Attribute) -> AttrId {
        assert!(
            self.attrs.len() < AttrSet::MAX_ATTRS,
            "schema exceeds {} attributes",
            AttrSet::MAX_ATTRS
        );
        let id = self.attrs.len();
        let prev = self.by_name.insert(attr.name.clone(), id);
        assert!(prev.is_none(), "duplicate attribute name {:?}", attr.name);
        self.attrs.push(attr);
        id
    }

    /// Number of attributes.
    pub fn len(&self) -> usize {
        self.attrs.len()
    }

    /// True iff the schema has no attributes.
    pub fn is_empty(&self) -> bool {
        self.attrs.is_empty()
    }

    /// Attribute by id.
    pub fn attr(&self, id: AttrId) -> &Attribute {
        &self.attrs[id]
    }

    /// Attribute name by id.
    pub fn name(&self, id: AttrId) -> &str {
        &self.attrs[id].name
    }

    /// Resolve a name to an id.
    pub fn id_of(&self, name: &str) -> Option<AttrId> {
        self.by_name.get(name).copied()
    }

    /// Resolve a name, panicking with a helpful message when absent.
    pub fn expect_id(&self, name: &str) -> AttrId {
        self.id_of(name).unwrap_or_else(|| {
            panic!(
                "attribute {:?} not in schema {:?}",
                name,
                self.names().collect::<Vec<_>>()
            )
        })
    }

    /// All attribute ids as a set.
    pub fn attr_set(&self) -> AttrSet {
        AttrSet::all(self.attrs.len())
    }

    /// Iterate attribute names in schema order.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.attrs.iter().map(|a| a.name.as_str())
    }

    /// Iterate attributes in schema order.
    pub fn iter(&self) -> impl Iterator<Item = &Attribute> {
        self.attrs.iter()
    }

    /// Ids of attributes whose origin lies in base relation `relation`.
    pub fn attrs_from(&self, relation: &str) -> AttrSet {
        self.attrs
            .iter()
            .enumerate()
            .filter(|(_, a)| {
                a.origin
                    .as_ref()
                    .map(|o| o.relation == relation)
                    .unwrap_or(false)
            })
            .map(|(i, _)| i)
            .collect()
    }

    /// Render an attribute set as a comma-separated name list.
    pub fn render_set(&self, set: AttrSet) -> String {
        let mut out = String::new();
        for (i, a) in set.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(self.name(a));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn base_schema_has_lineage() {
        let s = Schema::base("patient", &["subject_id", "gender"]);
        assert_eq!(s.len(), 2);
        assert_eq!(s.name(0), "subject_id");
        assert_eq!(s.attr(1).origin, Some(Origin::new("patient", "gender")));
    }

    #[test]
    fn name_lookup_round_trips() {
        let s = Schema::base("r", &["a", "b", "c"]);
        assert_eq!(s.id_of("b"), Some(1));
        assert_eq!(s.id_of("zz"), None);
        assert_eq!(s.expect_id("c"), 2);
    }

    #[test]
    #[should_panic(expected = "duplicate attribute")]
    fn duplicate_names_rejected() {
        let mut s = Schema::new();
        s.push(Attribute::new("a"));
        s.push(Attribute::new("a"));
    }

    #[test]
    fn attrs_from_filters_by_origin() {
        let mut s = Schema::new();
        s.push(Attribute::with_origin("l.x", Origin::new("l", "x")));
        s.push(Attribute::with_origin("r.y", Origin::new("r", "y")));
        s.push(Attribute::with_origin("l.z", Origin::new("l", "z")));
        assert_eq!(s.attrs_from("l").to_vec(), vec![0, 2]);
        assert_eq!(s.attrs_from("r").to_vec(), vec![1]);
        assert!(s.attrs_from("q").is_empty());
    }

    #[test]
    fn render_set_lists_names() {
        let s = Schema::base("r", &["a", "b", "c"]);
        let set: AttrSet = [0, 2].into_iter().collect();
        assert_eq!(s.render_set(set), "a,c");
    }

    #[test]
    fn attr_set_spans_schema() {
        let s = Schema::base("r", &["a", "b"]);
        assert_eq!(s.attr_set().len(), 2);
    }
}
