//! # infine-algebra
//!
//! SPJ view specifications (Definition 2 of the InFine paper) and their
//! execution: projections, selections, and the six join operators
//! `{⋈, ⟕, ⟖, ⟗, ⋉, ⋊}` as hash equi-joins over dictionary codes.
//!
//! Besides full materialization (what the baseline pipeline pays for),
//! this crate exposes the *partial* computations InFine relies on:
//!
//! * [`matching_rows`] — the semi-join row set `I ♦ πY(J)` of Algorithm 3,
//!   computed touching only key columns;
//! * [`join_relations`] with column pruning — the horizontal partitions of
//!   Algorithm 4 (`refine`) and the selective joins of Algorithm 5;
//! * [`coverage::coverage`] — the §V coverage measure, computed without
//!   materializing the join.

pub mod coverage;
pub mod exec;
pub mod spec;

pub use coverage::coverage;
pub use exec::{
    derive_schema, execute, join_relations, joined_schema, matching_rows, proj, resolve,
    resolve_join_conditions, select_rows, AlgebraError,
};
pub use spec::{CmpOp, JoinCondition, JoinOp, Predicate, ViewSpec};
