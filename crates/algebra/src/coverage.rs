//! The *coverage* measure of the paper's experimental section (§V).
//!
//! Coverage quantifies how join-attribute value multiplicities survive a
//! join:
//!
//! ```text
//! Coverage(L ♦ R) = ½ ( Cov(Join, L, X) + Cov(Join, R, Y) )
//! Cov(Join, I, a) = 1/|π_a(I)| · Σ_{v ∈ π_a(I)} |σ_{a=v}(Join)| / |σ_{a=v}(I)|
//! ```
//!
//! * `0`  — nothing joins;
//! * `<1` — some tuples dangle (the upstaged-FD trigger);
//! * `=1` — the join is lossless w.r.t. both sides;
//! * `>1` — fan-out duplicates tuples (e.g. 25 812 on the paper's Q9*).
//!
//! The counts are computed from the two inputs alone — the join result is
//! never materialized. For composite join keys the "attribute" is the key
//! tuple.

use crate::spec::JoinOp;
use infine_relation::{AttrId, Relation, Value};
use std::collections::HashMap;

/// Per-key-value multiplicity on one side. Null components are tracked so
/// SQL non-matching can be applied.
fn key_counts<'a>(rel: &'a Relation, keys: &[AttrId]) -> HashMap<Vec<&'a Value>, (u64, bool)> {
    let mut out: HashMap<Vec<&Value>, (u64, bool)> = HashMap::new();
    for row in 0..rel.nrows() {
        let mut any_null = false;
        let key: Vec<&Value> = keys
            .iter()
            .map(|&a| {
                if rel.is_null(row, a) {
                    any_null = true;
                }
                rel.value(row, a)
            })
            .collect();
        let e = out.entry(key).or_insert((0, any_null));
        e.0 += 1;
    }
    out
}

/// Rows the join produces for a key present on side `I` with multiplicity
/// `mine`, given the other side's multiplicity `theirs` (0 when absent or
/// the key contains NULL).
fn join_rows_for_key(op: JoinOp, side_is_left: bool, mine: u64, theirs: u64) -> u64 {
    match op {
        JoinOp::Inner => mine * theirs,
        JoinOp::LeftOuter => {
            if side_is_left {
                mine * theirs.max(1)
            } else {
                mine * theirs
            }
        }
        JoinOp::RightOuter => {
            if side_is_left {
                mine * theirs
            } else {
                mine * theirs.max(1)
            }
        }
        JoinOp::FullOuter => mine * theirs.max(1),
        JoinOp::LeftSemi => {
            if side_is_left {
                if theirs > 0 {
                    mine
                } else {
                    0
                }
            } else {
                // right tuples never appear in a left semi-join result;
                // count the rows their key contributes instead.
                if theirs > 0 {
                    theirs
                } else {
                    0
                }
            }
        }
        JoinOp::RightSemi => {
            if side_is_left {
                if theirs > 0 {
                    theirs
                } else {
                    0
                }
            } else if theirs > 0 {
                mine
            } else {
                0
            }
        }
    }
}

/// `Cov(Join, I, a)` for one side.
fn cov_side(
    mine: &HashMap<Vec<&Value>, (u64, bool)>,
    theirs: &HashMap<Vec<&Value>, (u64, bool)>,
    op: JoinOp,
    side_is_left: bool,
) -> f64 {
    if mine.is_empty() {
        return 0.0;
    }
    let mut sum = 0.0;
    for (key, &(count, has_null)) in mine {
        let other = if has_null {
            0 // SQL: null keys match nothing
        } else {
            theirs.get(key).map(|&(c, _)| c).unwrap_or(0)
        };
        let join_rows = join_rows_for_key(op, side_is_left, count, other);
        sum += join_rows as f64 / count as f64;
    }
    sum / mine.len() as f64
}

/// Coverage of a single join node, computed from the two inputs.
pub fn coverage(left: &Relation, right: &Relation, on: &[(AttrId, AttrId)], op: JoinOp) -> f64 {
    let lkeys: Vec<AttrId> = on.iter().map(|&(l, _)| l).collect();
    let rkeys: Vec<AttrId> = on.iter().map(|&(_, r)| r).collect();
    let lcounts = key_counts(left, &lkeys);
    let rcounts = key_counts(right, &rkeys);
    0.5 * (cov_side(&lcounts, &rcounts, op, true) + cov_side(&rcounts, &lcounts, op, false))
}

#[cfg(test)]
mod tests {
    use super::*;
    use infine_relation::relation_from_rows;

    fn rel(name: &str, vals: &[i64]) -> Relation {
        let rows: Vec<Vec<Value>> = vals.iter().map(|&v| vec![Value::Int(v)]).collect();
        let refs: Vec<&[Value]> = rows.iter().map(|r| r.as_slice()).collect();
        relation_from_rows(name, &["k"], &refs)
    }

    #[test]
    fn disjoint_keys_have_zero_coverage() {
        let l = rel("l", &[1, 2]);
        let r = rel("r", &[3, 4]);
        assert_eq!(coverage(&l, &r, &[(0, 0)], JoinOp::Inner), 0.0);
    }

    #[test]
    fn perfect_one_to_one_has_coverage_one() {
        let l = rel("l", &[1, 2, 3]);
        let r = rel("r", &[1, 2, 3]);
        let c = coverage(&l, &r, &[(0, 0)], JoinOp::Inner);
        assert!((c - 1.0).abs() < 1e-12, "got {c}");
    }

    #[test]
    fn fanout_raises_coverage_above_one() {
        let l = rel("l", &[1, 1, 1, 2]);
        let r = rel("r", &[1, 1, 2]);
        // key 1: L has 3, R has 2 → join rows 6. key 2: 1×1=1.
        // Cov(L): (6/3 + 1/1)/2 = 1.5 ; Cov(R): (6/2 + 1/1)/2 = 2.0
        let c = coverage(&l, &r, &[(0, 0)], JoinOp::Inner);
        assert!((c - 1.75).abs() < 1e-12, "got {c}");
    }

    #[test]
    fn dangling_tuples_lower_coverage_below_one() {
        let l = rel("l", &[1, 2, 3, 4]);
        let r = rel("r", &[1, 2]);
        // Cov(L) = (1+1+0+0)/4 = 0.5; Cov(R) = (1+1)/2 = 1.0
        let c = coverage(&l, &r, &[(0, 0)], JoinOp::Inner);
        assert!((c - 0.75).abs() < 1e-12, "got {c}");
    }

    #[test]
    fn left_outer_preserves_left_side() {
        let l = rel("l", &[1, 2, 3, 4]);
        let r = rel("r", &[1, 2]);
        // left outer: every left key contributes ≥ its own count.
        // Cov(L) = (1+1+1+1)/4 = 1.0 ; Cov(R) = 1.0
        let c = coverage(&l, &r, &[(0, 0)], JoinOp::LeftOuter);
        assert!((c - 1.0).abs() < 1e-12, "got {c}");
    }

    #[test]
    fn null_keys_count_as_dangling() {
        let l = relation_from_rows("l", &["k"], &[&[Value::Null], &[Value::Int(1)]]);
        let r = rel("r", &[1]);
        // L keys: NULL (no match), 1 (matches 1). Cov(L)=(0+1)/2=0.5, Cov(R)=1.
        let c = coverage(&l, &r, &[(0, 0)], JoinOp::Inner);
        assert!((c - 0.75).abs() < 1e-12, "got {c}");
    }

    #[test]
    fn semi_join_coverage_counts_surviving_rows() {
        let l = rel("l", &[1, 1, 2]);
        let r = rel("r", &[1]);
        // Left semi join result: both rows with key 1.
        // Cov(L) = (2/2 + 0/1)/2 = 0.5 ; Cov(R) = (2/1)/1 = 2.0
        let c = coverage(&l, &r, &[(0, 0)], JoinOp::LeftSemi);
        assert!((c - 1.25).abs() < 1e-12, "got {c}");
    }

    #[test]
    fn empty_side_yields_zero_side_coverage() {
        let l = rel("l", &[]);
        let r = rel("r", &[1]);
        let c = coverage(&l, &r, &[(0, 0)], JoinOp::Inner);
        assert_eq!(c, 0.0);
    }
}
