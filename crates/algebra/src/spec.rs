//! SPJ view specifications (Definition 2 of the paper).
//!
//! A [`ViewSpec`] is a relational-algebra tree restricted to the operator
//! set `{π, σ, ⋈, ⟕, ⟖, ⟗, ⋉, ⋊}` — projections, selections, and the six
//! join operators. The `Display` implementation renders the sub-query
//! strings stored in FD provenance triples (Definition 8).

use infine_relation::Value;
use std::fmt;

/// The six join operators of Definition 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum JoinOp {
    /// Inner equi-join ⋈.
    Inner,
    /// Left outer join ⟕ (keeps dangling left tuples, null-padded).
    LeftOuter,
    /// Right outer join ⟖.
    RightOuter,
    /// Full outer join ⟗.
    FullOuter,
    /// Left semi-join ⋉ (left tuples with a match; left schema only).
    LeftSemi,
    /// Right semi-join ⋊ (right tuples with a match; right schema only).
    RightSemi,
}

impl JoinOp {
    /// Symbol used in rendered sub-queries.
    pub fn symbol(self) -> &'static str {
        match self {
            JoinOp::Inner => "⋈",
            JoinOp::LeftOuter => "⟕",
            JoinOp::RightOuter => "⟖",
            JoinOp::FullOuter => "⟗",
            JoinOp::LeftSemi => "⋉",
            JoinOp::RightSemi => "⋊",
        }
    }

    /// Does the join result contain the left input's attributes?
    pub fn keeps_left_attrs(self) -> bool {
        !matches!(self, JoinOp::RightSemi)
    }

    /// Does the join result contain the right input's attributes?
    pub fn keeps_right_attrs(self) -> bool {
        !matches!(self, JoinOp::LeftSemi)
    }

    /// Can tuples of the left input be absent from the result?
    ///
    /// This is the precondition for *left upstaged* FDs (Definition 5): a
    /// join can only upstage FDs on the side that loses tuples.
    pub fn can_drop_left(self) -> bool {
        matches!(
            self,
            JoinOp::Inner | JoinOp::RightOuter | JoinOp::LeftSemi | JoinOp::RightSemi
        )
    }

    /// Can tuples of the right input be absent from the result?
    pub fn can_drop_right(self) -> bool {
        matches!(
            self,
            JoinOp::Inner | JoinOp::LeftOuter | JoinOp::LeftSemi | JoinOp::RightSemi
        )
    }
}

/// Comparison operators for selection predicates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `<>`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl CmpOp {
    fn symbol(self) -> &'static str {
        match self {
            CmpOp::Eq => "=",
            CmpOp::Ne => "<>",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        }
    }
}

/// Selection predicates (the ρ of σρ).
///
/// Attribute references are by output-schema name of the predicate's input
/// view; resolution is lenient (see `resolve` in the executor) so that
/// `subject_id` finds `patients.subject_id` after a collision rename.
#[derive(Debug, Clone, PartialEq)]
pub enum Predicate {
    /// Always true (σ becomes a no-op; useful in generated workloads).
    True,
    /// `attr op literal`. Comparisons involving NULL are false (SQL-ish).
    Cmp {
        /// Attribute name in the input view.
        attr: String,
        /// Comparison operator.
        op: CmpOp,
        /// Literal to compare against.
        value: Value,
    },
    /// `attr IS NULL`.
    IsNull(String),
    /// `attr IS NOT NULL`.
    IsNotNull(String),
    /// `attr IN (v1, .., vk)`.
    In {
        /// Attribute name in the input view.
        attr: String,
        /// Literal list.
        values: Vec<Value>,
    },
    /// Conjunction.
    And(Box<Predicate>, Box<Predicate>),
    /// Disjunction.
    Or(Box<Predicate>, Box<Predicate>),
    /// Negation.
    Not(Box<Predicate>),
}

impl Predicate {
    /// `attr = value` shorthand.
    pub fn eq(attr: impl Into<String>, value: impl Into<Value>) -> Self {
        Predicate::Cmp {
            attr: attr.into(),
            op: CmpOp::Eq,
            value: value.into(),
        }
    }

    /// `attr op value` shorthand.
    pub fn cmp(attr: impl Into<String>, op: CmpOp, value: impl Into<Value>) -> Self {
        Predicate::Cmp {
            attr: attr.into(),
            op,
            value: value.into(),
        }
    }

    /// Conjunction builder.
    pub fn and(self, other: Predicate) -> Self {
        Predicate::And(Box::new(self), Box::new(other))
    }

    /// Disjunction builder.
    pub fn or(self, other: Predicate) -> Self {
        Predicate::Or(Box::new(self), Box::new(other))
    }

    /// Negation builder.
    pub fn negate(self) -> Self {
        Predicate::Not(Box::new(self))
    }
}

impl fmt::Display for Predicate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Predicate::True => write!(f, "true"),
            Predicate::Cmp { attr, op, value } => {
                write!(f, "{attr}{}{value}", op.symbol())
            }
            Predicate::IsNull(a) => write!(f, "{a} IS NULL"),
            Predicate::IsNotNull(a) => write!(f, "{a} IS NOT NULL"),
            Predicate::In { attr, values } => {
                write!(f, "{attr} IN (")?;
                for (i, v) in values.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, ")")
            }
            Predicate::And(a, b) => write!(f, "({a} ∧ {b})"),
            Predicate::Or(a, b) => write!(f, "({a} ∨ {b})"),
            Predicate::Not(a) => write!(f, "¬({a})"),
        }
    }
}

/// One equality condition of an equi-join: left name = right name.
pub type JoinCondition = (String, String);

/// An SPJ view specification tree.
#[derive(Debug, Clone, PartialEq)]
pub enum ViewSpec {
    /// A base relation, optionally aliased (aliases make self-joins like
    /// `[atm ⋈ bond ⋈ atm] ⋈ drug` expressible).
    Base {
        /// Base-table name in the database.
        table: String,
        /// Alias; when set, output attributes take lineage from the alias.
        alias: Option<String>,
    },
    /// Projection πX.
    Project {
        /// Input view.
        input: Box<ViewSpec>,
        /// Output attribute names (resolved against the input's schema).
        attrs: Vec<String>,
    },
    /// Selection σρ.
    Select {
        /// Input view.
        input: Box<ViewSpec>,
        /// Predicate ρ.
        predicate: Predicate,
    },
    /// One of the six joins.
    Join {
        /// Left input.
        left: Box<ViewSpec>,
        /// Right input.
        right: Box<ViewSpec>,
        /// Join operator.
        op: JoinOp,
        /// Equality conditions (empty = cross product, not used in the
        /// paper's workloads but supported).
        on: Vec<JoinCondition>,
    },
}

impl ViewSpec {
    /// A base relation reference.
    pub fn base(table: impl Into<String>) -> Self {
        ViewSpec::Base {
            table: table.into(),
            alias: None,
        }
    }

    /// A base relation reference under an alias.
    pub fn base_as(table: impl Into<String>, alias: impl Into<String>) -> Self {
        ViewSpec::Base {
            table: table.into(),
            alias: Some(alias.into()),
        }
    }

    /// Wrap in a projection.
    pub fn project(self, attrs: &[&str]) -> Self {
        ViewSpec::Project {
            input: Box::new(self),
            attrs: attrs.iter().map(|s| s.to_string()).collect(),
        }
    }

    /// Wrap in a selection.
    pub fn select(self, predicate: Predicate) -> Self {
        ViewSpec::Select {
            input: Box::new(self),
            predicate,
        }
    }

    /// Join with another view.
    pub fn join(self, right: ViewSpec, op: JoinOp, on: &[(&str, &str)]) -> Self {
        ViewSpec::Join {
            left: Box::new(self),
            right: Box::new(right),
            op,
            on: on
                .iter()
                .map(|(l, r)| (l.to_string(), r.to_string()))
                .collect(),
        }
    }

    /// Natural-style inner join on equally-named keys.
    pub fn inner_join(self, right: ViewSpec, keys: &[&str]) -> Self {
        let on: Vec<(&str, &str)> = keys.iter().map(|k| (*k, *k)).collect();
        self.join(right, JoinOp::Inner, &on)
    }

    /// Names of all base tables referenced (with multiplicity).
    pub fn base_tables(&self) -> Vec<&str> {
        let mut out = Vec::new();
        self.collect_bases(&mut out);
        out
    }

    fn collect_bases<'a>(&'a self, out: &mut Vec<&'a str>) {
        match self {
            ViewSpec::Base { table, .. } => out.push(table),
            ViewSpec::Project { input, .. } | ViewSpec::Select { input, .. } => {
                input.collect_bases(out)
            }
            ViewSpec::Join { left, right, .. } => {
                left.collect_bases(out);
                right.collect_bases(out);
            }
        }
    }

    /// Number of join operators in the tree.
    pub fn join_count(&self) -> usize {
        match self {
            ViewSpec::Base { .. } => 0,
            ViewSpec::Project { input, .. } | ViewSpec::Select { input, .. } => input.join_count(),
            ViewSpec::Join { left, right, .. } => 1 + left.join_count() + right.join_count(),
        }
    }
}

impl fmt::Display for ViewSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ViewSpec::Base { table, alias } => match alias {
                Some(a) => write!(f, "{table} AS {a}"),
                None => write!(f, "{table}"),
            },
            ViewSpec::Project { input, attrs } => {
                write!(f, "π[{}]({input})", attrs.join(","))
            }
            ViewSpec::Select { input, predicate } => {
                write!(f, "σ[{predicate}]({input})")
            }
            ViewSpec::Join {
                left,
                right,
                op,
                on,
            } => {
                let conds: Vec<String> = on.iter().map(|(l, r)| format!("{l}={r}")).collect();
                write!(f, "({left} {}[{}] {right})", op.symbol(), conds.join(","))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_compose() {
        let v = ViewSpec::base("patients")
            .inner_join(ViewSpec::base("admissions"), &["subject_id"])
            .select(Predicate::eq("insurance", "Medicare"))
            .project(&["subject_id", "insurance"]);
        assert_eq!(v.base_tables(), vec!["patients", "admissions"]);
        assert_eq!(v.join_count(), 1);
        let s = v.to_string();
        assert!(s.contains("⋈"));
        assert!(s.contains("insurance=Medicare"));
        assert!(s.starts_with("π[subject_id,insurance]"));
    }

    #[test]
    fn self_join_via_alias_renders() {
        let v = ViewSpec::base_as("atm", "atm1").join(
            ViewSpec::base_as("atm", "atm2"),
            JoinOp::Inner,
            &[("a", "a")],
        );
        assert_eq!(v.base_tables(), vec!["atm", "atm"]);
        assert!(v.to_string().contains("atm AS atm1"));
    }

    #[test]
    fn join_op_drop_sides() {
        assert!(JoinOp::Inner.can_drop_left() && JoinOp::Inner.can_drop_right());
        assert!(!JoinOp::LeftOuter.can_drop_left() && JoinOp::LeftOuter.can_drop_right());
        assert!(JoinOp::RightOuter.can_drop_left() && !JoinOp::RightOuter.can_drop_right());
        assert!(!JoinOp::FullOuter.can_drop_left() && !JoinOp::FullOuter.can_drop_right());
        assert!(JoinOp::LeftSemi.can_drop_left());
        assert!(!JoinOp::LeftSemi.keeps_right_attrs());
        assert!(!JoinOp::RightSemi.keeps_left_attrs());
    }

    #[test]
    fn predicate_display_covers_variants() {
        let p = Predicate::eq("a", 1i64)
            .and(Predicate::IsNull("b".into()))
            .or(Predicate::In {
                attr: "c".into(),
                values: vec![Value::Int(1), Value::Int(2)],
            })
            .negate();
        let s = p.to_string();
        assert!(s.contains("a=1"));
        assert!(s.contains("b IS NULL"));
        assert!(s.contains("c IN (1,2)"));
        assert!(s.starts_with("¬"));
    }
}
