//! Execution of SPJ view specifications.
//!
//! The executor materializes views for the *straightforward* baseline
//! pipeline (discover FDs on the full view result) and provides the
//! building blocks InFine uses for *partial* computation: semi-join
//! match-row extraction and column-pruned joins.
//!
//! Joins are hash equi-joins over dictionary codes. Because each relation
//! has its own dictionary, join columns are first aligned onto a shared
//! code space (one pass over each dictionary, not over the rows).

use crate::spec::{CmpOp, JoinCondition, JoinOp, Predicate, ViewSpec};
use infine_relation::{AttrId, Attribute, Column, Database, Origin, Relation, Schema, Value};
use std::collections::HashMap;

/// Errors raised while deriving schemas or executing views.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AlgebraError {
    /// A base table named in the spec is missing from the database.
    UnknownRelation(String),
    /// An attribute name did not resolve against a schema.
    UnknownAttribute {
        /// The name that failed to resolve.
        name: String,
        /// The names that were available.
        available: Vec<String>,
    },
    /// An attribute name resolved to more than one schema position.
    AmbiguousAttribute(String),
}

impl std::fmt::Display for AlgebraError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AlgebraError::UnknownRelation(r) => write!(f, "unknown relation {r:?}"),
            AlgebraError::UnknownAttribute { name, available } => {
                write!(f, "unknown attribute {name:?} (available: {available:?})")
            }
            AlgebraError::AmbiguousAttribute(a) => write!(f, "ambiguous attribute {a:?}"),
        }
    }
}

impl std::error::Error for AlgebraError {}

/// Resolve an attribute reference against a schema.
///
/// Resolution order: exact name match; unique `.name` suffix match (so
/// `subject_id` finds `patients.subject_id` after a collision rename);
/// unique lineage match on `origin.attribute`.
pub fn resolve(schema: &Schema, name: &str) -> Result<AttrId, AlgebraError> {
    if let Some(id) = schema.id_of(name) {
        return Ok(id);
    }
    let suffix = format!(".{name}");
    let by_suffix: Vec<AttrId> = (0..schema.len())
        .filter(|&i| schema.name(i).ends_with(&suffix))
        .collect();
    match by_suffix.len() {
        1 => return Ok(by_suffix[0]),
        n if n > 1 => return Err(AlgebraError::AmbiguousAttribute(name.to_string())),
        _ => {}
    }
    let by_origin: Vec<AttrId> = (0..schema.len())
        .filter(|&i| {
            schema
                .attr(i)
                .origin
                .as_ref()
                .map(|o| o.attribute == name)
                .unwrap_or(false)
        })
        .collect();
    match by_origin.len() {
        1 => return Ok(by_origin[0]),
        n if n > 1 => return Err(AlgebraError::AmbiguousAttribute(name.to_string())),
        _ => {}
    }
    // Qualified reference `rel.attr` matched against full lineage — lets a
    // query say `atm.drug_id` even when the (base) schema's display name
    // is the bare `drug_id`.
    if let Some((rel, attr)) = name.rsplit_once('.') {
        let by_qualified: Vec<AttrId> = (0..schema.len())
            .filter(|&i| {
                schema
                    .attr(i)
                    .origin
                    .as_ref()
                    .map(|o| o.relation == rel && o.attribute == attr)
                    .unwrap_or(false)
            })
            .collect();
        match by_qualified.len() {
            1 => return Ok(by_qualified[0]),
            n if n > 1 => return Err(AlgebraError::AmbiguousAttribute(name.to_string())),
            _ => {}
        }
    }
    Err(AlgebraError::UnknownAttribute {
        name: name.to_string(),
        available: schema.names().map(str::to_string).collect(),
    })
}

/// Compute the combined schema of a join, renaming name collisions.
///
/// An attribute keeps its name when unique across both inputs; otherwise it
/// is renamed to `origin.relation.origin.attribute` (falling back to an
/// `l.`/`r.` prefix without lineage), and numeric suffixes `#2`, `#3`, …
/// disambiguate any residual clash.
pub fn joined_schema(left: &Schema, right: &Schema, op: JoinOp) -> Schema {
    join_schema(left, right, op)
}

fn join_schema(left: &Schema, right: &Schema, op: JoinOp) -> Schema {
    let mut counts: HashMap<&str, usize> = HashMap::new();
    let sides: Vec<(&Schema, &str)> = match op {
        JoinOp::LeftSemi => vec![(left, "l")],
        JoinOp::RightSemi => vec![(right, "r")],
        _ => vec![(left, "l"), (right, "r")],
    };
    for (s, _) in &sides {
        for n in s.names() {
            *counts.entry(n).or_insert(0) += 1;
        }
    }
    let mut out = Schema::new();
    let mut used: HashMap<String, usize> = HashMap::new();
    for (s, side) in &sides {
        for attr in s.iter() {
            let base_name = if counts[attr.name.as_str()] > 1 {
                match &attr.origin {
                    Some(o) => format!("{}.{}", o.relation, o.attribute),
                    None => format!("{side}.{}", attr.name),
                }
            } else {
                attr.name.clone()
            };
            let n = used.entry(base_name.clone()).or_insert(0);
            *n += 1;
            let final_name = if *n == 1 {
                base_name
            } else {
                format!("{base_name}#{n}")
            };
            out.push(Attribute {
                name: final_name,
                origin: attr.origin.clone(),
            });
        }
    }
    out
}

/// Per-join-column alignment of two dictionaries onto a common code space.
struct KeyAlign {
    /// left code → common id
    left: Vec<u32>,
    /// right code → common id
    right: Vec<u32>,
}

fn align_keys(l: &Column, r: &Column) -> KeyAlign {
    let mut common: HashMap<&Value, u32> = HashMap::with_capacity(l.dict.len());
    let mut left = Vec::with_capacity(l.dict.len());
    for v in l.dict.iter() {
        let next = common.len() as u32;
        let id = *common.entry(v).or_insert(next);
        left.push(id);
    }
    let mut right = Vec::with_capacity(r.dict.len());
    for v in r.dict.iter() {
        let next = common.len() as u32;
        let id = *common.entry(v).or_insert(next);
        right.push(id);
    }
    KeyAlign { left, right }
}

/// Composite key of a row over the aligned join columns; `None` when any
/// component is SQL NULL (null keys never match).
#[inline]
fn row_key(
    rel: &Relation,
    row: usize,
    attrs: &[AttrId],
    side_is_left: bool,
    aligns: &[KeyAlign],
) -> Option<Vec<u32>> {
    let mut key = Vec::with_capacity(attrs.len());
    for (i, &a) in attrs.iter().enumerate() {
        if rel.is_null(row, a) {
            return None;
        }
        let code = rel.code(row, a) as usize;
        let common = if side_is_left {
            aligns[i].left[code]
        } else {
            aligns[i].right[code]
        };
        key.push(common);
    }
    Some(key)
}

/// Gather output codes for one side's column given (possibly absent) row
/// indices; dangling rows become NULL.
fn gather_optional(col: &Column, rows: &[Option<u32>]) -> Column {
    let mut dict = col.dict.clone();
    let mut null_code = col.null_code;
    if rows.iter().any(Option::is_none) && null_code.is_none() {
        null_code = Some(dict.len() as u32);
        std::sync::Arc::make_mut(&mut dict).push(Value::Null);
    }
    let codes = rows
        .iter()
        .map(|r| match r {
            Some(i) => col.codes[*i as usize],
            None => null_code.expect("null code allocated above"),
        })
        .collect();
    Column {
        codes,
        dict,
        null_code,
    }
}

/// Hash equi-join over two relations with explicit join-attribute ids.
///
/// `keep_left` / `keep_right` prune the output to the listed columns (in
/// that order); `None` keeps everything. Column pruning is what makes
/// InFine's *partial SPJ computation* (Algorithm 4 line 19, Algorithm 5)
/// cheap — only the attributes under test are materialized.
pub fn join_relations(
    left: &Relation,
    right: &Relation,
    op: JoinOp,
    on: &[(AttrId, AttrId)],
    keep_left: Option<&[AttrId]>,
    keep_right: Option<&[AttrId]>,
    name: &str,
) -> Relation {
    let aligns: Vec<KeyAlign> = on
        .iter()
        .map(|&(l, r)| align_keys(left.column(l), right.column(r)))
        .collect();
    let lattrs: Vec<AttrId> = on.iter().map(|&(l, _)| l).collect();
    let rattrs: Vec<AttrId> = on.iter().map(|&(_, r)| r).collect();

    // Build on the right side.
    let mut table: HashMap<Vec<u32>, Vec<u32>> = HashMap::new();
    for row in 0..right.nrows() {
        if let Some(key) = row_key(right, row, &rattrs, false, &aligns) {
            table.entry(key).or_default().push(row as u32);
        }
    }

    // Probe with the left side.
    let mut pairs: Vec<(Option<u32>, Option<u32>)> = Vec::new();
    let mut right_matched = vec![false; right.nrows()];
    match op {
        JoinOp::LeftSemi => {
            for row in 0..left.nrows() {
                if let Some(key) = row_key(left, row, &lattrs, true, &aligns) {
                    if table.contains_key(&key) {
                        pairs.push((Some(row as u32), None));
                    }
                }
            }
        }
        JoinOp::RightSemi => {
            // Probe right rows against a left-side set instead.
            let mut left_keys: HashMap<Vec<u32>, ()> = HashMap::new();
            for row in 0..left.nrows() {
                if let Some(key) = row_key(left, row, &lattrs, true, &aligns) {
                    left_keys.insert(key, ());
                }
            }
            for row in 0..right.nrows() {
                if let Some(key) = row_key(right, row, &rattrs, false, &aligns) {
                    if left_keys.contains_key(&key) {
                        pairs.push((None, Some(row as u32)));
                    }
                }
            }
        }
        _ => {
            for row in 0..left.nrows() {
                let key = row_key(left, row, &lattrs, true, &aligns);
                let matches = key.as_ref().and_then(|k| table.get(k));
                match matches {
                    Some(rs) => {
                        for &r in rs {
                            right_matched[r as usize] = true;
                            pairs.push((Some(row as u32), Some(r)));
                        }
                    }
                    None => {
                        if matches!(op, JoinOp::LeftOuter | JoinOp::FullOuter) {
                            pairs.push((Some(row as u32), None));
                        }
                    }
                }
            }
            if matches!(op, JoinOp::RightOuter | JoinOp::FullOuter) {
                for (row, matched) in right_matched.iter().enumerate() {
                    if !matched {
                        pairs.push((None, Some(row as u32)));
                    }
                }
            }
        }
    }

    // Assemble output columns.
    let all_left: Vec<AttrId> = (0..left.ncols()).collect();
    let all_right: Vec<AttrId> = (0..right.ncols()).collect();
    let kept_left: &[AttrId] = if op.keeps_left_attrs() {
        keep_left.unwrap_or(&all_left)
    } else {
        &[]
    };
    let kept_right: &[AttrId] = if op.keeps_right_attrs() {
        keep_right.unwrap_or(&all_right)
    } else {
        &[]
    };

    let left_rows: Vec<Option<u32>> = pairs.iter().map(|&(l, _)| l).collect();
    let right_rows: Vec<Option<u32>> = pairs.iter().map(|&(_, r)| r).collect();

    let mut schema = Schema::new();
    let mut columns = Vec::with_capacity(kept_left.len() + kept_right.len());
    {
        // Restricted schemas drive the collision renaming.
        let mut lschema = Schema::new();
        for &a in kept_left {
            lschema.push(left.schema.attr(a).clone());
        }
        let mut rschema = Schema::new();
        for &a in kept_right {
            rschema.push(right.schema.attr(a).clone());
        }
        let combined = join_schema(
            &lschema,
            &rschema,
            if kept_left.is_empty() {
                JoinOp::RightSemi
            } else if kept_right.is_empty() {
                JoinOp::LeftSemi
            } else {
                JoinOp::Inner
            },
        );
        for attr in combined.iter() {
            schema.push(attr.clone());
        }
    }
    for &a in kept_left {
        columns.push(gather_optional(left.column(a), &left_rows));
    }
    for &a in kept_right {
        columns.push(gather_optional(right.column(a), &right_rows));
    }
    Relation::from_columns(name, schema, columns, pairs.len())
}

/// Distinct rows of `probe` that have at least one join partner in `other`.
///
/// This realizes `I ♦X=Y πY(J)` of Algorithm 3 line 13 *without* computing
/// the join: only the key columns are touched and each probe row appears at
/// most once. The result drives both the size check (line 14) and the
/// upstaged-FD mining input.
pub fn matching_rows(
    probe: &Relation,
    other: &Relation,
    probe_keys: &[AttrId],
    other_keys: &[AttrId],
) -> Vec<u32> {
    assert_eq!(probe_keys.len(), other_keys.len());
    let aligns: Vec<KeyAlign> = probe_keys
        .iter()
        .zip(other_keys)
        .map(|(&p, &o)| align_keys(probe.column(p), other.column(o)))
        .collect();
    let mut keys: HashMap<Vec<u32>, ()> = HashMap::new();
    for row in 0..other.nrows() {
        if let Some(key) = row_key(other, row, other_keys, false, &aligns) {
            keys.insert(key, ());
        }
    }
    let mut out = Vec::new();
    for row in 0..probe.nrows() {
        if let Some(key) = row_key(probe, row, probe_keys, true, &aligns) {
            if keys.contains_key(&key) {
                out.push(row as u32);
            }
        }
    }
    out
}

/// Evaluate a predicate on one row.
fn eval_predicate(rel: &Relation, row: usize, pred: &Predicate) -> Result<bool, AlgebraError> {
    Ok(match pred {
        Predicate::True => true,
        Predicate::Cmp { attr, op, value } => {
            let a = resolve(&rel.schema, attr)?;
            if rel.is_null(row, a) {
                return Ok(false); // SQL: comparisons with NULL are not true
            }
            let v = rel.value(row, a);
            match op {
                CmpOp::Eq => v == value,
                CmpOp::Ne => v != value,
                CmpOp::Lt => v < value,
                CmpOp::Le => v <= value,
                CmpOp::Gt => v > value,
                CmpOp::Ge => v >= value,
            }
        }
        Predicate::IsNull(attr) => {
            let a = resolve(&rel.schema, attr)?;
            rel.is_null(row, a)
        }
        Predicate::IsNotNull(attr) => {
            let a = resolve(&rel.schema, attr)?;
            !rel.is_null(row, a)
        }
        Predicate::In { attr, values } => {
            let a = resolve(&rel.schema, attr)?;
            !rel.is_null(row, a) && values.contains(rel.value(row, a))
        }
        Predicate::And(x, y) => eval_predicate(rel, row, x)? && eval_predicate(rel, row, y)?,
        Predicate::Or(x, y) => eval_predicate(rel, row, x)? || eval_predicate(rel, row, y)?,
        Predicate::Not(x) => !eval_predicate(rel, row, x)?,
    })
}

/// Apply a selection, returning the surviving row indices.
pub fn select_rows(rel: &Relation, pred: &Predicate) -> Result<Vec<u32>, AlgebraError> {
    let mut rows = Vec::new();
    for row in 0..rel.nrows() {
        if eval_predicate(rel, row, pred)? {
            rows.push(row as u32);
        }
    }
    Ok(rows)
}

fn apply_alias(rel: &Relation, alias: &str) -> Relation {
    let mut schema = Schema::new();
    for attr in rel.schema.iter() {
        let origin = attr
            .origin
            .as_ref()
            .map(|o| Origin::new(alias, o.attribute.clone()))
            .or_else(|| Some(Origin::new(alias, attr.name.clone())));
        schema.push(Attribute {
            name: attr.name.clone(),
            origin,
        });
    }
    Relation::from_columns(
        alias,
        schema,
        (0..rel.ncols()).map(|c| rel.column(c).clone()).collect(),
        rel.nrows(),
    )
}

/// Materialize a view specification against a database.
///
/// This is the *full* SPJ computation the paper charges to the baseline
/// methods; InFine calls it only on sub-plans it genuinely needs.
pub fn execute(spec: &ViewSpec, db: &Database) -> Result<Relation, AlgebraError> {
    match spec {
        ViewSpec::Base { table, alias } => {
            let rel = db
                .get(table)
                .ok_or_else(|| AlgebraError::UnknownRelation(table.clone()))?;
            // The executor scans physical rows; tombstoned inputs must be
            // vacuumed first (the maintenance engine does so before any
            // pipeline replay — see infine-relation::vacuum).
            debug_assert!(
                !rel.has_tombstones(),
                "execute over tombstoned relation {table:?}: vacuum it first"
            );
            Ok(match alias {
                Some(a) => apply_alias(rel, a),
                None => rel.clone(),
            })
        }
        ViewSpec::Project { input, attrs } => {
            let rel = execute(input, db)?;
            let ids = attrs
                .iter()
                .map(|a| resolve(&rel.schema, a))
                .collect::<Result<Vec<_>, _>>()?;
            Ok(rel.project(&ids, format!("π({})", rel.name)))
        }
        ViewSpec::Select { input, predicate } => {
            let rel = execute(input, db)?;
            let rows = select_rows(&rel, predicate)?;
            Ok(rel.gather(&rows, format!("σ({})", rel.name)))
        }
        ViewSpec::Join {
            left,
            right,
            op,
            on,
        } => {
            let l = execute(left, db)?;
            let r = execute(right, db)?;
            let ids = resolve_join_conditions(&l.schema, &r.schema, on)?;
            let name = format!("({} {} {})", l.name, op.symbol(), r.name);
            Ok(join_relations(&l, &r, *op, &ids, None, None, &name))
        }
    }
}

/// Resolve the name pairs of a join condition against both input schemas.
pub fn resolve_join_conditions(
    left: &Schema,
    right: &Schema,
    on: &[JoinCondition],
) -> Result<Vec<(AttrId, AttrId)>, AlgebraError> {
    on.iter()
        .map(|(l, r)| Ok((resolve(left, l)?, resolve(right, r)?)))
        .collect()
}

/// Derive the output schema of a view without executing it.
///
/// Used by `proj()` (Definition 3) and by InFine's step 1 to restrict base
/// mining to projected attributes. Matches `execute`'s schema exactly.
pub fn derive_schema(spec: &ViewSpec, db: &Database) -> Result<Schema, AlgebraError> {
    match spec {
        ViewSpec::Base { table, alias } => {
            let rel = db
                .get(table)
                .ok_or_else(|| AlgebraError::UnknownRelation(table.clone()))?;
            Ok(match alias {
                Some(a) => {
                    let mut s = Schema::new();
                    for attr in rel.schema.iter() {
                        let origin = attr
                            .origin
                            .as_ref()
                            .map(|o| Origin::new(a.clone(), o.attribute.clone()))
                            .or_else(|| Some(Origin::new(a.clone(), attr.name.clone())));
                        s.push(Attribute {
                            name: attr.name.clone(),
                            origin,
                        });
                    }
                    s
                }
                None => rel.schema.clone(),
            })
        }
        ViewSpec::Project { input, attrs } => {
            let inner = derive_schema(input, db)?;
            let mut s = Schema::new();
            for a in attrs {
                let id = resolve(&inner, a)?;
                s.push(inner.attr(id).clone());
            }
            Ok(s)
        }
        ViewSpec::Select { input, .. } => derive_schema(input, db),
        ViewSpec::Join {
            left, right, op, ..
        } => {
            let l = derive_schema(left, db)?;
            let r = derive_schema(right, db)?;
            Ok(join_schema(&l, &r, *op))
        }
    }
}

/// The set of output attribute *names* of a view: `proj(V)` of Definition 3.
pub fn proj(spec: &ViewSpec, db: &Database) -> Result<Vec<String>, AlgebraError> {
    Ok(derive_schema(spec, db)?
        .names()
        .map(str::to_string)
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use infine_relation::relation_from_rows;

    fn db() -> Database {
        let mut db = Database::new();
        db.insert(relation_from_rows(
            "patient",
            &["subject_id", "gender", "dod"],
            &[
                &[Value::Int(249), Value::str("F"), Value::Null],
                &[Value::Int(250), Value::str("F"), Value::str("22/11/88")],
                &[Value::Int(251), Value::str("M"), Value::Null],
                &[Value::Int(257), Value::str("F"), Value::str("08/07/21")],
            ],
        ));
        db.insert(relation_from_rows(
            "admission",
            &["subject_id", "insurance"],
            &[
                &[Value::Int(249), Value::str("Medicare")],
                &[Value::Int(249), Value::str("Medicare")],
                &[Value::Int(250), Value::str("Self Pay")],
                &[Value::Int(251), Value::str("Private")],
                &[Value::Int(247), Value::str("Home")],
            ],
        ));
        db
    }

    #[test]
    fn inner_join_matches_and_renames() {
        let v = ViewSpec::base("patient").inner_join(ViewSpec::base("admission"), &["subject_id"]);
        let r = execute(&v, &db()).unwrap();
        // 249 matches twice, 250 once, 251 once; 257 and 247 dangle.
        assert_eq!(r.nrows(), 4);
        // collision renamed via origins
        assert!(r.schema.id_of("patient.subject_id").is_some());
        assert!(r.schema.id_of("admission.subject_id").is_some());
        assert!(r.schema.id_of("gender").is_some());
    }

    #[test]
    fn derive_schema_matches_execute() {
        let v = ViewSpec::base("patient")
            .inner_join(ViewSpec::base("admission"), &["subject_id"])
            .select(Predicate::eq("insurance", "Medicare"))
            .project(&["gender", "insurance"]);
        let d = db();
        let r = execute(&v, &d).unwrap();
        let s = derive_schema(&v, &d).unwrap();
        assert_eq!(
            r.schema.names().collect::<Vec<_>>(),
            s.names().collect::<Vec<_>>()
        );
        assert_eq!(proj(&v, &d).unwrap(), vec!["gender", "insurance"]);
    }

    #[test]
    fn left_outer_keeps_dangling_left() {
        let v = ViewSpec::base("patient").join(
            ViewSpec::base("admission"),
            JoinOp::LeftOuter,
            &[("subject_id", "subject_id")],
        );
        let r = execute(&v, &db()).unwrap();
        assert_eq!(r.nrows(), 5); // 4 matches + dangling 257
        let ins = r.schema.expect_id("insurance");
        let dangling = (0..r.nrows()).filter(|&i| r.is_null(i, ins)).count();
        assert_eq!(dangling, 1);
    }

    #[test]
    fn right_and_full_outer() {
        let d = db();
        let v = ViewSpec::base("patient").join(
            ViewSpec::base("admission"),
            JoinOp::RightOuter,
            &[("subject_id", "subject_id")],
        );
        assert_eq!(execute(&v, &d).unwrap().nrows(), 5); // 4 + dangling 247
        let v = ViewSpec::base("patient").join(
            ViewSpec::base("admission"),
            JoinOp::FullOuter,
            &[("subject_id", "subject_id")],
        );
        assert_eq!(execute(&v, &d).unwrap().nrows(), 6);
    }

    #[test]
    fn semi_joins_keep_one_side() {
        let d = db();
        let v = ViewSpec::base("patient").join(
            ViewSpec::base("admission"),
            JoinOp::LeftSemi,
            &[("subject_id", "subject_id")],
        );
        let r = execute(&v, &d).unwrap();
        assert_eq!(r.nrows(), 3); // 249, 250, 251 (each once)
        assert_eq!(r.ncols(), 3);
        assert!(r.schema.id_of("insurance").is_none());

        let v = ViewSpec::base("patient").join(
            ViewSpec::base("admission"),
            JoinOp::RightSemi,
            &[("subject_id", "subject_id")],
        );
        let r = execute(&v, &d).unwrap();
        assert_eq!(r.nrows(), 4); // both 249 rows, 250, 251
        assert_eq!(r.ncols(), 2);
    }

    #[test]
    fn selection_filters_rows() {
        let v = ViewSpec::base("admission").select(Predicate::eq("insurance", "Medicare"));
        let r = execute(&v, &db()).unwrap();
        assert_eq!(r.nrows(), 2);
    }

    #[test]
    fn null_join_keys_never_match() {
        let mut d = Database::new();
        d.insert(relation_from_rows(
            "l",
            &["k", "x"],
            &[
                &[Value::Null, Value::Int(1)],
                &[Value::Int(1), Value::Int(2)],
            ],
        ));
        d.insert(relation_from_rows(
            "r",
            &["k", "y"],
            &[
                &[Value::Null, Value::Int(9)],
                &[Value::Int(1), Value::Int(8)],
            ],
        ));
        let v = ViewSpec::base("l").inner_join(ViewSpec::base("r"), &["k"]);
        let res = execute(&v, &d).unwrap();
        assert_eq!(res.nrows(), 1); // NULL = NULL does not join
    }

    #[test]
    fn matching_rows_is_distinct_and_partial() {
        let d = db();
        let p = d.expect("patient");
        let a = d.expect("admission");
        let rows = matching_rows(p, a, &[0], &[0]);
        assert_eq!(rows, vec![0, 1, 2]); // 249,250,251 each once
        let rows = matching_rows(a, p, &[0], &[0]);
        assert_eq!(rows.len(), 4); // both 249 rows kept (distinct probe rows)
    }

    #[test]
    fn join_with_column_pruning() {
        let d = db();
        let p = d.expect("patient");
        let a = d.expect("admission");
        let r = join_relations(
            p,
            a,
            JoinOp::Inner,
            &[(0, 0)],
            Some(&[1]), // gender
            Some(&[1]), // insurance
            "partial",
        );
        assert_eq!(r.ncols(), 2);
        assert_eq!(r.nrows(), 4);
        assert_eq!(r.schema.name(0), "gender");
        assert_eq!(r.schema.name(1), "insurance");
    }

    #[test]
    fn predicate_errors_are_reported() {
        let v = ViewSpec::base("patient").select(Predicate::eq("nope", 1i64));
        assert!(matches!(
            execute(&v, &db()),
            Err(AlgebraError::UnknownAttribute { .. })
        ));
        let v = ViewSpec::base("missing");
        assert!(matches!(
            execute(&v, &db()),
            Err(AlgebraError::UnknownRelation(_))
        ));
    }

    #[test]
    fn alias_changes_lineage() {
        let d = db();
        let v = ViewSpec::base_as("patient", "p1").join(
            ViewSpec::base_as("patient", "p2"),
            JoinOp::Inner,
            &[("gender", "gender")],
        );
        let r = execute(&v, &d).unwrap();
        assert!(r.schema.id_of("p1.subject_id").is_some());
        assert!(r.schema.id_of("p2.subject_id").is_some());
        // F appears 3x on each side → 9 pairs; M 1x1 → 1 pair
        assert_eq!(r.nrows(), 10);
    }

    #[test]
    fn resolve_falls_back_to_suffix_and_origin() {
        let d = db();
        let v = ViewSpec::base("patient").inner_join(ViewSpec::base("admission"), &["subject_id"]);
        let r = execute(&v, &d).unwrap();
        // bare name resolves via unique suffix? both sides have .subject_id
        assert!(matches!(
            resolve(&r.schema, "subject_id"),
            Err(AlgebraError::AmbiguousAttribute(_))
        ));
        assert!(resolve(&r.schema, "patient.subject_id").is_ok());
        assert!(resolve(&r.schema, "gender").is_ok());
    }
}
