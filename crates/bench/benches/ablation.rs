//! Ablation benches for the design choices DESIGN.md calls out:
//!
//! * **A1 — Theorem-4 selective mining**: `mineFDs` with the constraint
//!   pruning on vs off (off = every candidate validated against data).
//! * **A2 — semi-join upstaged check**: Algorithm 3's side instance via
//!   key-only semi-join vs materializing the full join and projecting.
//! * **A3 — partition cache**: level-wise mining through the shared
//!   [`infine_partitions::PliCache`] vs direct per-set grouping.

use criterion::{criterion_group, criterion_main, Criterion};
use infine_algebra::{execute, join_relations, matching_rows, JoinOp, ViewSpec};
use infine_core::mine_join_fds_with_options;
use infine_datagen::{DatasetKind, Scale};
use infine_discovery::{mine_fds, FdSet};
use infine_partitions::{Pli, PliCache};
use infine_relation::{AttrSet, Database, Relation};

fn scale() -> Scale {
    match std::env::var("INFINE_SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
    {
        Some(f) => Scale::of(f),
        None => Scale::of(0.003),
    }
}

/// Shared fixture: the MIMIC patients ⋈ admissions join node.
struct JoinFixture {
    db: Database,
    left: Relation,
    right: Relation,
    on: Vec<(usize, usize)>,
    dl: FdSet,
    dr: FdSet,
}

fn fixture() -> JoinFixture {
    let db = DatasetKind::Mimic.generate(scale());
    let left = execute(&ViewSpec::base("patients"), &db).unwrap();
    let right = execute(&ViewSpec::base("admissions"), &db).unwrap();
    let on = vec![(
        left.schema.expect_id("subject_id"),
        right.schema.expect_id("subject_id"),
    )];
    let dl = mine_fds(&left, left.attr_set());
    let dr = mine_fds(&right, right.attr_set());
    JoinFixture {
        db,
        left,
        right,
        on,
        dl,
        dr,
    }
}

fn a1_theorem4_pruning(c: &mut Criterion) {
    let f = fixture();
    let mut group = c.benchmark_group("ablation/theorem4");
    group.sample_size(10);
    for (name, on_flag) in [("pruned", true), ("unpruned", false)] {
        group.bench_function(name, |b| {
            b.iter(|| {
                mine_join_fds_with_options(
                    &f.left,
                    &f.right,
                    JoinOp::Inner,
                    &f.on,
                    &f.dl,
                    &f.dr,
                    &FdSet::new(),
                    None,
                    on_flag,
                )
            })
        });
    }
    group.finish();
    drop(f.db);
}

fn a2_semijoin_vs_full(c: &mut Criterion) {
    let f = fixture();
    let mut group = c.benchmark_group("ablation/upstage_check");
    group.sample_size(10);
    let lkeys: Vec<usize> = f.on.iter().map(|&(l, _)| l).collect();
    let rkeys: Vec<usize> = f.on.iter().map(|&(_, r)| r).collect();
    group.bench_function("semi_join_rows", |b| {
        b.iter(|| matching_rows(&f.left, &f.right, &lkeys, &rkeys))
    });
    group.bench_function("full_join_then_project", |b| {
        b.iter(|| {
            let all_left: Vec<usize> = (0..f.left.ncols()).collect();
            join_relations(
                &f.left,
                &f.right,
                JoinOp::Inner,
                &f.on,
                Some(&all_left),
                Some(&[]),
                "full",
            )
        })
    });
    group.finish();
    drop(f.db);
}

fn a3_pli_cache(c: &mut Criterion) {
    let f = fixture();
    let rel = &f.right; // admissions: widest table
    let sets: Vec<AttrSet> = {
        // a fixed walk of 2- and 3-attribute sets
        let n = rel.ncols().min(8);
        let mut v = Vec::new();
        for i in 0..n {
            for j in (i + 1)..n {
                v.push([i, j].into_iter().collect::<AttrSet>());
                if j + 1 < n {
                    v.push([i, j, j + 1].into_iter().collect());
                }
            }
        }
        v
    };
    let mut group = c.benchmark_group("ablation/pli_cache");
    group.sample_size(10);
    group.bench_function("cached_products", |b| {
        b.iter(|| {
            let mut cache = PliCache::new(rel);
            sets.iter()
                .map(|&s| cache.get(s).num_classes())
                .sum::<usize>()
        })
    });
    group.bench_function("direct_grouping", |b| {
        b.iter(|| {
            sets.iter()
                .map(|&s| Pli::for_set(rel, s).num_classes())
                .sum::<usize>()
        })
    });
    group.finish();
    drop(f.db);
}

criterion_group!(
    benches,
    a1_theorem4_pruning,
    a2_semijoin_vs_full,
    a3_pli_cache
);
criterion_main!(benches);
