//! Criterion-sampled maintenance benchmarks — the statistically sampled
//! companion to the single-shot `incremental_bench` binary (ROADMAP open
//! item).
//!
//! One group per representative catalog view; within each group, the
//! exact-provenance engine is benchmarked under *churn* (half deletes,
//! half perturbed-copy inserts) and *append* (inserts only) deltas at 1%
//! and 5% of the target table. Each timed iteration applies one fresh
//! random batch to a persistent engine, so the measurement is
//! steady-state maintenance cost, not bootstrap.
//!
//! Scale defaults to 0.01 (`INFINE_SCALE` overrides); the CI smoke job
//! runs it at a tiny scale just to keep the harness compiling and
//! running.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use infine_bench::runner::bench_scale;
use infine_core::InFine;
use infine_datagen::{find, random_churn};
use infine_incremental::MaintenanceEngine;
use rand::rngs::StdRng;
use rand::SeedableRng;

const SCENARIOS: &[(&str, &str)] = &[
    ("tpch_q2", "supplier"),
    ("mimic_q_patients_admissions", "patients"),
];

const FRACTIONS: &[f64] = &[0.01, 0.05];

fn maintenance(c: &mut Criterion) {
    let scale = bench_scale();
    for &(case_id, target) in SCENARIOS {
        let case = find(case_id).unwrap_or_else(|| panic!("unknown case {case_id}"));
        let db = case.dataset.generate(scale);
        let mut group = c.benchmark_group(format!("maintenance/{case_id}"));
        group.sample_size(10);
        for workload in ["churn", "append"] {
            for &fraction in FRACTIONS {
                let mut engine =
                    MaintenanceEngine::new(InFine::default(), db.clone(), case.spec.clone())
                        .unwrap_or_else(|e| panic!("{case_id}: bootstrap failed: {e}"));
                let mut rng = StdRng::seed_from_u64(0xBE9C4);
                group.bench_function(
                    BenchmarkId::new(workload, format!("{}%", fraction * 100.0)),
                    |b| {
                        b.iter(|| {
                            let rel = engine.database().expect(target);
                            let mut delta = random_churn(&mut rng, rel, fraction);
                            if workload == "append" {
                                delta.batch.deletes.clear();
                            }
                            engine.apply_one(&delta).expect("maintenance apply")
                        })
                    },
                );
            }
        }
        group.finish();
    }
}

criterion_group!(benches, maintenance);
criterion_main!(benches);
