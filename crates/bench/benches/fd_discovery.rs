//! Criterion version of the Fig. 3 comparison: InFine vs the four
//! baselines-with-full-SPJ, one group per dataset, one representative view
//! per group by default (`INFINE_BENCH_ALL=1` benches all 16 views).
//!
//! Scale defaults to 0.003 here (statistical sampling multiplies the
//! cost); `INFINE_SCALE` overrides.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use infine_core::{discover_base_fds, straightforward, InFine};
use infine_datagen::{catalog, Scale};
use infine_discovery::Algorithm;

fn bench_scale() -> Scale {
    match std::env::var("INFINE_SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
    {
        Some(f) => Scale::of(f),
        None => Scale::of(0.003),
    }
}

fn representative(id: &str) -> bool {
    if std::env::var("INFINE_BENCH_ALL").is_ok() {
        return true;
    }
    matches!(
        id,
        "pte_atm_drug" | "ptc_connected_bond" | "mimic_q_patients_admissions" | "tpch_q2"
    )
}

fn fig3_runtime(c: &mut Criterion) {
    let scale = bench_scale();
    for case in catalog() {
        if !representative(case.id) {
            continue;
        }
        let db = case.dataset.generate(scale);
        let mut group = c.benchmark_group(format!("fig3/{}", case.id));
        group.sample_size(10);

        group.bench_function(BenchmarkId::new("InFine", case.id), |b| {
            let engine = InFine::default();
            b.iter(|| engine.discover(&db, &case.spec).expect("pipeline"))
        });
        for algo in Algorithm::BASELINES {
            // FastFDs is quadratic in tuple pairs; skip above tiny scales
            // unless explicitly requested (mirrors the paper's >2000 s
            // cut-off points).
            if algo == Algorithm::FastFds
                && scale.factor > 0.005
                && std::env::var("INFINE_BENCH_FASTFDS").is_err()
            {
                continue;
            }
            let base = discover_base_fds(&db, &case.spec, algo);
            group.bench_function(BenchmarkId::new(algo.name(), case.id), |b| {
                b.iter(|| straightforward(&db, &case.spec, algo, &base).expect("baseline"))
            });
        }
        group.finish();
    }
}

criterion_group!(benches, fig3_runtime);
criterion_main!(benches);
