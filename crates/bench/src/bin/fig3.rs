//! Fig. 3 — average runtime: InFine against HyFD, FastFDs, FUN, and TANE
//! with full SPJ computation, plus the full-SPJ and partial-SPJ columns.
//!
//! Runs each method `INFINE_RUNS` times (default 3; the paper uses 10)
//! and reports the mean. FastFDs can be excluded on large scales with
//! `INFINE_SKIP=FastFDs` (comma-separated names).
//!
//! ```text
//! cargo run -p infine-bench --bin fig3 --release
//! ```

use infine_bench::runner::{bench_scale, run_baseline, run_infine, secs, TextTable};
use infine_datagen::{catalog, DatasetKind};
use infine_discovery::Algorithm;
use std::time::Duration;

#[global_allocator]
static ALLOC: infine_bench::alloc::CountingAlloc = infine_bench::alloc::CountingAlloc;

fn runs() -> usize {
    std::env::var("INFINE_RUNS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(3)
}

fn skipped() -> Vec<String> {
    std::env::var("INFINE_SKIP")
        .map(|s| s.split(',').map(str::to_string).collect())
        .unwrap_or_default()
}

fn mean(ds: &[Duration]) -> Duration {
    ds.iter().sum::<Duration>() / ds.len().max(1) as u32
}

fn main() {
    let scale = bench_scale();
    let n = runs();
    let skip = skipped();
    eprintln!("# {n} runs per method (INFINE_RUNS); skipping: {skip:?} (INFINE_SKIP)");

    let mut table = TextTable::new(&[
        "DB",
        "SPJ View",
        "InFine(s)",
        "HyFD(s)",
        "FastFDs(s)",
        "FUN(s)",
        "TANE(s)",
        "full SPJ(s)",
        "partial SPJ rows",
    ]);
    for ds in DatasetKind::ALL {
        let db = ds.generate(scale);
        for case in catalog().into_iter().filter(|c| c.dataset == ds) {
            let mut infine_times = Vec::new();
            let mut partial_rows = 0usize;
            for _ in 0..n {
                let r = run_infine(&db, &case);
                partial_rows = r.report.stats.partial_join_rows;
                infine_times.push(r.total);
            }
            let mut cols = vec![
                ds.name().to_string(),
                case.label.to_string(),
                secs(mean(&infine_times)),
            ];
            let mut full_spj = Duration::ZERO;
            for algo in Algorithm::BASELINES {
                if skip.iter().any(|s| s == algo.name()) {
                    cols.push("skipped".into());
                    continue;
                }
                let mut times = Vec::new();
                for _ in 0..n {
                    let r = run_baseline(&db, &case, algo);
                    full_spj = r.view_time;
                    times.push(r.total);
                }
                cols.push(secs(mean(&times)));
            }
            cols.push(secs(full_spj));
            cols.push(partial_rows.to_string());
            table.row(cols);
        }
    }
    println!(
        "Fig. 3: average runtime — InFine vs baselines with full SPJ computation (scale {})",
        scale.factor
    );
    println!("{}", table.render());
}
