//! Table III — per-view coverage, InFine accuracy shares per algorithm
//! (upstageFDs / inferFDs / mineFDs), total FD count, and time breakdowns
//! (I/O, upstageFDs, mineFDs), with the paper's shares alongside.
//!
//! ```text
//! cargo run -p infine-bench --bin table3 --release
//! ```

use infine_bench::runner::{bench_scale, run_infine, secs, TextTable};
use infine_datagen::{catalog, root_join_coverage, DatasetKind};

#[global_allocator]
static ALLOC: infine_bench::alloc::CountingAlloc = infine_bench::alloc::CountingAlloc;

fn main() {
    let scale = bench_scale();
    let mut table = TextTable::new(&[
        "DB",
        "SPJ View",
        "Cov.",
        "Upstage",
        "Infer",
        "Mine",
        "FD#",
        "I/O(s)",
        "upstage(s)",
        "mine(s)",
        "paper U/I/M",
    ]);
    for ds in DatasetKind::ALL {
        let db = ds.generate(scale);
        for case in catalog().into_iter().filter(|c| c.dataset == ds) {
            let cov = root_join_coverage(&db, &case.spec)
                .unwrap_or(None)
                .unwrap_or(f64::NAN);
            let run = run_infine(&db, &case);
            let (u, i, m) = run.report.phase_shares();
            table.row(vec![
                ds.name().to_string(),
                case.label.to_string(),
                format!("{cov:.2}"),
                format!("{u:.3}"),
                format!("{i:.3}"),
                format!("{m:.3}"),
                run.report.triples.len().to_string(),
                secs(run.report.timings.io),
                secs(run.report.timings.upstage),
                secs(run.report.timings.mine),
                format!(
                    "{:.2}/{:.2}/{:.2}",
                    case.paper.upstage_share, case.paper.infer_share, case.paper.mine_share
                ),
            ]);
        }
    }
    println!(
        "Table III: accuracy and time breakdowns of InFine algorithms (scale {})",
        scale.factor
    );
    println!("{}", table.render());
}
