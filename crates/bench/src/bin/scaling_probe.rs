use infine_core::{discover_base_fds, straightforward, InFine};
use infine_datagen::{find, Scale};
use infine_discovery::Algorithm;

fn main() {
    let case = find("mimic_diag_patients").unwrap();
    println!("view: {}", case.label);
    for factor in [0.01, 0.03, 0.06] {
        let db = case.dataset.generate(Scale::of(factor));
        let t0 = std::time::Instant::now();
        let r = InFine::default().discover(&db, &case.spec).unwrap();
        let infine = t0.elapsed().as_secs_f64();
        let mut line = format!(
            "scale {factor}: InFine {:.3}s ({} FDs)",
            infine,
            r.triples.len()
        );
        for algo in [Algorithm::HyFd, Algorithm::Tane, Algorithm::Fun] {
            let base = discover_base_fds(&db, &case.spec, algo);
            let t1 = std::time::Instant::now();
            let b = straightforward(&db, &case.spec, algo, &base).unwrap();
            line += &format!("  {} {:.3}s", algo.name(), t1.elapsed().as_secs_f64());
            let _ = b;
        }
        println!("{line}");
    }
}
