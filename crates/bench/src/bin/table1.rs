//! Table I — data characteristics: per base table, attribute count, tuple
//! count, and the number of minimal FDs (discovered with TANE).
//!
//! ```text
//! cargo run -p infine-bench --bin table1 --release
//! ```

use infine_bench::runner::{bench_scale, TextTable};
use infine_datagen::DatasetKind;
use infine_discovery::Algorithm;

#[global_allocator]
static ALLOC: infine_bench::alloc::CountingAlloc = infine_bench::alloc::CountingAlloc;

fn main() {
    let scale = bench_scale();
    let mut table = TextTable::new(&["DB", "Table", "Att#", "Tuple#", "FD#"]);
    let tables: &[(DatasetKind, &[&str])] = &[
        (
            DatasetKind::Mimic,
            &["patients", "admissions", "diagnoses_icd", "d_icd_diagnoses"],
        ),
        (DatasetKind::Pte, &["active", "bond", "atm", "drug"]),
        (DatasetKind::Ptc, &["atom", "connected", "bond", "molecule"]),
        (
            DatasetKind::Tpch,
            &[
                "supplier", "customer", "orders", "lineitem", "nation", "region", "part",
                "partsupp",
            ],
        ),
    ];
    for (ds, names) in tables {
        let db = ds.generate(scale);
        for name in *names {
            let rel = db.expect(name);
            let fds = Algorithm::Tane.discover(rel);
            table.row(vec![
                ds.name().to_string(),
                name.to_string(),
                rel.ncols().to_string(),
                rel.nrows().to_string(),
                fds.len().to_string(),
            ]);
        }
    }
    println!(
        "Table I: data characteristics (synthetic stand-ins, scale {})",
        scale.factor
    );
    println!("{}", table.render());
}
