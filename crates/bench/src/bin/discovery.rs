//! Full-discovery wall-clock tracking across PRs (`BENCH_discovery.json`).
//!
//! Runs `InFine::discover` (base mining included — the quantity a user
//! pays end-to-end) `INFINE_BENCH_RUNS` times (default 5) per catalog
//! scenario and records the median to `BENCH_discovery.json` at the repo
//! root. A previously recorded file supplies each scenario's `baseline`
//! median (the pre-PR number), so the emitted report carries the speedup
//! of the current tree against it; pass `INFINE_BENCH_RECORD_BASELINE=1`
//! to (re)pin the baseline to this run instead.
//!
//! The headline figure is the median speedup across the TPC-H views —
//! the acceptance metric the perf PRs track. `INFINE_SCALE` scales the
//! data (default 0.01); baseline and current must be recorded at the
//! same scale to be comparable (the tool refuses to mix scales).
//!
//! `--threads N` pins the worker count (also settable via
//! `INFINE_THREADS`); the emitted JSON records `threads` plus the
//! validation-kernel counters — checks run, early exits, products
//! avoided — per scenario and in total.

use infine_bench::json::{self, Obj};
use infine_bench::runner::{apply_cli_flags, bench_scale};
use infine_core::InFine;
use infine_datagen::find;
use infine_partitions::{kernel_counters, reset_kernel_counters};
use std::time::Instant;

const SCENARIOS: &[&str] = &[
    "tpch_q2",
    "tpch_q3",
    "tpch_q9",
    "tpch_q11",
    "mimic_q_patients_admissions",
    "ptc_connected_bond",
    "pte_atm_drug",
];

fn main() {
    apply_cli_flags();
    let scale = bench_scale();
    let runs: usize = std::env::var("INFINE_BENCH_RUNS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(5)
        .max(1);
    // Only the documented value "1" re-pins; "0"/"" must not silently
    // destroy the recorded trajectory.
    let record_baseline =
        std::env::var("INFINE_BENCH_RECORD_BASELINE").is_ok_and(|v| v.trim() == "1");
    let out_path =
        std::env::var("INFINE_BENCH_OUT").unwrap_or_else(|_| "BENCH_discovery.json".to_string());

    // Previous report: per-scenario baseline medians. Baselines are only
    // comparable at the scale they were recorded at, so a mismatched run
    // is refused outright — overwriting the file here would silently
    // destroy the cross-PR perf trajectory. Point INFINE_BENCH_OUT at a
    // scratch path (or re-pin with INFINE_BENCH_RECORD_BASELINE=1) to
    // run at a different scale.
    let previous = std::fs::read_to_string(&out_path).unwrap_or_default();
    let prev_scale = previous.lines().find_map(|l| json::extract_num(l, "scale"));
    if let Some(prev) = prev_scale {
        if (prev - scale.factor).abs() >= 1e-12 && !record_baseline {
            eprintln!(
                "error: {out_path} holds a baseline recorded at scale {prev}, but this run \
                 uses scale {}; refusing to mix scales.\n\
                 Either run with INFINE_SCALE={prev}, write elsewhere via INFINE_BENCH_OUT, \
                 or re-pin with INFINE_BENCH_RECORD_BASELINE=1.",
                scale.factor
            );
            std::process::exit(2);
        }
    }
    let baseline_of = |id: &str| -> Option<f64> {
        previous
            .lines()
            .find(|l| json::extract_str(l, "id") == Some(id))
            .and_then(|l| json::extract_num(l, "baseline_median_s"))
    };

    let engine = InFine::default();
    let mut scenario_objs: Vec<Obj> = Vec::new();
    let mut tpch_speedups: Vec<f64> = Vec::new();
    let mut kernel_total = infine_partitions::KernelCounters::default();
    reset_kernel_counters();
    for &id in SCENARIOS {
        let case = find(id).unwrap_or_else(|| panic!("unknown case {id}"));
        let db = case.dataset.generate(scale);
        // Warm-up run (dictionaries, page cache), then timed runs. The
        // kernel counters are sampled around the warm-up alone — one
        // discovery's worth — so the recorded numbers are comparable
        // across PRs regardless of INFINE_BENCH_RUNS, and the header
        // totals are exactly the per-scenario sums.
        let kernel_before = kernel_counters();
        let report = engine.discover(&db, &case.spec).expect("pipeline");
        let kernel = kernel_counters().since(kernel_before);
        kernel_total = kernel_total.plus(kernel);
        let fds = report.triples.len();
        let mut samples = Vec::with_capacity(runs);
        for _ in 0..runs {
            let t0 = Instant::now();
            let r = engine.discover(&db, &case.spec).expect("pipeline");
            samples.push(t0.elapsed().as_secs_f64());
            assert_eq!(r.triples.len(), fds, "{id}: nondeterministic FD count");
        }
        let median = json::median(&samples);
        let baseline = if record_baseline {
            median
        } else {
            baseline_of(id).unwrap_or(median)
        };
        let speedup = baseline / median.max(1e-12);
        eprintln!(
            "# {id}: median {median:.4} s over {runs} runs ({fds} FDs), \
             baseline {baseline:.4} s → {speedup:.2}x"
        );
        if id.starts_with("tpch") {
            tpch_speedups.push(speedup);
        }
        scenario_objs.push(
            Obj::new()
                .str("id", id)
                .num("median_s", median)
                .num("baseline_median_s", baseline)
                .num("speedup_vs_baseline", speedup)
                .int("fds", fds as i64)
                .int("runs", runs as i64)
                .int("kernel_checks", kernel.checks as i64)
                .int("kernel_early_exits", kernel.early_exits as i64)
                .int("products_avoided", kernel.products_avoided as i64),
        );
    }

    let headline = json::median(&tpch_speedups);
    let header = Obj::new()
        .str(
            "benchmark",
            "full InFine discovery wall-clock (median seconds; base mining included)",
        )
        .num("scale", scale.factor)
        .int("threads", infine_exec::parallelism() as i64)
        .num("tpch_median_speedup_vs_baseline", headline)
        .int("kernel_checks", kernel_total.checks as i64)
        .int("kernel_early_exits", kernel_total.early_exits as i64)
        .int("products_avoided", kernel_total.products_avoided as i64)
        // Whole-run registry snapshot (every infine_* series, flat
        // object). The kernel_* fields above predate it and stay for
        // cross-PR trajectory compatibility.
        .raw("metrics", infine_obs::snapshot().to_json());
    std::fs::write(&out_path, json::render_report(header, &scenario_objs))
        .unwrap_or_else(|e| panic!("cannot write {out_path}: {e}"));
    infine_obs::dump_if_requested();
    println!(
        "# wrote {out_path}; TPC-H median speedup vs recorded baseline: {headline:.2}x{}",
        if record_baseline {
            " (baseline re-pinned to this run)"
        } else {
            ""
        }
    );
}
