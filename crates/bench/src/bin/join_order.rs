//! Join-order ablation (Lemma 1 + the paper's future-work question).
//!
//! For each 2-table view of the catalog, run InFine on `L ⋈ R` and on the
//! flipped `R ⋈ L` and report: total FD count (must coincide — Lemma 1),
//! the per-kind provenance split (upstaged left/right swap), and the
//! runtime of each ordering (the future-work optimization target).
//!
//! ```text
//! cargo run -p infine-bench --bin join_order --release
//! ```

use infine_algebra::ViewSpec;
use infine_bench::runner::{bench_scale, run_infine, secs, TextTable};
use infine_core::FdKind;
use infine_datagen::{catalog, DatasetKind, QueryCase};

#[global_allocator]
static ALLOC: infine_bench::alloc::CountingAlloc = infine_bench::alloc::CountingAlloc;

/// Flip the root join of a spec (keeping any outer projection).
fn flip(spec: &ViewSpec) -> Option<ViewSpec> {
    match spec {
        ViewSpec::Join {
            left,
            right,
            op,
            on,
        } if *op == infine_algebra::JoinOp::Inner => Some(ViewSpec::Join {
            left: right.clone(),
            right: left.clone(),
            op: *op,
            on: on.iter().map(|(l, r)| (r.clone(), l.clone())).collect(),
        }),
        ViewSpec::Project { input, attrs } => Some(ViewSpec::Project {
            input: Box::new(flip(input)?),
            attrs: attrs.clone(),
        }),
        _ => None,
    }
}

fn main() {
    let scale = bench_scale();
    let mut table = TextTable::new(&[
        "SPJ View",
        "FDs L⋈R",
        "FDs R⋈L",
        "up-left/up-right L⋈R",
        "up-left/up-right R⋈L",
        "time L⋈R(s)",
        "time R⋈L(s)",
    ]);
    for ds in DatasetKind::ALL {
        let db = ds.generate(scale);
        for case in catalog().into_iter().filter(|c| c.dataset == ds) {
            let Some(flipped_spec) = flip(&case.spec) else {
                continue;
            };
            let flipped = QueryCase {
                spec: flipped_spec,
                ..case.clone()
            };
            let a = run_infine(&db, &case);
            let b = run_infine(&db, &flipped);
            table.row(vec![
                case.label.to_string(),
                a.report.triples.len().to_string(),
                b.report.triples.len().to_string(),
                format!(
                    "{}/{}",
                    a.report.count_kind(FdKind::UpstagedLeft),
                    a.report.count_kind(FdKind::UpstagedRight)
                ),
                format!(
                    "{}/{}",
                    b.report.count_kind(FdKind::UpstagedLeft),
                    b.report.count_kind(FdKind::UpstagedRight)
                ),
                secs(a.total),
                secs(b.total),
            ]);
        }
    }
    println!(
        "Join-order ablation: FD counts are order-invariant (Lemma 1); provenance and time are not (scale {})",
        scale.factor
    );
    println!("{}", table.render());
}
