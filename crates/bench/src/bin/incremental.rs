//! Incremental maintenance vs full re-discovery.
//!
//! For each representative catalog view, two maintenance engines are
//! bootstrapped — cover-only (delta joins + patched view PLIs, no
//! pipeline replay) and exact-provenance (pipeline replay with base
//! mining skipped) — then identical random churn batches (half deletes,
//! half perturbed-copy inserts) of 0.1%, 1%, and 10% of the target
//! table's rows are applied to both. Each round reports both engines'
//! wall-clock against re-running `InFine::discover` from scratch on the
//! identical post-delta database (base mining included — a from-scratch
//! run pays it), plus the straightforward TANE baseline when
//! `INFINE_BENCH_STRAIGHTFORWARD=1`.
//!
//! Cover equivalence is asserted every round: the fast engine's cover is
//! logically equivalent to the full run's triple set. Scale via
//! `INFINE_SCALE` (default 0.01); `--threads N` pins the worker count.
//! The emitted JSON records `threads` and the validation-kernel counters
//! (checks run, early exits, products avoided) for the whole run.

#[global_allocator]
static ALLOC: infine_bench::alloc::CountingAlloc = infine_bench::alloc::CountingAlloc;

use infine_bench::json::{self, Obj};
use infine_bench::runner::{
    apply_cli_flags, bench_durability, bench_overload, bench_readers, bench_scale, bench_shards,
    bench_view_mode, mib, run_baseline, run_full_rediscovery, run_maintenance,
    run_sharded_maintenance, secs, TextTable,
};
use infine_core::InFine;
use infine_datagen::{find, random_churn, random_delta};
use infine_discovery::{same_fds, Algorithm, Fd, FdSet};
use infine_incremental::{
    DeletePolicy, DurabilityOptions, FdStatus, IngestPolicy, MaintenanceEngine, MaintenanceError,
    MaintenanceMode, MaintenanceService, ServicePolicies, ShardedEngine, SnapshotPolicy,
    VacuumPolicy, ViewMode,
};
use infine_relation::AttrSet;
use infine_relation::{Database, DeltaRelation};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::{Duration, Instant};

/// (case id, delta target table) — targets chosen as mid-sized tables so
/// the run shows both skipped mining on the untouched tables and real
/// revalidation work on the touched one.
const SCENARIOS: &[(&str, &str)] = &[
    ("tpch_q2", "supplier"),
    ("tpch_q3", "customer"),
    ("mimic_q_patients_admissions", "patients"),
    ("ptc_connected_bond", "bond"),
    ("pte_atm_drug", "atm"),
];

const FRACTIONS: &[f64] = &[0.001, 0.01, 0.1];

/// Delta composition per round.
#[derive(Clone, Copy, PartialEq)]
enum Workload {
    /// Half deletes, half perturbed-copy inserts.
    Churn,
    /// Inserts only — the streaming-ingest case (no compaction work).
    Append,
}

impl Workload {
    fn label(self) -> &'static str {
        match self {
            Workload::Churn => "churn",
            Workload::Append => "append",
        }
    }
}

fn main() {
    apply_cli_flags();
    infine_partitions::reset_kernel_counters();
    let scale = bench_scale();
    let shards = bench_shards();
    eprintln!("# sharded lane: {shards} shard(s) (set --shards N / INFINE_SHARDS)");
    let straightforward = std::env::var("INFINE_BENCH_STRAIGHTFORWARD").is_ok();

    let mut headers = vec![
        "workload",
        "view",
        "Δtable",
        "Δrows",
        "Δ%",
        "FDs",
        "untouched",
        "reval",
        "invalid",
        "t_cover",
        "t_exact",
        "t_sharded",
        "t_full",
        "speedup_cover",
        "speedup_exact",
        "peak_cover(MiB)",
    ];
    if straightforward {
        headers.push("t_straightforward");
    }
    let mut table = TextTable::new(&headers);
    let mut one_percent: Vec<(Workload, String, f64)> = Vec::new();
    let mut json_rows: Vec<Obj> = Vec::new();

    for workload in [Workload::Churn, Workload::Append] {
        let mut rng = StdRng::seed_from_u64(0xDE17A);
        for &(case_id, target) in SCENARIOS {
            let case = find(case_id).unwrap_or_else(|| panic!("unknown case {case_id}"));
            let db = case.dataset.generate(scale);
            let t0 = Instant::now();
            let mut fast = MaintenanceEngine::with_mode(
                InFine::default(),
                db.clone(),
                case.spec.clone(),
                MaintenanceMode::CoverOnly,
            )
            .unwrap_or_else(|e| panic!("{case_id}: fast bootstrap failed: {e}"));
            let mut exact =
                MaintenanceEngine::new(InFine::default(), db.clone(), case.spec.clone())
                    .unwrap_or_else(|e| panic!("{case_id}: exact bootstrap failed: {e}"));
            let mut sharded = ShardedEngine::new(InFine::default(), db, case.spec.clone(), shards)
                .unwrap_or_else(|e| panic!("{case_id}: sharded bootstrap failed: {e}"));
            assert!(
                fast.supports_cover_fast_path(),
                "{case_id}: scenario views must support the fast path"
            );
            eprintln!(
                "# {case_id} [{}]: engines bootstrapped in {} s ({} FDs)",
                workload.label(),
                secs(t0.elapsed()),
                exact.report().triples.len()
            );

            for &fraction in FRACTIONS {
                let rel = fast.database().expect(target);
                let mut delta = random_churn(&mut rng, rel, fraction);
                if workload == Workload::Append {
                    delta.batch.deletes.clear();
                }
                let delta_rows = delta.batch.num_deletes() + delta.batch.num_inserts();
                let fast_run = run_maintenance(&mut fast, std::slice::from_ref(&delta));
                let exact_run = run_maintenance(&mut exact, std::slice::from_ref(&delta));
                let sharded_run =
                    run_sharded_maintenance(&mut sharded, std::slice::from_ref(&delta));
                assert_eq!(
                    sharded_run.report.triples, exact_run.report.triples,
                    "{case_id}: sharded({shards}) diverged from the exact engine"
                );

                // From-scratch re-discovery on the identical database.
                let (full, t_full) = run_full_rediscovery(fast.database(), &case);
                assert_covers_equivalent(&fast_run.report, &full);
                let speedup_cover = t_full.as_secs_f64() / fast_run.total.as_secs_f64().max(1e-9);
                let speedup_exact = t_full.as_secs_f64() / exact_run.total.as_secs_f64().max(1e-9);
                let speedup_sharded =
                    t_full.as_secs_f64() / sharded_run.total.as_secs_f64().max(1e-9);
                if (fraction - 0.01).abs() < 1e-12 {
                    one_percent.push((workload, format!("{case_id}/{target}"), speedup_cover));
                }

                json_rows.push(
                    Obj::new()
                        .str("workload", workload.label())
                        .str("view", case_id)
                        .str("delta_table", target)
                        .num("delta_fraction", fraction)
                        .int("delta_rows", delta_rows as i64)
                        .int("fds", fast_run.report.cover.len() as i64)
                        .num("cover_s", fast_run.total.as_secs_f64())
                        .num("exact_s", exact_run.total.as_secs_f64())
                        .num("sharded_s", sharded_run.total.as_secs_f64())
                        .num("full_s", t_full.as_secs_f64())
                        .num("speedup_cover", speedup_cover)
                        .num("speedup_exact", speedup_exact)
                        .num("speedup_sharded", speedup_sharded),
                );
                let mut row = vec![
                    workload.label().to_string(),
                    case_id.to_string(),
                    target.to_string(),
                    delta_rows.to_string(),
                    format!("{:.1}", fraction * 100.0),
                    fast_run.report.cover.len().to_string(),
                    fast_run
                        .report
                        .count_status(FdStatus::Untouched)
                        .to_string(),
                    fast_run
                        .report
                        .count_status(FdStatus::Revalidated)
                        .to_string(),
                    fast_run
                        .report
                        .count_status(FdStatus::Invalidated)
                        .to_string(),
                    secs(fast_run.total),
                    secs(exact_run.total),
                    secs(sharded_run.total),
                    secs(t_full),
                    format!("{speedup_cover:.1}x"),
                    format!("{speedup_exact:.1}x"),
                    mib(fast_run.peak_bytes),
                ];
                if straightforward {
                    let b = run_baseline(fast.database(), &case, Algorithm::Tane);
                    row.push(secs(b.total));
                }
                table.row(row);
            }
        }
    }

    // ---- delete-heavy churn lane: tombstoned deletes + vacuum ----
    //
    // Two cover-only engines fed identical delete-heavy rounds: the
    // compacting baseline pays a column rewrite per affected view node
    // per round, the tombstone engine marks bits and vacuums once at the
    // end. Recorded per scenario: summed round wall-clock for both,
    // tombstone/live/dictionary ratios at their peak, the vacuum pass
    // itself, and a post-vacuum equivalence check (tombstone cover ==
    // compacting cover == canonical).
    println!("{}", table.render());
    let delete_rounds: usize = std::env::var("INFINE_BENCH_DELETE_ROUNDS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(6);
    let mut delete_speedups: Vec<f64> = Vec::new();
    let mut delete_table = TextTable::new(&[
        "view",
        "Δtable",
        "rounds",
        "Δrows",
        "t_compact",
        "t_tombstone",
        "round_speedup",
        "peak_rows_ratio",
        "peak_dict_ratio",
        "t_vacuum",
        "vacuum_rows",
        "vacuum_dict",
    ]);
    {
        let mut rng = StdRng::seed_from_u64(0xDE1E7E);
        for &(case_id, target) in SCENARIOS {
            let case = find(case_id).unwrap_or_else(|| panic!("unknown case {case_id}"));
            let db = case.dataset.generate(scale);
            let mut compact = MaintenanceEngine::with_options(
                InFine::default(),
                db.clone(),
                case.spec.clone(),
                MaintenanceMode::CoverOnly,
                DeletePolicy::Compact,
                ViewMode::default(),
            )
            .unwrap_or_else(|e| panic!("{case_id}: compact bootstrap failed: {e}"));
            let mut tomb = MaintenanceEngine::with_options(
                InFine::default(),
                db,
                case.spec.clone(),
                MaintenanceMode::CoverOnly,
                DeletePolicy::Tombstone,
                ViewMode::default(),
            )
            .unwrap_or_else(|e| panic!("{case_id}: tombstone bootstrap failed: {e}"));
            let baseline = tomb.tombstone_stats();

            let (mut t_compact, mut t_tomb) = (0f64, 0f64);
            let mut delta_rows = 0usize;
            let (mut peak_rows_ratio, mut peak_dict_ratio) = (1f64, 1f64);
            for _ in 0..delete_rounds {
                // Delete-heavy: 4 deletes per insert, ~4% of live rows.
                let rel = tomb.database().expect(target);
                let max = (rel.live_rows() / 25).max(2);
                let delta = DeltaRelation::new(
                    target.to_string(),
                    random_delta(&mut rng, rel, max, max / 4),
                );
                delta_rows += delta.batch.num_deletes() + delta.batch.num_inserts();
                let run_t = run_maintenance(&mut tomb, std::slice::from_ref(&delta));
                let run_c = run_maintenance(&mut compact, std::slice::from_ref(&delta));
                t_tomb += run_t.total.as_secs_f64();
                t_compact += run_c.total.as_secs_f64();
                let s = tomb.tombstone_stats();
                peak_rows_ratio =
                    peak_rows_ratio.max(s.physical_rows as f64 / s.live_rows.max(1) as f64);
                peak_dict_ratio = peak_dict_ratio
                    .max(s.dict_entries as f64 / baseline.dict_entries.max(1) as f64);
            }

            // One vacuum cycle reclaims everything; covers must be
            // untouched and equal the compacting engine's.
            let t0 = Instant::now();
            let vac = tomb.vacuum();
            let t_vacuum = t0.elapsed();
            assert_eq!(tomb.tombstone_stats().dead_rows(), 0);
            assert!(
                same_fds(&tomb.fd_set(), &compact.fd_set()),
                "{case_id}: tombstone cover diverged from the compacting engine"
            );

            let round_speedup = t_compact / t_tomb.max(1e-9);
            delete_speedups.push(round_speedup);
            json_rows.push(
                Obj::new()
                    .str("workload", "delete_churn")
                    .str("view", case_id)
                    .str("delta_table", target)
                    .int("rounds", delete_rounds as i64)
                    .int("delta_rows", delta_rows as i64)
                    .num("compact_s", t_compact)
                    .num("tombstone_s", t_tomb)
                    .num("round_speedup", round_speedup)
                    .num("peak_physical_over_live", peak_rows_ratio)
                    .num("peak_dict_over_baseline", peak_dict_ratio)
                    .num("vacuum_s", t_vacuum.as_secs_f64())
                    .int("vacuum_rows_dropped", vac.rows_dropped as i64)
                    .int(
                        "vacuum_dict_entries_dropped",
                        vac.dict_entries_dropped as i64,
                    ),
            );
            delete_table.row(vec![
                case_id.to_string(),
                target.to_string(),
                delete_rounds.to_string(),
                delta_rows.to_string(),
                secs(std::time::Duration::from_secs_f64(t_compact)),
                secs(std::time::Duration::from_secs_f64(t_tomb)),
                format!("{round_speedup:.2}x"),
                format!("{peak_rows_ratio:.2}"),
                format!("{peak_dict_ratio:.2}"),
                secs(t_vacuum),
                vac.rows_dropped.to_string(),
                vac.dict_entries_dropped.to_string(),
            ]);
        }
    }
    println!("# delete-heavy churn (cover-only rounds, compacting vs tombstoned deletes):");
    println!("{}", delete_table.render());
    let delete_geomean = (delete_speedups.iter().map(|s| s.ln()).sum::<f64>()
        / delete_speedups.len().max(1) as f64)
        .exp();
    println!("# delete-churn round speedup geometric mean (tombstoned vs compacting): {delete_geomean:.2}x");

    // ---- view-mode lane (--view-mode / INFINE_BENCH_VIEW_MODE=1) ----
    //
    // Two cover-only engines fed identical churn rounds: one holds the
    // materialized rid-augmented view, the other only base relations +
    // join indexes (`ViewMode::JoinIndex`) and validates through the
    // join-probe kernel. Recorded per scenario: summed round
    // wall-clock for both, peak resident rows and dictionary entries
    // (engine-wide tombstone accounting), and the resident materialized
    // view rows — which the virtual engine must pin at **zero** while
    // its cover stays equal to the materialized engine's every round.
    let mut view_mode_geomean = None;
    if bench_view_mode() {
        let view_rounds: usize = std::env::var("INFINE_BENCH_VIEW_ROUNDS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(6);
        let mut vm_table = TextTable::new(&[
            "view",
            "Δtable",
            "rounds",
            "t_materialized",
            "t_joinindex",
            "round_ratio",
            "view_rows(mat)",
            "view_rows(virt)",
            "peak_rows(mat)",
            "peak_rows(virt)",
            "peak_dict(mat)",
            "peak_dict(virt)",
        ]);
        let mut ratios: Vec<f64> = Vec::new();
        let mut rng = StdRng::seed_from_u64(0x51E77E);
        for &(case_id, target) in SCENARIOS {
            let case = find(case_id).unwrap_or_else(|| panic!("unknown case {case_id}"));
            let db = case.dataset.generate(scale);
            let mut mat = MaintenanceEngine::with_options(
                InFine::default(),
                db.clone(),
                case.spec.clone(),
                MaintenanceMode::CoverOnly,
                DeletePolicy::Compact,
                ViewMode::Materialized,
            )
            .unwrap_or_else(|e| panic!("{case_id}: materialized bootstrap failed: {e}"));
            let mut virt = MaintenanceEngine::with_options(
                InFine::default(),
                db,
                case.spec.clone(),
                MaintenanceMode::CoverOnly,
                DeletePolicy::Compact,
                ViewMode::JoinIndex,
            )
            .unwrap_or_else(|e| panic!("{case_id}: join-index bootstrap failed: {e}"));
            assert_eq!(
                virt.active_view_mode(),
                Some(ViewMode::JoinIndex),
                "{case_id}: scenario views must be inside the virtual subset"
            );

            let (mut t_mat, mut t_virt) = (0f64, 0f64);
            let mut peak_view_rows = mat.resident_view_rows();
            let s0m = mat.tombstone_stats();
            let s0v = virt.tombstone_stats();
            let (mut peak_rows_mat, mut peak_dict_mat) = (s0m.physical_rows, s0m.dict_entries);
            let (mut peak_rows_virt, mut peak_dict_virt) = (s0v.physical_rows, s0v.dict_entries);
            for _ in 0..view_rounds {
                let rel = virt.database().expect(target);
                let delta = random_churn(&mut rng, rel, 0.01);
                let run_m = run_maintenance(&mut mat, std::slice::from_ref(&delta));
                let run_v = run_maintenance(&mut virt, std::slice::from_ref(&delta));
                t_mat += run_m.total.as_secs_f64();
                t_virt += run_v.total.as_secs_f64();
                assert!(
                    same_fds(&run_m.report.cover, &run_v.report.cover),
                    "{case_id}: view modes diverged under the bench stream"
                );
                assert_eq!(
                    virt.resident_view_rows(),
                    0,
                    "{case_id}: the virtual engine materialized view rows"
                );
                peak_view_rows = peak_view_rows.max(mat.resident_view_rows());
                let (sm, sv) = (mat.tombstone_stats(), virt.tombstone_stats());
                peak_rows_mat = peak_rows_mat.max(sm.physical_rows);
                peak_dict_mat = peak_dict_mat.max(sm.dict_entries);
                peak_rows_virt = peak_rows_virt.max(sv.physical_rows);
                peak_dict_virt = peak_dict_virt.max(sv.dict_entries);
            }

            let round_ratio = t_mat / t_virt.max(1e-9);
            ratios.push(round_ratio);
            json_rows.push(
                Obj::new()
                    .str("workload", "view_mode")
                    .str("view", case_id)
                    .str("delta_table", target)
                    .int("rounds", view_rounds as i64)
                    .num("materialized_s", t_mat)
                    .num("joinindex_s", t_virt)
                    .num("round_ratio", round_ratio)
                    .int("resident_view_rows_materialized", peak_view_rows as i64)
                    .int("resident_view_rows_joinindex", 0)
                    .int("peak_rows_materialized", peak_rows_mat as i64)
                    .int("peak_rows_joinindex", peak_rows_virt as i64)
                    .int("peak_dict_materialized", peak_dict_mat as i64)
                    .int("peak_dict_joinindex", peak_dict_virt as i64),
            );
            vm_table.row(vec![
                case_id.to_string(),
                target.to_string(),
                view_rounds.to_string(),
                secs(std::time::Duration::from_secs_f64(t_mat)),
                secs(std::time::Duration::from_secs_f64(t_virt)),
                format!("{round_ratio:.2}x"),
                peak_view_rows.to_string(),
                "0".to_string(),
                peak_rows_mat.to_string(),
                peak_rows_virt.to_string(),
                peak_dict_mat.to_string(),
                peak_dict_virt.to_string(),
            ]);
        }
        println!("# view modes (materialized vs join-index cover rounds, identical churn):");
        println!("{}", vm_table.render());
        let geo = (ratios.iter().map(|s| s.ln()).sum::<f64>() / ratios.len().max(1) as f64).exp();
        println!(
            "# view-mode round latency ratio geometric mean (materialized / join-index): {geo:.2}x"
        );
        view_mode_geomean = Some(geo);
    }

    // ---- durability lane (--durability / INFINE_BENCH_DURABILITY=1) ----
    //
    // Two sharded services fed identical pre-generated churn streams:
    // one plain, one durable (commitlog + snapshot every 3 rounds). The
    // per-round wall-clock difference is the WAL append overhead; after
    // shutdown, `MaintenanceService::recover` on the durable directory is
    // timed against the crash-restart alternative it replaces: full
    // discovery re-bootstrap on the identical final database plus
    // `spawn_durable` (a restarted service must be durable again).
    let mut durability_geomean = None;
    if bench_durability() {
        let durable_rounds: usize = std::env::var("INFINE_BENCH_DURABLE_ROUNDS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(6);
        let mut dur_table = TextTable::new(&[
            "view",
            "Δtable",
            "rounds",
            "t_plain",
            "t_durable",
            "wal_overhead/round",
            "replayed",
            "t_recover",
            "t_rebootstrap",
            "recover_speedup",
        ]);
        let mut recover_speedups: Vec<f64> = Vec::new();
        let mut tpch_recover_ok = true;
        let mut rng = StdRng::seed_from_u64(0xD04AB1E);
        for &(case_id, target) in SCENARIOS {
            let case = find(case_id).unwrap_or_else(|| panic!("unknown case {case_id}"));
            let db = case.dataset.generate(scale);

            // Pre-generate identical rounds by evolving a standalone copy
            // of the target relation (cheap oracle, no discovery
            // bootstrap) so both services see the exact same stream.
            let mut oracle = db.expect(target).clone();
            let mut rounds: Vec<DeltaRelation> = Vec::new();
            for _ in 0..durable_rounds {
                let max = (oracle.live_rows() / 50).max(2);
                let batch = random_delta(&mut rng, &oracle, max, max);
                let (next, _) = oracle.apply_delta(&batch, target);
                oracle = next;
                rounds.push(DeltaRelation::new(target.to_string(), batch));
            }

            let bootstrap = |db: Database| {
                ShardedEngine::new(InFine::default(), db, case.spec.clone(), shards)
                    .unwrap_or_else(|e| panic!("{case_id}: durability bootstrap failed: {e}"))
            };
            let dir = std::env::temp_dir().join(format!(
                "infine-bench-durable-{}-{case_id}",
                std::process::id()
            ));
            let _ = std::fs::remove_dir_all(&dir);
            std::fs::create_dir_all(&dir)
                .unwrap_or_else(|e| panic!("cannot create {}: {e}", dir.display()));
            // Cadence divides the round count so the final snapshot lands
            // at the durable head — recovery then measures the
            // snapshot-restore path (replay suffix empty), which is the
            // steady-state restart cost a periodic snapshot policy buys.
            let options =
                || DurabilityOptions::new(&dir).snapshot_policy(SnapshotPolicy::every_rounds(3));

            let plain = MaintenanceService::spawn(bootstrap(db.clone()));
            let durable = MaintenanceService::spawn_durable(
                bootstrap(db),
                VacuumPolicy::default(),
                options(),
            )
            .unwrap_or_else(|e| panic!("{case_id}: spawn_durable failed: {e}"));
            let run_stream = |service: &MaintenanceService| -> f64 {
                let mut total = 0f64;
                for delta in &rounds {
                    let t0 = Instant::now();
                    service.ingest(vec![delta.clone()]).unwrap();
                    service
                        .recv_report()
                        .expect("worker died mid-bench")
                        .unwrap_or_else(|e| panic!("{case_id}: round failed: {e}"));
                    total += t0.elapsed().as_secs_f64();
                }
                total
            };
            let t_plain = run_stream(&plain);
            let t_durable = run_stream(&durable);
            let overhead_per_round = (t_durable - t_plain) / durable_rounds as f64;
            let plain_engine = plain.shutdown().unwrap();
            durable.shutdown().unwrap();

            // Crash-restart cost, both roads ending at a *serving durable
            // service*: recover from snapshot + WAL suffix, vs full
            // discovery re-bootstrap on the identical final database
            // followed by `spawn_durable` (the alternative must also cut
            // its baseline snapshot to be durable again).
            let t0 = Instant::now();
            let (recovered, info) = MaintenanceService::recover(
                options(),
                InFine::default(),
                case.spec.clone(),
                VacuumPolicy::default(),
            )
            .unwrap_or_else(|e| panic!("{case_id}: recovery failed: {e}"));
            let t_recover = t0.elapsed();
            assert_eq!(info.durable_rounds, durable_rounds as u64);
            assert!(info.clean_shutdown, "{case_id}: shutdown marker missing");
            let recovered_engine = recovered.shutdown().unwrap();
            let dir2 = std::env::temp_dir().join(format!(
                "infine-bench-reboot-{}-{case_id}",
                std::process::id()
            ));
            let _ = std::fs::remove_dir_all(&dir2);
            std::fs::create_dir_all(&dir2)
                .unwrap_or_else(|e| panic!("cannot create {}: {e}", dir2.display()));
            let t0 = Instant::now();
            let reboot_service = MaintenanceService::spawn_durable(
                bootstrap(recovered_engine.database().clone()),
                VacuumPolicy::default(),
                DurabilityOptions::new(&dir2).snapshot_policy(SnapshotPolicy::every_rounds(3)),
            )
            .unwrap_or_else(|e| panic!("{case_id}: re-bootstrap spawn failed: {e}"));
            let t_rebootstrap = t0.elapsed();
            let rebootstrapped = reboot_service.shutdown().unwrap();
            let _ = std::fs::remove_dir_all(&dir2);
            assert_eq!(
                recovered_engine.report().triples,
                rebootstrapped.report().triples,
                "{case_id}: recovered cover diverged from re-bootstrap"
            );
            assert_eq!(
                recovered_engine.report().triples,
                plain_engine.report().triples,
                "{case_id}: durable service diverged from the plain service"
            );
            let _ = std::fs::remove_dir_all(&dir);

            let recover_speedup = t_rebootstrap.as_secs_f64() / t_recover.as_secs_f64().max(1e-9);
            recover_speedups.push(recover_speedup);
            if case_id.starts_with("tpch") && t_recover >= t_rebootstrap {
                tpch_recover_ok = false;
            }
            json_rows.push(
                Obj::new()
                    .str("workload", "durability")
                    .str("view", case_id)
                    .str("delta_table", target)
                    .int("rounds", durable_rounds as i64)
                    .num("plain_round_s", t_plain / durable_rounds as f64)
                    .num("durable_round_s", t_durable / durable_rounds as f64)
                    .num("wal_overhead_s_per_round", overhead_per_round)
                    .int("replayed_rounds", info.replayed_rounds as i64)
                    .num("recovery_s", t_recover.as_secs_f64())
                    .num("rebootstrap_s", t_rebootstrap.as_secs_f64())
                    .num("recover_speedup", recover_speedup),
            );
            dur_table.row(vec![
                case_id.to_string(),
                target.to_string(),
                durable_rounds.to_string(),
                secs(std::time::Duration::from_secs_f64(t_plain)),
                secs(std::time::Duration::from_secs_f64(t_durable)),
                secs(std::time::Duration::from_secs_f64(
                    overhead_per_round.max(0.0),
                )),
                info.replayed_rounds.to_string(),
                secs(t_recover),
                secs(t_rebootstrap),
                format!("{recover_speedup:.1}x"),
            ]);
        }
        println!("# durability (plain vs WAL+snapshot service, recovery vs re-bootstrap):");
        println!("{}", dur_table.render());
        let geo = (recover_speedups.iter().map(|s| s.ln()).sum::<f64>()
            / recover_speedups.len().max(1) as f64)
            .exp();
        println!("# recovery vs re-bootstrap geometric mean: {geo:.1}x");
        println!(
            "# recovery strictly below full re-bootstrap on TPC-H views: {}",
            if tpch_recover_ok { "PASS" } else { "MISS" }
        );
        durability_geomean = Some(geo);
    }

    // ---- overload lane (--overload / INFINE_BENCH_OVERLOAD=1) ----
    //
    // One service per admission policy, each flooded with the same
    // pre-generated churn stream as fast as it will accept it: the
    // unbounded queue absorbs the whole burst in memory, the bounded
    // queue parks the producer at the high-water mark, and
    // coalesce-in-place folds the backlog into one pending round per
    // table. Reported per policy: producer-side flood wall-clock, total
    // time to a drained service, rounds reported, batches shed, and the
    // peak backlog the producer observed. The final covers must agree
    // across all policies — admission control changes pacing, never the
    // answer.
    if bench_overload() {
        let overload_rounds: usize = std::env::var("INFINE_BENCH_OVERLOAD_ROUNDS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(48);
        let (case_id, target) = ("tpch_q2", "supplier");
        let case = find(case_id).unwrap_or_else(|| panic!("unknown case {case_id}"));
        let db = case.dataset.generate(scale);
        let mut rng = StdRng::seed_from_u64(0x0E7010AD);
        let mut oracle = db.expect(target).clone();
        let mut rounds: Vec<DeltaRelation> = Vec::new();
        for _ in 0..overload_rounds {
            let max = (oracle.live_rows() / 50).max(2);
            let batch = random_delta(&mut rng, &oracle, max, max);
            let (next, _) = oracle.apply_delta(&batch, target);
            oracle = next;
            rounds.push(DeltaRelation::new(target.to_string(), batch));
        }
        let lanes: [(&str, IngestPolicy); 3] = [
            ("unbounded", IngestPolicy::unbounded()),
            (
                "bounded+block",
                IngestPolicy::block(4, Duration::from_secs(120)),
            ),
            ("coalesce", IngestPolicy::coalesce_in_place()),
        ];
        let mut over_table = TextTable::new(&[
            "policy",
            "rounds",
            "t_flood",
            "t_drained",
            "reports",
            "shed",
            "peak_backlog",
        ]);
        let mut covers: Vec<(&str, Vec<infine_core::ProvenanceTriple>)> = Vec::new();
        for (label, ingest) in lanes {
            let engine =
                ShardedEngine::new(InFine::default(), db.clone(), case.spec.clone(), shards)
                    .unwrap_or_else(|e| panic!("{case_id}: overload bootstrap failed: {e}"));
            let service = MaintenanceService::spawn_with_policies(
                engine,
                ServicePolicies::default().ingest(ingest),
            );
            let mut shed = 0usize;
            let mut peak_backlog = 0usize;
            let t0 = Instant::now();
            for delta in &rounds {
                match service.ingest(vec![delta.clone()]) {
                    Ok(()) => {}
                    Err(MaintenanceError::Overloaded { shed: s }) => shed += s,
                    Err(e) => panic!("{case_id}: overload ingest failed: {e}"),
                }
                peak_backlog = peak_backlog.max(service.stats().queue_depth);
            }
            let t_flood = t0.elapsed();
            loop {
                let stats = service.stats();
                if stats.queue_depth == 0 && stats.in_flight == 0 {
                    break;
                }
                assert!(stats.worker_alive, "{case_id}: overload worker died");
                std::thread::sleep(Duration::from_micros(200));
            }
            let t_drained = t0.elapsed();
            let mut reports = 0usize;
            while let Some(r) = service.try_recv_report() {
                r.unwrap_or_else(|e| panic!("{case_id}: overload round failed: {e}"));
                reports += 1;
            }
            assert_eq!(shed, 0, "{case_id}: nothing sheds under these deadlines");
            covers.push((label, service.shutdown().unwrap().report().triples.clone()));
            json_rows.push(
                Obj::new()
                    .str("workload", "overload")
                    .str("view", case_id)
                    .str("policy", label)
                    .int("rounds", overload_rounds as i64)
                    .num("flood_s", t_flood.as_secs_f64())
                    .num("drained_s", t_drained.as_secs_f64())
                    .int("reports", reports as i64)
                    .int("shed", shed as i64)
                    .int("peak_backlog", peak_backlog as i64),
            );
            over_table.row(vec![
                label.to_string(),
                overload_rounds.to_string(),
                secs(t_flood),
                secs(t_drained),
                reports.to_string(),
                shed.to_string(),
                peak_backlog.to_string(),
            ]);
        }
        for (label, triples) in &covers[1..] {
            assert_eq!(
                triples, &covers[0].1,
                "{case_id}: policy {label} diverged from the unbounded cover"
            );
        }
        println!("# overload (flood ingest under each admission policy):");
        println!("{}", over_table.render());
    }

    // ---- reader-flood lane (--readers N / INFINE_BENCH_READERS=N) ----
    //
    // N threads hammer the wait-free read path (`CoverReader::current`)
    // while the service churns through the same seeded stream used
    // uncontended as the baseline. Reported: total reads, read
    // throughput per thread, the worst round lag any reader observed,
    // and churn wall-clock with and without the flood — pinning the
    // tentpole's claim that reads never queue behind ingest and the
    // flood never stalls the worker.
    let readers = bench_readers();
    if readers > 0 {
        let reader_rounds: usize = std::env::var("INFINE_BENCH_READER_ROUNDS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(48);
        let (case_id, target) = ("tpch_q2", "supplier");
        let case = find(case_id).unwrap_or_else(|| panic!("unknown case {case_id}"));
        let db = case.dataset.generate(scale);
        let mut rng = StdRng::seed_from_u64(0x00_5EAD);
        let mut oracle = db.expect(target).clone();
        let mut rounds: Vec<DeltaRelation> = Vec::new();
        for _ in 0..reader_rounds {
            let max = (oracle.live_rows() / 50).max(2);
            let batch = random_delta(&mut rng, &oracle, max, max);
            let (next, _) = oracle.apply_delta(&batch, target);
            oracle = next;
            rounds.push(DeltaRelation::new(target.to_string(), batch));
        }
        let churn = |flood: usize| -> (Duration, u64, u64) {
            let engine =
                ShardedEngine::new(InFine::default(), db.clone(), case.spec.clone(), shards)
                    .unwrap_or_else(|e| panic!("{case_id}: reader-lane bootstrap failed: {e}"));
            let service = MaintenanceService::spawn(engine);
            let stop = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
            let flooders: Vec<_> = (0..flood)
                .map(|_| {
                    let reader = service.reader();
                    let stop = std::sync::Arc::clone(&stop);
                    std::thread::spawn(move || {
                        let (mut reads, mut worst_lag) = (0u64, 0u64);
                        while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                            let snap = reader.current();
                            worst_lag =
                                worst_lag.max(reader.head_round().saturating_sub(snap.round));
                            reads += 1;
                        }
                        (reads, worst_lag)
                    })
                })
                .collect();
            let t0 = Instant::now();
            for delta in &rounds {
                service
                    .ingest(vec![delta.clone()])
                    .unwrap_or_else(|e| panic!("{case_id}: reader-lane ingest failed: {e}"));
                service
                    .recv_report()
                    .unwrap_or_else(|| panic!("{case_id}: reader-lane round lost"))
                    .unwrap_or_else(|e| panic!("{case_id}: reader-lane round failed: {e}"));
            }
            let t_churn = t0.elapsed();
            stop.store(true, std::sync::atomic::Ordering::Relaxed);
            let (mut reads, mut worst_lag) = (0u64, 0u64);
            for f in flooders {
                let (r, l) = f.join().expect("reader thread panicked");
                reads += r;
                worst_lag = worst_lag.max(l);
            }
            service.shutdown().unwrap();
            (t_churn, reads, worst_lag)
        };
        let (t_alone, _, _) = churn(0);
        let (t_flooded, reads, worst_lag) = churn(readers);
        let reads_per_sec = reads as f64 / t_flooded.as_secs_f64();
        let mut read_table = TextTable::new(&[
            "readers",
            "rounds",
            "t_churn_alone",
            "t_churn_flooded",
            "reads",
            "reads_per_sec",
            "worst_lag",
        ]);
        read_table.row(vec![
            readers.to_string(),
            reader_rounds.to_string(),
            secs(t_alone),
            secs(t_flooded),
            reads.to_string(),
            format!("{reads_per_sec:.0}"),
            worst_lag.to_string(),
        ]);
        json_rows.push(
            Obj::new()
                .str("workload", "readers")
                .str("view", case_id)
                .int("readers", readers as i64)
                .int("rounds", reader_rounds as i64)
                .num("churn_alone_s", t_alone.as_secs_f64())
                .num("churn_flooded_s", t_flooded.as_secs_f64())
                .int("reads", reads as i64)
                .num("reads_per_sec", reads_per_sec)
                .int("worst_lag", worst_lag as i64),
        );
        println!("# readers (wait-free cover reads under churn):");
        println!("{}", read_table.render());
    }

    println!("# 1%-delta speedups (cover maintenance vs full InFine re-discovery):");
    let mut geomeans = Vec::new();
    for workload in [Workload::Churn, Workload::Append] {
        let speedups: Vec<f64> = one_percent
            .iter()
            .filter(|(w, _, _)| *w == workload)
            .map(|(_, label, s)| {
                println!("#   [{}] {label}: {s:.1}x", workload.label());
                *s
            })
            .collect();
        let geomean =
            (speedups.iter().map(|s| s.ln()).sum::<f64>() / speedups.len().max(1) as f64).exp();
        println!("#   [{}] geometric mean: {geomean:.1}x", workload.label());
        geomeans.push(geomean);
    }
    let headline = geomeans.iter().copied().fold(f64::INFINITY, f64::min);
    println!(
        "# headline (min geometric mean across workloads): {headline:.1}x \
         (acceptance threshold: 5x) — {}",
        if headline >= 5.0 { "PASS" } else { "MISS" }
    );

    // Machine-readable mirror of the run (per-scenario rows + headline),
    // tracked across PRs like BENCH_discovery.json.
    let out_path =
        std::env::var("INFINE_BENCH_OUT").unwrap_or_else(|_| "BENCH_incremental.json".to_string());
    let kernel = infine_partitions::kernel_counters();
    let mut header = Obj::new()
        .str(
            "benchmark",
            "incremental maintenance vs full re-discovery (single-shot wall-clock seconds)",
        )
        .num("scale", scale.factor)
        .int("threads", infine_exec::parallelism() as i64)
        .int("shards", shards as i64)
        .num("churn_1pct_geomean_speedup_cover", geomeans[0])
        .num("append_1pct_geomean_speedup_cover", geomeans[1])
        .num("headline_min_geomean", headline)
        .num("delete_churn_round_speedup_geomean", delete_geomean)
        .int("kernel_checks", kernel.checks as i64)
        .int("kernel_early_exits", kernel.early_exits as i64)
        .int("products_avoided", kernel.products_avoided as i64)
        // Whole-run registry snapshot (every infine_* series, flat
        // object). The kernel_* fields above predate it and stay for
        // cross-PR trajectory compatibility.
        .raw("metrics", infine_obs::snapshot().to_json());
    if let Some(geo) = durability_geomean {
        header = header.num("durability_recover_speedup_geomean", geo);
    }
    if let Some(geo) = view_mode_geomean {
        header = header.num("view_mode_round_ratio_geomean", geo);
    }
    std::fs::write(&out_path, json::render_report(header, &json_rows))
        .unwrap_or_else(|e| panic!("cannot write {out_path}: {e}"));
    println!("# wrote {out_path}");
    infine_obs::dump_if_requested();
}

/// The fast engine's canonical cover must be logically equivalent to the
/// full pipeline's triple set (id spaces aligned by column name).
fn assert_covers_equivalent(
    report: &infine_incremental::MaintenanceReport,
    full: &infine_core::InFineReport,
) {
    let map: Vec<usize> = (0..report.schema.len())
        .map(|i| full.schema.expect_id(report.schema.name(i)))
        .collect();
    let remapped = report
        .cover
        .iter()
        .map(|fd| {
            Fd::new(
                fd.lhs.iter().map(|a| map[a]).collect::<AttrSet>(),
                map[fd.rhs],
            )
        })
        .fold(FdSet::new(), |mut s, fd| {
            s.insert_unchecked(fd);
            s
        });
    assert!(
        remapped.equivalent(&full.fd_set()),
        "incremental cover diverged from full re-discovery"
    );
}
