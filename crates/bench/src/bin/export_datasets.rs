//! Export the four synthetic databases as CSV files (reproducibility
//! artifact — downstream users can load the exact data the harness ran
//! on, or feed it to other FD-discovery tools).
//!
//! ```text
//! cargo run -p infine-bench --bin export_datasets --release -- [out_dir]
//! ```

use infine_bench::runner::bench_scale;
use infine_datagen::DatasetKind;
use infine_relation::{read_csv, write_csv, TypeInference};
use std::fs::{self, File};
use std::path::PathBuf;

fn main() -> std::io::Result<()> {
    let scale = bench_scale();
    let out_dir: PathBuf = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "data".to_string())
        .into();
    for ds in DatasetKind::ALL {
        let dir = out_dir.join(ds.name().to_lowercase().replace('-', ""));
        fs::create_dir_all(&dir)?;
        let db = ds.generate(scale);
        let mut names: Vec<&str> = db.names().collect();
        names.sort_unstable();
        for name in names {
            let rel = db.expect(name);
            let path = dir.join(format!("{name}.csv"));
            write_csv(rel, File::create(&path)?)?;
            // verify the round trip: same shape, same first row
            let back = read_csv(name, File::open(&path)?, TypeInference::Auto)?;
            assert_eq!(back.nrows(), rel.nrows(), "{name}: row count drift");
            assert_eq!(back.ncols(), rel.ncols(), "{name}: column drift");
            println!(
                "wrote {} ({} rows × {} cols)",
                path.display(),
                rel.nrows(),
                rel.ncols()
            );
        }
    }
    Ok(())
}
