//! Fig. 5 — InFine runtime breakdown per algorithm (I/O, upstageFDs,
//! inferFDs, mineFDs) with the corresponding accuracy shares (the paper's
//! pie charts), per view.
//!
//! ```text
//! cargo run -p infine-bench --bin fig5 --release
//! ```

use infine_bench::runner::{bench_scale, run_infine, secs, TextTable};
use infine_datagen::{catalog, DatasetKind};

#[global_allocator]
static ALLOC: infine_bench::alloc::CountingAlloc = infine_bench::alloc::CountingAlloc;

fn main() {
    let scale = bench_scale();
    let mut table = TextTable::new(&[
        "DB",
        "SPJ View",
        "I/O(s)",
        "upstage(s)",
        "infer(s)",
        "mine(s)",
        "upstage%",
        "infer%",
        "mine%",
        "Th4 pruned",
        "validated",
    ]);
    for ds in DatasetKind::ALL {
        let db = ds.generate(scale);
        for case in catalog().into_iter().filter(|c| c.dataset == ds) {
            let run = run_infine(&db, &case);
            let t = &run.report.timings;
            let (u, i, m) = run.report.phase_shares();
            table.row(vec![
                ds.name().to_string(),
                case.label.to_string(),
                secs(t.io),
                secs(t.upstage),
                secs(t.infer),
                secs(t.mine),
                format!("{:.1}", u * 100.0),
                format!("{:.1}", i * 100.0),
                format!("{:.1}", m * 100.0),
                run.report.stats.pruned_by_theorem4.to_string(),
                run.report.stats.mine_validated.to_string(),
            ]);
        }
    }
    println!(
        "Fig. 5: InFine runtime breakdown and accuracy shares per algorithm (scale {})",
        scale.factor
    );
    println!("{}", table.render());
}
