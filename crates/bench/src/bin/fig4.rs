//! Fig. 4 — maximal memory consumption per method per view, measured as
//! the peak allocation (bytes above the pre-run baseline) through the
//! counting global allocator.
//!
//! ```text
//! cargo run -p infine-bench --bin fig4 --release
//! ```

use infine_bench::runner::{bench_scale, mib, run_baseline, run_infine, TextTable};
use infine_datagen::{catalog, DatasetKind};
use infine_discovery::Algorithm;

#[global_allocator]
static ALLOC: infine_bench::alloc::CountingAlloc = infine_bench::alloc::CountingAlloc;

fn main() {
    let scale = bench_scale();
    let skip: Vec<String> = std::env::var("INFINE_SKIP")
        .map(|s| s.split(',').map(str::to_string).collect())
        .unwrap_or_default();
    let mut table = TextTable::new(&[
        "DB",
        "SPJ View",
        "InFine(MiB)",
        "HyFD(MiB)",
        "FastFDs(MiB)",
        "FUN(MiB)",
        "TANE(MiB)",
    ]);
    for ds in DatasetKind::ALL {
        let db = ds.generate(scale);
        for case in catalog().into_iter().filter(|c| c.dataset == ds) {
            let i = run_infine(&db, &case);
            let mut cols = vec![
                ds.name().to_string(),
                case.label.to_string(),
                mib(i.peak_bytes),
            ];
            for algo in Algorithm::BASELINES {
                if skip.iter().any(|s| s == algo.name()) {
                    cols.push("skipped".into());
                    continue;
                }
                let b = run_baseline(&db, &case, algo);
                cols.push(mib(b.peak_bytes));
            }
            table.row(cols);
        }
    }
    println!(
        "Fig. 4: maximal memory consumption per method (scale {})",
        scale.factor
    );
    println!("{}", table.render());
}
