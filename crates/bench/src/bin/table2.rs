//! Table II — the 16 SPJ views: tuple counts and FD counts, with the
//! paper's published values alongside.
//!
//! ```text
//! cargo run -p infine-bench --bin table2 --release
//! ```

use infine_algebra::execute;
use infine_bench::runner::{bench_scale, TextTable};
use infine_datagen::{catalog, DatasetKind};
use infine_discovery::Algorithm;

#[global_allocator]
static ALLOC: infine_bench::alloc::CountingAlloc = infine_bench::alloc::CountingAlloc;

fn main() {
    let scale = bench_scale();
    let mut table = TextTable::new(&[
        "DB",
        "SPJ View",
        "Tuple#",
        "FD#",
        "paper Tuple#",
        "paper FD#",
    ]);
    for ds in DatasetKind::ALL {
        let db = ds.generate(scale);
        for case in catalog().into_iter().filter(|c| c.dataset == ds) {
            let view = execute(&case.spec, &db).unwrap_or_else(|e| panic!("{}: {e}", case.id));
            let fds = Algorithm::Tane.discover(&view);
            table.row(vec![
                ds.name().to_string(),
                case.label.to_string(),
                view.nrows().to_string(),
                fds.len().to_string(),
                case.paper.tuples.to_string(),
                case.paper.fds.to_string(),
            ]);
        }
    }
    println!(
        "Table II: SPJ queries considered (scale {}; paper columns at scale 1.0)",
        scale.factor
    );
    println!("{}", table.render());
}
