//! Shared measurement harness: run InFine and the four baselines on a
//! catalog view and collect the quantities each paper table/figure needs.

use crate::alloc::measure_peak;
use infine_algebra::execute;
use infine_core::{discover_base_fds, straightforward, FdKind, InFine, InFineReport};
use infine_datagen::{QueryCase, Scale};
use infine_discovery::Algorithm;
use infine_incremental::{MaintenanceEngine, MaintenanceReport};
use infine_relation::{Database, DeltaRelation};
use std::time::{Duration, Instant};

/// One measured run of InFine on a view.
pub struct InFineRun {
    /// The pipeline report (triples, timings, stats).
    pub report: InFineReport,
    /// Wall-clock of the whole pipeline (excluding base mining).
    pub total: Duration,
    /// Peak allocation bytes (0 unless the counting allocator is active).
    pub peak_bytes: usize,
}

/// One measured run of a baseline (full SPJ + discovery + diff labelling).
pub struct BaselineRun {
    /// Algorithm used.
    pub algorithm: Algorithm,
    /// Total wall-clock (view computation + discovery + labelling).
    pub total: Duration,
    /// View materialization time alone.
    pub view_time: Duration,
    /// Number of FDs discovered on the view.
    pub fds: usize,
    /// Rows of the materialized view.
    pub view_rows: usize,
    /// Peak allocation bytes (0 unless the counting allocator is active).
    pub peak_bytes: usize,
}

/// Run InFine on a case (fresh database generation is *not* measured).
pub fn run_infine(db: &Database, case: &QueryCase) -> InFineRun {
    let engine = InFine::default();
    let (report, peak_bytes) = measure_peak(|| {
        engine
            .discover(db, &case.spec)
            .unwrap_or_else(|e| panic!("{}: {e}", case.id))
    });
    let total = report.timings.infine_total();
    InFineRun {
        report,
        total,
        peak_bytes,
    }
}

/// Run one baseline on a case. Base-table FD discovery is excluded from
/// the timing (the paper treats it as a shared cost), so it runs outside
/// the measured region.
pub fn run_baseline(db: &Database, case: &QueryCase, algorithm: Algorithm) -> BaselineRun {
    let base_fds = discover_base_fds(db, &case.spec, algorithm);
    let (report, peak_bytes) = measure_peak(|| {
        straightforward(db, &case.spec, algorithm, &base_fds)
            .unwrap_or_else(|e| panic!("{}: {e}", case.id))
    });
    BaselineRun {
        algorithm,
        total: report.timings.total(),
        view_time: report.timings.view_computation,
        fds: report.fds.len(),
        view_rows: report.view_rows,
        peak_bytes,
    }
}

/// One measured maintenance round of the incremental engine.
pub struct MaintenanceRun {
    /// The engine's round report (classification, per-base stats,
    /// timing breakdown).
    pub report: MaintenanceReport,
    /// Wall-clock of the whole `apply` call.
    pub total: Duration,
    /// Peak allocation bytes (0 unless the counting allocator is active).
    pub peak_bytes: usize,
}

/// Shared measurement wrapper for the maintenance lanes — every lane
/// must time and peak-track its apply identically or their columns stop
/// being comparable.
fn measure_maintenance(apply: impl FnOnce() -> MaintenanceReport) -> MaintenanceRun {
    let t0 = Instant::now();
    let (report, peak_bytes) = measure_peak(apply);
    MaintenanceRun {
        report,
        total: t0.elapsed(),
        peak_bytes,
    }
}

/// Apply one round of deltas through the maintenance engine, measured.
pub fn run_maintenance(engine: &mut MaintenanceEngine, deltas: &[DeltaRelation]) -> MaintenanceRun {
    measure_maintenance(|| {
        engine
            .apply(deltas)
            .unwrap_or_else(|e| panic!("maintenance apply failed: {e}"))
    })
}

/// [`run_maintenance`] for the sharded engine (same report shape).
pub fn run_sharded_maintenance(
    engine: &mut infine_incremental::ShardedEngine,
    deltas: &[DeltaRelation],
) -> MaintenanceRun {
    measure_maintenance(|| {
        engine
            .apply(deltas)
            .unwrap_or_else(|e| panic!("sharded maintenance apply failed: {e}"))
    })
}

/// Wall-clock one full `InFine::discover` from scratch (base mining
/// included — from-scratch re-discovery pays it, unlike the per-phase
/// split of [`run_infine`]).
pub fn run_full_rediscovery(db: &Database, case: &QueryCase) -> (InFineReport, Duration) {
    let t0 = Instant::now();
    let report = InFine::default()
        .discover(db, &case.spec)
        .unwrap_or_else(|e| panic!("{}: {e}", case.id));
    (report, t0.elapsed())
}

/// Tuple count of a view result (materializes it; used by Table II).
pub fn view_rows(db: &Database, case: &QueryCase) -> usize {
    execute(&case.spec, db)
        .unwrap_or_else(|e| panic!("{}: {e}", case.id))
        .nrows()
}

/// InFine accuracy shares in the Table III sense.
pub fn shares(report: &InFineReport) -> (f64, f64, f64) {
    report.phase_shares()
}

/// FD count per kind, rendered compactly (diagnostics).
pub fn kind_summary(report: &InFineReport) -> String {
    FdKind::ALL
        .iter()
        .map(|&k| format!("{}={}", k.label(), report.count_kind(k)))
        .collect::<Vec<_>>()
        .join(" ")
}

/// Format a duration in seconds with sub-millisecond resolution.
pub fn secs(d: Duration) -> String {
    format!("{:.4}", d.as_secs_f64())
}

/// Format bytes as mebibytes.
pub fn mib(bytes: usize) -> String {
    format!("{:.2}", bytes as f64 / (1024.0 * 1024.0))
}

/// Shard-count override set by `--shards` (0 = unset).
static SHARDS_OVERRIDE: std::sync::atomic::AtomicUsize = std::sync::atomic::AtomicUsize::new(0);

/// Shard count for the sharded-maintenance bench lane: `--shards N` flag,
/// else `INFINE_SHARDS`, else 2 (so the sharded path is exercised by
/// default without degenerating to the unsharded case).
pub fn bench_shards() -> usize {
    let o = SHARDS_OVERRIDE.load(std::sync::atomic::Ordering::Relaxed);
    if o > 0 {
        return o;
    }
    std::env::var("INFINE_SHARDS")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&n| n >= 1)
        .unwrap_or(2)
}

/// Parse the bench binaries' shared CLI flags.
///
/// `--threads N` pins the `infine-exec` worker count for the whole run
/// (equivalent to `INFINE_THREADS=N` but visible in shell history and
/// recorded via `infine_exec::parallelism()` in the emitted JSON);
/// `--shards N` pins the shard count of the sharded maintenance lane
/// (equivalent to `INFINE_SHARDS=N`, recorded via [`bench_shards`]);
/// `--durability` enables the durability lane of the incremental bench
/// (equivalent to `INFINE_BENCH_DURABILITY=1`, see [`bench_durability`]);
/// `--overload` enables the overload lane — ingest throughput under
/// each admission policy (equivalent to `INFINE_BENCH_OVERLOAD=1`, see
/// [`bench_overload`]); `--readers N` enables the reader-flood lane —
/// N wait-free [`CoverReader`](infine_incremental::CoverReader) threads
/// hammering `current()` while the service churns (equivalent to
/// `INFINE_BENCH_READERS=N`, see [`bench_readers`]).
///
/// Also arms the observability env knobs: `INFINE_METRICS_ADDR` starts
/// the Prometheus scrape endpoint for the duration of the run (watch a
/// long bench live), and `INFINE_METRICS_DUMP` is honored by each
/// binary's exit path via [`infine_obs::dump_if_requested`].
pub fn apply_cli_flags() {
    infine_obs::serve_from_env();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--threads" => {
                let n = args
                    .next()
                    .and_then(|v| v.parse::<usize>().ok())
                    .filter(|&n| n >= 1)
                    .unwrap_or_else(|| panic!("--threads needs a positive integer"));
                infine_exec::set_parallelism(n);
            }
            "--shards" => {
                let n = args
                    .next()
                    .and_then(|v| v.parse::<usize>().ok())
                    .filter(|&n| n >= 1)
                    .unwrap_or_else(|| panic!("--shards needs a positive integer"));
                SHARDS_OVERRIDE.store(n, std::sync::atomic::Ordering::Relaxed);
            }
            "--durability" => {
                DURABILITY.store(true, std::sync::atomic::Ordering::Relaxed);
            }
            "--overload" => {
                OVERLOAD.store(true, std::sync::atomic::Ordering::Relaxed);
            }
            "--view-mode" => {
                VIEW_MODE.store(true, std::sync::atomic::Ordering::Relaxed);
            }
            "--readers" => {
                let n = args
                    .next()
                    .and_then(|v| v.parse::<usize>().ok())
                    .filter(|&n| n >= 1)
                    .unwrap_or_else(|| panic!("--readers needs a positive integer"));
                READERS.store(n, std::sync::atomic::Ordering::Relaxed);
            }
            other => panic!(
                "unknown argument {other:?} (supported: --threads N, --shards N, --durability, --overload, --view-mode, --readers N)"
            ),
        }
    }
}

/// Durability-lane switch set by `--durability` or
/// `INFINE_BENCH_DURABILITY=1`: the incremental bench adds a lane that
/// measures WAL append overhead per round and recovery time vs full
/// re-bootstrap.
static DURABILITY: std::sync::atomic::AtomicBool = std::sync::atomic::AtomicBool::new(false);

/// Whether the durability bench lane is enabled for this run.
pub fn bench_durability() -> bool {
    DURABILITY.load(std::sync::atomic::Ordering::Relaxed)
        || std::env::var("INFINE_BENCH_DURABILITY").is_ok_and(|v| v != "0")
}

/// Overload-lane switch set by `--overload` or
/// `INFINE_BENCH_OVERLOAD=1`: the incremental bench adds a lane that
/// floods a service under each admission policy (unbounded queue,
/// bounded+block, coalesce-in-place) and reports ingest throughput,
/// peak backlog, and shed counts.
static OVERLOAD: std::sync::atomic::AtomicBool = std::sync::atomic::AtomicBool::new(false);

/// Whether the overload bench lane is enabled for this run.
pub fn bench_overload() -> bool {
    OVERLOAD.load(std::sync::atomic::Ordering::Relaxed)
        || std::env::var("INFINE_BENCH_OVERLOAD").is_ok_and(|v| v != "0")
}

/// View-mode-lane switch set by `--view-mode` or
/// `INFINE_BENCH_VIEW_MODE=1`: the incremental bench adds a lane that
/// drives identical churn through a materialized and a join-index
/// (virtual) cover-only engine and compares round latency and peak
/// resident rows/dictionary entries.
static VIEW_MODE: std::sync::atomic::AtomicBool = std::sync::atomic::AtomicBool::new(false);

/// Whether the view-mode bench lane is enabled for this run.
pub fn bench_view_mode() -> bool {
    VIEW_MODE.load(std::sync::atomic::Ordering::Relaxed)
        || std::env::var("INFINE_BENCH_VIEW_MODE").is_ok_and(|v| v != "0")
}

/// Reader-flood lane thread count set by `--readers N` or
/// `INFINE_BENCH_READERS=N` (0 = lane disabled): the incremental bench
/// adds a lane where N threads hammer wait-free `CoverReader::current()`
/// while the service churns, and reports read throughput and round lag.
static READERS: std::sync::atomic::AtomicUsize = std::sync::atomic::AtomicUsize::new(0);

/// Reader count for the reader-flood bench lane (0 = disabled).
pub fn bench_readers() -> usize {
    let o = READERS.load(std::sync::atomic::Ordering::Relaxed);
    if o > 0 {
        return o;
    }
    std::env::var("INFINE_BENCH_READERS")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .unwrap_or(0)
}

/// Scale from the environment with a stderr note (shared by binaries).
pub fn bench_scale() -> Scale {
    let s = Scale::from_env();
    eprintln!(
        "# scale factor {} (set INFINE_SCALE to change; 1.0 = paper-published sizes)",
        s.factor
    );
    s
}

/// Simple fixed-width text table writer for the harness binaries.
pub struct TextTable {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Start a table with the given column headers.
    pub fn new(headers: &[&str]) -> Self {
        TextTable {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (arity must match the headers).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(cells);
    }

    /// Render with aligned columns.
    pub fn render(&self) -> String {
        let ncols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.chars().count());
            }
        }
        let fmt_row = |cells: &[String]| -> String {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:w$}", c, w = widths[i]))
                .collect::<Vec<_>>()
                .join("  ")
        };
        let mut out = String::new();
        out.push_str(&fmt_row(&self.headers));
        out.push('\n');
        out.push_str(
            &widths
                .iter()
                .map(|w| "-".repeat(*w))
                .collect::<Vec<_>>()
                .join("  "),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        let _ = ncols;
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use infine_datagen::find;

    #[test]
    fn text_table_aligns() {
        let mut t = TextTable::new(&["a", "long header"]);
        t.row(vec!["xx".into(), "1".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("a "));
        assert!(lines[1].starts_with("--"));
    }

    #[test]
    fn infine_and_baseline_run_on_a_small_case() {
        let case = find("pte_active_drug").unwrap();
        let db = case.dataset.generate(Scale::of(0.01));
        let i = run_infine(&db, &case);
        assert!(!i.report.triples.is_empty());
        let b = run_baseline(&db, &case, Algorithm::Tane);
        assert!(b.fds > 0);
        assert!(b.view_rows > 0);
        // shares sum to 1
        let (u, f, m) = shares(&i.report);
        assert!((u + f + m - 1.0).abs() < 1e-9);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(secs(Duration::from_millis(1500)), "1.5000");
        assert_eq!(mib(1024 * 1024), "1.00");
    }
}
