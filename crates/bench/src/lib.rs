//! # infine-bench
//!
//! Benchmark harness reproducing every table and figure of the InFine
//! paper's evaluation (§V):
//!
//! | Artifact | Binary | What it prints |
//! |---|---|---|
//! | Table I | `table1` | base-table characteristics (Att#, Tuple#, FD#) |
//! | Table II | `table2` | the 16 SPJ views (Tuple#, FD#) |
//! | Table III | `table3` | coverage, per-algorithm accuracy shares, time breakdowns |
//! | Fig. 3 | `fig3` | runtime: InFine vs 4 baselines (+ full/partial SPJ split) |
//! | Fig. 4 | `fig4` | maximal memory per method per view |
//! | Fig. 5 | `fig5` | InFine runtime breakdown + accuracy shares |
//! | ablations | `join_order` | Lemma 1 / future-work join-order study |
//! | scaling | `scaling_probe` | InFine vs baselines across scale factors |
//! | data | `export_datasets` | CSV dump of the synthetic databases |
//!
//! Criterion benches `fd_discovery` and `ablation` provide statistically
//! sampled versions of the Fig. 3 comparison and the design-choice
//! ablations (Theorem-4 pruning on/off, semi-join vs full-join upstage
//! checks); `maintenance` samples the incremental engine under churn and
//! append deltas at 1 % / 5 %.
//!
//! Perf trajectory: `discovery_bench` and `incremental_bench` emit
//! machine-readable `BENCH_discovery.json` / `BENCH_incremental.json`
//! at the repo root ([`json`] module) — each scenario's median
//! wall-clock plus its speedup against the baseline recorded by a
//! previous PR's run, which is how perf changes are tracked across the
//! PR stack (`INFINE_BENCH_RECORD_BASELINE=1` re-pins the baseline).
//!
//! Scale: all binaries honour `INFINE_SCALE` (fraction of the paper's
//! published row counts; default 0.01).

pub mod alloc;
pub mod json;
pub mod runner;
