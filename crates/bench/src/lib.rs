//! # infine-bench
//!
//! Benchmark harness reproducing every table and figure of the InFine
//! paper's evaluation (§V):
//!
//! | Artifact | Binary | What it prints |
//! |---|---|---|
//! | Table I | `table1` | base-table characteristics (Att#, Tuple#, FD#) |
//! | Table II | `table2` | the 16 SPJ views (Tuple#, FD#) |
//! | Table III | `table3` | coverage, per-algorithm accuracy shares, time breakdowns |
//! | Fig. 3 | `fig3` | runtime: InFine vs 4 baselines (+ full/partial SPJ split) |
//! | Fig. 4 | `fig4` | maximal memory per method per view |
//! | Fig. 5 | `fig5` | InFine runtime breakdown + accuracy shares |
//! | ablations | `join_order` | Lemma 1 / future-work join-order study |
//! | scaling | `scaling_probe` | InFine vs baselines across scale factors |
//! | data | `export_datasets` | CSV dump of the synthetic databases |
//!
//! Criterion benches `fd_discovery` and `ablation` provide statistically
//! sampled versions of the Fig. 3 comparison and the design-choice
//! ablations (Theorem-4 pruning on/off, semi-join vs full-join upstage
//! checks).
//!
//! Scale: all binaries honour `INFINE_SCALE` (fraction of the paper's
//! published row counts; default 0.01).

pub mod alloc;
pub mod runner;
