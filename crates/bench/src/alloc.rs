//! Counting global allocator — the Fig. 4 measurement device.
//!
//! The paper reports *maximal memory consumption* per method per view.
//! This allocator wraps the system allocator with two atomics (live bytes
//! and high-water mark) so a harness binary can reset the peak, run one
//! method, and read back the method's peak allocation footprint.
//!
//! Register it in a binary with:
//!
//! ```ignore
//! #[global_allocator]
//! static ALLOC: infine_bench::alloc::CountingAlloc = infine_bench::alloc::CountingAlloc;
//! ```

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

static LIVE: AtomicUsize = AtomicUsize::new(0);
static PEAK: AtomicUsize = AtomicUsize::new(0);

/// System-allocator wrapper tracking live and peak bytes.
pub struct CountingAlloc;

impl CountingAlloc {
    /// Currently live bytes.
    pub fn live() -> usize {
        LIVE.load(Ordering::Relaxed)
    }

    /// High-water mark since the last [`CountingAlloc::reset_peak`].
    pub fn peak() -> usize {
        PEAK.load(Ordering::Relaxed)
    }

    /// Reset the peak to the current live volume. Returns the live bytes
    /// at reset time so callers can report `peak - baseline`.
    pub fn reset_peak() -> usize {
        let live = LIVE.load(Ordering::Relaxed);
        PEAK.store(live, Ordering::Relaxed);
        live
    }
}

fn bump(size: usize) {
    let live = LIVE.fetch_add(size, Ordering::Relaxed) + size;
    // lock-free max update
    let mut peak = PEAK.load(Ordering::Relaxed);
    while live > peak {
        match PEAK.compare_exchange_weak(peak, live, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => break,
            Err(p) => peak = p,
        }
    }
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let p = unsafe { System.alloc(layout) };
        if !p.is_null() {
            bump(layout.size());
        }
        p
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) };
        LIVE.fetch_sub(layout.size(), Ordering::Relaxed);
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        let p = unsafe { System.alloc_zeroed(layout) };
        if !p.is_null() {
            bump(layout.size());
        }
        p
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let p = unsafe { System.realloc(ptr, layout, new_size) };
        if !p.is_null() {
            if new_size > layout.size() {
                bump(new_size - layout.size());
            } else {
                LIVE.fetch_sub(layout.size() - new_size, Ordering::Relaxed);
            }
        }
        p
    }
}

/// Measure the peak allocation of a closure, in bytes above the baseline
/// at entry. Meaningful only when [`CountingAlloc`] is the registered
/// global allocator; otherwise returns 0.
pub fn measure_peak<T>(f: impl FnOnce() -> T) -> (T, usize) {
    let baseline = CountingAlloc::reset_peak();
    let out = f();
    let peak = CountingAlloc::peak();
    (out, peak.saturating_sub(baseline))
}

#[cfg(test)]
mod tests {
    use super::*;

    // The test binary does not register the allocator, so only the pure
    // bookkeeping paths can be exercised here; binaries exercise the rest.
    #[test]
    fn peak_reset_is_monotone() {
        let base = CountingAlloc::reset_peak();
        assert!(CountingAlloc::peak() >= base);
        let (_, delta) = measure_peak(|| Vec::<u8>::with_capacity(16));
        // without registration the delta is 0; with registration ≥ 16
        let _ = delta;
    }
}
