//! Minimal JSON emission/extraction for the machine-readable bench
//! reports (`BENCH_discovery.json`, `BENCH_incremental.json`).
//!
//! The build environment is offline (no serde), and the reports are flat:
//! one object per scenario with string/number fields. Writing is a small
//! builder; reading is a line-oriented field extractor — the writer emits
//! one scenario object per line precisely so the reader can stay this
//! simple. Perf numbers recorded by a previous PR's run are re-read as
//! the `baseline` each scenario's speedup is computed against, which is
//! how the perf trajectory is tracked across PRs.

/// Format a float with enough precision for timings, no trailing noise.
pub fn num(x: f64) -> String {
    if !x.is_finite() {
        return "null".to_string();
    }
    let s = format!("{x:.6}");
    let s = s.trim_end_matches('0').trim_end_matches('.');
    if s.is_empty() || s == "-" {
        "0".to_string()
    } else {
        s.to_string()
    }
}

/// Escape a string for a JSON literal.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// One flat JSON object, built field by field, rendered on a single line.
#[derive(Default, Clone)]
pub struct Obj {
    fields: Vec<(String, String)>,
}

impl Obj {
    /// Empty object.
    pub fn new() -> Obj {
        Obj::default()
    }

    /// Add a string field.
    pub fn str(mut self, key: &str, value: &str) -> Obj {
        self.fields
            .push((key.to_string(), format!("\"{}\"", escape(value))));
        self
    }

    /// Add a numeric field.
    pub fn num(mut self, key: &str, value: f64) -> Obj {
        self.fields.push((key.to_string(), num(value)));
        self
    }

    /// Add an integer field.
    pub fn int(mut self, key: &str, value: i64) -> Obj {
        self.fields.push((key.to_string(), value.to_string()));
        self
    }

    /// Add a pre-rendered raw value (array, nested object).
    pub fn raw(mut self, key: &str, value: impl Into<String>) -> Obj {
        self.fields.push((key.to_string(), value.into()));
        self
    }

    /// Render as `{"k": v, ...}` on one line.
    pub fn render(&self) -> String {
        let body = self
            .fields
            .iter()
            .map(|(k, v)| format!("\"{}\": {v}", escape(k)))
            .collect::<Vec<_>>()
            .join(", ");
        format!("{{{body}}}")
    }
}

/// Render a top-level report: scalar header fields plus a `scenarios`
/// array with one object per line (the layout the extractor relies on).
pub fn render_report(header: Obj, scenarios: &[Obj]) -> String {
    let mut out = String::from("{\n");
    for (k, v) in &header.fields {
        out.push_str(&format!("  \"{}\": {v},\n", escape(k)));
    }
    out.push_str("  \"scenarios\": [\n");
    for (i, s) in scenarios.iter().enumerate() {
        let comma = if i + 1 < scenarios.len() { "," } else { "" };
        out.push_str(&format!("    {}{comma}\n", s.render()));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Extract a string field from a single-line JSON object.
pub fn extract_str<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let pat = format!("\"{key}\": \"");
    let start = line.find(&pat)? + pat.len();
    let rest = &line[start..];
    let end = rest.find('"')?;
    Some(&rest[..end])
}

/// Extract a numeric field from a single-line JSON object.
pub fn extract_num(line: &str, key: &str) -> Option<f64> {
    let pat = format!("\"{key}\": ");
    let start = line.find(&pat)? + pat.len();
    let rest = &line[start..];
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == '+'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Median of a slice (empty → 0). Sorts a copy.
pub fn median(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let mut v = xs.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    let mid = v.len() / 2;
    if v.len() % 2 == 1 {
        v[mid]
    } else {
        (v[mid - 1] + v[mid]) / 2.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn obj_round_trips_through_extractors() {
        let o = Obj::new()
            .str("id", "tpch_q2")
            .num("median_s", 0.125)
            .int("runs", 5);
        let line = o.render();
        assert_eq!(extract_str(&line, "id"), Some("tpch_q2"));
        assert_eq!(extract_num(&line, "median_s"), Some(0.125));
        assert_eq!(extract_num(&line, "runs"), Some(5.0));
        assert_eq!(extract_num(&line, "missing"), None);
    }

    #[test]
    fn report_layout_is_line_oriented() {
        let report = render_report(
            Obj::new().str("benchmark", "x").num("scale", 0.01),
            &[Obj::new().str("id", "a"), Obj::new().str("id", "b")],
        );
        let scenario_lines: Vec<&str> = report
            .lines()
            .filter(|l| l.trim_start().starts_with("{\""))
            .collect();
        assert_eq!(scenario_lines.len(), 2);
        assert_eq!(extract_str(scenario_lines[1], "id"), Some("b"));
    }

    #[test]
    fn num_formatting_trims() {
        assert_eq!(num(0.5), "0.5");
        assert_eq!(num(3.0), "3");
        assert_eq!(num(f64::NAN), "null");
    }

    #[test]
    fn median_of_even_and_odd() {
        assert_eq!(median(&[3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&[4.0, 1.0, 2.0, 3.0]), 2.5);
        assert_eq!(median(&[]), 0.0);
    }

    #[test]
    fn escape_handles_specials() {
        assert_eq!(escape("a\"b\\c"), "a\\\"b\\\\c");
    }
}
