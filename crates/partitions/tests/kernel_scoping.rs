//! Regression for the `KernelCounters` global-race footgun: before the
//! `infine-obs` migration the kernel bumped one process-wide counter
//! set, so two engines running concurrently interleaved their traffic
//! and per-engine `since()` deltas were garbage (the sharded fan-out at
//! `--shards > 1` hit this every round). With per-registry scoping each
//! scope's delta is exact, while the process-wide default registry
//! still aggregates everything via parent chaining.

use infine_obs::Registry;
use infine_partitions::{kernel_counters, kernel_counters_in, Pli};

#[test]
fn concurrent_scopes_keep_exact_per_scope_deltas() {
    const COUNTS: [u64; 3] = [400, 900, 1300];
    let registries: Vec<Registry> = COUNTS.iter().map(|_| Registry::scoped()).collect();
    std::thread::scope(|scope| {
        for (registry, &count) in registries.iter().zip(&COUNTS) {
            scope.spawn(move || {
                let _guard = registry.enter();
                // One two-row class, constant probe: every check scans
                // fully and holds (no early exit).
                let pli = Pli::from_classes(vec![vec![0, 1]], 2);
                let probe = vec![7u32, 7u32];
                for _ in 0..count {
                    assert!(pli.refines_with(&probe).holds());
                }
            });
        }
    });
    // Per-scope counters are exact despite the interleaved execution…
    for (registry, &count) in registries.iter().zip(&COUNTS) {
        let counters = kernel_counters_in(registry);
        assert_eq!(counters.checks, count);
        assert_eq!(counters.early_exits, 0);
    }
    // …and the unscoped view (the default registry) aggregates them all.
    assert!(kernel_counters().checks >= COUNTS.iter().sum::<u64>());
}

#[test]
fn early_exits_scope_like_checks() {
    let scoped = Registry::scoped();
    let _guard = scoped.enter();
    let pli = Pli::from_classes(vec![vec![0, 1]], 2);
    for _ in 0..5 {
        assert!(!pli.refines_with(&[1, 2]).holds());
    }
    let counters = kernel_counters_in(&scoped);
    assert_eq!(counters.checks, 5);
    assert_eq!(counters.early_exits, 5);
}
