//! Property suite (satellite of the counting-kernel PR): the
//! counting-only validation kernel must agree with the materializing
//! oracle `distinct_count(X) == distinct_count(X ∪ {a})` everywhere —
//! on the relations of all four datagen databases, through the
//! [`PliCache::check`] fast path, and on *delta-patched* partitions
//! across randomized update rounds. Violated verdicts must name a real
//! violating pair (two live rows agreeing on `X`, disagreeing on `a`).

use infine_datagen::{random_delta, DatasetKind, Scale};
use infine_partitions::{IntersectScratch, Pli, PliCache};
use infine_relation::{AttrSet, Relation};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Candidate lhs sets probed per table: ∅, every singleton, random pairs
/// and triples — the same shapes the miners walk.
fn probe_sets(rng: &mut StdRng, rel: &Relation) -> Vec<AttrSet> {
    let n = rel.ncols();
    let mut sets = vec![AttrSet::EMPTY];
    sets.extend((0..n).map(AttrSet::single));
    for _ in 0..4 {
        let a = rng.gen_range(0..n);
        let b = rng.gen_range(0..n);
        sets.push(AttrSet::single(a).with(b));
    }
    for _ in 0..3 {
        let a = rng.gen_range(0..n);
        let b = rng.gen_range(0..n);
        let c = rng.gen_range(0..n);
        sets.push(AttrSet::single(a).with(b).with(c));
    }
    sets.dedup();
    sets
}

/// The materializing oracle: build both partitions, compare counts.
fn oracle(rel: &Relation, lhs: AttrSet, rhs: usize, scratch: &mut IntersectScratch) -> bool {
    let px = Pli::for_set_with(rel, lhs, scratch);
    let pxa = Pli::for_set_with(rel, lhs.with(rhs), scratch);
    px.refines_to(&pxa)
}

/// Kernel verdict (on a caller-supplied `π_lhs`) vs oracle, plus witness
/// sanity when violated.
fn assert_verdict_matches(rel: &Relation, pli: &Pli, lhs: AttrSet, rhs: usize, ctx: &str) {
    let mut scratch = IntersectScratch::new();
    let verdict = pli.refines_with(&rel.column(rhs).codes);
    assert_eq!(
        verdict.holds(),
        oracle(rel, lhs, rhs, &mut scratch),
        "{ctx}: kernel ≠ oracle for {lhs:?} → {rhs}"
    );
    if let Some((i, j)) = verdict.violating_pair() {
        let (i, j) = (i as usize, j as usize);
        assert!(
            i < rel.nrows() && j < rel.nrows(),
            "{ctx}: pair out of range"
        );
        for a in lhs.iter() {
            assert_eq!(
                rel.code(i, a),
                rel.code(j, a),
                "{ctx}: witness rows disagree on lhs attr {a}"
            );
        }
        assert_ne!(
            rel.code(i, rhs),
            rel.code(j, rhs),
            "{ctx}: witness rows agree on rhs {rhs}"
        );
    }
}

fn run_dataset(kind: DatasetKind, seed: u64) {
    let db = kind.generate(Scale::of(0.005));
    let mut rng = StdRng::seed_from_u64(seed);
    let mut scratch = IntersectScratch::new();
    let mut names: Vec<&str> = db.names().collect();
    names.sort_unstable();
    for name in names {
        let rel = db.expect(name);
        if rel.nrows() == 0 || rel.ncols() < 2 {
            continue;
        }
        let mut cache = PliCache::new(rel);
        for lhs in probe_sets(&mut rng, rel) {
            for rhs in 0..rel.ncols() {
                if lhs.contains(rhs) {
                    continue;
                }
                let pli = Pli::for_set_with(rel, lhs, &mut scratch);
                assert_verdict_matches(rel, &pli, lhs, rhs, &rel.name);
                // The cache fast path must agree and never grow the cache
                // by the product.
                assert_eq!(
                    cache.check(lhs, rhs),
                    oracle(rel, lhs, rhs, &mut scratch),
                    "{name}: PliCache::check ≠ oracle for {lhs:?} → {rhs}"
                );
            }
        }
    }
}

#[test]
fn kernel_matches_oracle_on_tpch() {
    run_dataset(DatasetKind::Tpch, 0xC0DE1);
}

#[test]
fn kernel_matches_oracle_on_mimic() {
    run_dataset(DatasetKind::Mimic, 0xC0DE2);
}

#[test]
fn kernel_matches_oracle_on_pte() {
    run_dataset(DatasetKind::Pte, 0xC0DE3);
}

#[test]
fn kernel_matches_oracle_on_ptc() {
    run_dataset(DatasetKind::Ptc, 0xC0DE4);
}

/// After random delta rounds, verdicts computed on the *patched*
/// partitions (the exact objects the incremental engine revalidates
/// against) still match the from-scratch oracle on the post-delta
/// relation — including when the check is restricted to the round's
/// dirty classes, which is the complete-check contract revalidation
/// relies on.
#[test]
fn kernel_matches_oracle_on_patched_partitions_across_delta_rounds() {
    let db = DatasetKind::Tpch.generate(Scale::of(0.004));
    let mut rng = StdRng::seed_from_u64(0xC0DE5);
    for name in ["supplier", "customer", "nation"] {
        let rel = db.expect(name);
        let sets: Vec<AttrSet> = probe_sets(&mut rng, rel)
            .into_iter()
            .filter(|s| !s.is_empty())
            .collect();
        let mut current = rel.clone();
        let mut plis: Vec<Pli> = sets.iter().map(|&s| Pli::for_set(&current, s)).collect();
        for round in 0..4 {
            let n = current.nrows();
            let deletes = rng.gen_range(0..=(n / 8).max(1));
            let inserts = rng.gen_range(0..=(n / 8).max(2));
            let batch = random_delta(&mut rng, &current, deletes, inserts);
            let (next, applied) = current.apply_delta(&batch, current.name.clone());
            for (i, &set) in sets.iter().enumerate() {
                let was_valid: Vec<bool> = (0..next.ncols())
                    .map(|rhs| {
                        !set.contains(rhs)
                            && plis[i].refines_with(&current.column(rhs).codes).holds()
                    })
                    .collect();
                let (patched, dirty) = plis[i].apply_delta_tracked(&next, set, &applied);
                for (rhs, &held_before) in was_valid.iter().enumerate() {
                    if set.contains(rhs) {
                        continue;
                    }
                    let ctx = format!("{name} round {round}");
                    assert_verdict_matches(&next, &patched, set, rhs, &ctx);
                    // Dirty-class-restricted revalidation: complete for
                    // FDs that held before an insert batch (the engine's
                    // contract; deletes never break FDs).
                    if held_before && applied.num_deleted() == 0 {
                        let restricted = patched.refines_on(dirty.risky(), &next.column(rhs).codes);
                        let full = patched.refines_with(&next.column(rhs).codes);
                        assert_eq!(
                            restricted.holds(),
                            full.holds(),
                            "{ctx}: dirty-restricted check incomplete for {set:?} → {rhs}"
                        );
                    }
                }
                plis[i] = patched;
            }
            current = next;
        }
    }
}
