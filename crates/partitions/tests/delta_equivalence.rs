//! Property test (satellite of the incremental-maintenance PR): for
//! randomized delta batches against datagen tables, the patched partition
//! [`Pli::apply_delta`] must equal [`Pli::for_set`] rebuilt from scratch —
//! classes (including order), `distinct_count`, and `key_error` — across
//! single attributes, composite sets, the empty set, and chained batches.

use infine_datagen::{random_delta, DatasetKind, Scale};
use infine_partitions::Pli;
use infine_relation::{AttrSet, Relation};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Attribute sets probed per table: ∅, every singleton, a few random
/// pairs and triples.
fn probe_sets(rng: &mut StdRng, rel: &Relation) -> Vec<AttrSet> {
    let n = rel.ncols();
    let mut sets = vec![AttrSet::EMPTY];
    sets.extend((0..n).map(AttrSet::single));
    for _ in 0..4 {
        let a = rng.gen_range(0..n);
        let b = rng.gen_range(0..n);
        sets.push(AttrSet::single(a).with(b));
    }
    for _ in 0..3 {
        let a = rng.gen_range(0..n);
        let b = rng.gen_range(0..n);
        let c = rng.gen_range(0..n);
        sets.push(AttrSet::single(a).with(b).with(c));
    }
    sets.dedup();
    sets
}

fn assert_patched_equals_rebuilt(rel: &Relation, rng: &mut StdRng, rounds: usize) {
    let sets = probe_sets(rng, rel);
    let mut current = rel.clone();
    let mut plis: Vec<Pli> = sets.iter().map(|&s| Pli::for_set(&current, s)).collect();
    for round in 0..rounds {
        let n = current.nrows();
        let deletes = rng.gen_range(0..=(n / 10).max(1));
        let inserts = rng.gen_range(0..=(n / 10).max(2));
        let batch = random_delta(rng, &current, deletes, inserts);
        let (next, applied) = current.apply_delta(&batch, current.name.clone());
        for (i, &set) in sets.iter().enumerate() {
            let (patched, dirty) = plis[i].apply_delta_tracked(&next, set, &applied);
            let rebuilt = Pli::for_set(&next, set);
            assert_eq!(
                patched, rebuilt,
                "{}: patched ≠ rebuilt for {set:?} at round {round}",
                rel.name
            );
            assert_eq!(patched.distinct_count(), rebuilt.distinct_count());
            assert_eq!(patched.key_error(), rebuilt.key_error());
            // every dirty index addresses a real class
            for &ci in dirty.risky() {
                assert!(ci < patched.num_classes());
            }
            plis[i] = patched;
        }
        current = next;
    }
}

fn run_dataset(kind: DatasetKind, seed: u64) {
    let db = kind.generate(Scale::of(0.005));
    let mut rng = StdRng::seed_from_u64(seed);
    let mut names: Vec<&str> = db.names().collect();
    names.sort_unstable();
    for name in names {
        let rel = db.expect(name);
        if rel.nrows() == 0 {
            continue;
        }
        assert_patched_equals_rebuilt(rel, &mut rng, 3);
    }
}

#[test]
fn tpch_tables_patch_exactly() {
    run_dataset(DatasetKind::Tpch, 0xA11CE);
}

#[test]
fn mimic_tables_patch_exactly() {
    run_dataset(DatasetKind::Mimic, 0xB0B);
}

#[test]
fn pte_tables_patch_exactly() {
    run_dataset(DatasetKind::Pte, 0xCAFE);
}

#[test]
fn ptc_tables_patch_exactly() {
    run_dataset(DatasetKind::Ptc, 0xD00D);
}

#[test]
fn delete_only_and_insert_only_extremes() {
    let db = DatasetKind::Tpch.generate(Scale::of(0.003));
    let rel = db.expect("nation");
    let mut rng = StdRng::seed_from_u64(42);
    let set: AttrSet = [0usize, 2].into_iter().collect();
    let before = Pli::for_set(rel, set);

    // delete-only
    let mut batch = random_delta(&mut rng, rel, rel.nrows() / 3, 0);
    batch.inserts.clear();
    let (after, applied) = rel.apply_delta(&batch, "nation");
    assert_eq!(
        before.apply_delta(&after, set, &applied),
        Pli::for_set(&after, set)
    );

    // insert-only
    let batch = random_delta(&mut rng, rel, 0, rel.nrows() / 2);
    let (after, applied) = rel.apply_delta(&batch, "nation");
    assert_eq!(
        before.apply_delta(&after, set, &applied),
        Pli::for_set(&after, set)
    );

    // delete everything
    let mut batch = infine_relation::DeltaBatch::new();
    for r in 0..rel.nrows() as u32 {
        batch.delete(r);
    }
    let (after, applied) = rel.apply_delta(&batch, "nation");
    let patched = before.apply_delta(&after, set, &applied);
    assert_eq!(patched, Pli::for_set(&after, set));
    assert_eq!(patched.num_classes(), 0);
}
