//! Property test (satellite of the CSR-partition PR): the flat CSR
//! [`Pli`] must be indistinguishable from the legacy nested-class
//! construction it replaced — on datagen relations, through product
//! chains, and across randomized delta rounds. The legacy implementations
//! live in [`infine_partitions::legacy`] and exist only for this suite.

use infine_datagen::{random_delta, DatasetKind, Scale};
use infine_partitions::{legacy, IntersectScratch, Pli};
use infine_relation::{AttrSet, Relation};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Attribute sets probed per table: ∅, every singleton, random pairs and
/// triples.
fn probe_sets(rng: &mut StdRng, rel: &Relation) -> Vec<AttrSet> {
    let n = rel.ncols();
    let mut sets = vec![AttrSet::EMPTY];
    sets.extend((0..n).map(AttrSet::single));
    for _ in 0..4 {
        let a = rng.gen_range(0..n);
        let b = rng.gen_range(0..n);
        sets.push(AttrSet::single(a).with(b));
    }
    for _ in 0..3 {
        let a = rng.gen_range(0..n);
        let b = rng.gen_range(0..n);
        let c = rng.gen_range(0..n);
        sets.push(AttrSet::single(a).with(b).with(c));
    }
    sets.dedup();
    sets
}

fn assert_csr_equals_legacy(rel: &Relation, rng: &mut StdRng) {
    let mut scratch = IntersectScratch::new();
    for set in probe_sets(rng, rel) {
        let fast = Pli::for_set_with(rel, set, &mut scratch);
        let oracle = legacy::for_set_grouped(rel, set);
        assert_eq!(fast, oracle, "{}: CSR ≠ legacy for {set:?}", rel.name);
        assert_eq!(fast.distinct_count(), oracle.distinct_count());
        assert_eq!(fast.sum_class_sizes(), oracle.sum_class_sizes());
    }
    // Product chains: the scratch kernel against the nested-bucket oracle.
    for _ in 0..4 {
        let a = rng.gen_range(0..rel.ncols());
        let b = rng.gen_range(0..rel.ncols());
        let pa = Pli::for_attr(rel, a);
        let pb = Pli::for_attr(rel, b);
        assert_eq!(
            pa.intersect_with(&pb, &mut scratch),
            legacy::intersect_nested(&pa, &pb),
            "{}: product {a}∩{b}",
            rel.name
        );
    }
    for a in 0..rel.ncols() {
        assert_eq!(
            Pli::for_attr(rel, a),
            legacy::for_attr_nested(rel, a),
            "{}: attr {a}",
            rel.name
        );
    }
}

fn run_dataset(kind: DatasetKind, seed: u64) {
    let db = kind.generate(Scale::of(0.005));
    let mut rng = StdRng::seed_from_u64(seed);
    let mut names: Vec<&str> = db.names().collect();
    names.sort_unstable();
    for name in names {
        let rel = db.expect(name);
        if rel.nrows() == 0 {
            continue;
        }
        assert_csr_equals_legacy(rel, &mut rng);
    }
}

#[test]
fn tpch_tables_match_legacy() {
    run_dataset(DatasetKind::Tpch, 0x15A);
}

#[test]
fn mimic_tables_match_legacy() {
    run_dataset(DatasetKind::Mimic, 0x2B2);
}

#[test]
fn pte_tables_match_legacy() {
    run_dataset(DatasetKind::Pte, 0x3C3);
}

#[test]
fn ptc_tables_match_legacy() {
    run_dataset(DatasetKind::Ptc, 0x4D4);
}

/// After random delta rounds, the *patched* CSR partition still equals the
/// legacy construction over the post-delta relation — the CSR patch path
/// and the nested oracle agree on every intermediate version.
#[test]
fn patched_csr_matches_legacy_across_delta_rounds() {
    let db = DatasetKind::Tpch.generate(Scale::of(0.004));
    let mut rng = StdRng::seed_from_u64(0xDE17A2);
    for name in ["supplier", "customer", "nation"] {
        let rel = db.expect(name);
        let sets = probe_sets(&mut rng, rel);
        let mut current = rel.clone();
        let mut plis: Vec<Pli> = sets.iter().map(|&s| Pli::for_set(&current, s)).collect();
        for round in 0..4 {
            let n = current.nrows();
            let deletes = rng.gen_range(0..=(n / 8).max(1));
            let inserts = rng.gen_range(0..=(n / 8).max(2));
            let batch = random_delta(&mut rng, &current, deletes, inserts);
            let (next, applied) = current.apply_delta(&batch, current.name.clone());
            for (i, &set) in sets.iter().enumerate() {
                let patched = plis[i].apply_delta(&next, set, &applied);
                assert_eq!(
                    patched,
                    legacy::for_set_grouped(&next, set),
                    "{name}: patched CSR ≠ legacy for {set:?} at round {round}"
                );
                plis[i] = patched;
            }
            current = next;
        }
    }
}
