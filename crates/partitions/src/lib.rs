//! # infine-partitions
//!
//! Stripped-partition (position list index) machinery shared by every FD
//! miner in the workspace: partition construction, the TANE partition
//! product, key error `e(X)`, the `g3` approximate-FD error, and a
//! memoizing per-relation partition cache.
//!
//! ## Layout and allocation contract
//!
//! Partitions are stored CSR-flat ([`Pli`] is an `offsets`/`rows` pair,
//! not nested vectors), and every grouping kernel runs through a
//! reusable [`IntersectScratch`] — one partition product performs zero
//! allocations beyond its two exact-size output arrays. [`PliCache`]
//! owns a scratch and threads it through all derivations, and can
//! [`PliCache::prefetch`] a whole lattice level in parallel on the
//! `infine-exec` pool with byte-identical results to sequential
//! computation. The pre-CSR nested representation lives on in
//! [`legacy`] purely as the property-test oracle.
//!
//! ## Counting-only validation
//!
//! Checking an FD does **not** require the product partition: the
//! [`validate`] kernel answers "does refining `π_X` by `a` split a
//! class?" with one early-exiting scan of `π_X` against a packed probe
//! ([`Pli::refines_with`]), and [`PliCache::check`] routes validity
//! queries through it without ever inserting `π_{X∪a}` into the cache.
//! Products are materialized only where a child partition is genuinely
//! needed (lattice descent, prefetch).

pub mod cache;
pub mod delta;
pub mod legacy;
pub mod pli;
pub mod validate;

pub use cache::PliCache;
pub use delta::{rebase_plis, DirtyClasses, RebaseStats};
pub use pli::{fd_holds, fd_holds_bruteforce, IntersectScratch, Pli};
pub use validate::{
    join_probe_counters, join_probe_counters_in, kernel_counters, kernel_counters_in,
    reset_join_probe_counters, reset_kernel_counters, JoinProbe, JoinProbeCounters, KernelCounters,
    ProbeSink, Verdict,
};
