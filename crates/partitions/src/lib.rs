//! # infine-partitions
//!
//! Stripped-partition (position list index) machinery shared by every FD
//! miner in the workspace: partition construction, the TANE partition
//! product, key error `e(X)`, the `g3` approximate-FD error, and a
//! memoizing per-relation partition cache.

pub mod cache;
pub mod delta;
pub mod pli;

pub use cache::PliCache;
pub use delta::{rebase_plis, DirtyClasses, RebaseStats};
pub use pli::{fd_holds, fd_holds_bruteforce, Pli};
