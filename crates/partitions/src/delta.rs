//! Incremental PLI maintenance.
//!
//! Given `π_X` over a relation and the [`AppliedDelta`] of a
//! [`DeltaBatch`](infine_relation::DeltaBatch), [`Pli::apply_delta`]
//! patches the partition instead of regrouping every row:
//!
//! * **Deletes** are a pure remap: each class drops its dead members and
//!   classes collapsing below size 2 are stripped. No hashing happens.
//! * **Inserts** hash only the *delta* rows, then look for partners among
//!   existing classes (one representative key each), rows loosened from
//!   collapsed classes, and surviving old singletons. Because surviving
//!   rows keep their dictionary codes, all keys are read off the new
//!   relation directly.
//!
//! Cost: `O(old_rows)` for the remap plus `O((|Δ| + classes + singletons)
//! · |X|)` hashing — but the singleton scan runs *only when the batch
//! inserts rows* (deletes can never merge two old rows into one class:
//! their keys were distinct before and codes never change). A full
//! rebuild by [`Pli::for_set`] hashes all rows unconditionally.
//!
//! The returned [`DirtyClasses`] names the classes of the *new* partition
//! that the delta touched. Downstream FD revalidation exploits it: an FD
//! `X → a` valid before the batch can only break inside a dirty class of
//! `π_X`, so checking constancy of `a` over the dirty classes alone is a
//! complete validity test (see [`Pli::constant_on`]).

use crate::pli::Pli;
use infine_relation::{AppliedDelta, AttrId, AttrSet, Relation};
use std::collections::HashMap;

/// Which classes of a patched partition the delta touched, plus patch
/// accounting — the "dirty-class tracker" consumed by revalidation and
/// surfaced in maintenance reports.
#[derive(Debug, Clone, Default)]
pub struct DirtyClasses {
    /// Indices (into the new partition's classes) of classes whose
    /// membership changed: shrunk survivors, insert-grown classes, and
    /// classes created by inserts.
    pub dirty: Vec<usize>,
    /// Classes that survived with some members deleted.
    pub shrunk: usize,
    /// Classes extended with inserted rows.
    pub grown: usize,
    /// Classes newly created by inserts (including singleton promotions).
    pub created: usize,
    /// Old classes that vanished (collapsed below two members).
    pub dropped: usize,
}

impl DirtyClasses {
    /// Indices of classes where an FD valid before the batch could have
    /// broken. This is a conservative superset — all touched classes,
    /// including shrunk ones (which can only *lose* violations) — so a
    /// revalidation restricted to it is complete, at the price of
    /// rescanning shrunk classes on mixed batches.
    pub fn risky(&self) -> &[usize] {
        &self.dirty
    }

    /// Total classes touched.
    pub fn touched(&self) -> usize {
        self.dirty.len()
    }
}

impl Pli {
    /// Patch `self = π_set` (over the pre-batch relation) into the
    /// partition over `new_rel`, the relation produced by
    /// [`Relation::apply_delta`](infine_relation::Relation::apply_delta).
    ///
    /// Equivalent to `Pli::for_set(new_rel, set)` — the property tests
    /// assert exact equality including class order — but does delta-local
    /// work instead of regrouping every row. Repeated callers should use
    /// the consuming [`Pli::apply_delta_owned`] (as [`rebase_plis`] does),
    /// which compacts the flat CSR row buffer in place instead of cloning
    /// it first.
    pub fn apply_delta(&self, new_rel: &Relation, set: AttrSet, applied: &AppliedDelta) -> Pli {
        self.clone().apply_delta_owned(new_rel, set, applied).0
    }

    /// [`Pli::apply_delta`] variant also reporting which classes changed.
    pub fn apply_delta_tracked(
        &self,
        new_rel: &Relation,
        set: AttrSet,
        applied: &AppliedDelta,
    ) -> (Pli, DirtyClasses) {
        self.clone().apply_delta_owned(new_rel, set, applied)
    }

    /// Consuming patch: the flat CSR row buffer is compacted in place
    /// (the row-id remap is monotone, so ascending member order survives
    /// without re-sorting), and delete-free batches skip the remap pass
    /// entirely.
    pub fn apply_delta_owned(
        self,
        new_rel: &Relation,
        set: AttrSet,
        applied: &AppliedDelta,
    ) -> (Pli, DirtyClasses) {
        debug_assert_eq!(self.nrows(), applied.old_nrows, "PLI/delta row mismatch");

        // π_∅ is a single class of all live rows; patching it is just
        // rebuilding from the (possibly tombstoned) new relation.
        if set.is_empty() {
            let mut stats = DirtyClasses::default();
            let pli = Pli::for_empty_over(new_rel);
            let changed = applied.num_deleted() > 0 || applied.num_inserted() > 0;
            if changed && pli.num_classes() > 0 {
                stats.dirty.push(0);
                stats.grown += usize::from(applied.num_inserted() > 0);
                stats.shrunk += usize::from(applied.num_deleted() > 0);
            }
            return (pli, stats);
        }

        let live = |row: u32| new_rel.is_live(row as usize);
        if set.len() == 1 {
            let attr = set.first().expect("len 1");
            let codes = &new_rel.column(attr).codes;
            patch_csr(self, applied, |row| codes[row as usize], live)
        } else {
            let attrs: Vec<AttrId> = set.iter().collect();
            patch_csr(
                self,
                applied,
                |row| {
                    attrs
                        .iter()
                        .map(|&a| new_rel.code(row as usize, a))
                        .collect::<Vec<u32>>()
                },
                live,
            )
        }
    }

    /// Is `attr` constant within every listed class? With `classes` = the
    /// dirty classes of a patched `π_X`, this is a complete validity check
    /// for an FD `X → attr` that held before the batch (violations can
    /// only appear where rows were added). Runs on the counting kernel
    /// ([`Pli::refines_on`]) — hoisted code column, unrolled early-exit
    /// scan.
    pub fn constant_on(&self, rel: &Relation, attr: AttrId, classes: &[usize]) -> bool {
        self.refines_on(classes, &rel.column(attr).codes).holds()
    }

    /// Is `attr` constant within every class (full validity check for
    /// `X → attr` given `self = π_X`, without building `π_{X∪attr}`)?
    /// Kernel-backed like [`Pli::constant_on`].
    pub fn refines_attr(&self, rel: &Relation, attr: AttrId) -> bool {
        self.refines_with(&rel.column(attr).codes).holds()
    }
}

/// Shared patching core, generic over the row-key type (a bare `u32`
/// dictionary code for single attributes, a code vector otherwise).
///
/// Works directly on the consumed partition's flat CSR buffers: deletes
/// are one in-place compaction pass over the `rows` array (the remap is
/// monotone, so member order survives and no re-sort per class is
/// needed); inserts hash only the delta rows. Partners among existing
/// classes are found via one representative key per class, and the
/// surviving-singleton scan (the only whole-relation key pass) runs just
/// when unmatched insert groups remain. The final partition is assembled
/// with exactly two allocations (offsets + rows) — the nested
/// representation allocated per class here.
fn patch_csr<K: std::hash::Hash + Eq>(
    pli: Pli,
    applied: &AppliedDelta,
    key_of: impl Fn(u32) -> K,
    live: impl Fn(u32) -> bool,
) -> (Pli, DirtyClasses) {
    let mut stats = DirtyClasses::default();
    let has_deletes = applied.num_deleted() > 0;
    let has_inserts = applied.num_inserted() > 0;
    let old_nrows = applied.old_nrows;

    // Only the singleton-partner search needs to know which old rows sat
    // in classes; skip the bookkeeping otherwise.
    let mut in_class = if has_inserts {
        Some(vec![false; old_nrows])
    } else {
        None
    };

    // ---- delete pass: compact the flat rows array in place ----
    let (old_offsets, mut rows, _) = pli.into_raw();
    let nclasses = old_offsets.len() - 1;
    // Survivor descriptors: (start, len, changed) into the compacted rows.
    let mut desc: Vec<(u32, u32, bool)> = Vec::with_capacity(nclasses);
    let mut loose: Vec<u32> = Vec::new();
    let mut w: usize = 0;
    for ci in 0..nclasses {
        let (s, e) = (old_offsets[ci] as usize, old_offsets[ci + 1] as usize);
        if let Some(ic) = in_class.as_mut() {
            // Read the pre-remap ids before the compaction cursor (which
            // never passes the read cursor) can overwrite them.
            for &row in &rows[s..e] {
                ic[row as usize] = true;
            }
        }
        let start = w;
        if has_deletes {
            for i in s..e {
                if let Some(new_id) = applied.remap[rows[i] as usize] {
                    rows[w] = new_id;
                    w += 1;
                }
            }
        } else {
            debug_assert_eq!(w, s, "no deletes: classes cannot shrink");
            w = e;
        }
        let len = w - start;
        let changed = has_deletes && len != e - s;
        match len {
            0 => stats.dropped += 1,
            1 => {
                stats.dropped += 1;
                loose.push(rows[start]);
                w = start; // drop the loose row from the survivor buffer
            }
            _ => {
                if changed {
                    stats.shrunk += 1;
                }
                desc.push((start as u32, len as u32, changed));
            }
        }
    }
    rows.truncate(w);

    // ---- insert pass: hash only the delta rows ----
    let mut extras: HashMap<u32, Vec<u32>> = HashMap::new();
    let mut created: Vec<Vec<u32>> = Vec::new();
    if has_inserts {
        let mut groups: HashMap<K, Vec<u32>> = HashMap::new();
        for new_id in applied.first_inserted..applied.new_nrows as u32 {
            groups.entry(key_of(new_id)).or_default().push(new_id);
        }
        for (di, (start, _, changed)) in desc.iter_mut().enumerate() {
            if groups.is_empty() {
                break;
            }
            if let Some(extra) = groups.remove(&key_of(rows[*start as usize])) {
                // Inserted ids exceed every survivor id and arrive in
                // ascending order, so appending keeps the class sorted.
                extras.insert(di as u32, extra);
                *changed = true;
                stats.grown += 1;
            }
        }
        if !groups.is_empty() {
            // Surviving rows outside every class have pairwise-distinct
            // keys (they were singletons, or sole survivors of distinct
            // classes), so each can join at most one insert group.
            let in_class = in_class.as_ref().expect("built when inserts exist");
            // Tombstoned applies map rows dead *before* the batch to
            // Some(id) too (no structure references them) — the liveness
            // filter keeps them out of the partner pool.
            let singleton_partners = loose
                .iter()
                .copied()
                .chain((0..old_nrows).filter_map(|old| {
                    if in_class[old] {
                        None
                    } else {
                        applied.remap[old]
                    }
                }))
                .filter(|&row| live(row));
            for row in singleton_partners {
                if groups.is_empty() {
                    break;
                }
                if let Some(members) = groups.get_mut(&key_of(row)) {
                    members.push(row);
                }
            }
            for (_, mut members) in groups.drain() {
                if members.len() >= 2 {
                    stats.created += 1;
                    // A singleton partner (an old row id) was pushed last;
                    // restore ascending order.
                    members.sort_unstable();
                    created.push(members);
                }
            }
        }
    }

    // ---- assemble the patched CSR ----
    // Canonical class order is by first member. Growth never changes a
    // class's first member, so a re-sort is only needed when deletes may
    // have removed first members or fresh classes were appended. Only the
    // (small) descriptor list is sorted — never the row data.
    let created_any = !created.is_empty();
    let mut order: Vec<(u32, u32)> = Vec::with_capacity(desc.len() + created.len());
    for (di, &(start, _, _)) in desc.iter().enumerate() {
        order.push((rows[start as usize], di as u32));
    }
    for (ni, members) in created.iter().enumerate() {
        order.push((members[0], (desc.len() + ni) as u32));
    }
    if has_deletes || created_any {
        order.sort_unstable_by_key(|&(first, _)| first);
    }
    let total = rows.len()
        + extras.values().map(Vec::len).sum::<usize>()
        + created.iter().map(Vec::len).sum::<usize>();
    let mut out_offsets: Vec<u32> = Vec::with_capacity(order.len() + 1);
    let mut out_rows: Vec<u32> = Vec::with_capacity(total);
    out_offsets.push(0);
    for &(_, code) in &order {
        let changed = if (code as usize) < desc.len() {
            let (start, len, changed) = desc[code as usize];
            out_rows.extend_from_slice(&rows[start as usize..(start + len) as usize]);
            if let Some(extra) = extras.get(&code) {
                out_rows.extend_from_slice(extra);
            }
            changed
        } else {
            out_rows.extend_from_slice(&created[code as usize - desc.len()]);
            true
        };
        if changed {
            stats.dirty.push(out_offsets.len() - 1);
        }
        out_offsets.push(out_rows.len() as u32);
    }
    (
        Pli::from_raw(out_offsets, out_rows, applied.new_nrows),
        stats,
    )
}

/// Accounting for one [`rebase_plis`] call.
#[derive(Debug, Clone, Copy, Default)]
pub struct RebaseStats {
    /// Partitions patched through [`Pli::apply_delta`].
    pub patched: usize,
    /// Partitions evicted by the keep predicate (they will be recomputed
    /// on demand from the patched singletons).
    pub evicted: usize,
    /// Sum of dirty classes across all patched partitions.
    pub dirty_classes: usize,
}

/// Carry a set of cached partitions across a relation version change:
/// entries passing `keep` are patched via [`Pli::apply_delta_tracked`],
/// the rest are evicted. This is the cache eviction hook the maintenance
/// engine drives between delta batches — pair with
/// [`PliCache::into_map`](crate::PliCache::into_map) /
/// [`PliCache::from_map`](crate::PliCache::from_map).
pub fn rebase_plis(
    plis: HashMap<AttrSet, Pli>,
    new_rel: &Relation,
    applied: &AppliedDelta,
    mut keep: impl FnMut(AttrSet) -> bool,
) -> (
    HashMap<AttrSet, Pli>,
    HashMap<AttrSet, DirtyClasses>,
    RebaseStats,
) {
    let mut out = HashMap::with_capacity(plis.len());
    let mut dirty = HashMap::new();
    let mut stats = RebaseStats::default();
    for (set, pli) in plis {
        if keep(set) {
            let (patched, d) = pli.apply_delta_owned(new_rel, set, applied);
            stats.patched += 1;
            stats.dirty_classes += d.touched();
            dirty.insert(set, d);
            out.insert(set, patched);
        } else {
            stats.evicted += 1;
        }
    }
    (out, dirty, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use infine_relation::{relation_from_rows, DeltaBatch, Value};

    fn rel() -> Relation {
        // a b
        // 1 x
        // 1 x
        // 2 y
        // 2 z
        // 3 z
        // 4 w
        relation_from_rows(
            "t",
            &["a", "b"],
            &[
                &[Value::Int(1), Value::str("x")],
                &[Value::Int(1), Value::str("x")],
                &[Value::Int(2), Value::str("y")],
                &[Value::Int(2), Value::str("z")],
                &[Value::Int(3), Value::str("z")],
                &[Value::Int(4), Value::str("w")],
            ],
        )
    }

    fn check(set: AttrSet, batch: &DeltaBatch) -> DirtyClasses {
        let r = rel();
        let before = Pli::for_set(&r, set);
        let (r2, applied) = r.apply_delta(batch, "t'");
        let (patched, dirty) = before.apply_delta_tracked(&r2, set, &applied);
        let rebuilt = Pli::for_set(&r2, set);
        assert_eq!(patched, rebuilt, "patched ≠ rebuilt for {set:?}");
        assert_eq!(patched.distinct_count(), rebuilt.distinct_count());
        assert_eq!(patched.key_error(), rebuilt.key_error());
        dirty
    }

    #[test]
    fn delete_shrinks_and_collapses_classes() {
        let mut b = DeltaBatch::new();
        b.delete(0).delete(3);
        // a: {0,1} loses 0 → collapses; {2,3} loses 3 → collapses
        let d = check(AttrSet::single(0), &b);
        assert_eq!(d.dropped, 2);
        assert_eq!(d.touched(), 0);
    }

    #[test]
    fn insert_grows_existing_class() {
        let mut b = DeltaBatch::new();
        b.insert(vec![Value::Int(1), Value::str("q")]);
        let d = check(AttrSet::single(0), &b);
        assert_eq!(d.grown, 1);
        assert_eq!(d.created, 0);
        assert_eq!(d.touched(), 1);
    }

    #[test]
    fn insert_promotes_singleton_to_class() {
        let mut b = DeltaBatch::new();
        b.insert(vec![Value::Int(3), Value::str("q")]); // row 4 was a singleton on a
        let d = check(AttrSet::single(0), &b);
        assert_eq!(d.created, 1);
    }

    #[test]
    fn insert_pairs_with_loosened_row() {
        let mut b = DeltaBatch::new();
        // collapse {0,1} to row 1, then re-pair row 1 with an insert
        b.delete(0).insert(vec![Value::Int(1), Value::str("k")]);
        let d = check(AttrSet::single(0), &b);
        assert!(d.created >= 1);
    }

    #[test]
    fn fresh_value_forms_new_class_only_among_inserts() {
        let mut b = DeltaBatch::new();
        b.insert(vec![Value::Int(9), Value::str("n")]);
        b.insert(vec![Value::Int(9), Value::str("m")]);
        let d = check(AttrSet::single(0), &b);
        assert_eq!(d.created, 1);
    }

    #[test]
    fn composite_set_patches_exactly() {
        let mut b = DeltaBatch::new();
        b.delete(2)
            .insert(vec![Value::Int(2), Value::str("z")])
            .insert(vec![Value::Int(1), Value::str("x")]);
        check([0usize, 1].into_iter().collect(), &b);
    }

    #[test]
    fn empty_set_partition_resizes() {
        let mut b = DeltaBatch::new();
        b.delete(0).insert(vec![Value::Int(8), Value::str("u")]);
        check(AttrSet::EMPTY, &b);
    }

    #[test]
    fn chained_batches_stay_exact() {
        let mut r = rel();
        let set: AttrSet = [0usize, 1].into_iter().collect();
        let mut pli = Pli::for_set(&r, set);
        let batches = [
            {
                let mut b = DeltaBatch::new();
                b.delete(1).insert(vec![Value::Int(5), Value::str("x")]);
                b
            },
            {
                let mut b = DeltaBatch::new();
                b.insert(vec![Value::Int(5), Value::str("x")]).delete(0);
                b
            },
            {
                let mut b = DeltaBatch::new();
                b.delete(0).delete(1).delete(2);
                b
            },
        ];
        for batch in batches {
            let (r2, applied) = r.apply_delta(&batch, "t'");
            pli = pli.apply_delta(&r2, set, &applied);
            assert_eq!(pli, Pli::for_set(&r2, set));
            r = r2;
        }
    }

    #[test]
    fn constant_on_detects_violations_in_dirty_classes() {
        let r = rel();
        let pa = Pli::for_attr(&r, 0);
        // b is constant within a=1's class {0,1} (both "x"), not within
        // a=2's class {2,3} ("y" vs "z").
        assert!(pa.constant_on(&r, 1, &[0]));
        assert!(!pa.constant_on(&r, 1, &[1]));
        assert!(!pa.refines_attr(&r, 1));
    }

    #[test]
    fn refines_attr_agrees_with_distinct_count_check() {
        let r = rel();
        for lhs in 0..2usize {
            for rhs in 0..2usize {
                if lhs == rhs {
                    continue;
                }
                let p = Pli::for_attr(&r, lhs);
                let both = Pli::for_set(&r, [lhs, rhs].into_iter().collect());
                assert_eq!(p.refines_attr(&r, rhs), p.refines_to(&both));
            }
        }
    }

    #[test]
    fn rebase_patches_kept_and_evicts_rest() {
        use crate::PliCache;
        let r = rel();
        let keep_set: AttrSet = [0usize, 1].into_iter().collect();
        let mut cache = PliCache::new(&r);
        cache.get(keep_set);
        cache.get(AttrSet::single(0).with(1).without(1)); // a (already seeded)
        let map = cache.into_map();

        let mut b = DeltaBatch::new();
        b.delete(4).insert(vec![Value::Int(2), Value::str("z")]);
        let (r2, applied) = r.apply_delta(&b, "t'");
        let (map2, dirty, stats) =
            rebase_plis(map, &r2, &applied, |s| s.len() <= 1 || s == keep_set);
        assert!(stats.patched >= 3); // two singles + the pair
        assert_eq!(stats.evicted, 0);
        assert_eq!(map2[&keep_set], Pli::for_set(&r2, keep_set));
        assert!(dirty.contains_key(&keep_set));

        // The rebuilt cache serves patched partitions without recompute.
        let mut cache2 = PliCache::from_map(&r2, map2);
        let before_misses = cache2.stats().1;
        cache2.get(keep_set);
        assert_eq!(cache2.stats().1, before_misses);

        // Eviction path: drop everything non-singleton.
        let (map3, _, stats3) =
            rebase_plis(cache2.into_map(), &r2, &applied_noop(&r2), |s| s.len() <= 1);
        assert!(stats3.evicted >= 1);
        assert!(map3.keys().all(|s| s.len() <= 1));
    }

    /// Tombstoned rounds: patched partitions equal live-aware rebuilds,
    /// with physical ids stable across rounds, and after a vacuum the
    /// remap carries them onto the compact relation exactly.
    #[test]
    fn tombstoned_chain_patches_exactly_and_survives_vacuum() {
        use infine_relation::{DictIndexes, RowMap};
        let mut r = rel();
        let mut idx = DictIndexes::build(&r);
        let mut map = RowMap::identity(r.nrows());
        let sets: Vec<AttrSet> = vec![
            AttrSet::EMPTY,
            AttrSet::single(0),
            AttrSet::single(1),
            [0usize, 1].into_iter().collect(),
        ];
        let mut plis: Vec<Pli> = sets.iter().map(|&s| Pli::for_set(&r, s)).collect();

        let batches = [
            {
                let mut b = DeltaBatch::new();
                b.delete(1).insert(vec![Value::Int(5), Value::str("x")]);
                b
            },
            {
                let mut b = DeltaBatch::new();
                b.insert(vec![Value::Int(5), Value::str("x")]).delete(0);
                b
            },
            {
                let mut b = DeltaBatch::new();
                b.delete(0).delete(1).delete(2);
                b
            },
        ];
        for batch in batches {
            let phys = map.rebase_batch(&batch, r.nrows());
            let (r2, applied) = r.apply_delta_tombstoned(&phys, &batch.inserts, "t'", &mut idx);
            for (pli, &set) in plis.iter_mut().zip(&sets) {
                let patched = pli.apply_delta(&r2, set, &applied);
                assert_eq!(patched, Pli::for_set(&r2, set), "set {set:?}");
                // every member is live
                for class in patched.classes() {
                    assert!(class.iter().all(|&m| r2.is_live(m as usize)));
                }
                *pli = patched;
            }
            r = r2;
        }

        // Vacuum: the returned remap rebases every partition onto the
        // compact relation, equal to a from-scratch rebuild.
        let (v, applied) = r.vacuum();
        for (pli, &set) in plis.iter_mut().zip(&sets) {
            let rebased = pli.apply_delta(&v, set, &applied);
            assert_eq!(rebased, Pli::for_set(&v, set), "set {set:?} after vacuum");
        }
    }

    /// The counting kernel agrees with a compact-relation oracle through
    /// tombstones: check verdicts on the tombstoned relation equal the
    /// verdicts on the compacted equivalent.
    #[test]
    fn kernel_checks_skip_dead_rows() {
        use crate::PliCache;
        use infine_relation::DictIndexes;
        let r = rel();
        let mut idx = DictIndexes::build(&r);
        let mut b = DeltaBatch::new();
        // delete row 3 (a=2,b=z): afterwards a → b holds on live rows.
        b.delete(3).delete(4);
        let (t, _) = r
            .clone()
            .apply_delta_tombstoned(&b.deletes, &b.inserts, "t", &mut idx);
        let (compact, _) = r.apply_delta(&b, "t");
        let mut cache_t = PliCache::new(&t);
        let mut cache_c = PliCache::new(&compact);
        for lhs in [AttrSet::single(0), AttrSet::single(1)] {
            for rhs in 0..2usize {
                if lhs.contains(rhs) {
                    continue;
                }
                assert_eq!(
                    cache_t.check(lhs, rhs),
                    cache_c.check(lhs, rhs),
                    "lhs={lhs:?} rhs={rhs}"
                );
            }
        }
        // Dead rows never appear in any class.
        let pa = Pli::for_attr(&t, 0);
        for class in pa.classes() {
            assert!(class.iter().all(|&m| t.is_live(m as usize)));
        }
    }

    fn applied_noop(rel: &Relation) -> AppliedDelta {
        AppliedDelta {
            old_nrows: rel.nrows(),
            new_nrows: rel.nrows(),
            remap: (0..rel.nrows() as u32).map(Some).collect(),
            first_inserted: rel.nrows() as u32,
        }
    }
}
