//! Legacy nested-representation partition construction — the test oracle.
//!
//! Before the CSR refactor, partitions were `Vec<Vec<u32>>` (one heap
//! allocation per class), composite sets were grouped through a
//! `HashMap<Vec<u32>, Vec<u32>>` (one hashed key vector per row), and the
//! probe-vector product hashed per class into fresh bucket maps. These
//! reference implementations survive here verbatim so the property tests
//! can assert that the flat [`Pli`] produces *identical* canonical
//! partitions on arbitrary relations and after arbitrary delta rounds —
//! they are deliberately not reachable from any production path.

use crate::pli::Pli;
use infine_relation::{AttrId, AttrSet, Relation};
use std::collections::HashMap;

/// Composite-key grouping over the set's attributes, exactly as the
/// pre-CSR `Pli::for_set` did it: one `Vec<u32>` key per row, hashed.
pub fn for_set_grouped(rel: &Relation, set: AttrSet) -> Pli {
    let attrs: Vec<AttrId> = set.iter().collect();
    if attrs.is_empty() {
        let all: Vec<u32> = (0..rel.nrows() as u32).collect();
        let classes = if all.len() >= 2 {
            vec![all]
        } else {
            Vec::new()
        };
        return Pli::from_classes(classes, rel.nrows());
    }
    if attrs.len() == 1 {
        return for_attr_nested(rel, attrs[0]);
    }
    let mut groups: HashMap<Vec<u32>, Vec<u32>> = HashMap::new();
    for row in 0..rel.nrows() {
        let key: Vec<u32> = attrs.iter().map(|&a| rel.code(row, a)).collect();
        groups.entry(key).or_default().push(row as u32);
    }
    let mut classes: Vec<Vec<u32>> = groups.into_values().filter(|c| c.len() >= 2).collect();
    classes.sort_by_key(|c| c[0]);
    Pli::from_classes(classes, rel.nrows())
}

/// Single-attribute grouping through per-code buckets (the pre-CSR
/// `Pli::for_attr`).
pub fn for_attr_nested(rel: &Relation, attr: AttrId) -> Pli {
    let col = rel.column(attr);
    let mut buckets: Vec<Vec<u32>> = vec![Vec::new(); col.dict.len()];
    for (row, &code) in col.codes.iter().enumerate() {
        buckets[code as usize].push(row as u32);
    }
    let mut classes: Vec<Vec<u32>> = buckets.into_iter().filter(|c| c.len() >= 2).collect();
    classes.sort_unstable_by_key(|c| c[0]);
    Pli::from_classes(classes, rel.nrows())
}

/// Probe-vector product with per-class hash buckets (the pre-CSR
/// `Pli::intersect_probe`), probing the smaller side like the fast path.
pub fn intersect_nested(a: &Pli, b: &Pli) -> Pli {
    let (split, refine) = if b.sum_class_sizes() < a.sum_class_sizes() {
        (b, a)
    } else {
        (a, b)
    };
    let probe = refine.probe_vector();
    let mut classes = Vec::new();
    let mut groups: HashMap<u32, Vec<u32>> = HashMap::new();
    for class in split.classes() {
        groups.clear();
        for &row in class {
            let key = probe[row as usize];
            if key != u32::MAX {
                groups.entry(key).or_default().push(row);
            }
        }
        for (_, rows) in groups.drain() {
            if rows.len() >= 2 {
                classes.push(rows);
            }
        }
    }
    classes.sort_by_key(|c| c[0]);
    Pli::from_classes(classes, split.nrows())
}

#[cfg(test)]
mod tests {
    use super::*;
    use infine_relation::{relation_from_rows, Value};

    fn rel() -> Relation {
        relation_from_rows(
            "t",
            &["a", "b", "c"],
            &[
                &[Value::Int(1), Value::str("x"), Value::Int(0)],
                &[Value::Int(1), Value::str("x"), Value::Int(1)],
                &[Value::Int(2), Value::str("y"), Value::Int(0)],
                &[Value::Int(2), Value::str("z"), Value::Int(0)],
                &[Value::Int(3), Value::str("z"), Value::Int(1)],
            ],
        )
    }

    #[test]
    fn oracle_agrees_with_fast_path_on_all_subsets() {
        let r = rel();
        for bits in 0u64..8 {
            let set = AttrSet::from_bits(bits);
            assert_eq!(
                for_set_grouped(&r, set),
                Pli::for_set(&r, set),
                "set {set:?}"
            );
        }
    }

    #[test]
    fn nested_intersect_agrees_with_scratch_kernel() {
        let r = rel();
        for i in 0..3usize {
            for j in 0..3usize {
                if i == j {
                    continue;
                }
                let a = Pli::for_attr(&r, i);
                let b = Pli::for_attr(&r, j);
                assert_eq!(intersect_nested(&a, &b), a.intersect(&b), "{i},{j}");
            }
        }
    }
}
