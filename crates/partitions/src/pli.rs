//! Stripped partitions (position list indexes, PLIs).
//!
//! The partition `π_X` of a relation under an attribute set `X` groups
//! rows agreeing on all attributes of `X`. A *stripped* partition drops
//! singleton classes (they can never witness an FD violation), which is
//! the representation TANE introduced and every level-wise miner here
//! uses. Products of partitions (`π_X ∩ π_Y = π_{X∪Y}`) are computed with
//! the classic probe-vector algorithm.
//!
//! With the `NULL = NULL` convention of `infine-relation`, nulls are just
//! another dictionary code, so no special casing is needed anywhere.

use infine_relation::{AttrId, AttrSet, Relation};
use std::collections::HashMap;

/// A stripped partition over the rows of a relation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Pli {
    /// Equivalence classes of size ≥ 2; row ids in ascending order within
    /// a class (construction order, stable for tests).
    classes: Vec<Vec<u32>>,
    /// Total number of rows of the underlying relation.
    nrows: usize,
}

impl Pli {
    /// Partition of a single attribute, grouped by dictionary code.
    pub fn for_attr(rel: &Relation, attr: AttrId) -> Pli {
        let col = rel.column(attr);
        let mut buckets: Vec<Vec<u32>> = vec![Vec::new(); col.dict.len()];
        for (row, &code) in col.codes.iter().enumerate() {
            buckets[code as usize].push(row as u32);
        }
        let mut classes: Vec<Vec<u32>> = buckets.into_iter().filter(|c| c.len() >= 2).collect();
        // Canonical class order is by first member, like every other
        // constructor. Code order only coincides with it until a delta
        // removes a value's first occurrence (dictionaries are append-only
        // across `Relation::apply_delta`), so normalize here — the sort is
        // adaptive and near-free on freshly encoded relations.
        classes.sort_unstable_by_key(|c| c[0]);
        Pli {
            classes,
            nrows: rel.nrows(),
        }
    }

    /// Partition of an arbitrary attribute set by direct composite-key
    /// grouping. `O(n · |X|)`; used for seeds and as an oracle in tests —
    /// level-wise miners prefer chains of [`Pli::intersect`].
    pub fn for_set(rel: &Relation, set: AttrSet) -> Pli {
        let attrs: Vec<AttrId> = set.iter().collect();
        if attrs.is_empty() {
            // π_∅ has a single class containing every row.
            let all: Vec<u32> = (0..rel.nrows() as u32).collect();
            let classes = if all.len() >= 2 {
                vec![all]
            } else {
                Vec::new()
            };
            return Pli {
                classes,
                nrows: rel.nrows(),
            };
        }
        if attrs.len() == 1 {
            return Pli::for_attr(rel, attrs[0]);
        }
        let mut groups: HashMap<Vec<u32>, Vec<u32>> = HashMap::new();
        for row in 0..rel.nrows() {
            let key: Vec<u32> = attrs.iter().map(|&a| rel.code(row, a)).collect();
            groups.entry(key).or_default().push(row as u32);
        }
        let mut classes: Vec<Vec<u32>> = groups.into_values().filter(|c| c.len() >= 2).collect();
        classes.sort_by_key(|c| c[0]); // deterministic order
        Pli {
            classes,
            nrows: rel.nrows(),
        }
    }

    /// Construct from explicit classes (tests, synthetic partitions).
    pub fn from_classes(classes: Vec<Vec<u32>>, nrows: usize) -> Pli {
        let classes = classes.into_iter().filter(|c| c.len() >= 2).collect();
        Pli { classes, nrows }
    }

    /// Construct trusting the caller's invariants: every class has ≥ 2
    /// ascending row ids and classes are sorted by first row. Used by the
    /// delta-patching path, which maintains canonical form itself.
    pub(crate) fn from_raw(classes: Vec<Vec<u32>>, nrows: usize) -> Pli {
        debug_assert!(classes.iter().all(|c| c.len() >= 2));
        debug_assert!(classes.windows(2).all(|w| w[0][0] < w[1][0]));
        Pli { classes, nrows }
    }

    /// `π_∅` over `nrows` rows: one class holding every row (stripped away
    /// below two rows).
    pub(crate) fn for_set_of_empty(nrows: usize) -> Pli {
        let all: Vec<u32> = (0..nrows as u32).collect();
        let classes = if all.len() >= 2 {
            vec![all]
        } else {
            Vec::new()
        };
        Pli { classes, nrows }
    }

    /// Number of stripped classes.
    pub fn num_classes(&self) -> usize {
        self.classes.len()
    }

    /// Sum of stripped class sizes (`||π||` in TANE's notation).
    pub fn sum_class_sizes(&self) -> usize {
        self.classes.iter().map(Vec::len).sum()
    }

    /// Rows of the underlying relation.
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// The classes themselves.
    pub fn classes(&self) -> &[Vec<u32>] {
        &self.classes
    }

    /// Consume the partition, yielding its class vectors (the in-place
    /// delta-patching path reuses their allocations).
    pub fn into_classes(self) -> Vec<Vec<u32>> {
        self.classes
    }

    /// Number of distinct value combinations over the rows
    /// (`|π_X|` counting singletons): `n - ||π|| + |π|`.
    pub fn distinct_count(&self) -> usize {
        self.nrows - self.sum_class_sizes() + self.num_classes()
    }

    /// TANE's key error `e(X) = (||π|| - |π|) / n`: the fraction of rows
    /// that must be removed for `X` to become a key. Zero iff `X` is a key.
    pub fn key_error(&self) -> f64 {
        if self.nrows == 0 {
            return 0.0;
        }
        (self.sum_class_sizes() - self.num_classes()) as f64 / self.nrows as f64
    }

    /// True iff `X` is a (super)key: every class is a singleton.
    pub fn is_key(&self) -> bool {
        self.classes.is_empty()
    }

    /// Probe vector: row → class index, or `-1` for singleton rows.
    pub fn probe_vector(&self) -> Vec<i32> {
        let mut probe = vec![-1i32; self.nrows];
        for (ci, class) in self.classes.iter().enumerate() {
            for &row in class {
                probe[row as usize] = ci as i32;
            }
        }
        probe
    }

    /// Partition product `π_{X∪Y}` from `π_X` (self) and `π_Y` (via its
    /// probe vector) — the standard TANE refinement step.
    pub fn intersect_probe(&self, other_probe: &[i32]) -> Pli {
        debug_assert_eq!(other_probe.len(), self.nrows);
        let mut classes = Vec::new();
        let mut groups: HashMap<i32, Vec<u32>> = HashMap::new();
        for class in &self.classes {
            groups.clear();
            for &row in class {
                let key = other_probe[row as usize];
                if key >= 0 {
                    groups.entry(key).or_default().push(row);
                }
                // key < 0: row is a singleton in the other partition, so it
                // is a singleton in the product — stripped away.
            }
            for (_, rows) in groups.drain() {
                if rows.len() >= 2 {
                    classes.push(rows);
                }
            }
        }
        classes.sort_by_key(|c| c[0]);
        Pli {
            classes,
            nrows: self.nrows,
        }
    }

    /// Partition product with another PLI.
    pub fn intersect(&self, other: &Pli) -> Pli {
        // Probe the smaller side for fewer hash operations.
        if other.sum_class_sizes() < self.sum_class_sizes() {
            other.intersect_probe(&self.probe_vector())
        } else {
            self.intersect_probe(&other.probe_vector())
        }
    }

    /// Does the FD `X → a` hold, where `self = π_X` and `with_a = π_{X∪a}`?
    ///
    /// Holds iff refining by `a` does not split any class, i.e. the
    /// distinct counts coincide.
    pub fn refines_to(&self, with_a: &Pli) -> bool {
        self.distinct_count() == with_a.distinct_count()
    }

    /// The `g3` error of the FD `X → a`: the minimum fraction of rows to
    /// delete so the FD holds. `self = π_X`; `rhs_probe` distinguishes
    /// values of `a` per row (any injective labeling works — dictionary
    /// codes are used by callers).
    ///
    /// `g3 = Σ_{c ∈ π_X} (|c| - max multiplicity of an a-value in c) / n`.
    pub fn g3_error(&self, rhs_probe: &[u32]) -> f64 {
        if self.nrows == 0 {
            return 0.0;
        }
        let mut violations = 0usize;
        let mut counts: HashMap<u32, usize> = HashMap::new();
        for class in &self.classes {
            counts.clear();
            for &row in class {
                *counts.entry(rhs_probe[row as usize]).or_insert(0) += 1;
            }
            let max = counts.values().copied().max().unwrap_or(0);
            violations += class.len() - max;
        }
        violations as f64 / self.nrows as f64
    }

    /// Approximate heap footprint (for the bench harness).
    pub fn approx_bytes(&self) -> usize {
        self.classes
            .iter()
            .map(|c| c.len() * std::mem::size_of::<u32>() + std::mem::size_of::<Vec<u32>>())
            .sum::<usize>()
            + std::mem::size_of::<Self>()
    }
}

/// Exact FD check `X → a` on a relation via partitions (no cache).
///
/// Convenience for tests and one-off checks; algorithmic code goes through
/// [`crate::PliCache`].
pub fn fd_holds(rel: &Relation, lhs: AttrSet, rhs: AttrId) -> bool {
    let px = Pli::for_set(rel, lhs);
    let pxa = Pli::for_set(rel, lhs.with(rhs));
    px.refines_to(&pxa)
}

/// Brute-force FD check by pairwise row comparison — `O(n²)` oracle used
/// in tests to validate the partition machinery.
pub fn fd_holds_bruteforce(rel: &Relation, lhs: AttrSet, rhs: AttrId) -> bool {
    for i in 0..rel.nrows() {
        for j in (i + 1)..rel.nrows() {
            let agree_lhs = lhs.iter().all(|a| rel.code(i, a) == rel.code(j, a));
            if agree_lhs && rel.code(i, rhs) != rel.code(j, rhs) {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use infine_relation::{relation_from_rows, Value};

    fn rel() -> Relation {
        // a b c
        // 1 x 0
        // 1 x 1
        // 2 y 0
        // 2 z 0
        // 3 z 1
        relation_from_rows(
            "t",
            &["a", "b", "c"],
            &[
                &[Value::Int(1), Value::str("x"), Value::Int(0)],
                &[Value::Int(1), Value::str("x"), Value::Int(1)],
                &[Value::Int(2), Value::str("y"), Value::Int(0)],
                &[Value::Int(2), Value::str("z"), Value::Int(0)],
                &[Value::Int(3), Value::str("z"), Value::Int(1)],
            ],
        )
    }

    #[test]
    fn single_attr_partition_strips_singletons() {
        let p = Pli::for_attr(&rel(), 0);
        assert_eq!(p.num_classes(), 2); // {0,1}, {2,3}; row 4 singleton
        assert_eq!(p.sum_class_sizes(), 4);
        assert_eq!(p.distinct_count(), 3);
        assert!(!p.is_key());
    }

    #[test]
    fn empty_set_partition_is_one_class() {
        let p = Pli::for_set(&rel(), AttrSet::EMPTY);
        assert_eq!(p.num_classes(), 1);
        assert_eq!(p.distinct_count(), 1);
    }

    #[test]
    fn intersect_equals_direct_grouping() {
        let r = rel();
        let pa = Pli::for_attr(&r, 0);
        let pb = Pli::for_attr(&r, 1);
        let prod = pa.intersect(&pb);
        let direct = Pli::for_set(&r, [0usize, 1].into_iter().collect());
        assert_eq!(prod, direct);
        // ab classes: {0,1} (1,x); rows 2,3 differ on b; singleton stripped
        assert_eq!(prod.num_classes(), 1);
    }

    #[test]
    fn key_detection() {
        let r = rel();
        let pabc = Pli::for_set(&r, AttrSet::all(3));
        assert!(pabc.is_key());
        assert_eq!(pabc.key_error(), 0.0);
        let pa = Pli::for_attr(&r, 0);
        assert!(pa.key_error() > 0.0);
    }

    #[test]
    fn fd_validity_via_refinement() {
        let r = rel();
        // a → b? rows 2,3 agree on a=2 but differ on b → no
        assert!(!fd_holds(&r, AttrSet::single(0), 1));
        // b → a? z maps to 2 and 3 → no
        assert!(!fd_holds(&r, AttrSet::single(1), 0));
        // ab → c? (1,x) has c=0,1 → no
        assert!(!fd_holds(&r, [0usize, 1].into_iter().collect(), 2));
        // ac → b? rows 2,3 share ac=(2,0) but differ on b → no
        assert!(!fd_holds(&r, [0usize, 2].into_iter().collect(), 1));
        // bc → a? all (b,c) pairs are distinct → key → yes
        assert!(fd_holds(&r, [1usize, 2].into_iter().collect(), 0));
    }

    #[test]
    fn pli_checks_agree_with_bruteforce() {
        let r = rel();
        for lhs_bits in 1u64..8 {
            let lhs = AttrSet::from_bits(lhs_bits);
            for rhs in 0..3 {
                if lhs.contains(rhs) {
                    continue;
                }
                assert_eq!(
                    fd_holds(&r, lhs, rhs),
                    fd_holds_bruteforce(&r, lhs, rhs),
                    "lhs={lhs:?} rhs={rhs}"
                );
            }
        }
    }

    #[test]
    fn g3_error_counts_min_removals() {
        let r = rel();
        // a → c: class {0,1} has c values {0,1} → 1 violation;
        // class {2,3} has c values {0,0} → 0. g3 = 1/5.
        let pa = Pli::for_attr(&r, 0);
        let probe: Vec<u32> = (0..r.nrows()).map(|i| r.code(i, 2)).collect();
        assert!((pa.g3_error(&probe) - 0.2).abs() < 1e-12);
        // exact FD has zero g3: bc → a (bc is a key)
        let pbc = Pli::for_set(&r, [1usize, 2].into_iter().collect());
        let probe_a: Vec<u32> = (0..r.nrows()).map(|i| r.code(i, 0)).collect();
        assert_eq!(pbc.g3_error(&probe_a), 0.0);
    }

    #[test]
    fn probe_vector_marks_singletons() {
        let p = Pli::for_attr(&rel(), 0);
        let probe = p.probe_vector();
        assert_eq!(probe.len(), 5);
        assert_eq!(probe[4], -1);
        assert_eq!(probe[0], probe[1]);
        assert_ne!(probe[0], probe[2]);
    }

    #[test]
    fn nulls_group_together() {
        let r = relation_from_rows(
            "t",
            &["a"],
            &[&[Value::Null], &[Value::Null], &[Value::Int(1)]],
        );
        let p = Pli::for_attr(&r, 0);
        assert_eq!(p.num_classes(), 1);
        assert_eq!(p.classes()[0], vec![0, 1]);
    }

    #[test]
    fn intersect_probe_drops_singletons_of_other() {
        let r = rel();
        let pb = Pli::for_attr(&r, 1);
        let pc = Pli::for_attr(&r, 2);
        let prod = pb.intersect(&pc);
        let direct = Pli::for_set(&r, [1usize, 2].into_iter().collect());
        assert_eq!(prod, direct);
    }
}
