//! Stripped partitions (position list indexes, PLIs) on flat CSR storage.
//!
//! The partition `π_X` of a relation under an attribute set `X` groups
//! rows agreeing on all attributes of `X`. A *stripped* partition drops
//! singleton classes (they can never witness an FD violation), which is
//! the representation TANE introduced and every level-wise miner here
//! uses. Products of partitions (`π_X ∩ π_Y = π_{X∪Y}`) are computed with
//! the classic probe-vector algorithm.
//!
//! ## Storage layout
//!
//! A partition is one pair of flat arrays in CSR form — class `i` spans
//! `rows[offsets[i]..offsets[i+1]]` — instead of one heap allocation per
//! equivalence class. Iterating all members of all classes (the inner
//! loop of every product, validity check, and agree-set pass) is then a
//! single contiguous scan, and building a partition costs two exact-size
//! allocations total. The nested `Vec<Vec<u32>>` representation survives
//! only as the test oracle in [`crate::legacy`].
//!
//! The same flat layout is what makes the counting-only validation
//! kernel ([`crate::validate`]) branch-light: `Pli::refines_with` streams
//! `rows` once, front to back, gathering packed `u32` probe keys per
//! class with an unrolled compare-against-first scan and early-exiting at
//! the first split — validity never needs the product partition this
//! module's grouping kernels build. Reach for the product machinery below
//! only when a *child partition* is needed (lattice descent, products
//! feeding further products); reach for [`crate::validate`] when only a
//! verdict is.
//!
//! ## Canonical form
//!
//! Every constructor yields the same canonical form: members ascending
//! within a class, classes ordered by first member, singletons stripped.
//! Two `Pli`s over the same relation/attribute set are therefore `==`
//! regardless of how they were built (direct grouping, product chain, or
//! delta patching) — the property tests assert exactly this.
//!
//! ## Scratch reuse
//!
//! All grouping kernels (probe-vector product, code refinement) run
//! through a caller-provided [`IntersectScratch`]: a probe vector, a
//! per-key counting arena, and staging buffers that live across calls.
//! One intersection allocates nothing beyond the two exact-size output
//! arrays. [`crate::PliCache`] owns one scratch per cache and threads it
//! through every derivation; stand-alone helpers ([`Pli::intersect`],
//! [`Pli::for_set`]) keep a temporary scratch internally, so the fast
//! path is available without the cache too.
//!
//! With the `NULL = NULL` convention of `infine-relation`, nulls are just
//! another dictionary code, so no special casing is needed anywhere.
//!
//! ## Tombstoned relations
//!
//! A tombstoned relation (`Relation::has_tombstones`) keeps deleted rows
//! physically present; partitions over it contain **live rows only** —
//! the construction kernels skip dead rows, and delta patching drops
//! them through the remap like any other delete. [`Pli::nrows`] remains
//! the *physical* row space (packed probes index by physical id), which
//! means [`Pli::distinct_count`] counts each dead row as a phantom
//! singleton. That is sound for every validity decision in this crate:
//! the kernel verdicts only read class members (live by construction),
//! and the cached-product count comparison in
//! [`PliCache::check`](crate::PliCache::check) sees the *same* phantom
//! offset on both sides, so it cancels. Error measures whose denominator
//! is `nrows` ([`Pli::key_error`], [`Pli::g3_error`]) are only meaningful
//! on compact relations — vacuum before measuring.

use infine_relation::{AttrId, AttrSet, Relation};
use std::collections::HashMap;

/// Sentinel key meaning "row is stripped in the refining partition" —
/// the same value as [`crate::validate::UNIQUE`]: every probe vector in
/// this crate is packed `u32` with `u32::MAX` marking stripped rows (no
/// signed `-1` convention anywhere).
const DROP: u32 = u32::MAX;

/// Reusable buffers for partition products and refinements.
///
/// See the [module docs](self) for the contract: a scratch may be shared
/// across any number of operations on any number of partitions (buffers
/// are (re)sized on demand and logically cleared between uses), but not
/// across threads — parallel callers give each worker its own scratch.
#[derive(Debug, Default)]
pub struct IntersectScratch {
    /// Packed probe vector of the refining partition (row → class id,
    /// [`DROP`] for stripped rows).
    probe: Vec<u32>,
    /// Per-key member counts for the class being split. Sized to the key
    /// space; reset via `touched` after every class.
    count: Vec<u32>,
    /// Per-key write cursor into the staging buffer.
    slot: Vec<u32>,
    /// Keys seen in the class being split, in first-occurrence order.
    touched: Vec<u32>,
    /// Staged output rows (classes packed back to back).
    stage_rows: Vec<u32>,
    /// Staged class descriptors: `(start, len)` into `stage_rows`.
    desc: Vec<(u32, u32)>,
}

impl IntersectScratch {
    /// Fresh scratch (buffers grow on first use).
    pub fn new() -> IntersectScratch {
        IntersectScratch::default()
    }

    fn ensure_keys(&mut self, key_space: usize) {
        if self.count.len() < key_space {
            self.count.resize(key_space, 0);
            self.slot.resize(key_space, 0);
        }
    }
}

/// A stripped partition over the rows of a relation, stored CSR-flat.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Pli {
    /// Class boundaries: class `i` is `rows[offsets[i]..offsets[i+1]]`.
    /// Always `offsets[0] == 0`; length is `num_classes + 1`.
    offsets: Vec<u32>,
    /// Row ids of all stripped classes, back to back; ascending within a
    /// class, classes ordered by first member.
    rows: Vec<u32>,
    /// Total number of rows of the underlying relation.
    nrows: usize,
}

/// Iterator over the classes of a [`Pli`], yielding member slices.
pub struct Classes<'a> {
    pli: &'a Pli,
    next: usize,
}

impl<'a> Iterator for Classes<'a> {
    type Item = &'a [u32];

    fn next(&mut self) -> Option<&'a [u32]> {
        if self.next >= self.pli.num_classes() {
            return None;
        }
        let c = self.pli.class(self.next);
        self.next += 1;
        Some(c)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let rest = self.pli.num_classes() - self.next;
        (rest, Some(rest))
    }
}

impl ExactSizeIterator for Classes<'_> {}

impl Pli {
    /// Partition of a single attribute, grouped by dictionary code.
    ///
    /// Classes are assigned in first-occurrence order of their code, which
    /// *is* the canonical order (sorted by first member) — no sort needed,
    /// three linear passes total.
    ///
    /// Tombstoned relations are handled exactly: dead rows join no class
    /// (they can never witness a violation), while [`Pli::nrows`] stays
    /// the *physical* row space so packed probes keep indexing by
    /// physical id. See the module docs for the tombstone conventions.
    pub fn for_attr(rel: &Relation, attr: AttrId) -> Pli {
        if rel.has_tombstones() {
            return Pli::for_attr_live(rel, attr);
        }
        let col = rel.column(attr);
        let codes = &col.codes;
        let dict_len = col.dict.len();
        let mut count = vec![0u32; dict_len];
        for &c in codes {
            count[c as usize] += 1;
        }
        // Assign class ids by first occurrence; accumulate offsets.
        let mut class_of = vec![DROP; dict_len];
        let mut offsets: Vec<u32> = vec![0];
        let mut total = 0u32;
        for &c in codes {
            let c = c as usize;
            if count[c] >= 2 && class_of[c] == DROP {
                class_of[c] = (offsets.len() - 1) as u32;
                total += count[c];
                offsets.push(total);
            }
        }
        // Fill pass: per-class cursors start at the class offsets.
        let mut cursor: Vec<u32> = offsets[..offsets.len() - 1].to_vec();
        let mut rows = vec![0u32; total as usize];
        for (row, &c) in codes.iter().enumerate() {
            let cls = class_of[c as usize];
            if cls != DROP {
                rows[cursor[cls as usize] as usize] = row as u32;
                cursor[cls as usize] += 1;
            }
        }
        Pli {
            offsets,
            rows,
            nrows: rel.nrows(),
        }
    }

    /// [`Pli::for_attr`] over a tombstoned relation: the same three
    /// passes with dead rows filtered. Kept separate so compact
    /// relations (the hot path of full discovery) pay no per-row
    /// liveness branch.
    fn for_attr_live(rel: &Relation, attr: AttrId) -> Pli {
        let col = rel.column(attr);
        let codes = &col.codes;
        let dict_len = col.dict.len();
        let mut count = vec![0u32; dict_len];
        for (row, &c) in codes.iter().enumerate() {
            if rel.is_live(row) {
                count[c as usize] += 1;
            }
        }
        let mut class_of = vec![DROP; dict_len];
        let mut offsets: Vec<u32> = vec![0];
        let mut total = 0u32;
        for (row, &c) in codes.iter().enumerate() {
            let c = c as usize;
            if rel.is_live(row) && count[c] >= 2 && class_of[c] == DROP {
                class_of[c] = (offsets.len() - 1) as u32;
                total += count[c];
                offsets.push(total);
            }
        }
        let mut cursor: Vec<u32> = offsets[..offsets.len() - 1].to_vec();
        let mut rows = vec![0u32; total as usize];
        for (row, &c) in codes.iter().enumerate() {
            if !rel.is_live(row) {
                continue;
            }
            let cls = class_of[c as usize];
            if cls != DROP {
                rows[cursor[cls as usize] as usize] = row as u32;
                cursor[cls as usize] += 1;
            }
        }
        Pli {
            offsets,
            rows,
            nrows: rel.nrows(),
        }
    }

    /// `π_∅` over a relation: one class of every *live* row (compact
    /// relations: every row). `nrows` stays the physical space.
    pub(crate) fn for_empty_over(rel: &Relation) -> Pli {
        if !rel.has_tombstones() {
            return Pli::for_set_of_empty(rel.nrows());
        }
        let live = rel.live_row_ids();
        if live.len() < 2 {
            return Pli {
                offsets: vec![0],
                rows: Vec::new(),
                nrows: rel.nrows(),
            };
        }
        Pli {
            offsets: vec![0, live.len() as u32],
            rows: live,
            nrows: rel.nrows(),
        }
    }

    /// Partition of an arbitrary attribute set by incremental probe-vector
    /// refinement: seed with the first attribute's partition, then refine
    /// by each remaining attribute's code column. `O(n · |X|)` like the
    /// old composite-key grouping, but with counting-sort splits instead
    /// of one hashed `Vec<u32>` key per row. The legacy grouping survives
    /// as the oracle [`crate::legacy::for_set_grouped`].
    pub fn for_set(rel: &Relation, set: AttrSet) -> Pli {
        let mut scratch = IntersectScratch::new();
        Pli::for_set_with(rel, set, &mut scratch)
    }

    /// [`Pli::for_set`] reusing a caller-provided scratch.
    pub fn for_set_with(rel: &Relation, set: AttrSet, scratch: &mut IntersectScratch) -> Pli {
        let mut attrs = set.iter();
        let Some(first) = attrs.next() else {
            return Pli::for_empty_over(rel);
        };
        let mut pli = Pli::for_attr(rel, first);
        for a in attrs {
            if pli.is_key() {
                break; // already all-singleton; refinement cannot split further
            }
            let col = rel.column(a);
            pli = pli.refine_with(col.dict.len(), |row| col.codes[row as usize], scratch);
        }
        pli
    }

    /// Construct from explicit classes (tests, synthetic partitions).
    /// Classes below two members are stripped; order is kept as given.
    pub fn from_classes(classes: Vec<Vec<u32>>, nrows: usize) -> Pli {
        let mut offsets: Vec<u32> = vec![0];
        let mut rows: Vec<u32> = Vec::new();
        for class in classes.iter().filter(|c| c.len() >= 2) {
            rows.extend_from_slice(class);
            offsets.push(rows.len() as u32);
        }
        Pli {
            offsets,
            rows,
            nrows,
        }
    }

    /// Construct trusting the caller's invariants: canonical CSR form
    /// (see the module docs). Used by the delta-patching path, which
    /// maintains canonical form itself.
    pub(crate) fn from_raw(offsets: Vec<u32>, rows: Vec<u32>, nrows: usize) -> Pli {
        debug_assert!(!offsets.is_empty() && offsets[0] == 0);
        debug_assert_eq!(*offsets.last().expect("non-empty") as usize, rows.len());
        debug_assert!(offsets.windows(2).all(|w| w[1] - w[0] >= 2));
        debug_assert!((1..offsets.len().saturating_sub(1))
            .all(|i| rows[offsets[i - 1] as usize] < rows[offsets[i] as usize]));
        Pli {
            offsets,
            rows,
            nrows,
        }
    }

    /// `π_∅` over `nrows` rows: one class holding every row (stripped away
    /// below two rows).
    pub(crate) fn for_set_of_empty(nrows: usize) -> Pli {
        if nrows < 2 {
            return Pli {
                offsets: vec![0],
                rows: Vec::new(),
                nrows,
            };
        }
        Pli {
            offsets: vec![0, nrows as u32],
            rows: (0..nrows as u32).collect(),
            nrows,
        }
    }

    /// Number of stripped classes.
    pub fn num_classes(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Sum of stripped class sizes (`||π||` in TANE's notation).
    pub fn sum_class_sizes(&self) -> usize {
        self.rows.len()
    }

    /// Rows of the underlying relation.
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Members of class `i` (ascending row ids).
    pub fn class(&self, i: usize) -> &[u32] {
        &self.rows[self.offsets[i] as usize..self.offsets[i + 1] as usize]
    }

    /// Iterate the classes as member slices.
    pub fn classes(&self) -> Classes<'_> {
        Classes { pli: self, next: 0 }
    }

    /// Number of distinct value combinations over the rows
    /// (`|π_X|` counting singletons): `n - ||π|| + |π|`.
    pub fn distinct_count(&self) -> usize {
        self.nrows - self.sum_class_sizes() + self.num_classes()
    }

    /// TANE's key error `e(X) = (||π|| - |π|) / n`: the fraction of rows
    /// that must be removed for `X` to become a key. Zero iff `X` is a key.
    pub fn key_error(&self) -> f64 {
        if self.nrows == 0 {
            return 0.0;
        }
        (self.sum_class_sizes() - self.num_classes()) as f64 / self.nrows as f64
    }

    /// True iff `X` is a (super)key: every class is a singleton.
    pub fn is_key(&self) -> bool {
        self.num_classes() == 0
    }

    /// Packed probe vector: row → class index, [`DROP`] (`u32::MAX`) for
    /// singleton rows — the shared probe layout of the product kernels
    /// here and the counting kernel in [`crate::validate`]
    /// ([`Pli::packed_probe`] fills a reusable buffer).
    pub fn probe_vector(&self) -> Vec<u32> {
        let mut probe = Vec::new();
        self.packed_probe(&mut probe);
        probe
    }

    /// Partition product `π_{X∪Y}` from `π_X` (self) and `π_Y` (via its
    /// packed probe vector) — the standard TANE refinement step.
    pub fn intersect_probe(&self, other_probe: &[u32]) -> Pli {
        let mut scratch = IntersectScratch::new();
        self.intersect_probe_with(other_probe, &mut scratch)
    }

    /// [`Pli::intersect_probe`] reusing a caller-provided scratch. The
    /// probe must cover exactly this partition's rows; [`DROP`] entries
    /// mark rows stripped in the refining partition. `key_space` must
    /// exceed every non-sentinel probe entry — pass the refining
    /// partition's class count.
    fn intersect_probe_keyed(
        &self,
        other_probe: &[u32],
        key_space: usize,
        scratch: &mut IntersectScratch,
    ) -> Pli {
        debug_assert_eq!(other_probe.len(), self.nrows);
        self.refine_with(key_space, |row| other_probe[row as usize], scratch)
    }

    /// [`Pli::intersect_probe`] with scratch, for arbitrary probes (key
    /// space derived from the probe itself).
    pub fn intersect_probe_with(&self, other_probe: &[u32], scratch: &mut IntersectScratch) -> Pli {
        let key_space = other_probe
            .iter()
            .copied()
            .filter(|&k| k != DROP)
            .max()
            .map(|m| m as usize + 1)
            .unwrap_or(0);
        self.intersect_probe_keyed(other_probe, key_space, scratch)
    }

    /// Partition product with another PLI (temporary scratch).
    pub fn intersect(&self, other: &Pli) -> Pli {
        let mut scratch = IntersectScratch::new();
        self.intersect_with(other, &mut scratch)
    }

    /// Partition product with another PLI, reusing the caller's scratch.
    /// Probes the smaller side for fewer split operations (same
    /// side-selection rule as the nested-representation original).
    pub fn intersect_with(&self, other: &Pli, scratch: &mut IntersectScratch) -> Pli {
        let (split, refine) = if other.sum_class_sizes() < self.sum_class_sizes() {
            (other, self)
        } else {
            (self, other)
        };
        // Take the probe buffer out so the refine kernel can borrow the
        // rest of the scratch mutably.
        let mut probe = std::mem::take(&mut scratch.probe);
        refine.packed_probe(&mut probe);
        let out = split.intersect_probe_keyed(&probe, refine.num_classes(), scratch);
        scratch.probe = probe;
        out
    }

    /// The shared split kernel: refine every class by `key_of` (a total
    /// map to `[0, key_space)`, or [`DROP`] to strip the row), then
    /// canonicalize. Allocation-free apart from the two exact-size output
    /// arrays; two passes per class plus one global gather.
    fn refine_with(
        &self,
        key_space: usize,
        key_of: impl Fn(u32) -> u32,
        scratch: &mut IntersectScratch,
    ) -> Pli {
        scratch.ensure_keys(key_space);
        scratch.stage_rows.clear();
        scratch.desc.clear();
        for class in self.classes() {
            scratch.touched.clear();
            // Pass 1: count members per key (first-occurrence order).
            for &row in class {
                let k = key_of(row);
                if k == DROP {
                    continue;
                }
                if scratch.count[k as usize] == 0 {
                    scratch.touched.push(k);
                }
                scratch.count[k as usize] += 1;
            }
            // Reserve staging slots for the surviving groups. `touched`
            // is in first-occurrence order, which keeps groups of one
            // class ordered by first member.
            for &k in &scratch.touched {
                let c = scratch.count[k as usize];
                if c >= 2 {
                    let start = scratch.stage_rows.len() as u32;
                    scratch.desc.push((start, c));
                    scratch.slot[k as usize] = start;
                    scratch
                        .stage_rows
                        .resize(scratch.stage_rows.len() + c as usize, 0);
                } else {
                    scratch.slot[k as usize] = DROP;
                }
            }
            // Pass 2: scatter rows (ascending input keeps classes sorted).
            for &row in class {
                let k = key_of(row);
                if k == DROP {
                    continue;
                }
                let s = scratch.slot[k as usize];
                if s != DROP {
                    scratch.stage_rows[s as usize] = row;
                    scratch.slot[k as usize] = s + 1;
                }
            }
            for &k in &scratch.touched {
                scratch.count[k as usize] = 0;
            }
        }
        // Canonical class order is by first member. Groups from one input
        // class are already ordered, but groups of later input classes
        // can start below groups of earlier ones — sort descriptors when
        // (and only when) that happened, then gather.
        let sorted = scratch
            .desc
            .windows(2)
            .all(|w| scratch.stage_rows[w[0].0 as usize] < scratch.stage_rows[w[1].0 as usize]);
        if !sorted {
            let stage = &scratch.stage_rows;
            scratch
                .desc
                .sort_unstable_by_key(|&(start, _)| stage[start as usize]);
        }
        let mut offsets: Vec<u32> = Vec::with_capacity(scratch.desc.len() + 1);
        let mut rows: Vec<u32> = Vec::with_capacity(scratch.stage_rows.len());
        offsets.push(0);
        for &(start, len) in &scratch.desc {
            rows.extend_from_slice(&scratch.stage_rows[start as usize..(start + len) as usize]);
            offsets.push(rows.len() as u32);
        }
        Pli {
            offsets,
            rows,
            nrows: self.nrows,
        }
    }

    /// Does the FD `X → a` hold, where `self = π_X` and `with_a = π_{X∪a}`?
    ///
    /// Holds iff refining by `a` does not split any class, i.e. the
    /// distinct counts coincide.
    pub fn refines_to(&self, with_a: &Pli) -> bool {
        self.distinct_count() == with_a.distinct_count()
    }

    /// The `g3` error of the FD `X → a`: the minimum fraction of rows to
    /// delete so the FD holds. `self = π_X`; `rhs_probe` distinguishes
    /// values of `a` per row (any injective labeling works — dictionary
    /// codes are used by callers).
    ///
    /// `g3 = Σ_{c ∈ π_X} (|c| - max multiplicity of an a-value in c) / n`.
    pub fn g3_error(&self, rhs_probe: &[u32]) -> f64 {
        if self.nrows == 0 {
            return 0.0;
        }
        let mut violations = 0usize;
        let mut counts: HashMap<u32, usize> = HashMap::new();
        for class in self.classes() {
            counts.clear();
            for &row in class {
                *counts.entry(rhs_probe[row as usize]).or_insert(0) += 1;
            }
            let max = counts.values().copied().max().unwrap_or(0);
            violations += class.len() - max;
        }
        violations as f64 / self.nrows as f64
    }

    /// Approximate heap footprint (for the bench harness).
    pub fn approx_bytes(&self) -> usize {
        (self.rows.len() + self.offsets.len()) * std::mem::size_of::<u32>()
            + std::mem::size_of::<Self>()
    }

    /// Tear the partition into its raw CSR buffers (delta patching
    /// consumes and rebuilds them in place).
    pub(crate) fn into_raw(self) -> (Vec<u32>, Vec<u32>, usize) {
        (self.offsets, self.rows, self.nrows)
    }
}

/// Exact FD check `X → a` on a relation via partitions (no cache).
///
/// Convenience for tests and one-off checks; algorithmic code goes through
/// [`crate::PliCache`]. Builds `π_X` only — the verdict comes from the
/// counting kernel against `a`'s code column, not from a product.
pub fn fd_holds(rel: &Relation, lhs: AttrSet, rhs: AttrId) -> bool {
    let mut scratch = IntersectScratch::new();
    let px = Pli::for_set_with(rel, lhs, &mut scratch);
    px.refines_with(&rel.column(rhs).codes).holds()
}

/// Brute-force FD check by pairwise row comparison — `O(n²)` oracle used
/// in tests to validate the partition machinery.
pub fn fd_holds_bruteforce(rel: &Relation, lhs: AttrSet, rhs: AttrId) -> bool {
    for i in 0..rel.nrows() {
        for j in (i + 1)..rel.nrows() {
            let agree_lhs = lhs.iter().all(|a| rel.code(i, a) == rel.code(j, a));
            if agree_lhs && rel.code(i, rhs) != rel.code(j, rhs) {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use infine_relation::{relation_from_rows, Value};

    fn rel() -> Relation {
        // a b c
        // 1 x 0
        // 1 x 1
        // 2 y 0
        // 2 z 0
        // 3 z 1
        relation_from_rows(
            "t",
            &["a", "b", "c"],
            &[
                &[Value::Int(1), Value::str("x"), Value::Int(0)],
                &[Value::Int(1), Value::str("x"), Value::Int(1)],
                &[Value::Int(2), Value::str("y"), Value::Int(0)],
                &[Value::Int(2), Value::str("z"), Value::Int(0)],
                &[Value::Int(3), Value::str("z"), Value::Int(1)],
            ],
        )
    }

    #[test]
    fn single_attr_partition_strips_singletons() {
        let p = Pli::for_attr(&rel(), 0);
        assert_eq!(p.num_classes(), 2); // {0,1}, {2,3}; row 4 singleton
        assert_eq!(p.sum_class_sizes(), 4);
        assert_eq!(p.distinct_count(), 3);
        assert!(!p.is_key());
    }

    #[test]
    fn empty_set_partition_is_one_class() {
        let p = Pli::for_set(&rel(), AttrSet::EMPTY);
        assert_eq!(p.num_classes(), 1);
        assert_eq!(p.distinct_count(), 1);
    }

    #[test]
    fn csr_classes_are_canonical() {
        let p = Pli::for_attr(&rel(), 1); // b: {0,1} (x), {3,4} (z)
        assert_eq!(p.class(0), &[0, 1]);
        assert_eq!(p.class(1), &[3, 4]);
        let collected: Vec<&[u32]> = p.classes().collect();
        assert_eq!(collected.len(), p.num_classes());
    }

    #[test]
    fn intersect_equals_direct_grouping() {
        let r = rel();
        let pa = Pli::for_attr(&r, 0);
        let pb = Pli::for_attr(&r, 1);
        let prod = pa.intersect(&pb);
        let direct = Pli::for_set(&r, [0usize, 1].into_iter().collect());
        assert_eq!(prod, direct);
        // ab classes: {0,1} (1,x); rows 2,3 differ on b; singleton stripped
        assert_eq!(prod.num_classes(), 1);
    }

    #[test]
    fn scratch_is_reusable_across_products() {
        let r = rel();
        let pa = Pli::for_attr(&r, 0);
        let pb = Pli::for_attr(&r, 1);
        let pc = Pli::for_attr(&r, 2);
        let mut scratch = IntersectScratch::new();
        let ab = pa.intersect_with(&pb, &mut scratch);
        let bc = pb.intersect_with(&pc, &mut scratch);
        let ab_again = pa.intersect_with(&pb, &mut scratch);
        assert_eq!(ab, ab_again);
        assert_eq!(ab, Pli::for_set(&r, [0usize, 1].into_iter().collect()));
        assert_eq!(bc, Pli::for_set(&r, [1usize, 2].into_iter().collect()));
    }

    #[test]
    fn key_detection() {
        let r = rel();
        let pabc = Pli::for_set(&r, AttrSet::all(3));
        assert!(pabc.is_key());
        assert_eq!(pabc.key_error(), 0.0);
        let pa = Pli::for_attr(&r, 0);
        assert!(pa.key_error() > 0.0);
    }

    #[test]
    fn fd_validity_via_refinement() {
        let r = rel();
        // a → b? rows 2,3 agree on a=2 but differ on b → no
        assert!(!fd_holds(&r, AttrSet::single(0), 1));
        // b → a? z maps to 2 and 3 → no
        assert!(!fd_holds(&r, AttrSet::single(1), 0));
        // ab → c? (1,x) has c=0,1 → no
        assert!(!fd_holds(&r, [0usize, 1].into_iter().collect(), 2));
        // ac → b? rows 2,3 share ac=(2,0) but differ on b → no
        assert!(!fd_holds(&r, [0usize, 2].into_iter().collect(), 1));
        // bc → a? all (b,c) pairs are distinct → key → yes
        assert!(fd_holds(&r, [1usize, 2].into_iter().collect(), 0));
    }

    #[test]
    fn pli_checks_agree_with_bruteforce() {
        let r = rel();
        for lhs_bits in 1u64..8 {
            let lhs = AttrSet::from_bits(lhs_bits);
            for rhs in 0..3 {
                if lhs.contains(rhs) {
                    continue;
                }
                assert_eq!(
                    fd_holds(&r, lhs, rhs),
                    fd_holds_bruteforce(&r, lhs, rhs),
                    "lhs={lhs:?} rhs={rhs}"
                );
            }
        }
    }

    #[test]
    fn g3_error_counts_min_removals() {
        let r = rel();
        // a → c: class {0,1} has c values {0,1} → 1 violation;
        // class {2,3} has c values {0,0} → 0. g3 = 1/5.
        let pa = Pli::for_attr(&r, 0);
        let probe: Vec<u32> = (0..r.nrows()).map(|i| r.code(i, 2)).collect();
        assert!((pa.g3_error(&probe) - 0.2).abs() < 1e-12);
        // exact FD has zero g3: bc → a (bc is a key)
        let pbc = Pli::for_set(&r, [1usize, 2].into_iter().collect());
        let probe_a: Vec<u32> = (0..r.nrows()).map(|i| r.code(i, 0)).collect();
        assert_eq!(pbc.g3_error(&probe_a), 0.0);
    }

    #[test]
    fn probe_vector_marks_singletons() {
        let p = Pli::for_attr(&rel(), 0);
        let probe = p.probe_vector();
        assert_eq!(probe.len(), 5);
        assert_eq!(probe[4], u32::MAX);
        assert_eq!(probe[0], probe[1]);
        assert_ne!(probe[0], probe[2]);
    }

    #[test]
    fn nulls_group_together() {
        let r = relation_from_rows(
            "t",
            &["a"],
            &[&[Value::Null], &[Value::Null], &[Value::Int(1)]],
        );
        let p = Pli::for_attr(&r, 0);
        assert_eq!(p.num_classes(), 1);
        assert_eq!(p.class(0), &[0, 1]);
    }

    #[test]
    fn intersect_probe_drops_singletons_of_other() {
        let r = rel();
        let pb = Pli::for_attr(&r, 1);
        let pc = Pli::for_attr(&r, 2);
        let prod = pb.intersect(&pc);
        let direct = Pli::for_set(&r, [1usize, 2].into_iter().collect());
        assert_eq!(prod, direct);
    }

    #[test]
    fn from_classes_strips_and_flattens() {
        let p = Pli::from_classes(vec![vec![0, 1], vec![3], vec![4, 5, 6]], 8);
        assert_eq!(p.num_classes(), 2);
        assert_eq!(p.class(1), &[4, 5, 6]);
        assert_eq!(p.sum_class_sizes(), 5);
    }
}
