//! Attribute-set-keyed PLI cache.
//!
//! Level-wise miners repeatedly need `π_X` for lattice nodes `X`. The
//! cache memoizes computed partitions and derives new ones by the cheapest
//! available route: a cached subset of size `|X| - 1` intersected with a
//! single-attribute seed, falling back to direct grouping.
//!
//! Every derivation runs through the cache's resident
//! [`IntersectScratch`], so a whole mining run performs its partition
//! products without per-call temporary allocations (the scratch-reuse
//! contract of `infine-partitions`; see the crate docs).
//!
//! [`PliCache::prefetch`] computes a batch of missing partitions in
//! parallel on the `infine-exec` pool — the level-wise miners hand it a
//! whole lattice level at once. Each worker derives with its own scratch
//! from the already-cached subsets; because a partition is a pure
//! function of the relation and the attribute set, the cache contents
//! (and every downstream FD decision) are byte-identical to the
//! sequential path.
//!
//! Memory discipline follows the paper's observation that level-wise
//! algorithms need only two lattice levels at a time: [`PliCache::retain_levels`]
//! lets callers evict everything below the previous level.

use crate::pli::{IntersectScratch, Pli};
use infine_relation::{AttrId, AttrSet, Relation};
use std::collections::HashMap;

/// Cache traffic counters (`infine_pli_cache_*_total`), resolved from
/// the ambient `infine-obs` registry once per cache construction.
struct CacheMetrics {
    hits: infine_obs::Counter,
    misses: infine_obs::Counter,
    evictions: infine_obs::Counter,
}

impl CacheMetrics {
    fn resolve() -> Self {
        infine_obs::with_current(|r| Self {
            hits: r.counter(
                "infine_pli_cache_hits_total",
                "PLI cache lookups answered from a memoized partition.",
                &[],
            ),
            misses: r.counter(
                "infine_pli_cache_misses_total",
                "PLI cache lookups that computed (and memoized) a partition.",
                &[],
            ),
            evictions: r.counter(
                "infine_pli_cache_evictions_total",
                "Partitions evicted by the two-level retention policy.",
                &[],
            ),
        })
    }
}

/// Memoizing provider of stripped partitions for one relation.
pub struct PliCache<'a> {
    rel: &'a Relation,
    cache: HashMap<AttrSet, Pli>,
    scratch: IntersectScratch,
    hits: usize,
    misses: usize,
    metrics: CacheMetrics,
}

impl<'a> PliCache<'a> {
    /// Create a cache seeded with all single-attribute partitions.
    pub fn new(rel: &'a Relation) -> Self {
        PliCache::with_attrs(rel, rel.attr_set())
    }

    /// Create a cache restricted to the given attributes (others are never
    /// seeded — InFine's projection-pruning of Algorithm 1 lines 3–5).
    pub fn with_attrs(rel: &'a Relation, attrs: AttrSet) -> Self {
        let mut cache = HashMap::new();
        for a in attrs.iter() {
            cache.insert(AttrSet::single(a), Pli::for_attr(rel, a));
        }
        PliCache {
            rel,
            cache,
            scratch: IntersectScratch::new(),
            hits: 0,
            misses: 0,
            metrics: CacheMetrics::resolve(),
        }
    }

    /// The underlying relation.
    pub fn relation(&self) -> &'a Relation {
        self.rel
    }

    /// Number of cache hits / misses (observability for benches).
    pub fn stats(&self) -> (usize, usize) {
        (self.hits, self.misses)
    }

    /// Get (computing and memoizing if needed) the partition `π_set`.
    pub fn get(&mut self, set: AttrSet) -> &Pli {
        if self.cache.contains_key(&set) {
            self.hits += 1;
            self.metrics.hits.inc();
            return &self.cache[&set];
        }
        self.misses += 1;
        self.metrics.misses.inc();
        let pli = self.compute(set);
        self.cache.entry(set).or_insert(pli)
    }

    /// The cached partition, if present — no computation, no stats. Read
    /// path for parallel revalidation (workers share `&PliCache`).
    pub fn peek(&self, set: AttrSet) -> Option<&Pli> {
        self.cache.get(&set)
    }

    /// The derivation `compute` would use for a missing `set`: a cached
    /// immediate subset intersected with a singleton, or direct grouping.
    /// Singleton seeds are inserted here so the plan is executable from a
    /// shared reference.
    fn plan(&mut self, set: AttrSet) -> Option<(AttrSet, AttrSet)> {
        for a in set.iter() {
            let sub = set.without(a);
            if self.cache.contains_key(&sub) {
                let single = AttrSet::single(a);
                self.cache
                    .entry(single)
                    .or_insert_with(|| Pli::for_attr(self.rel, a));
                return Some((sub, single));
            }
        }
        None
    }

    fn compute(&mut self, set: AttrSet) -> Pli {
        if set.is_empty() || set.len() == 1 {
            return Pli::for_set_with(self.rel, set, &mut self.scratch);
        }
        match self.plan(set) {
            Some((sub, single)) => {
                // Disjoint field borrows: partitions from `cache`, buffers
                // from `scratch`.
                let sub_pli = &self.cache[&sub];
                let single_pli = &self.cache[&single];
                sub_pli.intersect_with(single_pli, &mut self.scratch)
            }
            // No subset cached: direct grouping.
            None => Pli::for_set_with(self.rel, set, &mut self.scratch),
        }
    }

    /// Compute and memoize every missing partition among `sets` in
    /// parallel on the `infine-exec` pool.
    ///
    /// Level-wise miners call this with a whole lattice level before
    /// their sequential candidate walk; each partition is then a cache
    /// hit. This is strictly a *hint*: when the pool would run inline
    /// (one worker, or already inside a worker) it does nothing at all —
    /// the lazy `get` path computes on demand with zero batching
    /// overhead, and a batch may include sets the walk would end up
    /// skipping. Either way the cached partitions are pure functions of
    /// `(relation, set)`, so parallel and sequential runs produce
    /// byte-identical discovery output.
    pub fn prefetch(&mut self, sets: &[AttrSet]) {
        if infine_exec::sequential() {
            return;
        }
        let mut missing: Vec<AttrSet> = sets
            .iter()
            .copied()
            .filter(|s| !self.cache.contains_key(s))
            .collect();
        missing.sort_unstable_by_key(|s| s.bits());
        missing.dedup();
        if missing.is_empty() {
            return;
        }
        if missing.len() == 1 {
            self.misses += 1;
            self.metrics.misses.inc();
            let set = missing[0];
            let pli = self.compute(set);
            self.cache.insert(set, pli);
            return;
        }
        // Resolve derivation plans (and seed their singletons) up front so
        // the parallel region only reads the cache.
        let plans: Vec<(AttrSet, Option<(AttrSet, AttrSet)>)> = missing
            .iter()
            .map(|&set| {
                let plan = if set.len() >= 2 { self.plan(set) } else { None };
                (set, plan)
            })
            .collect();
        let rel = self.rel;
        let cache = &self.cache;
        let computed: Vec<Pli> =
            infine_exec::par_map_with(&plans, IntersectScratch::new, |scratch, _, &(set, plan)| {
                match plan {
                    Some((sub, single)) => cache[&sub].intersect_with(&cache[&single], scratch),
                    None => Pli::for_set_with(rel, set, scratch),
                }
            });
        self.misses += plans.len();
        self.metrics.misses.add(plans.len() as u64);
        for ((set, _), pli) in plans.into_iter().zip(computed) {
            self.cache.insert(set, pli);
        }
    }

    /// Exact FD check `lhs → rhs` through the cache. Routed through the
    /// counting-only kernel ([`PliCache::check`]): the product partition
    /// `π_{lhs∪rhs}` is never materialized for the verdict.
    pub fn fd_holds(&mut self, lhs: AttrSet, rhs: AttrId) -> bool {
        self.check(lhs, rhs)
    }

    /// Counting-only FD check `lhs → rhs`: answers from the validation
    /// kernel against `π_lhs` and `rhs`'s code column, *never inserting*
    /// the product into the cache. When the product happens to be cached
    /// already, the verdict is read off the distinct counts without any
    /// scan. Exactly equivalent to
    /// `distinct_count(lhs) == distinct_count(lhs∪rhs)`.
    pub fn check(&mut self, lhs: AttrSet, rhs: AttrId) -> bool {
        debug_assert!(!lhs.contains(rhs), "trivial FD {lhs:?} → {rhs}");
        let both = lhs.with(rhs);
        if self.cache.contains_key(&both) {
            let d_both = self.get(both).distinct_count();
            return self.get(lhs).distinct_count() == d_both;
        }
        crate::validate::count_product_avoided();
        let codes = &self.rel.column(rhs).codes;
        self.get(lhs).refines_with(codes).holds()
    }

    /// [`PliCache::check`] also surfacing the first violating row pair
    /// (two rows agreeing on `lhs` but not on `rhs`) when the FD fails —
    /// `None` means the FD holds. The early-exiting kernel produces the
    /// pair as a by-product, so callers feeding witness caches pay
    /// nothing extra; a cached product settles *holding* FDs by count
    /// comparison without any scan (a violated FD still runs the kernel,
    /// which is the only way to name a pair).
    pub fn check_witness(&mut self, lhs: AttrSet, rhs: AttrId) -> Option<(u32, u32)> {
        debug_assert!(!lhs.contains(rhs), "trivial FD {lhs:?} → {rhs}");
        let both = lhs.with(rhs);
        if self.cache.contains_key(&both) {
            let d_both = self.get(both).distinct_count();
            if self.get(lhs).distinct_count() == d_both {
                return None;
            }
        } else {
            crate::validate::count_product_avoided();
        }
        let codes = &self.rel.column(rhs).codes;
        self.get(lhs).refines_with(codes).violating_pair()
    }

    /// `g3` error of `lhs → rhs` (0 for exact FDs). The rhs labeling is
    /// its dictionary-code column, borrowed — no per-call copy.
    pub fn g3(&mut self, lhs: AttrSet, rhs: AttrId) -> f64 {
        let codes = &self.rel.column(rhs).codes;
        self.get(lhs).g3_error(codes)
    }

    /// Evict entries whose attribute-set size is strictly below `level`,
    /// keeping singletons (cheap to retain, expensive to recompute).
    pub fn retain_levels(&mut self, level: usize) {
        let before = self.cache.len();
        self.cache.retain(|k, _| k.len() >= level || k.len() <= 1);
        self.metrics
            .evictions
            .add((before - self.cache.len()) as u64);
    }

    /// Insert a partition computed elsewhere (e.g. patched by
    /// [`Pli::apply_delta`]) so later [`PliCache::get`] calls reuse it.
    pub fn seed(&mut self, set: AttrSet, pli: Pli) {
        debug_assert_eq!(pli.nrows(), self.rel.nrows(), "seeded PLI row mismatch");
        self.cache.insert(set, pli);
    }

    /// True iff `set`'s partition is cached.
    pub fn contains(&self, set: AttrSet) -> bool {
        self.cache.contains_key(&set)
    }

    /// Tear down the cache, keeping the computed partitions. Together with
    /// [`PliCache::from_map`] this lets owners persist partitions across
    /// relation versions (the cache itself borrows one relation).
    pub fn into_map(self) -> HashMap<AttrSet, Pli> {
        self.cache
    }

    /// Rebuild a cache around previously extracted partitions. Partitions
    /// must describe `rel` (same row count) — patch them through
    /// [`crate::delta::rebase_plis`] when the relation has moved on.
    pub fn from_map(rel: &'a Relation, map: HashMap<AttrSet, Pli>) -> Self {
        debug_assert!(map.values().all(|p| p.nrows() == rel.nrows()));
        let mut cache = PliCache {
            rel,
            cache: map,
            scratch: IntersectScratch::new(),
            hits: 0,
            misses: 0,
            metrics: CacheMetrics::resolve(),
        };
        // Singletons are the seeds every derived partition needs; make
        // sure they exist even if the caller's map was filtered down.
        for a in 0..rel.ncols() {
            cache
                .cache
                .entry(AttrSet::single(a))
                .or_insert_with(|| Pli::for_attr(rel, a));
        }
        cache
    }

    /// Number of cached partitions.
    pub fn len(&self) -> usize {
        self.cache.len()
    }

    /// True iff nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.cache.is_empty()
    }

    /// Approximate heap footprint of the cached partitions.
    pub fn approx_bytes(&self) -> usize {
        self.cache.values().map(Pli::approx_bytes).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pli::fd_holds_bruteforce;
    use infine_relation::{relation_from_rows, Value};

    fn rel() -> Relation {
        relation_from_rows(
            "t",
            &["a", "b", "c", "d"],
            &[
                &[Value::Int(1), Value::Int(1), Value::Int(1), Value::Int(1)],
                &[Value::Int(1), Value::Int(1), Value::Int(2), Value::Int(1)],
                &[Value::Int(2), Value::Int(1), Value::Int(1), Value::Int(2)],
                &[Value::Int(2), Value::Int(2), Value::Int(2), Value::Int(2)],
                &[Value::Int(3), Value::Int(2), Value::Int(2), Value::Int(2)],
            ],
        )
    }

    #[test]
    fn cache_agrees_with_bruteforce_everywhere() {
        let r = rel();
        let mut cache = PliCache::new(&r);
        for lhs_bits in 1u64..16 {
            let lhs = AttrSet::from_bits(lhs_bits);
            for rhs in 0..4 {
                if lhs.contains(rhs) {
                    continue;
                }
                assert_eq!(
                    cache.fd_holds(lhs, rhs),
                    fd_holds_bruteforce(&r, lhs, rhs),
                    "lhs={lhs:?} rhs={rhs}"
                );
            }
        }
    }

    #[test]
    fn check_agrees_with_bruteforce_everywhere() {
        let r = rel();
        let mut cache = PliCache::new(&r);
        for lhs_bits in 1u64..16 {
            let lhs = AttrSet::from_bits(lhs_bits);
            for rhs in 0..4 {
                if lhs.contains(rhs) {
                    continue;
                }
                assert_eq!(
                    cache.check(lhs, rhs),
                    fd_holds_bruteforce(&r, lhs, rhs),
                    "lhs={lhs:?} rhs={rhs}"
                );
            }
        }
    }

    #[test]
    fn check_never_materializes_the_product() {
        let r = rel();
        let mut cache = PliCache::new(&r);
        let lhs: AttrSet = [0usize, 1].into_iter().collect();
        cache.check(lhs, 2);
        cache.check_witness(lhs, 3);
        // The lhs partition is genuinely needed and gets cached; the
        // products exist nowhere.
        assert!(cache.contains(lhs));
        assert!(!cache.contains(lhs.with(2)));
        assert!(!cache.contains(lhs.with(3)));
    }

    #[test]
    fn check_witness_pair_violates() {
        let r = rel();
        let mut cache = PliCache::new(&r);
        // a → c is violated (rows 0,1 share a=1, differ on c).
        let pair = cache
            .check_witness(AttrSet::single(0), 2)
            .expect("a → c is violated");
        assert_eq!(r.code(pair.0 as usize, 0), r.code(pair.1 as usize, 0));
        assert_ne!(r.code(pair.0 as usize, 2), r.code(pair.1 as usize, 2));
        // a → d holds exactly.
        assert_eq!(cache.check_witness(AttrSet::single(0), 3), None);
    }

    #[test]
    fn check_serves_cached_products_by_count_comparison() {
        let r = rel();
        let mut cache = PliCache::new(&r);
        let lhs = AttrSet::single(0);
        let both = lhs.with(3);
        cache.seed(both, Pli::for_set(&r, both));
        // Cached product: the verdict is read off the distinct counts and
        // must agree with the kernel path of a cold cache.
        assert!(cache.check(lhs, 3));
        let mut cold = PliCache::new(&r);
        assert!(cold.check(lhs, 3));
    }

    #[test]
    fn memoization_hits_on_repeat() {
        let r = rel();
        let mut cache = PliCache::new(&r);
        let set: AttrSet = [0usize, 1].into_iter().collect();
        cache.get(set);
        let (_, misses1) = cache.stats();
        cache.get(set);
        let (hits2, misses2) = cache.stats();
        assert_eq!(misses1, misses2);
        assert!(hits2 >= 1);
    }

    #[test]
    fn seed_and_contains_bypass_compute() {
        let r = rel();
        let mut cache = PliCache::new(&r);
        let set: AttrSet = [0usize, 1].into_iter().collect();
        assert!(!cache.contains(set));
        cache.seed(set, Pli::for_set(&r, set));
        assert!(cache.contains(set));
        let (_, misses_before) = cache.stats();
        assert_eq!(
            cache.get(set).distinct_count(),
            Pli::for_set(&r, set).distinct_count()
        );
        assert_eq!(cache.stats().1, misses_before); // served from the seed
    }

    #[test]
    fn with_attrs_restricts_seeding() {
        let r = rel();
        let cache = PliCache::with_attrs(&r, [0usize, 2].into_iter().collect());
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn retain_levels_evicts_middle() {
        let r = rel();
        let mut cache = PliCache::new(&r);
        cache.get([0usize, 1].into_iter().collect());
        cache.get([0usize, 1, 2].into_iter().collect());
        let before = cache.len();
        cache.retain_levels(3);
        assert!(cache.len() < before);
        // singletons survive
        assert!(cache.len() >= 4);
    }

    #[test]
    fn g3_zero_iff_exact() {
        let r = rel();
        let mut cache = PliCache::new(&r);
        // a → d holds exactly in rel()
        assert!(cache.fd_holds(AttrSet::single(0), 3));
        assert_eq!(cache.g3(AttrSet::single(0), 3), 0.0);
        // a → c: class a=1 rows {0,1} differ on c → violations ≥ 1
        assert!(!cache.fd_holds(AttrSet::single(0), 2));
        assert!(cache.g3(AttrSet::single(0), 2) > 0.0);
    }

    #[test]
    fn prefetch_matches_on_demand_compute() {
        let r = rel();
        let sets: Vec<AttrSet> = (1u64..16)
            .map(AttrSet::from_bits)
            .filter(|s| s.len() >= 2)
            .collect();
        infine_exec::set_parallelism(4);
        let mut pre = PliCache::new(&r);
        pre.prefetch(&sets);
        let mut lazy = PliCache::new(&r);
        for &s in &sets {
            assert_eq!(pre.peek(s).expect("prefetched"), lazy.get(s), "set {s:?}");
        }
        // prefetched entries are hits now
        let misses_before = pre.stats().1;
        for &s in &sets {
            pre.get(s);
        }
        assert_eq!(pre.stats().1, misses_before);

        // With a sequential pool the hint is a no-op: nothing is computed
        // eagerly, the lazy path still serves everything.
        infine_exec::set_parallelism(1);
        let mut noop = PliCache::new(&r);
        noop.prefetch(&sets);
        assert!(sets.iter().all(|&s| noop.peek(s).is_none()));
        for &s in &sets {
            assert_eq!(noop.get(s), lazy.peek(s).expect("computed above"));
        }
        infine_exec::set_parallelism(0);
    }

    #[test]
    fn peek_never_computes() {
        let r = rel();
        let cache = PliCache::new(&r);
        assert!(cache.peek([0usize, 1].into_iter().collect()).is_none());
        assert!(cache.peek(AttrSet::single(0)).is_some());
    }
}
