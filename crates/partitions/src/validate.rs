//! Counting-only FD validation kernel.
//!
//! The question every lattice miner asks, over and over, is *"does
//! refining `π_X` by attribute `a` split any class?"* — equivalently,
//! `|π_X| = |π_{X∪a}|` counting singletons. Materializing `π_{X∪a}` to
//! answer it pays a full partition product (probe fill, per-class
//! counting-sort split, two output allocations, cache insertion) for a
//! boolean. This module answers the same question with a single forward
//! scan of `π_X`'s CSR rows against a **packed probe vector** and nothing
//! else: no staging buffers, no output arrays, no cache growth.
//!
//! ## Packed-probe layout
//!
//! A probe is a `&[u32]` mapping row id → *refinement key*:
//!
//! * For the dominant case — refining by a single attribute `a` — the
//!   probe **is** the attribute's dictionary-code column, borrowed
//!   straight from the relation (`rel.column(a).codes`). Codes are an
//!   injective labeling of `a`'s values (with `NULL = NULL` being one
//!   code), so equal code ⇔ equal value and zero setup work is needed.
//! * For refining by another stripped partition, [`Pli::packed_probe`]
//!   writes class ids with the sentinel [`UNIQUE`] (`u32::MAX`) marking
//!   rows the refiner stripped. The sentinel is an ordinary `u32` — the
//!   scan XORs it like any other key, with **no** signed `-1` branch; the
//!   only sentinel-aware branch is one test of a class's *first* key,
//!   because a stripped-in-refiner row carries a value shared with no
//!   other row and therefore splits any class of two or more rows it
//!   appears in. (Dictionary codes never reach `u32::MAX`: codes index a
//!   dictionary that must fit in memory.)
//!
//! ## Early-exit contract
//!
//! [`Pli::refines_with`] walks classes in canonical order and, inside a
//! class, members in ascending row order, comparing every key against the
//! class's first key with an unrolled XOR/OR block scan (one branch per
//! four members on the no-split path). It returns at the **first**
//! mismatch with [`Verdict::Violated`] carrying the witnessing row pair
//! `(first member, first member disagreeing with it)` — the same pair a
//! sequential scan of the materializing path's classes would surface, so
//! callers that feed witness caches (HyFD's agree sets, the incremental
//! engine's violation witnesses) get their pair for free and
//! deterministically. Invalid candidates — the vast majority at every
//! lattice level — therefore terminate within their first few classes
//! instead of paying a full product; only *valid* FDs scan all of
//! `π_X`'s stripped rows, which is still strictly cheaper than building
//! `π_{X∪a}`.
//!
//! Correctness: `X → a` holds iff every class of `π_X` is constant on
//! `a`'s key. Singleton classes are constant trivially, so scanning only
//! the stripped classes is a complete check — the verdict coincides with
//! the `distinct_count(X) == distinct_count(X∪a)` oracle (pinned by the
//! `counting_kernel_equivalence` property suite, including across
//! delta-patched partitions).
//!
//! ## Counters
//!
//! The kernel records relaxed counters — checks run, checks that
//! early-exited on a split, and products whose materialization the
//! [`crate::PliCache::check`] fast path avoided — into the *ambient*
//! `infine-obs` registry (`infine_kernel_*_total`), so benches can
//! report how much validation traffic bypasses the product machinery.
//! With no scope entered that is the process-wide default registry;
//! a maintenance engine enters its own scoped registry, which keeps
//! per-engine deltas exact even when engines (or shard fleets) run
//! concurrently — the historical global-counter race. Handles are
//! cached per thread and re-resolved only when the ambient registry
//! changes, so the hot path stays a couple of relaxed `fetch_add`s.
//! See [`kernel_counters`] / [`kernel_counters_in`] /
//! [`reset_kernel_counters`].

use crate::pli::Pli;
use std::cell::RefCell;
use std::collections::hash_map::Entry;
use std::collections::HashMap;

/// Probe sentinel for rows stripped in the refining partition: such a row
/// shares its refinement value with no other row, so it splits any class
/// of size ≥ 2 containing it.
pub const UNIQUE: u32 = u32::MAX;

/// Outcome of a counting-only validity check.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// No class splits: the FD holds.
    Holds,
    /// A class splits; `pair` is the first witnessing row pair in scan
    /// order (two rows of one class with different refinement keys).
    Violated {
        /// `(first member of the violating class, first member disagreeing
        /// with it)` — both row ids of the partitioned relation.
        pair: (u32, u32),
    },
}

impl Verdict {
    /// True iff the FD holds.
    pub fn holds(self) -> bool {
        matches!(self, Verdict::Holds)
    }

    /// The witnessing pair of a violated check, if any.
    pub fn violating_pair(self) -> Option<(u32, u32)> {
        match self {
            Verdict::Holds => None,
            Verdict::Violated { pair } => Some(pair),
        }
    }
}

/// Resolved handles for the three kernel series in one registry.
#[derive(Clone)]
struct KernelHandles {
    registry_id: u64,
    checks: infine_obs::Counter,
    early_exits: infine_obs::Counter,
    products_avoided: infine_obs::Counter,
}

impl KernelHandles {
    fn resolve(registry: &infine_obs::Registry) -> Self {
        Self {
            registry_id: registry.id(),
            checks: registry.counter(
                "infine_kernel_checks_total",
                "Counting-only validity checks run (refines_with / refines_on calls).",
                &[],
            ),
            early_exits: registry.counter(
                "infine_kernel_early_exits_total",
                "Checks that terminated at the first class split (invalid candidates).",
                &[],
            ),
            products_avoided: registry.counter(
                "infine_kernel_products_avoided_total",
                "Partition products the PliCache fast path answered without materializing.",
                &[],
            ),
        }
    }
}

thread_local! {
    /// Per-thread handle cache, keyed by the ambient registry's id:
    /// the kernel re-resolves only when the scope changes underneath it.
    static HANDLES: RefCell<Option<KernelHandles>> = const { RefCell::new(None) };
}

#[inline]
fn with_handles<R>(f: impl FnOnce(&KernelHandles) -> R) -> R {
    infine_obs::with_current(|registry| {
        HANDLES.with(|cache| {
            let mut cache = cache.borrow_mut();
            if cache
                .as_ref()
                .is_none_or(|h| h.registry_id != registry.id())
            {
                *cache = Some(KernelHandles::resolve(registry));
            }
            f(cache.as_ref().expect("just resolved"))
        })
    })
}

/// Snapshot of one registry's kernel counters (compat shim around the
/// `infine-obs` series; `since`/`plus` keep the old delta idiom).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct KernelCounters {
    /// Counting-only validity checks run ([`Pli::refines_with`] /
    /// [`Pli::refines_on`] calls).
    pub checks: u64,
    /// Checks that terminated at the first class split (invalid
    /// candidates — the early-exit path).
    pub early_exits: u64,
    /// Partition products [`crate::PliCache::check`] answered without
    /// materializing (the product was absent and stays absent).
    pub products_avoided: u64,
}

impl KernelCounters {
    /// Counter movement since an earlier snapshot.
    pub fn since(self, earlier: KernelCounters) -> KernelCounters {
        KernelCounters {
            checks: self.checks - earlier.checks,
            early_exits: self.early_exits - earlier.early_exits,
            products_avoided: self.products_avoided - earlier.products_avoided,
        }
    }

    /// Component-wise sum (aggregating per-scenario deltas).
    pub fn plus(self, other: KernelCounters) -> KernelCounters {
        KernelCounters {
            checks: self.checks + other.checks,
            early_exits: self.early_exits + other.early_exits,
            products_avoided: self.products_avoided + other.products_avoided,
        }
    }
}

/// Read the kernel counters of the calling thread's ambient registry.
/// With no scope entered this is the process-wide default registry,
/// which (via parent chaining) aggregates every scoped engine's
/// traffic — the pre-obs behavior.
pub fn kernel_counters() -> KernelCounters {
    infine_obs::with_current(kernel_counters_in)
}

/// Read the kernel counters recorded in a specific registry —
/// scope-exact even while other engines run concurrently.
pub fn kernel_counters_in(registry: &infine_obs::Registry) -> KernelCounters {
    let handles = KernelHandles::resolve(registry);
    KernelCounters {
        checks: handles.checks.get(),
        early_exits: handles.early_exits.get(),
        products_avoided: handles.products_avoided.get(),
    }
}

/// Reset the ambient registry's kernel cells to zero (bench harness
/// hook). Parent registries keep their history; children are untouched.
pub fn reset_kernel_counters() {
    infine_obs::with_current(|registry| {
        let handles = KernelHandles::resolve(registry);
        handles.checks.reset();
        handles.early_exits.reset();
        handles.products_avoided.reset();
    });
}

pub(crate) fn count_product_avoided() {
    with_handles(|h| h.products_avoided.inc());
}

/// First member of `class` whose probe key differs from the first
/// member's, as a witnessing pair. Unrolled by four: the common (no-split
/// prefix) path folds four XOR differences into one branch; only a block
/// containing a mismatch re-scans element-wise to name the exact row.
#[inline]
fn class_split(class: &[u32], probe: &[u32]) -> Option<(u32, u32)> {
    let first = class[0];
    let k0 = probe[first as usize];
    if k0 == UNIQUE {
        // The first member is stripped in the refiner: its value is shared
        // with no other row, so the class (size ≥ 2) splits immediately.
        return Some((first, class[1]));
    }
    let rest = &class[1..];
    let mut i = 0;
    while i + 4 <= rest.len() {
        let d = (probe[rest[i] as usize] ^ k0)
            | (probe[rest[i + 1] as usize] ^ k0)
            | (probe[rest[i + 2] as usize] ^ k0)
            | (probe[rest[i + 3] as usize] ^ k0);
        if d != 0 {
            break; // mismatch inside this block: name it below
        }
        i += 4;
    }
    rest[i..]
        .iter()
        .find(|&&row| probe[row as usize] != k0)
        .map(|&row| (first, row))
}

impl Pli {
    /// Counting-only check that refining `self = π_X` by the packed
    /// `probe` splits no class — i.e. the FD `X → a` holds when `probe`
    /// keys rows by `a` (see the [module docs](self) for the probe layout
    /// and the early-exit contract). `probe` must cover every row id in
    /// the partition.
    pub fn refines_with(&self, probe: &[u32]) -> Verdict {
        with_handles(|h| h.checks.inc());
        for class in self.classes() {
            if let Some(pair) = class_split(class, probe) {
                with_handles(|h| h.early_exits.inc());
                return Verdict::Violated { pair };
            }
        }
        Verdict::Holds
    }

    /// [`Pli::refines_with`] restricted to the listed class indices.
    ///
    /// With `classes` = the dirty classes of a delta-patched `π_X`, this
    /// is a complete validity check for an FD `X → a` that held before
    /// the batch: violations can only appear in touched classes, so the
    /// verdict (and, because clean classes cannot violate, the witnessing
    /// pair) matches a full [`Pli::refines_with`] scan.
    pub fn refines_on(&self, classes: &[usize], probe: &[u32]) -> Verdict {
        with_handles(|h| h.checks.inc());
        for &ci in classes {
            if let Some(pair) = class_split(self.class(ci), probe) {
                with_handles(|h| h.early_exits.inc());
                return Verdict::Violated { pair };
            }
        }
        Verdict::Holds
    }

    /// Write this partition's packed probe into a reusable buffer: row →
    /// class id, [`UNIQUE`] for stripped (singleton) rows.
    pub fn packed_probe(&self, probe: &mut Vec<u32>) {
        probe.clear();
        probe.resize(self.nrows(), UNIQUE);
        for (ci, class) in self.classes().enumerate() {
            for &row in class {
                probe[row as usize] = ci as u32;
            }
        }
    }

    /// Counting-only check that `self = π_X` refines to `π_X ∩ other`
    /// without materializing the product: packs `other`'s probe into
    /// `probe_buf` and runs the kernel.
    pub fn refines_pli(&self, other: &Pli, probe_buf: &mut Vec<u32>) -> Verdict {
        other.packed_probe(probe_buf);
        self.refines_with(probe_buf)
    }
}

/// Resolved handles for the three join-probe series in one registry.
#[derive(Clone)]
struct JoinProbeHandles {
    registry_id: u64,
    probes: infine_obs::Counter,
    early_exits: infine_obs::Counter,
    index_hops: infine_obs::Counter,
}

impl JoinProbeHandles {
    fn resolve(registry: &infine_obs::Registry) -> Self {
        Self {
            registry_id: registry.id(),
            probes: registry.counter(
                "infine_join_probe_probes_total",
                "Join-index validity checks run (JoinProbe::check / check_class calls).",
                &[],
            ),
            early_exits: registry.counter(
                "infine_join_probe_early_exits_total",
                "Join-probe checks that terminated at the first conflicting expansion.",
                &[],
            ),
            index_hops: registry.counter(
                "infine_join_probe_index_hops_total",
                "Join-index lookups performed while expanding probe rows.",
                &[],
            ),
        }
    }
}

thread_local! {
    /// Per-thread join-probe handle cache, keyed like [`HANDLES`].
    static JP_HANDLES: RefCell<Option<JoinProbeHandles>> = const { RefCell::new(None) };
}

#[inline]
fn with_probe_handles<R>(f: impl FnOnce(&JoinProbeHandles) -> R) -> R {
    infine_obs::with_current(|registry| {
        JP_HANDLES.with(|cache| {
            let mut cache = cache.borrow_mut();
            if cache
                .as_ref()
                .is_none_or(|h| h.registry_id != registry.id())
            {
                *cache = Some(JoinProbeHandles::resolve(registry));
            }
            f(cache.as_ref().expect("just resolved"))
        })
    })
}

/// Snapshot of one registry's join-probe counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct JoinProbeCounters {
    /// Join-index validity checks run ([`JoinProbe::check`] /
    /// [`JoinProbe::check_class`] calls).
    pub probes: u64,
    /// Checks that terminated at the first conflicting expansion.
    pub early_exits: u64,
    /// Join-index lookups performed while expanding probe rows.
    pub index_hops: u64,
}

impl JoinProbeCounters {
    /// Counter movement since an earlier snapshot.
    pub fn since(self, earlier: JoinProbeCounters) -> JoinProbeCounters {
        JoinProbeCounters {
            probes: self.probes - earlier.probes,
            early_exits: self.early_exits - earlier.early_exits,
            index_hops: self.index_hops - earlier.index_hops,
        }
    }

    /// Component-wise sum (aggregating per-scenario deltas).
    pub fn plus(self, other: JoinProbeCounters) -> JoinProbeCounters {
        JoinProbeCounters {
            probes: self.probes + other.probes,
            early_exits: self.early_exits + other.early_exits,
            index_hops: self.index_hops + other.index_hops,
        }
    }
}

/// Read the join-probe counters of the calling thread's ambient registry.
pub fn join_probe_counters() -> JoinProbeCounters {
    infine_obs::with_current(join_probe_counters_in)
}

/// Read the join-probe counters recorded in a specific registry.
pub fn join_probe_counters_in(registry: &infine_obs::Registry) -> JoinProbeCounters {
    let handles = JoinProbeHandles::resolve(registry);
    JoinProbeCounters {
        probes: handles.probes.get(),
        early_exits: handles.early_exits.get(),
        index_hops: handles.index_hops.get(),
    }
}

/// Reset the ambient registry's join-probe cells to zero (bench hook).
pub fn reset_join_probe_counters() {
    infine_obs::with_current(|registry| {
        let handles = JoinProbeHandles::resolve(registry);
        handles.probes.reset();
        handles.early_exits.reset();
        handles.index_hops.reset();
    });
}

/// Collector handed to a [`JoinProbe`] expansion closure: the closure
/// reports, for one anchor row, every view-row expansion as a
/// `(probe key, rhs code)` pair, plus the join-index lookups it made.
#[derive(Debug, Default)]
pub struct ProbeSink {
    emits: Vec<(Vec<u32>, u32)>,
    hops: u64,
}

impl ProbeSink {
    /// Report one expansion of the current anchor row: `key` holds the
    /// dictionary codes of the lhs columns living *outside* the anchor
    /// relation (layout fixed by the caller, identical across the whole
    /// check), `code` the rhs dictionary code.
    #[inline]
    pub fn emit(&mut self, key: Vec<u32>, code: u32) {
        self.emits.push((key, code));
    }

    /// Record `n` join-index lookups (flows into
    /// `infine_join_probe_index_hops_total`).
    #[inline]
    pub fn hops(&mut self, n: u64) {
        self.hops += n;
    }
}

/// Counting-kernel twin for *virtual* (non-materialized) views: validates
/// a view-level FD `X → a` by walking CSR classes of an **anchor** PLI —
/// `π_{X∩anchor}` over the base relation owning `a` — and resolving each
/// member row's view expansions through join indexes instead of a
/// materialized column.
///
/// The caller supplies an `expand` closure mapping one anchor row to the
/// `(key, rhs code)` pairs of every view row it joins into, where `key`
/// carries the codes of the lhs columns outside the anchor relation.
/// Two view rows agree on `X` iff their anchor rows share a class (the
/// in-anchor lhs codes) *and* their keys are equal; they then must agree
/// on the rhs code or the FD is violated. Like [`Pli::refines_with`],
/// the scan early-exits at the first conflict with a witnessing pair —
/// here a pair of *anchor* rows `(first emitter of the key, conflicting
/// row)`, which may name the same row twice when a single anchor row
/// expands to two conflicting view rows through different join partners.
///
/// Anchor rows that dangle (zero expansions — eliminated by the join)
/// simply emit nothing; rows the stripped anchor partition dropped as
/// singletons are *not* skippable (one base row can expand to many view
/// rows) and are passed separately via `singles`, each its own group.
#[derive(Debug, Default)]
pub struct JoinProbe {
    seen: HashMap<Vec<u32>, (u32, u32)>,
    sink: ProbeSink,
}

/// Scan one agree-group of anchor rows; `seen` maps key → (rhs code,
/// emitting row) within the group. Returns the first conflicting pair.
fn scan_group(
    seen: &mut HashMap<Vec<u32>, (u32, u32)>,
    sink: &mut ProbeSink,
    rows: &[u32],
    expand: &mut impl FnMut(u32, &mut ProbeSink),
) -> Option<(u32, u32)> {
    seen.clear();
    for &row in rows {
        sink.emits.clear();
        expand(row, sink);
        for (key, code) in sink.emits.drain(..) {
            match seen.entry(key) {
                Entry::Occupied(e) => {
                    let (code0, row0) = *e.get();
                    if code0 != code {
                        return Some((row0, row));
                    }
                }
                Entry::Vacant(v) => {
                    v.insert((code, row));
                }
            }
        }
    }
    None
}

impl JoinProbe {
    /// Fresh probe state (the internal key table is reused across checks).
    pub fn new() -> JoinProbe {
        JoinProbe::default()
    }

    /// Validate over `anchor`'s CSR classes plus `singles` (anchor rows
    /// the stripped partition dropped), expanding each row through
    /// `expand`. Early-exits with the first witnessing anchor-row pair.
    pub fn check(
        &mut self,
        anchor: &Pli,
        singles: &[u32],
        mut expand: impl FnMut(u32, &mut ProbeSink),
    ) -> Verdict {
        with_probe_handles(|h| h.probes.inc());
        self.sink.hops = 0;
        let mut verdict = Verdict::Holds;
        'scan: {
            for class in anchor.classes() {
                if let Some(pair) = scan_group(&mut self.seen, &mut self.sink, class, &mut expand) {
                    verdict = Verdict::Violated { pair };
                    break 'scan;
                }
            }
            for &row in singles {
                if let Some(pair) = scan_group(&mut self.seen, &mut self.sink, &[row], &mut expand)
                {
                    verdict = Verdict::Violated { pair };
                    break 'scan;
                }
            }
        }
        self.settle(verdict)
    }

    /// Validate `rows` as one agree-group — the empty-`X∩anchor` case,
    /// where every anchor row belongs to the same class.
    pub fn check_class(
        &mut self,
        rows: &[u32],
        mut expand: impl FnMut(u32, &mut ProbeSink),
    ) -> Verdict {
        with_probe_handles(|h| h.probes.inc());
        self.sink.hops = 0;
        let verdict = match scan_group(&mut self.seen, &mut self.sink, rows, &mut expand) {
            Some(pair) => Verdict::Violated { pair },
            None => Verdict::Holds,
        };
        self.settle(verdict)
    }

    fn settle(&mut self, verdict: Verdict) -> Verdict {
        with_probe_handles(|h| {
            if !verdict.holds() {
                h.early_exits.inc();
            }
            if self.sink.hops > 0 {
                h.index_hops.add(self.sink.hops);
            }
        });
        verdict
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use infine_relation::{relation_from_rows, AttrSet, Relation, Value};

    fn rel() -> Relation {
        // a b c
        // 1 x 0
        // 1 x 1
        // 2 y 0
        // 2 z 0
        // 3 z 1
        relation_from_rows(
            "t",
            &["a", "b", "c"],
            &[
                &[Value::Int(1), Value::str("x"), Value::Int(0)],
                &[Value::Int(1), Value::str("x"), Value::Int(1)],
                &[Value::Int(2), Value::str("y"), Value::Int(0)],
                &[Value::Int(2), Value::str("z"), Value::Int(0)],
                &[Value::Int(3), Value::str("z"), Value::Int(1)],
            ],
        )
    }

    fn oracle(r: &Relation, lhs: AttrSet, rhs: usize) -> bool {
        let px = Pli::for_set(r, lhs);
        let pxa = Pli::for_set(r, lhs.with(rhs));
        px.refines_to(&pxa)
    }

    #[test]
    fn verdict_matches_distinct_count_oracle_exhaustively() {
        let r = rel();
        for lhs_bits in 0u64..8 {
            let lhs = AttrSet::from_bits(lhs_bits);
            for rhs in 0..3 {
                if lhs.contains(rhs) {
                    continue;
                }
                let px = Pli::for_set(&r, lhs);
                let verdict = px.refines_with(&r.column(rhs).codes);
                assert_eq!(
                    verdict.holds(),
                    oracle(&r, lhs, rhs),
                    "lhs={lhs:?} rhs={rhs}"
                );
            }
        }
    }

    #[test]
    fn violated_verdict_names_a_real_pair() {
        let r = rel();
        // a → b is violated by rows 2,3 (a=2, b ∈ {y,z}).
        let pa = Pli::for_attr(&r, 0);
        let v = pa.refines_with(&r.column(1).codes);
        let (i, j) = v.violating_pair().expect("a → b is violated");
        assert_eq!((i, j), (2, 3));
        assert_eq!(r.code(i as usize, 0), r.code(j as usize, 0));
        assert_ne!(r.code(i as usize, 1), r.code(j as usize, 1));
    }

    #[test]
    fn unrolled_blocks_find_late_mismatches() {
        // One class of 11 rows, constant except the last — exercises the
        // block scan's tail and the exact re-scan of a dirty block.
        for split_at in [1usize, 4, 5, 8, 9, 10] {
            let rows: Vec<Vec<Value>> = (0..11)
                .map(|i| vec![Value::Int(7), Value::Int(if i == split_at { 1 } else { 0 })])
                .collect();
            let refs: Vec<&[Value]> = rows.iter().map(|r| r.as_slice()).collect();
            let r = relation_from_rows("t", &["a", "b"], &refs);
            let pa = Pli::for_attr(&r, 0);
            let v = pa.refines_with(&r.column(1).codes);
            assert_eq!(
                v.violating_pair(),
                Some((0, split_at as u32)),
                "split_at={split_at}"
            );
        }
    }

    #[test]
    fn packed_probe_marks_singletons_unique() {
        let r = rel();
        let pa = Pli::for_attr(&r, 0);
        let mut probe = Vec::new();
        pa.packed_probe(&mut probe);
        assert_eq!(probe.len(), 5);
        assert_eq!(probe[4], UNIQUE); // a=3 is a singleton
        assert_eq!(probe[0], probe[1]);
        assert_ne!(probe[0], probe[2]);
    }

    #[test]
    fn refines_pli_agrees_with_product_counts() {
        let r = rel();
        let mut buf = Vec::new();
        for x in 0..3usize {
            for y in 0..3usize {
                if x == y {
                    continue;
                }
                let px = Pli::for_attr(&r, x);
                let py = Pli::for_attr(&r, y);
                let product = px.intersect(&py);
                assert_eq!(
                    px.refines_pli(&py, &mut buf).holds(),
                    px.distinct_count() == product.distinct_count(),
                    "x={x} y={y}"
                );
            }
        }
    }

    #[test]
    fn sentinel_first_member_splits_immediately() {
        // π_a class {0,1}; refiner π_c strips... construct directly: probe
        // with UNIQUE at the class's first member must violate with the
        // class's first two members as the pair.
        let p = Pli::from_classes(vec![vec![0, 1, 2]], 3);
        let probe = vec![UNIQUE, 0, 0];
        assert_eq!(p.refines_with(&probe).violating_pair(), Some((0, 1)));
    }

    #[test]
    fn refines_on_subset_of_classes() {
        let r = rel();
        let pa = Pli::for_attr(&r, 0); // classes {0,1}, {2,3}
        let codes = &r.column(1).codes; // b: constant on {0,1}, splits {2,3}
        assert!(pa.refines_on(&[0], codes).holds());
        assert_eq!(pa.refines_on(&[1], codes).violating_pair(), Some((2, 3)));
        assert_eq!(pa.refines_on(&[0, 1], codes), pa.refines_with(codes));
    }

    #[test]
    fn join_probe_detects_cross_partner_conflicts() {
        // Anchor rows 0,1 share a class; both expand to the same foreign
        // key but disagree on the rhs code → violated with that pair.
        let p = Pli::from_classes(vec![vec![0, 1]], 2);
        let mut jp = JoinProbe::new();
        let v = jp.check(&p, &[], |row, sink| {
            sink.hops(1);
            sink.emit(vec![0], if row == 0 { 5 } else { 6 });
        });
        assert_eq!(v.violating_pair(), Some((0, 1)));
    }

    #[test]
    fn join_probe_single_row_self_conflict() {
        // A singleton anchor row fanning out to two view rows with equal
        // keys but different rhs codes violates on its own: the pair
        // names the same anchor row twice.
        let p = Pli::from_classes(vec![], 1);
        let mut jp = JoinProbe::new();
        let v = jp.check(&p, &[0], |_, sink| {
            sink.emit(vec![3], 1);
            sink.emit(vec![3], 2);
        });
        assert_eq!(v.violating_pair(), Some((0, 0)));
    }

    #[test]
    fn join_probe_holds_when_keys_differ_or_rows_dangle() {
        let p = Pli::from_classes(vec![vec![0, 1, 2]], 3);
        let mut jp = JoinProbe::new();
        let v = jp.check(&p, &[], |row, sink| {
            if row == 2 {
                return; // dangling: eliminated by the join, emits nothing
            }
            sink.emit(vec![row], 7); // distinct keys never conflict
        });
        assert!(v.holds());
    }

    #[test]
    fn join_probe_check_class_and_counters() {
        let before = join_probe_counters();
        let mut jp = JoinProbe::new();
        let v = jp.check_class(&[0, 1], |row, sink| {
            sink.hops(2);
            sink.emit(Vec::new(), row); // empty key: rhs must be constant
        });
        assert_eq!(v.violating_pair(), Some((0, 1)));
        let held = jp.check_class(&[0, 1], |_, sink| sink.emit(Vec::new(), 9));
        assert!(held.holds());
        let d = join_probe_counters().since(before);
        assert!(d.probes >= 2 && d.early_exits >= 1 && d.index_hops >= 2);
    }

    #[test]
    fn counters_move() {
        // Other tests run concurrently in this process and also bump the
        // global counters, so only monotone (≥) movement is asserted.
        let r = rel();
        let pa = Pli::for_attr(&r, 0);
        let before = kernel_counters();
        pa.refines_with(&r.column(1).codes); // violated → early exit
        pa.refines_with(&r.column(0).codes); // trivially holds
        let d = kernel_counters().since(before);
        assert!(d.checks >= 2);
        assert!(d.early_exits >= 1);
    }
}
