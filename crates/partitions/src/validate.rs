//! Counting-only FD validation kernel.
//!
//! The question every lattice miner asks, over and over, is *"does
//! refining `π_X` by attribute `a` split any class?"* — equivalently,
//! `|π_X| = |π_{X∪a}|` counting singletons. Materializing `π_{X∪a}` to
//! answer it pays a full partition product (probe fill, per-class
//! counting-sort split, two output allocations, cache insertion) for a
//! boolean. This module answers the same question with a single forward
//! scan of `π_X`'s CSR rows against a **packed probe vector** and nothing
//! else: no staging buffers, no output arrays, no cache growth.
//!
//! ## Packed-probe layout
//!
//! A probe is a `&[u32]` mapping row id → *refinement key*:
//!
//! * For the dominant case — refining by a single attribute `a` — the
//!   probe **is** the attribute's dictionary-code column, borrowed
//!   straight from the relation (`rel.column(a).codes`). Codes are an
//!   injective labeling of `a`'s values (with `NULL = NULL` being one
//!   code), so equal code ⇔ equal value and zero setup work is needed.
//! * For refining by another stripped partition, [`Pli::packed_probe`]
//!   writes class ids with the sentinel [`UNIQUE`] (`u32::MAX`) marking
//!   rows the refiner stripped. The sentinel is an ordinary `u32` — the
//!   scan XORs it like any other key, with **no** signed `-1` branch; the
//!   only sentinel-aware branch is one test of a class's *first* key,
//!   because a stripped-in-refiner row carries a value shared with no
//!   other row and therefore splits any class of two or more rows it
//!   appears in. (Dictionary codes never reach `u32::MAX`: codes index a
//!   dictionary that must fit in memory.)
//!
//! ## Early-exit contract
//!
//! [`Pli::refines_with`] walks classes in canonical order and, inside a
//! class, members in ascending row order, comparing every key against the
//! class's first key with an unrolled XOR/OR block scan (one branch per
//! four members on the no-split path). It returns at the **first**
//! mismatch with [`Verdict::Violated`] carrying the witnessing row pair
//! `(first member, first member disagreeing with it)` — the same pair a
//! sequential scan of the materializing path's classes would surface, so
//! callers that feed witness caches (HyFD's agree sets, the incremental
//! engine's violation witnesses) get their pair for free and
//! deterministically. Invalid candidates — the vast majority at every
//! lattice level — therefore terminate within their first few classes
//! instead of paying a full product; only *valid* FDs scan all of
//! `π_X`'s stripped rows, which is still strictly cheaper than building
//! `π_{X∪a}`.
//!
//! Correctness: `X → a` holds iff every class of `π_X` is constant on
//! `a`'s key. Singleton classes are constant trivially, so scanning only
//! the stripped classes is a complete check — the verdict coincides with
//! the `distinct_count(X) == distinct_count(X∪a)` oracle (pinned by the
//! `counting_kernel_equivalence` property suite, including across
//! delta-patched partitions).
//!
//! ## Counters
//!
//! The kernel records relaxed counters — checks run, checks that
//! early-exited on a split, and products whose materialization the
//! [`crate::PliCache::check`] fast path avoided — into the *ambient*
//! `infine-obs` registry (`infine_kernel_*_total`), so benches can
//! report how much validation traffic bypasses the product machinery.
//! With no scope entered that is the process-wide default registry;
//! a maintenance engine enters its own scoped registry, which keeps
//! per-engine deltas exact even when engines (or shard fleets) run
//! concurrently — the historical global-counter race. Handles are
//! cached per thread and re-resolved only when the ambient registry
//! changes, so the hot path stays a couple of relaxed `fetch_add`s.
//! See [`kernel_counters`] / [`kernel_counters_in`] /
//! [`reset_kernel_counters`].

use crate::pli::Pli;
use std::cell::RefCell;

/// Probe sentinel for rows stripped in the refining partition: such a row
/// shares its refinement value with no other row, so it splits any class
/// of size ≥ 2 containing it.
pub const UNIQUE: u32 = u32::MAX;

/// Outcome of a counting-only validity check.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// No class splits: the FD holds.
    Holds,
    /// A class splits; `pair` is the first witnessing row pair in scan
    /// order (two rows of one class with different refinement keys).
    Violated {
        /// `(first member of the violating class, first member disagreeing
        /// with it)` — both row ids of the partitioned relation.
        pair: (u32, u32),
    },
}

impl Verdict {
    /// True iff the FD holds.
    pub fn holds(self) -> bool {
        matches!(self, Verdict::Holds)
    }

    /// The witnessing pair of a violated check, if any.
    pub fn violating_pair(self) -> Option<(u32, u32)> {
        match self {
            Verdict::Holds => None,
            Verdict::Violated { pair } => Some(pair),
        }
    }
}

/// Resolved handles for the three kernel series in one registry.
#[derive(Clone)]
struct KernelHandles {
    registry_id: u64,
    checks: infine_obs::Counter,
    early_exits: infine_obs::Counter,
    products_avoided: infine_obs::Counter,
}

impl KernelHandles {
    fn resolve(registry: &infine_obs::Registry) -> Self {
        Self {
            registry_id: registry.id(),
            checks: registry.counter(
                "infine_kernel_checks_total",
                "Counting-only validity checks run (refines_with / refines_on calls).",
                &[],
            ),
            early_exits: registry.counter(
                "infine_kernel_early_exits_total",
                "Checks that terminated at the first class split (invalid candidates).",
                &[],
            ),
            products_avoided: registry.counter(
                "infine_kernel_products_avoided_total",
                "Partition products the PliCache fast path answered without materializing.",
                &[],
            ),
        }
    }
}

thread_local! {
    /// Per-thread handle cache, keyed by the ambient registry's id:
    /// the kernel re-resolves only when the scope changes underneath it.
    static HANDLES: RefCell<Option<KernelHandles>> = const { RefCell::new(None) };
}

#[inline]
fn with_handles<R>(f: impl FnOnce(&KernelHandles) -> R) -> R {
    infine_obs::with_current(|registry| {
        HANDLES.with(|cache| {
            let mut cache = cache.borrow_mut();
            if cache
                .as_ref()
                .is_none_or(|h| h.registry_id != registry.id())
            {
                *cache = Some(KernelHandles::resolve(registry));
            }
            f(cache.as_ref().expect("just resolved"))
        })
    })
}

/// Snapshot of one registry's kernel counters (compat shim around the
/// `infine-obs` series; `since`/`plus` keep the old delta idiom).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct KernelCounters {
    /// Counting-only validity checks run ([`Pli::refines_with`] /
    /// [`Pli::refines_on`] calls).
    pub checks: u64,
    /// Checks that terminated at the first class split (invalid
    /// candidates — the early-exit path).
    pub early_exits: u64,
    /// Partition products [`crate::PliCache::check`] answered without
    /// materializing (the product was absent and stays absent).
    pub products_avoided: u64,
}

impl KernelCounters {
    /// Counter movement since an earlier snapshot.
    pub fn since(self, earlier: KernelCounters) -> KernelCounters {
        KernelCounters {
            checks: self.checks - earlier.checks,
            early_exits: self.early_exits - earlier.early_exits,
            products_avoided: self.products_avoided - earlier.products_avoided,
        }
    }

    /// Component-wise sum (aggregating per-scenario deltas).
    pub fn plus(self, other: KernelCounters) -> KernelCounters {
        KernelCounters {
            checks: self.checks + other.checks,
            early_exits: self.early_exits + other.early_exits,
            products_avoided: self.products_avoided + other.products_avoided,
        }
    }
}

/// Read the kernel counters of the calling thread's ambient registry.
/// With no scope entered this is the process-wide default registry,
/// which (via parent chaining) aggregates every scoped engine's
/// traffic — the pre-obs behavior.
pub fn kernel_counters() -> KernelCounters {
    infine_obs::with_current(kernel_counters_in)
}

/// Read the kernel counters recorded in a specific registry —
/// scope-exact even while other engines run concurrently.
pub fn kernel_counters_in(registry: &infine_obs::Registry) -> KernelCounters {
    let handles = KernelHandles::resolve(registry);
    KernelCounters {
        checks: handles.checks.get(),
        early_exits: handles.early_exits.get(),
        products_avoided: handles.products_avoided.get(),
    }
}

/// Reset the ambient registry's kernel cells to zero (bench harness
/// hook). Parent registries keep their history; children are untouched.
pub fn reset_kernel_counters() {
    infine_obs::with_current(|registry| {
        let handles = KernelHandles::resolve(registry);
        handles.checks.reset();
        handles.early_exits.reset();
        handles.products_avoided.reset();
    });
}

pub(crate) fn count_product_avoided() {
    with_handles(|h| h.products_avoided.inc());
}

/// First member of `class` whose probe key differs from the first
/// member's, as a witnessing pair. Unrolled by four: the common (no-split
/// prefix) path folds four XOR differences into one branch; only a block
/// containing a mismatch re-scans element-wise to name the exact row.
#[inline]
fn class_split(class: &[u32], probe: &[u32]) -> Option<(u32, u32)> {
    let first = class[0];
    let k0 = probe[first as usize];
    if k0 == UNIQUE {
        // The first member is stripped in the refiner: its value is shared
        // with no other row, so the class (size ≥ 2) splits immediately.
        return Some((first, class[1]));
    }
    let rest = &class[1..];
    let mut i = 0;
    while i + 4 <= rest.len() {
        let d = (probe[rest[i] as usize] ^ k0)
            | (probe[rest[i + 1] as usize] ^ k0)
            | (probe[rest[i + 2] as usize] ^ k0)
            | (probe[rest[i + 3] as usize] ^ k0);
        if d != 0 {
            break; // mismatch inside this block: name it below
        }
        i += 4;
    }
    rest[i..]
        .iter()
        .find(|&&row| probe[row as usize] != k0)
        .map(|&row| (first, row))
}

impl Pli {
    /// Counting-only check that refining `self = π_X` by the packed
    /// `probe` splits no class — i.e. the FD `X → a` holds when `probe`
    /// keys rows by `a` (see the [module docs](self) for the probe layout
    /// and the early-exit contract). `probe` must cover every row id in
    /// the partition.
    pub fn refines_with(&self, probe: &[u32]) -> Verdict {
        with_handles(|h| h.checks.inc());
        for class in self.classes() {
            if let Some(pair) = class_split(class, probe) {
                with_handles(|h| h.early_exits.inc());
                return Verdict::Violated { pair };
            }
        }
        Verdict::Holds
    }

    /// [`Pli::refines_with`] restricted to the listed class indices.
    ///
    /// With `classes` = the dirty classes of a delta-patched `π_X`, this
    /// is a complete validity check for an FD `X → a` that held before
    /// the batch: violations can only appear in touched classes, so the
    /// verdict (and, because clean classes cannot violate, the witnessing
    /// pair) matches a full [`Pli::refines_with`] scan.
    pub fn refines_on(&self, classes: &[usize], probe: &[u32]) -> Verdict {
        with_handles(|h| h.checks.inc());
        for &ci in classes {
            if let Some(pair) = class_split(self.class(ci), probe) {
                with_handles(|h| h.early_exits.inc());
                return Verdict::Violated { pair };
            }
        }
        Verdict::Holds
    }

    /// Write this partition's packed probe into a reusable buffer: row →
    /// class id, [`UNIQUE`] for stripped (singleton) rows.
    pub fn packed_probe(&self, probe: &mut Vec<u32>) {
        probe.clear();
        probe.resize(self.nrows(), UNIQUE);
        for (ci, class) in self.classes().enumerate() {
            for &row in class {
                probe[row as usize] = ci as u32;
            }
        }
    }

    /// Counting-only check that `self = π_X` refines to `π_X ∩ other`
    /// without materializing the product: packs `other`'s probe into
    /// `probe_buf` and runs the kernel.
    pub fn refines_pli(&self, other: &Pli, probe_buf: &mut Vec<u32>) -> Verdict {
        other.packed_probe(probe_buf);
        self.refines_with(probe_buf)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use infine_relation::{relation_from_rows, AttrSet, Relation, Value};

    fn rel() -> Relation {
        // a b c
        // 1 x 0
        // 1 x 1
        // 2 y 0
        // 2 z 0
        // 3 z 1
        relation_from_rows(
            "t",
            &["a", "b", "c"],
            &[
                &[Value::Int(1), Value::str("x"), Value::Int(0)],
                &[Value::Int(1), Value::str("x"), Value::Int(1)],
                &[Value::Int(2), Value::str("y"), Value::Int(0)],
                &[Value::Int(2), Value::str("z"), Value::Int(0)],
                &[Value::Int(3), Value::str("z"), Value::Int(1)],
            ],
        )
    }

    fn oracle(r: &Relation, lhs: AttrSet, rhs: usize) -> bool {
        let px = Pli::for_set(r, lhs);
        let pxa = Pli::for_set(r, lhs.with(rhs));
        px.refines_to(&pxa)
    }

    #[test]
    fn verdict_matches_distinct_count_oracle_exhaustively() {
        let r = rel();
        for lhs_bits in 0u64..8 {
            let lhs = AttrSet::from_bits(lhs_bits);
            for rhs in 0..3 {
                if lhs.contains(rhs) {
                    continue;
                }
                let px = Pli::for_set(&r, lhs);
                let verdict = px.refines_with(&r.column(rhs).codes);
                assert_eq!(
                    verdict.holds(),
                    oracle(&r, lhs, rhs),
                    "lhs={lhs:?} rhs={rhs}"
                );
            }
        }
    }

    #[test]
    fn violated_verdict_names_a_real_pair() {
        let r = rel();
        // a → b is violated by rows 2,3 (a=2, b ∈ {y,z}).
        let pa = Pli::for_attr(&r, 0);
        let v = pa.refines_with(&r.column(1).codes);
        let (i, j) = v.violating_pair().expect("a → b is violated");
        assert_eq!((i, j), (2, 3));
        assert_eq!(r.code(i as usize, 0), r.code(j as usize, 0));
        assert_ne!(r.code(i as usize, 1), r.code(j as usize, 1));
    }

    #[test]
    fn unrolled_blocks_find_late_mismatches() {
        // One class of 11 rows, constant except the last — exercises the
        // block scan's tail and the exact re-scan of a dirty block.
        for split_at in [1usize, 4, 5, 8, 9, 10] {
            let rows: Vec<Vec<Value>> = (0..11)
                .map(|i| vec![Value::Int(7), Value::Int(if i == split_at { 1 } else { 0 })])
                .collect();
            let refs: Vec<&[Value]> = rows.iter().map(|r| r.as_slice()).collect();
            let r = relation_from_rows("t", &["a", "b"], &refs);
            let pa = Pli::for_attr(&r, 0);
            let v = pa.refines_with(&r.column(1).codes);
            assert_eq!(
                v.violating_pair(),
                Some((0, split_at as u32)),
                "split_at={split_at}"
            );
        }
    }

    #[test]
    fn packed_probe_marks_singletons_unique() {
        let r = rel();
        let pa = Pli::for_attr(&r, 0);
        let mut probe = Vec::new();
        pa.packed_probe(&mut probe);
        assert_eq!(probe.len(), 5);
        assert_eq!(probe[4], UNIQUE); // a=3 is a singleton
        assert_eq!(probe[0], probe[1]);
        assert_ne!(probe[0], probe[2]);
    }

    #[test]
    fn refines_pli_agrees_with_product_counts() {
        let r = rel();
        let mut buf = Vec::new();
        for x in 0..3usize {
            for y in 0..3usize {
                if x == y {
                    continue;
                }
                let px = Pli::for_attr(&r, x);
                let py = Pli::for_attr(&r, y);
                let product = px.intersect(&py);
                assert_eq!(
                    px.refines_pli(&py, &mut buf).holds(),
                    px.distinct_count() == product.distinct_count(),
                    "x={x} y={y}"
                );
            }
        }
    }

    #[test]
    fn sentinel_first_member_splits_immediately() {
        // π_a class {0,1}; refiner π_c strips... construct directly: probe
        // with UNIQUE at the class's first member must violate with the
        // class's first two members as the pair.
        let p = Pli::from_classes(vec![vec![0, 1, 2]], 3);
        let probe = vec![UNIQUE, 0, 0];
        assert_eq!(p.refines_with(&probe).violating_pair(), Some((0, 1)));
    }

    #[test]
    fn refines_on_subset_of_classes() {
        let r = rel();
        let pa = Pli::for_attr(&r, 0); // classes {0,1}, {2,3}
        let codes = &r.column(1).codes; // b: constant on {0,1}, splits {2,3}
        assert!(pa.refines_on(&[0], codes).holds());
        assert_eq!(pa.refines_on(&[1], codes).violating_pair(), Some((2, 3)));
        assert_eq!(pa.refines_on(&[0, 1], codes), pa.refines_with(codes));
    }

    #[test]
    fn counters_move() {
        // Other tests run concurrently in this process and also bump the
        // global counters, so only monotone (≥) movement is asserted.
        let r = rel();
        let pa = Pli::for_attr(&r, 0);
        let before = kernel_counters();
        pa.refines_with(&r.column(1).codes); // violated → early exit
        pa.refines_with(&r.column(0).codes); // trivially holds
        let d = kernel_counters().since(before);
        assert!(d.checks >= 2);
        assert!(d.early_exits >= 1);
    }
}
