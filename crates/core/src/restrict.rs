//! Restriction of a provenance-annotated FD set through a projection.
//!
//! `fds(π_X(V)) ⊆ D` (Theorem 1): a projection never creates FDs on the
//! *instance*, but the canonical cover over the surviving attributes is
//! not the syntactic filter of the cover — an FD chain through a dropped
//! attribute (`a → k`, `k → b` with `k` projected away) leaves `a → b`
//! holding on the projection. Restriction therefore combines:
//!
//! 1. keep (and remap) every triple whose attributes all survive;
//! 2. derive, per surviving rhs, the minimal determinants within the
//!    surviving attributes under the *full* FD set — new FDs get kind
//!    [`FdKind::Inferred`] with the projection as their sub-query.
//!
//! Because the input triple set is complete for the child instance, the
//! output is complete for the projected instance.

use crate::determinants::minimal_determinants;
use crate::provenance::{FdKind, ProvenanceBuilder, ProvenanceTriple};
use infine_discovery::{Fd, FdSet};
use infine_relation::{AttrId, AttrSet, Schema};

/// Restrict `triples` (over `child_schema`) to the child attribute ids in
/// `keep` (output order). Returns the new schema and triples over it.
pub fn restrict_triples(
    triples: &[ProvenanceTriple],
    child_schema: &Schema,
    keep: &[AttrId],
    subquery: &str,
) -> (Schema, Vec<ProvenanceTriple>) {
    let mut new_schema = Schema::new();
    for &a in keep {
        new_schema.push(child_schema.attr(a).clone());
    }
    let keep_set: AttrSet = keep.iter().copied().collect();
    // child id → new id
    let mut remap = vec![usize::MAX; AttrSet::MAX_ATTRS];
    for (new_id, &old_id) in keep.iter().enumerate() {
        remap[old_id] = new_id;
    }
    let remap_set = |s: AttrSet| -> AttrSet { s.iter().map(|a| remap[a]).collect() };

    let mut builder = ProvenanceBuilder::new();
    // 1. syntactic survivors
    for t in triples {
        if t.fd.attrs().is_subset(keep_set) {
            builder.insert(ProvenanceTriple::new(
                Fd::new(remap_set(t.fd.lhs), remap[t.fd.rhs]),
                t.kind,
                t.subquery.clone(),
            ));
        }
    }
    // 2. closure-derived FDs through dropped attributes
    let all: FdSet = triples
        .iter()
        .map(|t| t.fd)
        .collect::<Vec<_>>()
        .into_iter()
        .fold(FdSet::new(), |mut s, fd| {
            s.insert_unchecked(fd);
            s
        });
    for rhs in keep_set.iter() {
        let universe = keep_set.without(rhs);
        for lhs in minimal_determinants(&all, universe, AttrSet::single(rhs)) {
            builder.insert(ProvenanceTriple::new(
                Fd::new(remap_set(lhs), remap[rhs]),
                FdKind::Inferred,
                subquery.to_string(),
            ));
        }
    }
    (new_schema, builder.into_triples())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(v: &[usize]) -> AttrSet {
        v.iter().copied().collect()
    }

    fn triple(lhs: &[usize], rhs: usize, kind: FdKind) -> ProvenanceTriple {
        ProvenanceTriple::new(Fd::new(set(lhs), rhs), kind, "base")
    }

    #[test]
    fn survivors_are_remapped() {
        let schema = Schema::base("t", &["a", "b", "c"]);
        let triples = vec![triple(&[0], 2, FdKind::Base)];
        // keep c, a (reordered): c→0, a→1
        let (s, out) = restrict_triples(&triples, &schema, &[2, 0], "π");
        assert_eq!(s.name(0), "c");
        assert_eq!(s.name(1), "a");
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].fd, Fd::new(set(&[1]), 0));
        assert_eq!(out[0].kind, FdKind::Base);
    }

    #[test]
    fn chain_through_dropped_attr_is_derived() {
        // a→k, k→b ; drop k ⇒ a→b inferred.
        let schema = Schema::base("t", &["a", "k", "b"]);
        let triples = vec![triple(&[0], 1, FdKind::Base), triple(&[1], 2, FdKind::Base)];
        let (_, out) = restrict_triples(&triples, &schema, &[0, 2], "π[a,b]");
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].fd, Fd::new(set(&[0]), 1)); // a→b in new ids
        assert_eq!(out[0].kind, FdKind::Inferred);
        assert_eq!(out[0].subquery, "π[a,b]");
    }

    #[test]
    fn fds_about_dropped_attrs_vanish() {
        let schema = Schema::base("t", &["a", "b", "c"]);
        let triples = vec![triple(&[0], 1, FdKind::Base)];
        let (_, out) = restrict_triples(&triples, &schema, &[0, 2], "π");
        assert!(out.is_empty());
    }

    #[test]
    fn syntactic_survivor_preferred_over_derivation() {
        // a→b survives; derivation would also find it — kind stays Base.
        let schema = Schema::base("t", &["a", "b"]);
        let triples = vec![triple(&[0], 1, FdKind::Base)];
        let (_, out) = restrict_triples(&triples, &schema, &[0, 1], "π");
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].kind, FdKind::Base);
    }

    #[test]
    fn derived_fd_can_be_smaller_than_survivor() {
        // ab→c survives syntactically, but a→k, k→c gives a→c after k
        // drops... keep k? No: keep {a,b,c}; chain a→k→c with k dropped
        // yields a→c which evicts ab→c.
        let schema = Schema::base("t", &["a", "b", "c", "k"]);
        let triples = vec![
            triple(&[0, 1], 2, FdKind::JoinFd),
            triple(&[0], 3, FdKind::Base),
            triple(&[3], 2, FdKind::Base),
        ];
        let (_, out) = restrict_triples(&triples, &schema, &[0, 1, 2], "π");
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].fd, Fd::new(set(&[0]), 2));
        assert_eq!(out[0].kind, FdKind::Inferred);
    }
}
