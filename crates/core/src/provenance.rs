//! FD provenance triples (Definition 8 of the paper).
//!
//! Every FD emitted by InFine carries *where it came from*: its type (one
//! of the six kinds below) and the first sub-query of the view
//! specification in which it holds. The [`ProvenanceBuilder`] maintains
//! the global minimality invariant of the output: inserting an FD whose
//! lhs is a subset of an existing one evicts the (now non-minimal)
//! incumbent — this is how, e.g., a base FD `admission_location,diagnosis
//! → subject_id` disappears from the view's canonical set once the
//! upstaged `diagnosis → subject_id` is found (Fig. 1 of the paper).

use infine_discovery::{Fd, FdSet};
use infine_relation::Schema;
use std::fmt;

/// The provenance type of an FD on a view (Definition 8).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum FdKind {
    /// Valid on a base relation and still valid (and minimal) on the view.
    Base,
    /// Became exact because a selection filtered violating tuples (Alg. 2).
    UpstagedSelection,
    /// Became exact because a join dropped dangling left tuples (Alg. 3).
    UpstagedLeft,
    /// Became exact because a join dropped dangling right tuples (Alg. 3).
    UpstagedRight,
    /// Obtained by Armstrong transitivity through join attributes (Alg. 4),
    /// or by closure restriction through a projection.
    Inferred,
    /// Mixed-side FD only checkable against (partial) join data (Alg. 5).
    JoinFd,
}

impl FdKind {
    /// The paper's label for this kind.
    pub fn label(self) -> &'static str {
        match self {
            FdKind::Base => "base",
            FdKind::UpstagedSelection => "upstaged selection",
            FdKind::UpstagedLeft => "upstaged left",
            FdKind::UpstagedRight => "upstaged right",
            FdKind::Inferred => "inferred",
            FdKind::JoinFd => "joinFD",
        }
    }

    /// All kinds, in pipeline order.
    pub const ALL: [FdKind; 6] = [
        FdKind::Base,
        FdKind::UpstagedSelection,
        FdKind::UpstagedLeft,
        FdKind::UpstagedRight,
        FdKind::Inferred,
        FdKind::JoinFd,
    ];
}

impl fmt::Display for FdKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// A provenance triple `(d, t, s)`: the FD, its type, and the first
/// sub-query of the view specification in which it holds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProvenanceTriple {
    /// The FD, over the schema of the node that owns the triple.
    pub fd: Fd,
    /// The provenance type.
    pub kind: FdKind,
    /// Rendered sub-query (e.g. `patients ⋈[subject_id=subject_id] admissions`).
    pub subquery: String,
}

impl ProvenanceTriple {
    /// Construct a triple.
    pub fn new(fd: Fd, kind: FdKind, subquery: impl Into<String>) -> Self {
        ProvenanceTriple {
            fd,
            kind,
            subquery: subquery.into(),
        }
    }

    /// Render with attribute names.
    pub fn render(&self, schema: &Schema) -> String {
        format!(
            "({}, \"{}\", {})",
            self.fd.render(schema),
            self.kind,
            self.subquery
        )
    }
}

/// Accumulates provenance triples while maintaining minimality of the FD
/// antichain (per rhs).
#[derive(Debug, Default, Clone)]
pub struct ProvenanceBuilder {
    triples: Vec<ProvenanceTriple>,
    fds: FdSet,
}

impl ProvenanceBuilder {
    /// Empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// The current FD antichain (all triples' FDs).
    pub fn fds(&self) -> &FdSet {
        &self.fds
    }

    /// Insert a triple; returns true iff it survived minimality screening.
    /// Evicted incumbents (supersets of the new lhs) are removed from the
    /// triple list.
    pub fn insert(&mut self, triple: ProvenanceTriple) -> bool {
        if self.fds.has_subset_lhs(triple.fd.lhs, triple.fd.rhs) {
            return false;
        }
        // evict stored supersets
        self.triples
            .retain(|t| !(t.fd.rhs == triple.fd.rhs && triple.fd.lhs.is_subset(t.fd.lhs)));
        self.fds.insert_minimal(triple.fd);
        self.triples.push(triple);
        true
    }

    /// Insert many.
    pub fn extend(&mut self, triples: impl IntoIterator<Item = ProvenanceTriple>) {
        for t in triples {
            self.insert(t);
        }
    }

    /// Number of stored triples.
    pub fn len(&self) -> usize {
        self.triples.len()
    }

    /// True iff empty.
    pub fn is_empty(&self) -> bool {
        self.triples.is_empty()
    }

    /// Count triples of one kind.
    pub fn count_kind(&self, kind: FdKind) -> usize {
        self.triples.iter().filter(|t| t.kind == kind).count()
    }

    /// Finish, returning the triples (insertion order).
    pub fn into_triples(self) -> Vec<ProvenanceTriple> {
        self.triples
    }

    /// Borrow the triples.
    pub fn triples(&self) -> &[ProvenanceTriple] {
        &self.triples
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use infine_relation::AttrSet;

    fn fd(lhs: &[usize], rhs: usize) -> Fd {
        Fd::new(lhs.iter().copied().collect::<AttrSet>(), rhs)
    }

    #[test]
    fn kinds_have_paper_labels() {
        assert_eq!(FdKind::Base.label(), "base");
        assert_eq!(FdKind::UpstagedSelection.label(), "upstaged selection");
        assert_eq!(FdKind::JoinFd.label(), "joinFD");
        assert_eq!(FdKind::ALL.len(), 6);
    }

    #[test]
    fn builder_maintains_minimality() {
        let mut b = ProvenanceBuilder::new();
        assert!(b.insert(ProvenanceTriple::new(fd(&[0, 1], 2), FdKind::Base, "R")));
        // superset rejected
        assert!(!b.insert(ProvenanceTriple::new(
            fd(&[0, 1, 3], 2),
            FdKind::JoinFd,
            "V"
        )));
        // subset evicts the incumbent triple
        assert!(b.insert(ProvenanceTriple::new(
            fd(&[1], 2),
            FdKind::UpstagedRight,
            "V"
        )));
        assert_eq!(b.len(), 1);
        assert_eq!(b.triples()[0].kind, FdKind::UpstagedRight);
        assert_eq!(b.count_kind(FdKind::Base), 0);
    }

    #[test]
    fn builder_keeps_distinct_rhs_independent() {
        let mut b = ProvenanceBuilder::new();
        b.insert(ProvenanceTriple::new(fd(&[0], 1), FdKind::Base, "R"));
        b.insert(ProvenanceTriple::new(fd(&[0], 2), FdKind::Base, "R"));
        assert_eq!(b.len(), 2);
    }

    #[test]
    fn triple_renders_with_names() {
        let schema = Schema::base("r", &["x", "y"]);
        let t = ProvenanceTriple::new(fd(&[0], 1), FdKind::Inferred, "r ⋈ s");
        assert_eq!(t.render(&schema), "(x → y, \"inferred\", r ⋈ s)");
    }
}
