//! Algorithm 4 — `inferFDs`: logical inference of FDs through join
//! attributes, with data-backed lhs refinement.
//!
//! Theorem 2 of the paper: if `A → X` holds on the join (with `A` from the
//! left side and `X` the left join attributes) and `X → b` holds (via the
//! join equality `X = Y` and `Y → b` on the right side), then `A → b`
//! holds on the join. The `infer` step composes these chains purely
//! logically; the `refine` step then checks, against a **horizontal
//! partition** of the join restricted to the needed columns
//! (`π_{X∪A}(L) ♦ π_{Y∪{b}}(R)`, Algorithm 4 line 19), whether any strict
//! subset of `A` suffices — something logic alone cannot decide.
//!
//! Unlike the paper (which trusts Theorem 2 outright), the refined
//! candidates themselves are validated on the partial join too: with
//! outer operators and NULL-bearing data, padding can break the premises
//! (see `instance.rs`), and the validation costs a handful of partition
//! operations on an already tiny relation.

use crate::determinants::minimal_determinants;
use infine_algebra::{join_relations, JoinOp};
use infine_discovery::{Fd, FdSet};
use infine_partitions::PliCache;
use infine_relation::{AttrId, AttrSet, Relation};

/// One inferred FD over *join* attribute ids (left ids unchanged, right
/// ids offset by the left width).
pub type JoinFd = Fd;

/// Run `inferFDs` for one join node.
///
/// * `dl`, `dr` — complete join-valid FD sets of the two sides, over each
///   side's own attribute ids;
/// * `known` — FDs already established over join ids (used only to skip
///   candidates that cannot be minimal);
/// * returns inferred FDs over join ids, plus the number of partial-join
///   rows materialized (for the harness' partial-SPJ accounting).
#[allow(clippy::too_many_arguments)]
pub fn infer_fds(
    l_rel: &Relation,
    r_rel: &Relation,
    op: JoinOp,
    on: &[(AttrId, AttrId)],
    dl: &FdSet,
    dr: &FdSet,
    known: &FdSet,
) -> (Vec<JoinFd>, usize) {
    let nl = l_rel.ncols();
    let mut out: Vec<JoinFd> = Vec::new();
    let mut partial_rows = 0usize;

    // Direction: lhs ⊆ atts(L), rhs ∈ atts(R).
    partial_rows += infer_direction(l_rel, r_rel, op, on, dl, dr, known, nl, true, &mut out);
    // Mirrored direction: lhs ⊆ atts(R), rhs ∈ atts(L).
    partial_rows += infer_direction(l_rel, r_rel, op, on, dl, dr, known, nl, false, &mut out);
    (out, partial_rows)
}

#[allow(clippy::too_many_arguments)]
fn infer_direction(
    l_rel: &Relation,
    r_rel: &Relation,
    op: JoinOp,
    on: &[(AttrId, AttrId)],
    dl: &FdSet,
    dr: &FdSet,
    known: &FdSet,
    nl: usize,
    lhs_is_left: bool,
    out: &mut Vec<JoinFd>,
) -> usize {
    let x_set: AttrSet = on.iter().map(|&(a, _)| a).collect(); // left keys
    let y_set: AttrSet = on.iter().map(|&(_, b)| b).collect(); // right keys
    let (src_rel, src_fds, src_keys) = if lhs_is_left {
        (l_rel, dl, x_set)
    } else {
        (r_rel, dr, y_set)
    };
    let (dst_fds, dst_keys) = if lhs_is_left {
        (dr, y_set)
    } else {
        (dl, x_set)
    };

    // Candidate rhs attributes: everything the other side's join keys
    // determine (subroutine `infer`, lines 12–14: A→X composed with Y→b).
    let rhs_candidates: Vec<AttrId> = dst_fds
        .closure(dst_keys)
        .difference(dst_keys)
        .iter()
        .collect();
    if rhs_candidates.is_empty() {
        return 0;
    }
    // Candidate lhs: minimal determinants of this side's join keys.
    let dets = minimal_determinants(src_fds, src_rel.attr_set(), src_keys);
    if dets.is_empty() {
        return 0;
    }
    let det_union: AttrSet = dets.iter().fold(AttrSet::EMPTY, |u, &d| u.union(d));

    // One column-pruned partial join for the whole direction:
    // π_{X ∪ ⋃A}(L) ♦ π_{Y ∪ Bs}(R)  (or mirrored).
    let (keep_src, keep_dst): (Vec<AttrId>, Vec<AttrId>) = (
        src_keys.union(det_union).iter().collect(),
        dst_keys
            .union(rhs_candidates.iter().copied().collect())
            .iter()
            .collect(),
    );
    let (keep_left, keep_right) = if lhs_is_left {
        (keep_src.clone(), keep_dst.clone())
    } else {
        (keep_dst.clone(), keep_src.clone())
    };
    let partial = join_relations(
        l_rel,
        r_rel,
        op,
        on,
        Some(&keep_left),
        Some(&keep_right),
        "refine",
    );
    let partial_rows = partial.nrows();

    // Remap side ids → partial-join column ids.
    let pos = |side_is_left: bool, id: AttrId| -> AttrId {
        if side_is_left {
            keep_left
                .iter()
                .position(|&k| k == id)
                .expect("kept left column")
        } else {
            keep_left.len()
                + keep_right
                    .iter()
                    .position(|&k| k == id)
                    .expect("kept right column")
        }
    };
    // Map a side id to the final join-id space (left unchanged, right +nl).
    let join_id = |side_is_left: bool, id: AttrId| -> AttrId {
        if side_is_left {
            id
        } else {
            nl + id
        }
    };

    let mut cache = PliCache::new(&partial);
    let mut found = FdSet::new(); // over join ids, local to this direction
    for &b in &rhs_candidates {
        let b_partial = pos(!lhs_is_left, b);
        let b_join = join_id(!lhs_is_left, b);
        for &a_det in &dets {
            // refine: subsets of A by ascending size, smallest valid wins.
            let mut subsets: Vec<AttrSet> = a_det.strict_subsets();
            subsets.push(AttrSet::EMPTY);
            subsets.push(a_det);
            subsets.sort_by_key(|s| (s.len(), s.bits()));
            for cand in subsets {
                let cand_join: AttrSet = cand.iter().map(|a| join_id(lhs_is_left, a)).collect();
                if known.has_subset_lhs(cand_join, b_join)
                    || found.has_subset_lhs(cand_join, b_join)
                {
                    continue;
                }
                let cand_partial: AttrSet = cand.iter().map(|a| pos(lhs_is_left, a)).collect();
                if cand_partial.contains(b_partial) {
                    continue;
                }
                let valid = if cand_partial.is_empty() {
                    partial.nrows() == 0 || partial.distinct_count(b_partial) <= 1
                } else {
                    cache.fd_holds(cand_partial, b_partial)
                };
                if valid {
                    found.insert_minimal(Fd::new(cand_join, b_join));
                    out.push(Fd::new(cand_join, b_join));
                }
            }
        }
    }
    partial_rows
}

#[cfg(test)]
mod tests {
    use super::*;
    use infine_relation::{relation_from_rows, Value};

    /// The paper's running example, reduced: ADMISSION-like left
    /// (subject_id, insurance, diagnosis), PATIENT-like right
    /// (subject_id, dob).
    fn sides() -> (Relation, Relation) {
        let adm = relation_from_rows(
            "adm",
            &["subject_id", "insurance", "diagnosis"],
            &[
                &[
                    Value::Int(249),
                    Value::str("Medicare"),
                    Value::str("ANGINA"),
                ],
                &[
                    Value::Int(249),
                    Value::str("Medicare"),
                    Value::str("CHEST PAIN"),
                ],
                &[
                    Value::Int(250),
                    Value::str("Self Pay"),
                    Value::str("PNEUMONIA"),
                ],
                &[
                    Value::Int(251),
                    Value::str("Private"),
                    Value::str("HEAD BLEED"),
                ],
            ],
        );
        let pat = relation_from_rows(
            "pat",
            &["subject_id", "dob"],
            &[
                &[Value::Int(249), Value::str("13/03/75")],
                &[Value::Int(250), Value::str("27/12/64")],
                &[Value::Int(251), Value::str("15/03/90")],
            ],
        );
        (adm, pat)
    }

    #[test]
    fn transitive_inference_through_join_keys() {
        let (adm, pat) = sides();
        // left FDs: diagnosis→subject_id, diagnosis→insurance,
        //           subject_id→insurance (complete-ish for the test)
        let dl = FdSet::from_fds([
            Fd::new(AttrSet::single(2), 0),
            Fd::new(AttrSet::single(2), 1),
            Fd::new(AttrSet::single(0), 1),
        ]);
        // right FDs: subject_id→dob
        let dr = FdSet::from_fds([Fd::new(AttrSet::single(0), 1)]);
        let (fds, rows) = infer_fds(
            &adm,
            &pat,
            JoinOp::Inner,
            &[(0, 0)],
            &dl,
            &dr,
            &FdSet::new(),
        );
        assert!(rows > 0);
        // Expect diagnosis→dob (join ids: diagnosis=2, dob=3+1=4)
        assert!(
            fds.contains(&Fd::new(AttrSet::single(2), 4)),
            "missing diagnosis→dob in {fds:?}"
        );
        // And subject_id→dob via the trivial determinant X itself.
        assert!(fds.contains(&Fd::new(AttrSet::single(0), 4)));
    }

    #[test]
    fn refine_shrinks_composite_determinants() {
        // Left: (k1, k2, a) where {k1,k2} are join keys and a alone
        // determines them logically only jointly with... craft: a→k1 and
        // a→k2 hold, so minimal determinant of {k1,k2} is {a}. But also a
        // composite det {k1,k2} itself. refine should emit lhs {a}.
        let l = relation_from_rows(
            "l",
            &["k1", "k2", "a"],
            &[
                &[Value::Int(1), Value::Int(1), Value::Int(10)],
                &[Value::Int(2), Value::Int(2), Value::Int(20)],
            ],
        );
        let r = relation_from_rows(
            "r",
            &["k1", "k2", "b"],
            &[
                &[Value::Int(1), Value::Int(1), Value::Int(100)],
                &[Value::Int(2), Value::Int(2), Value::Int(200)],
            ],
        );
        let dl = FdSet::from_fds([
            Fd::new(AttrSet::single(2), 0),
            Fd::new(AttrSet::single(2), 1),
        ]);
        let dr = FdSet::from_fds([Fd::new([0usize, 1].into_iter().collect::<AttrSet>(), 2)]);
        let (fds, _) = infer_fds(
            &l,
            &r,
            JoinOp::Inner,
            &[(0, 0), (1, 1)],
            &dl,
            &dr,
            &FdSet::new(),
        );
        // a→b: join ids a=2, b=3+2=5
        assert!(
            fds.contains(&Fd::new(AttrSet::single(2), 5)),
            "missing a→b in {fds:?}"
        );
    }

    #[test]
    fn no_inference_without_key_determination() {
        let (adm, pat) = sides();
        // left knows nothing about its keys
        let dl = FdSet::new();
        let dr = FdSet::from_fds([Fd::new(AttrSet::single(0), 1)]);
        let (fds, _) = infer_fds(
            &adm,
            &pat,
            JoinOp::Inner,
            &[(0, 0)],
            &dl,
            &dr,
            &FdSet::new(),
        );
        // Only the trivial determinant X = {subject_id} applies:
        // subject_id→dob may appear, but nothing with diagnosis.
        for fd in &fds {
            assert!(!fd.lhs.contains(2), "unexpected {fd:?}");
        }
    }

    #[test]
    fn known_fds_suppress_rediscovery() {
        let (adm, pat) = sides();
        let dl = FdSet::from_fds([Fd::new(AttrSet::single(0), 1)]);
        let dr = FdSet::from_fds([Fd::new(AttrSet::single(0), 1)]);
        let mut known = FdSet::new();
        // already know subject_id→dob over join ids (0 → 4)
        known.insert_minimal(Fd::new(AttrSet::single(0), 4));
        let (fds, _) = infer_fds(&adm, &pat, JoinOp::Inner, &[(0, 0)], &dl, &dr, &known);
        assert!(!fds.contains(&Fd::new(AttrSet::single(0), 4)));
    }
}
