//! The *straightforward* pipeline the paper compares against (§V,
//! "Comparison Setup"): materialize the full SPJ view, run a classical FD
//! discovery algorithm on the result, and — to match InFine's provenance
//! output — label each discovered FD by diffing against the base tables'
//! FD sets.
//!
//! Classical methods provide no provenance, so the labelling here is the
//! *post-hoc comparison* the paper describes as the extra work a fair
//! provenance-preserving baseline must do. Only a coarse labelling is
//! possible this way (base vs. new), which is itself part of the paper's
//! argument for first-class provenance.

use crate::provenance::{FdKind, ProvenanceTriple};
use infine_algebra::{execute, AlgebraError, ViewSpec};
use infine_discovery::{Algorithm, Fd, FdSet};
use infine_relation::{AttrId, AttrSet, Database, Relation, Schema};
use std::time::{Duration, Instant};

/// Timing breakdown of the straightforward pipeline.
#[derive(Debug, Default, Clone, Copy)]
pub struct BaselineTimings {
    /// Full SPJ view materialization.
    pub view_computation: Duration,
    /// FD discovery on the materialized view.
    pub discovery: Duration,
    /// Post-hoc provenance labelling (diff against base FD sets).
    pub labelling: Duration,
}

impl BaselineTimings {
    /// Total reported time (the Fig. 3 quantity for baselines).
    pub fn total(&self) -> Duration {
        self.view_computation + self.discovery + self.labelling
    }
}

/// Result of the straightforward pipeline.
#[derive(Debug)]
pub struct BaselineReport {
    /// Schema of the materialized view.
    pub schema: Schema,
    /// FDs discovered on the view.
    pub fds: FdSet,
    /// Coarse provenance labels (base vs. new), produced by diffing.
    pub triples: Vec<ProvenanceTriple>,
    /// Timings.
    pub timings: BaselineTimings,
    /// Rows of the materialized view.
    pub view_rows: usize,
    /// Approximate bytes of the materialized view (memory pressure proxy).
    pub view_bytes: usize,
}

/// Run the straightforward pipeline: full view + discovery + diff.
///
/// `base_fds` maps each base relation name to its (already discovered) FD
/// set — the paper excludes this shared cost from both pipelines, so it is
/// taken as an input here.
pub fn straightforward(
    db: &Database,
    spec: &ViewSpec,
    algorithm: Algorithm,
    base_fds: &[(String, FdSet)],
) -> Result<BaselineReport, AlgebraError> {
    let t0 = Instant::now();
    let view = execute(spec, db)?;
    let view_computation = t0.elapsed();
    let view_rows = view.nrows();
    let view_bytes = view.approx_bytes();

    let t1 = Instant::now();
    let fds = algorithm.discover(&view);
    let discovery = t1.elapsed();

    let t2 = Instant::now();
    let triples = label_by_diff(db, &view, &fds, base_fds, &spec.to_string());
    let labelling = t2.elapsed();

    Ok(BaselineReport {
        schema: view.schema.clone(),
        fds,
        triples,
        timings: BaselineTimings {
            view_computation,
            discovery,
            labelling,
        },
        view_rows,
        view_bytes,
    })
}

/// Label view FDs by diffing against the base tables' FD sets: a view FD
/// whose attributes all originate from one base table *and* that is
/// implied by that table's FD set is labelled `base`; everything else is
/// `joinFD` (classical discovery cannot distinguish finer kinds — this
/// coarseness is exactly the paper's argument for first-class provenance).
fn label_by_diff(
    db: &Database,
    view: &Relation,
    fds: &FdSet,
    base_fds: &[(String, FdSet)],
    subquery: &str,
) -> Vec<ProvenanceTriple> {
    let mut out = Vec::new();
    for fd in fds.to_sorted_vec() {
        let mut kind = FdKind::JoinFd;
        'tables: for (table, tfds) in base_fds {
            let Some(base_rel) = db.get(table) else {
                continue;
            };
            // Translate the FD's attributes into the base table's ids.
            let map_attr = |a: AttrId| -> Option<AttrId> {
                let origin = view.schema.attr(a).origin.as_ref()?;
                if origin.relation != *table {
                    return None;
                }
                base_rel.schema.id_of(&origin.attribute)
            };
            let lhs: Option<AttrSet> = fd
                .lhs
                .iter()
                .map(map_attr)
                .collect::<Option<Vec<_>>>()
                .map(|v| v.into_iter().collect());
            let rhs = map_attr(fd.rhs);
            if let (Some(lhs), Some(rhs)) = (lhs, rhs) {
                if tfds.implies(&Fd::new(lhs, rhs)) {
                    kind = FdKind::Base;
                    break 'tables;
                }
            }
        }
        out.push(ProvenanceTriple::new(fd, kind, subquery.to_string()));
    }
    out
}

/// Convenience: discover base FD sets for every base table of a spec (the
/// shared step-1 cost of both pipelines).
pub fn discover_base_fds(
    db: &Database,
    spec: &ViewSpec,
    algorithm: Algorithm,
) -> Vec<(String, FdSet)> {
    let mut out = Vec::new();
    let mut seen = std::collections::HashSet::new();
    for table in spec.base_tables() {
        if seen.insert(table.to_string()) {
            if let Some(rel) = db.get(table) {
                out.push((table.to_string(), algorithm.discover(rel)));
            }
        }
    }
    out
}

/// Check that every FD of `fds` holds on `rel` (test/debug helper
/// realizing the Theorem 6 check directly).
pub fn all_hold(rel: &Relation, fds: &FdSet) -> bool {
    let mut cache = infine_partitions::PliCache::new(rel);
    fds.iter().all(|Fd { lhs, rhs }| {
        if lhs.is_empty() {
            rel.nrows() == 0 || rel.distinct_count(rhs) <= 1
        } else {
            let l: AttrSet = lhs;
            cache.fd_holds(l, rhs)
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use infine_relation::{relation_from_rows, Value};

    fn db() -> Database {
        let mut db = Database::new();
        db.insert(relation_from_rows(
            "l",
            &["k", "a"],
            &[
                &[Value::Int(1), Value::Int(10)],
                &[Value::Int(2), Value::Int(20)],
            ],
        ));
        db.insert(relation_from_rows(
            "r",
            &["k", "b"],
            &[
                &[Value::Int(1), Value::Int(5)],
                &[Value::Int(2), Value::Int(5)],
            ],
        ));
        db
    }

    #[test]
    fn straightforward_reports_view_fds_and_costs() {
        let d = db();
        let spec = ViewSpec::base("l").inner_join(ViewSpec::base("r"), &["k"]);
        let base = discover_base_fds(&d, &spec, Algorithm::Tane);
        assert_eq!(base.len(), 2);
        let report = straightforward(&d, &spec, Algorithm::Tane, &base).unwrap();
        assert_eq!(report.view_rows, 2);
        assert!(!report.fds.is_empty());
        assert_eq!(report.triples.len(), report.fds.len());
        // all discovered FDs genuinely hold
        let view = execute(&spec, &d).unwrap();
        assert!(all_hold(&view, &report.fds));
    }

    #[test]
    fn labels_single_table_fds_as_base() {
        let d = db();
        let spec = ViewSpec::base("l").inner_join(ViewSpec::base("r"), &["k"]);
        let base = discover_base_fds(&d, &spec, Algorithm::Tane);
        let report = straightforward(&d, &spec, Algorithm::Tane, &base).unwrap();
        // k→a lives entirely in table l → labelled base.
        let view = execute(&spec, &d).unwrap();
        let k = view.schema.expect_id("l.k");
        let a = view.schema.expect_id("a");
        let t = report
            .triples
            .iter()
            .find(|t| t.fd == Fd::new(AttrSet::single(k), a));
        assert!(t.is_some());
        assert_eq!(t.unwrap().kind, FdKind::Base);
    }

    #[test]
    fn all_hold_detects_violations() {
        let d = db();
        let rel = d.expect("l");
        let mut bad = FdSet::new();
        bad.insert_minimal(Fd::new(AttrSet::single(1), 0)); // a→k holds actually
        assert!(all_hold(rel, &bad));
        let rel2 = relation_from_rows(
            "t",
            &["x", "y"],
            &[
                &[Value::Int(1), Value::Int(1)],
                &[Value::Int(1), Value::Int(2)],
            ],
        );
        let mut bad2 = FdSet::new();
        bad2.insert_minimal(Fd::new(AttrSet::single(0), 1));
        assert!(!all_hold(&rel2, &bad2));
    }
}
