//! Minimal-determinant search over an FD set.
//!
//! Algorithm 4's `infer` needs, conceptually, every FD `A → X` where `X`
//! is the (composite) join-attribute set. With canonical single-rhs FDs
//! this is a closure question: find the ⊆-minimal `A` with
//! `X ⊆ closure(A)`. The same search powers projection restriction (find
//! minimal lhs within the surviving attributes for each rhs).
//!
//! The search is level-wise over the candidate lattice with antichain
//! pruning; closure tests are cheap (bitset fixpoint), so this stays fast
//! at the attribute widths of the paper's views.

use infine_discovery::FdSet;
use infine_relation::AttrSet;

/// All ⊆-minimal sets `A ⊆ universe` with `target ⊆ closure(A)` under
/// `fds`. Returns an antichain, sorted for determinism.
pub fn minimal_determinants(fds: &FdSet, universe: AttrSet, target: AttrSet) -> Vec<AttrSet> {
    // Fast exits.
    if target.is_empty() {
        return vec![AttrSet::EMPTY];
    }
    if !target.is_subset(fds.closure(universe)) {
        return Vec::new(); // even the whole universe fails
    }
    let mut found: Vec<AttrSet> = Vec::new();
    if target.is_subset(fds.closure(AttrSet::EMPTY)) {
        return vec![AttrSet::EMPTY];
    }

    let mut level: Vec<AttrSet> = universe.iter().map(AttrSet::single).collect();
    let mut depth = 1usize;
    while !level.is_empty() && depth <= universe.len() {
        let mut extendable: Vec<AttrSet> = Vec::new();
        for &a in &level {
            if found.iter().any(|f| f.is_subset(a)) {
                continue; // non-minimal
            }
            if target.is_subset(fds.closure(a)) {
                found.push(a);
            } else {
                extendable.push(a);
            }
        }
        let mut next = Vec::new();
        for &a in &extendable {
            let max_attr = a.iter().last().expect("non-empty");
            for b in universe.iter() {
                if b > max_attr {
                    next.push(a.with(b));
                }
            }
        }
        level = next;
        depth += 1;
    }
    found.sort_by_key(|s| (s.len(), s.bits()));
    found
}

#[cfg(test)]
mod tests {
    use super::*;
    use infine_discovery::Fd;

    fn set(v: &[usize]) -> AttrSet {
        v.iter().copied().collect()
    }

    #[test]
    fn direct_determinant_found() {
        // a→x. target {x}: minimal determinants {a} and {x}... x not in
        // universe when we exclude it; try universe {a,b}.
        let fds = FdSet::from_fds([Fd::new(set(&[0]), 2)]);
        let dets = minimal_determinants(&fds, set(&[0, 1]), set(&[2]));
        assert_eq!(dets, vec![set(&[0])]);
    }

    #[test]
    fn transitive_determinant_found() {
        // a→b, b→x: {a} determines x transitively.
        let fds = FdSet::from_fds([Fd::new(set(&[0]), 1), Fd::new(set(&[1]), 2)]);
        let dets = minimal_determinants(&fds, set(&[0, 1]), set(&[2]));
        // both {a} and {b} are minimal
        assert_eq!(dets, vec![set(&[0]), set(&[1])]);
    }

    #[test]
    fn composite_target_needs_all_parts() {
        // a→x, b→y; target {x,y} needs {a,b}.
        let fds = FdSet::from_fds([Fd::new(set(&[0]), 2), Fd::new(set(&[1]), 3)]);
        let dets = minimal_determinants(&fds, set(&[0, 1]), set(&[2, 3]));
        assert_eq!(dets, vec![set(&[0, 1])]);
    }

    #[test]
    fn target_in_universe_is_its_own_determinant() {
        let fds = FdSet::new();
        let dets = minimal_determinants(&fds, set(&[0, 1, 2]), set(&[2]));
        assert_eq!(dets, vec![set(&[2])]);
    }

    #[test]
    fn unreachable_target_yields_nothing() {
        let fds = FdSet::new();
        let dets = minimal_determinants(&fds, set(&[0, 1]), set(&[5]));
        assert!(dets.is_empty());
    }

    #[test]
    fn constant_target_determined_by_empty_set() {
        let fds = FdSet::from_fds([Fd::new(AttrSet::EMPTY, 3)]);
        let dets = minimal_determinants(&fds, set(&[0, 1]), set(&[3]));
        assert_eq!(dets, vec![AttrSet::EMPTY]);
    }

    #[test]
    fn result_is_an_antichain() {
        // a→x and ab→x (latter non-minimal): only {a} reported; also c,d→x.
        let fds = FdSet::from_fds([Fd::new(set(&[0]), 4), Fd::new(set(&[2, 3]), 4)]);
        let dets = minimal_determinants(&fds, set(&[0, 1, 2, 3]), set(&[4]));
        assert_eq!(dets, vec![set(&[0]), set(&[2, 3])]);
        for i in 0..dets.len() {
            for j in 0..dets.len() {
                if i != j {
                    assert!(!dets[i].is_subset(dets[j]));
                }
            }
        }
    }

    #[test]
    fn empty_target_is_trivially_determined() {
        let dets = minimal_determinants(&FdSet::new(), set(&[0]), AttrSet::EMPTY);
        assert_eq!(dets, vec![AttrSet::EMPTY]);
    }
}
