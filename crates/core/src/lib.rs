//! # infine-core
//!
//! InFine — provenance-aware discovery of functional dependencies on
//! integrated SPJ views (Comignani, Berti-Equille, Novelli & Bonifati,
//! ICDE 2022). This crate implements the paper's five algorithms:
//!
//! | Paper | Here |
//! |---|---|
//! | Algorithm 1 `InFine` | [`InFine::discover`] (recursive traversal) |
//! | Algorithm 2 `selectionFDs` | selection handling in [`pipeline`] |
//! | Algorithm 3 `joinUpFDs` | side instances + upstaged mining |
//! | Algorithm 4 `inferFDs` | [`infer::infer_fds`] |
//! | Algorithm 5 `mineFDs` | [`minefds::mine_join_fds`] |
//!
//! plus the provenance-triple machinery (Definition 8) and the
//! *straightforward* comparison pipeline of §V ([`comparator`]).
//!
//! ## Quick start
//!
//! ```
//! use infine_core::{InFine, FdKind};
//! use infine_algebra::ViewSpec;
//! use infine_relation::{relation_from_rows, Database, Value};
//!
//! let mut db = Database::new();
//! db.insert(relation_from_rows(
//!     "patient",
//!     &["subject_id", "gender"],
//!     &[
//!         &[Value::Int(1), Value::str("F")],
//!         &[Value::Int(2), Value::str("M")],
//!     ],
//! ));
//! db.insert(relation_from_rows(
//!     "admission",
//!     &["subject_id", "insurance"],
//!     &[
//!         &[Value::Int(1), Value::str("Medicare")],
//!         &[Value::Int(1), Value::str("Medicare")],
//!         &[Value::Int(2), Value::str("Private")],
//!     ],
//! ));
//! let view = ViewSpec::base("patient")
//!     .inner_join(ViewSpec::base("admission"), &["subject_id"]);
//! let report = InFine::default().discover(&db, &view).unwrap();
//! assert!(report.triples.iter().any(|t| t.kind == FdKind::Base));
//! ```

pub mod afd;
pub mod comparator;
pub mod determinants;
pub mod infer;
pub mod instance;
pub mod minefds;
pub mod pipeline;
pub mod provenance;
pub mod restrict;

pub use afd::{afd_origins, AfdOrigin};
pub use comparator::{
    all_hold, discover_base_fds, straightforward, BaselineReport, BaselineTimings,
};
pub use determinants::minimal_determinants;
pub use infer::infer_fds;
pub use instance::{side_instance, SideInstance};
pub use minefds::{mine_join_fds, mine_join_fds_with_options, MineOutcome};
pub use pipeline::{
    base_scopes, merge_fragment_covers, merge_label_covers, BaseFds, BaseScope, InFine,
    InFineConfig, InFineError, InFineReport, PhaseTimings, PipelineStats,
};
pub use provenance::{FdKind, ProvenanceBuilder, ProvenanceTriple};
pub use restrict::restrict_triples;
