//! AFD-origin annotation — the grey FD class of the paper's Fig. 1.
//!
//! The figure distinguishes upstaged FDs that were *approximate* FDs on
//! their base table (e.g. `expire_flag ⇁₁ dod` in PATIENT, violated only
//! by patient #257) from ones with no base-table signal at all. This
//! post-processing step recovers that annotation: for every upstaged
//! triple in a report whose attributes all originate from one stored base
//! table, it computes the FD's `g3` error on that table.
//!
//! A small `g3` (the paper's `⇁₁` means "exact after removing one
//! violating value combination") tells the data steward the constraint
//! was *almost* true upstream — usually a data-quality finding — whereas
//! a large `g3` means the view's selection/join genuinely manufactured
//! the dependency.

use crate::pipeline::InFineReport;
use crate::provenance::FdKind;
use infine_partitions::PliCache;
use infine_relation::{AttrSet, Database};

/// The base-table approximation profile of one upstaged FD.
#[derive(Debug, Clone, PartialEq)]
pub struct AfdOrigin {
    /// Index into `report.triples`.
    pub triple_index: usize,
    /// The base table the FD's attributes come from.
    pub base_table: String,
    /// `g3` error of the FD on that base table (0 = it already held).
    pub g3: f64,
    /// Number of rows to delete for exactness (`⌈g3 · n⌉`).
    pub violating_rows: usize,
}

impl AfdOrigin {
    /// Was this an approximate FD at threshold `epsilon` on the base
    /// table (the paper's grey class uses small per-table thresholds)?
    pub fn was_afd(&self, epsilon: f64) -> bool {
        self.g3 > 0.0 && self.g3 <= epsilon
    }
}

/// Annotate every upstaged triple of a report with its base-table `g3`.
///
/// Triples whose attributes span several base tables, or whose source
/// table is not stored under its own name (aliased self-joins), are
/// skipped — an upstaged FD is single-sided by construction, so in
/// practice this covers them all.
pub fn afd_origins(db: &Database, report: &InFineReport) -> Vec<AfdOrigin> {
    let mut out = Vec::new();
    for (idx, t) in report.triples.iter().enumerate() {
        if !matches!(
            t.kind,
            FdKind::UpstagedLeft | FdKind::UpstagedRight | FdKind::UpstagedSelection
        ) {
            continue;
        }
        // All attributes must share one origin relation present in the db.
        let mut table: Option<&str> = None;
        let mut ok = true;
        for a in t.fd.attrs().iter() {
            match report.schema.attr(a).origin.as_ref() {
                Some(o) => match table {
                    None => table = Some(&o.relation),
                    Some(t0) if t0 == o.relation => {}
                    _ => {
                        ok = false;
                        break;
                    }
                },
                None => {
                    ok = false;
                    break;
                }
            }
        }
        let Some(table) = table.filter(|_| ok) else {
            continue;
        };
        let Some(base) = db.get(table) else {
            continue; // aliased occurrence; base name differs
        };
        // Map view attr ids → base ids by origin attribute name.
        let map = |a: usize| -> Option<usize> {
            let o = report.schema.attr(a).origin.as_ref()?;
            base.schema.id_of(&o.attribute)
        };
        let lhs: Option<AttrSet> =
            t.fd.lhs
                .iter()
                .map(map)
                .collect::<Option<Vec<_>>>()
                .map(|v| v.into_iter().collect());
        let (Some(lhs), Some(rhs)) = (lhs, map(t.fd.rhs)) else {
            continue;
        };
        let g3 = if lhs.is_empty() {
            // ∅ → rhs: minimum deletions to make the column constant.
            let n = base.nrows();
            if n == 0 {
                0.0
            } else {
                let mut counts = std::collections::HashMap::new();
                for row in 0..n {
                    *counts.entry(base.code(row, rhs)).or_insert(0usize) += 1;
                }
                let max = counts.values().copied().max().unwrap_or(0);
                (n - max) as f64 / n as f64
            }
        } else {
            let mut cache = PliCache::with_attrs(base, lhs.with(rhs));
            cache.g3(lhs, rhs)
        };
        out.push(AfdOrigin {
            triple_index: idx,
            base_table: table.to_string(),
            g3,
            violating_rows: (g3 * base.nrows() as f64).ceil() as usize,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::InFine;
    use infine_algebra::{Predicate, ViewSpec};
    use infine_relation::{relation_from_rows, Value};

    #[test]
    fn fig1_expire_flag_dod_is_a_one_row_afd() {
        // The Fig. 1 excerpt: expire_flag ⇁₁ dod violated only by #257.
        let patient = relation_from_rows(
            "patient",
            &["subject_id", "dod", "expire_flag"],
            &[
                &[Value::Int(249), Value::Null, Value::Int(0)],
                &[Value::Int(250), Value::str("22/11/88"), Value::Int(1)],
                &[Value::Int(251), Value::Null, Value::Int(0)],
                &[Value::Int(252), Value::Null, Value::Int(0)],
                &[Value::Int(257), Value::str("08/07/21"), Value::Int(1)],
            ],
        );
        let admission = relation_from_rows(
            "admission",
            &["subject_id", "insurance"],
            &[
                &[Value::Int(249), Value::str("Medicare")],
                &[Value::Int(250), Value::str("Self Pay")],
                &[Value::Int(251), Value::str("Private")],
                &[Value::Int(252), Value::str("Private")],
            ],
        );
        let mut db = Database::new();
        db.insert(patient);
        db.insert(admission);
        let spec =
            ViewSpec::base("patient").inner_join(ViewSpec::base("admission"), &["subject_id"]);
        let report = InFine::default().discover(&db, &spec).unwrap();
        let origins = afd_origins(&db, &report);
        // find the expire_flag → dod annotation
        let ef = report.schema.expect_id("expire_flag");
        let dod = report.schema.expect_id("dod");
        let ann = origins
            .iter()
            .find(|o| {
                let t = &report.triples[o.triple_index];
                t.fd.rhs == dod && t.fd.lhs == AttrSet::single(ef)
            })
            .expect("expire_flag → dod should be annotated");
        assert_eq!(ann.base_table, "patient");
        assert_eq!(ann.violating_rows, 1); // exactly patient #257
        assert!(ann.was_afd(0.25));
        assert!(!ann.was_afd(0.1)); // 1/5 = 0.2 > 0.1
    }

    #[test]
    fn selection_upstaged_fds_are_annotated() {
        let mut db = Database::new();
        db.insert(relation_from_rows(
            "t",
            &["x", "y", "flag"],
            &[
                &[Value::Int(1), Value::Int(10), Value::Int(0)],
                &[Value::Int(1), Value::Int(10), Value::Int(0)],
                &[Value::Int(1), Value::Int(99), Value::Int(1)],
                &[Value::Int(2), Value::Int(20), Value::Int(0)],
            ],
        ));
        let spec = ViewSpec::base("t").select(Predicate::eq("flag", 0i64));
        let report = InFine::default().discover(&db, &spec).unwrap();
        let origins = afd_origins(&db, &report);
        let x = report.schema.expect_id("x");
        let y = report.schema.expect_id("y");
        let ann = origins
            .iter()
            .find(|o| {
                let t = &report.triples[o.triple_index];
                t.fd.rhs == y && t.fd.lhs == AttrSet::single(x)
            })
            .expect("x → y annotation");
        assert_eq!(ann.violating_rows, 1);
        assert!(ann.g3 > 0.0);
    }

    #[test]
    fn non_upstaged_triples_are_not_annotated() {
        let mut db = Database::new();
        db.insert(relation_from_rows(
            "t",
            &["k", "v"],
            &[
                &[Value::Int(1), Value::Int(2)],
                &[Value::Int(3), Value::Int(4)],
            ],
        ));
        let report = InFine::default()
            .discover(&db, &ViewSpec::base("t"))
            .unwrap();
        assert!(afd_origins(&db, &report).is_empty());
    }
}
