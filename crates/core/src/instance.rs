//! Side-instance construction for join nodes.
//!
//! The FDs holding on one side's attributes *within a join result* are
//! exactly the FDs of that side's **side instance**: the set of its rows
//! that survive the join, plus — for outer operators that pad this side's
//! attributes — one synthetic all-NULL row. Duplicated rows caused by join
//! fan-out are irrelevant to FD satisfaction and are not replicated.
//!
//! This is the instance Algorithm 3 mines (`I ♦ πY(J)`, line 13) and the
//! instance against which inherited FDs must be re-validated when padding
//! exists (outer joins can break a base FD when a surviving row carries
//! NULLs on the FD's lhs — a corner the paper's Theorem 1 glosses over;
//! see DESIGN.md).

use infine_algebra::{matching_rows, JoinOp};
use infine_relation::{AttrId, Column, Relation, Value};

/// What happened to one side of a join.
pub struct SideInstance {
    /// The side's instance inside the join result (distinct surviving rows
    /// + optional all-NULL padding row).
    pub rel: Relation,
    /// True iff at least one of the side's rows was dropped by the join.
    pub lost_rows: bool,
    /// True iff an all-NULL padding row was appended.
    pub padded: bool,
}

/// Compute the side instance for `side` (`true` = left) of `l ♦ r`.
pub fn side_instance(
    l: &Relation,
    r: &Relation,
    on: &[(AttrId, AttrId)],
    op: JoinOp,
    left_side: bool,
) -> SideInstance {
    let lkeys: Vec<AttrId> = on.iter().map(|&(a, _)| a).collect();
    let rkeys: Vec<AttrId> = on.iter().map(|&(_, b)| b).collect();
    let (mine, other, my_keys, other_keys, keeps_all, padded_by_other) = if left_side {
        (
            l,
            r,
            lkeys.as_slice(),
            rkeys.as_slice(),
            !op.can_drop_left(),
            matches!(op, JoinOp::RightOuter | JoinOp::FullOuter),
        )
    } else {
        (
            r,
            l,
            rkeys.as_slice(),
            lkeys.as_slice(),
            !op.can_drop_right(),
            matches!(op, JoinOp::LeftOuter | JoinOp::FullOuter),
        )
    };

    let surviving: Vec<u32> = if keeps_all {
        (0..mine.nrows() as u32).collect()
    } else {
        matching_rows(mine, other, my_keys, other_keys)
    };
    let lost_rows = surviving.len() < mine.nrows();

    // Padding happens when the *other* side has dangling rows and the
    // operator preserves them (their output rows carry NULLs on `mine`'s
    // attributes).
    let padded = padded_by_other && {
        let other_surviving = matching_rows(other, mine, other_keys, my_keys);
        other_surviving.len() < other.nrows()
    };

    let rel = if padded {
        gather_with_null_row(mine, &surviving)
    } else {
        mine.gather(&surviving, format!("{}⋉", mine.name))
    };
    SideInstance {
        rel,
        lost_rows,
        padded,
    }
}

/// Gather rows and append one all-NULL row.
fn gather_with_null_row(rel: &Relation, rows: &[u32]) -> Relation {
    let mut columns: Vec<Column> = Vec::with_capacity(rel.ncols());
    for c in 0..rel.ncols() {
        let col = rel.column(c);
        let mut dict = col.dict.clone();
        let null_code = match col.null_code {
            Some(nc) => nc,
            None => {
                let nc = dict.len() as u32;
                std::sync::Arc::make_mut(&mut dict).push(Value::Null);
                nc
            }
        };
        let mut codes: Vec<u32> = rows.iter().map(|&r| col.codes[r as usize]).collect();
        codes.push(null_code);
        columns.push(Column {
            codes,
            dict,
            null_code: Some(null_code),
        });
    }
    Relation::from_columns(
        format!("{}⋉+null", rel.name),
        rel.schema.clone(),
        columns,
        rows.len() + 1,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use infine_relation::relation_from_rows;

    fn sides() -> (Relation, Relation) {
        let l = relation_from_rows(
            "l",
            &["k", "x"],
            &[
                &[Value::Int(1), Value::Int(10)],
                &[Value::Int(2), Value::Int(20)],
                &[Value::Int(3), Value::Int(30)], // dangling
            ],
        );
        let r = relation_from_rows(
            "r",
            &["k", "y"],
            &[
                &[Value::Int(1), Value::Int(100)],
                &[Value::Int(1), Value::Int(101)],
                &[Value::Int(2), Value::Int(200)],
                &[Value::Int(9), Value::Int(900)], // dangling
            ],
        );
        (l, r)
    }

    #[test]
    fn inner_join_drops_dangling_both_sides() {
        let (l, r) = sides();
        let sl = side_instance(&l, &r, &[(0, 0)], JoinOp::Inner, true);
        assert_eq!(sl.rel.nrows(), 2);
        assert!(sl.lost_rows && !sl.padded);
        let sr = side_instance(&l, &r, &[(0, 0)], JoinOp::Inner, false);
        assert_eq!(sr.rel.nrows(), 3);
        assert!(sr.lost_rows && !sr.padded);
    }

    #[test]
    fn left_outer_keeps_left_and_pads_right() {
        let (l, r) = sides();
        let sl = side_instance(&l, &r, &[(0, 0)], JoinOp::LeftOuter, true);
        assert_eq!(sl.rel.nrows(), 3);
        assert!(!sl.lost_rows && !sl.padded);
        let sr = side_instance(&l, &r, &[(0, 0)], JoinOp::LeftOuter, false);
        // 3 surviving right rows + null padding row (left has dangling #3)
        assert_eq!(sr.rel.nrows(), 4);
        assert!(sr.lost_rows && sr.padded);
        let last = sr.rel.nrows() - 1;
        assert!(sr.rel.is_null(last, 0) && sr.rel.is_null(last, 1));
    }

    #[test]
    fn full_outer_pads_both_no_losses() {
        let (l, r) = sides();
        let sl = side_instance(&l, &r, &[(0, 0)], JoinOp::FullOuter, true);
        assert!(!sl.lost_rows && sl.padded);
        assert_eq!(sl.rel.nrows(), 4); // 3 + null row
        let sr = side_instance(&l, &r, &[(0, 0)], JoinOp::FullOuter, false);
        assert!(!sr.lost_rows && sr.padded);
        assert_eq!(sr.rel.nrows(), 5);
    }

    #[test]
    fn no_padding_when_other_side_has_no_dangling() {
        let l = relation_from_rows("l", &["k"], &[&[Value::Int(1)], &[Value::Int(2)]]);
        let r = relation_from_rows(
            "r",
            &["k"],
            &[&[Value::Int(1)], &[Value::Int(2)], &[Value::Int(3)]],
        );
        // right outer: left side would be padded only if right had dangling
        // rows w.r.t. left — it does (k=3). Flip: left outer pads right side
        // only if left has dangling rows — it does not.
        let sr = side_instance(&l, &r, &[(0, 0)], JoinOp::LeftOuter, false);
        assert!(!sr.padded);
        assert!(sr.lost_rows); // k=3 dropped
        let sl = side_instance(&l, &r, &[(0, 0)], JoinOp::RightOuter, true);
        assert!(sl.padded); // right's k=3 dangles and is preserved
    }

    #[test]
    fn semi_join_sides() {
        let (l, r) = sides();
        let sl = side_instance(&l, &r, &[(0, 0)], JoinOp::LeftSemi, true);
        assert_eq!(sl.rel.nrows(), 2);
        assert!(!sl.padded);
    }

    #[test]
    fn null_row_groups_with_existing_nulls() {
        let l = relation_from_rows(
            "l",
            &["k", "x"],
            &[
                &[Value::Int(1), Value::Null],
                &[Value::Int(7), Value::Int(5)],
            ],
        );
        let r = relation_from_rows("r", &["k"], &[&[Value::Int(1)], &[Value::Int(2)]]);
        // right outer: left padded (right k=2 dangles)
        let sl = side_instance(&l, &r, &[(0, 0)], JoinOp::RightOuter, true);
        assert!(sl.padded);
        // surviving left = row0; + null row
        assert_eq!(sl.rel.nrows(), 2);
        // null x of row0 and padded null share a code
        assert_eq!(sl.rel.code(0, 1), sl.rel.code(1, 1));
    }
}
