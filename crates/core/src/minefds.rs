//! Algorithm 5 — `mineFDs`: selective mining of the remaining join FDs.
//!
//! Theorem 3 shows some join FDs are invisible to logic: they must be
//! checked against data. Theorem 4 bounds the damage: a mixed FD
//! `A A' → b` (with `A` from the opposite side and `A', b` from `b`'s own
//! side `J`) can only be valid when `Y ∪ A' → b` already holds on `J`'s
//! side instance, `Y` being `J`'s join attributes. Since the side FD sets
//! are complete, that premise is a *free* closure test — candidates
//! failing it are rejected without touching data.
//!
//! The exploration is level-wise per rhs over the mixed lhs universe
//! (own-side attributes minus the rhs, plus opposite-side non-key
//! attributes — Algorithm 5 line 12's `A ⊆ atts(I) \ X`), pruned by the
//! already-known FD antichain, with surviving candidates validated on the
//! scoped join. The join is computed **only when at least one rhs is
//! plausible**; when computed, it is handed back to the caller so a
//! parent node can reuse it instead of re-materializing.

use infine_algebra::{join_relations, JoinOp};
use infine_discovery::{Fd, FdSet};
use infine_partitions::PliCache;
use infine_relation::{AttrId, AttrSet, Relation};

/// Result of the selective mining step.
pub struct MineOutcome {
    /// Join FDs discovered (over join ids).
    pub fds: Vec<Fd>,
    /// The scoped join, if it had to be computed (reusable by the caller).
    pub join: Option<Relation>,
    /// Rows of the computed join (0 when skipped).
    pub partial_rows: usize,
    /// Candidates rejected by the Theorem 4 constraint without data access.
    pub pruned_by_theorem4: usize,
    /// Candidates validated against data.
    pub validated: usize,
}

/// Run `mineFDs` for one join node. `known` is the FD antichain already
/// established over join ids (inherited + upstaged + inferred).
///
/// `rhs_mask` optionally restricts the mined rhs attributes per side
/// (side-local ids). It is safe **only at the root join** of a view, to
/// skip rhs attributes the final projection drops — inner nodes must stay
/// complete because their FD sets feed the parents' Theorem 4 closures.
#[allow(clippy::too_many_arguments)]
pub fn mine_join_fds(
    l_rel: &Relation,
    r_rel: &Relation,
    op: JoinOp,
    on: &[(AttrId, AttrId)],
    dl: &FdSet,
    dr: &FdSet,
    known: &FdSet,
    rhs_mask: Option<(AttrSet, AttrSet)>,
) -> MineOutcome {
    mine_join_fds_with_options(l_rel, r_rel, op, on, dl, dr, known, rhs_mask, true)
}

/// [`mine_join_fds`] with the Theorem 4 constraint made optional — the
/// `ablation` bench measures the pruning's contribution by disabling it
/// (every candidate is then validated against data, as a naive miner
/// would). Results are identical either way; only work differs.
#[allow(clippy::too_many_arguments)]
pub fn mine_join_fds_with_options(
    l_rel: &Relation,
    r_rel: &Relation,
    op: JoinOp,
    on: &[(AttrId, AttrId)],
    dl: &FdSet,
    dr: &FdSet,
    known: &FdSet,
    rhs_mask: Option<(AttrSet, AttrSet)>,
    use_theorem4: bool,
) -> MineOutcome {
    let nl = l_rel.ncols();
    let x_set: AttrSet = on.iter().map(|&(a, _)| a).collect();
    let y_set: AttrSet = on.iter().map(|&(_, b)| b).collect();

    // Plausible rhs attributes per side (Theorem 4 feasibility with the
    // largest possible A'): side J's attribute b is plausible iff
    // b ∈ closure_{D_J}(keys(J) ∪ (atts(J) \ {b})).
    //
    // Join-key attributes themselves are *always* plausible (b ∈ keys(J)
    // makes the closure test trivially true): mixed FDs with a join-key
    // rhs — e.g. `o_orderdate, ps_supplycost, l_quantity → o_orderkey` on
    // TPC-H Q9* — are genuine minimal view FDs that nothing else implies.
    // The paper's Algorithm 5 draws its rhs from `D_J` FDs only and would
    // miss them; completeness (Theorem 5) requires including them here.
    let plausible = |side_fds: &FdSet, keys: AttrSet, atts: AttrSet| -> Vec<AttrId> {
        atts.iter()
            .filter(|&b| side_fds.closure(keys.union(atts.without(b))).contains(b))
            .collect()
    };
    let (mask_l, mask_r) = rhs_mask.unwrap_or((l_rel.attr_set(), r_rel.attr_set()));
    let rhs_right: Vec<AttrId> = plausible(dr, y_set, r_rel.attr_set())
        .into_iter()
        .filter(|&b| mask_r.contains(b))
        .collect();
    let rhs_left: Vec<AttrId> = plausible(dl, x_set, l_rel.attr_set())
        .into_iter()
        .filter(|&b| mask_l.contains(b))
        .collect();
    if rhs_right.is_empty() && rhs_left.is_empty() {
        return MineOutcome {
            fds: Vec::new(),
            join: None,
            partial_rows: 0,
            pruned_by_theorem4: 0,
            validated: 0,
        };
    }

    // Partial SPJ computation (charged to mineFDs, as in the paper §V).
    let join = join_relations(l_rel, r_rel, op, on, None, None, "mine");
    let partial_rows = join.nrows();
    let mut cache = PliCache::new(&join);

    let mut fds: Vec<Fd> = Vec::new();
    let mut found = FdSet::new();
    let mut pruned_by_theorem4 = 0usize;
    let mut validated = 0usize;

    // For each rhs, explore the mixed lattice.
    let mut explore = |b_join: AttrId, own_is_left: bool, own_fds: &FdSet, own_keys: AttrSet| {
        let to_join = |side_left: bool, id: AttrId| if side_left { id } else { nl + id };
        let b_own = if own_is_left { b_join } else { b_join - nl };
        // lhs universe over join ids: own side minus rhs, opposite side
        // minus the opposite join keys.
        let own_atts = if own_is_left {
            l_rel.attr_set()
        } else {
            r_rel.attr_set()
        };
        let opp_atts = if own_is_left {
            r_rel.attr_set()
        } else {
            l_rel.attr_set()
        };
        let opp_keys = if own_is_left { y_set } else { x_set };
        let universe: AttrSet = own_atts
            .without(b_own)
            .iter()
            .map(|a| to_join(own_is_left, a))
            .chain(
                opp_atts
                    .difference(opp_keys)
                    .iter()
                    .map(|a| to_join(!own_is_left, a)),
            )
            .collect();
        // Which join ids belong to the own (rhs's) side?
        let own_mask: AttrSet = own_atts.iter().map(|a| to_join(own_is_left, a)).collect();

        let mut level: Vec<AttrSet> = universe.iter().map(AttrSet::single).collect();
        let mut depth = 1usize;
        while !level.is_empty() && depth < universe.len() + 1 {
            let mut extendable: Vec<AttrSet> = Vec::new();
            for &cand in &level {
                if known.has_subset_lhs(cand, b_join) || found.has_subset_lhs(cand, b_join) {
                    continue;
                }
                // Theorem 4 constraint: own-side part A' must satisfy
                // b ∈ closure_{D_own}(keys_own ∪ A').
                let a_prime_own: AttrSet = cand
                    .intersect(own_mask)
                    .iter()
                    .map(|j| if own_is_left { j } else { j - nl })
                    .collect();
                if use_theorem4 && !own_fds.closure(own_keys.union(a_prime_own)).contains(b_own) {
                    pruned_by_theorem4 += 1;
                    extendable.push(cand);
                    continue;
                }
                validated += 1;
                if cache.fd_holds(cand, b_join) {
                    found.insert_minimal(Fd::new(cand, b_join));
                    fds.push(Fd::new(cand, b_join));
                } else {
                    extendable.push(cand);
                }
            }
            let mut next = Vec::new();
            for &cand in &extendable {
                let max_attr = cand.iter().last().expect("non-empty");
                for e in universe.iter() {
                    if e > max_attr {
                        next.push(cand.with(e));
                    }
                }
            }
            level = next;
            depth += 1;
        }
    };

    for &b in &rhs_right {
        explore(nl + b, false, dr, y_set);
    }
    for &b in &rhs_left {
        explore(b, true, dl, x_set);
    }

    MineOutcome {
        fds,
        join: Some(join),
        partial_rows,
        pruned_by_theorem4,
        validated,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use infine_relation::{relation_from_rows, Value};

    /// The Theorem 3 counterexample from the paper's appendix: the join FD
    /// `A A' → b` holds on L ⋈ R but is not inferable from L's and R's FDs.
    fn theorem3_sides() -> (Relation, Relation) {
        let l = relation_from_rows(
            "L",
            &["x", "a"],
            &[
                &[Value::Int(0), Value::Int(0)],
                &[Value::Int(1), Value::Int(0)],
                &[Value::Int(1), Value::Int(1)],
                &[Value::Int(2), Value::Int(2)],
            ],
        );
        let r = relation_from_rows(
            "R",
            &["y", "ap", "b"],
            &[
                &[Value::Int(0), Value::Int(0), Value::Int(0)],
                &[Value::Int(1), Value::Int(0), Value::Int(0)],
                &[Value::Int(1), Value::Int(1), Value::Int(1)],
                &[Value::Int(2), Value::Int(1), Value::Int(0)],
            ],
        );
        (l, r)
    }

    #[test]
    fn finds_the_theorem3_join_fd() {
        let (l, r) = theorem3_sides();
        // Complete FD sets of the sides over their own attrs:
        // L: no non-trivial FDs except... x is not a key ({1} twice);
        // a is not a key; verified: only trivial ones. Use miner.
        let dl = infine_discovery::mine_fds(&l, l.attr_set());
        let dr = infine_discovery::mine_fds(&r, r.attr_set());
        // The paper states Y,A'→b and Y,b→A' hold on R: sanity-check.
        assert!(dl.is_empty(), "dl = {:?}", dl.to_sorted_vec());
        assert!(dr.contains(&Fd::new([0usize, 1].into_iter().collect::<AttrSet>(), 2)));
        let known = FdSet::new();
        let out = mine_join_fds(&l, &r, JoinOp::Inner, &[(0, 0)], &dl, &dr, &known, None);
        // join ids: x=0, a=1, y=2, ap=3, b=4. Expect a,ap→b.
        let expect = Fd::new([1usize, 3].into_iter().collect::<AttrSet>(), 4);
        assert!(out.fds.contains(&expect), "missing AA'→b in {:?}", out.fds);
        assert!(out.join.is_some());
        assert!(out.partial_rows > 0);
    }

    #[test]
    fn theorem4_constraint_prunes_without_data() {
        let (l, r) = theorem3_sides();
        let dl = infine_discovery::mine_fds(&l, l.attr_set());
        let dr = infine_discovery::mine_fds(&r, r.attr_set());
        let out = mine_join_fds(
            &l,
            &r,
            JoinOp::Inner,
            &[(0, 0)],
            &dl,
            &dr,
            &FdSet::new(),
            None,
        );
        assert!(
            out.pruned_by_theorem4 > 0,
            "expected some constraint pruning"
        );
    }

    #[test]
    fn skips_join_when_masked_rhs_leaves_nothing() {
        // Sides with NO FDs at all: closure(Y ∪ rest) never reaches b
        // unless b ∈ rest... wait, b ∉ its own lhs universe, and with no
        // FDs closure(S) = S, so b ∉ closure ⇒ no plausible rhs.
        let l = relation_from_rows(
            "l",
            &["k", "a"],
            &[
                &[Value::Int(1), Value::Int(1)],
                &[Value::Int(1), Value::Int(2)],
                &[Value::Int(2), Value::Int(1)],
                &[Value::Int(2), Value::Int(2)],
            ],
        );
        let r = relation_from_rows(
            "r",
            &["k", "b"],
            &[
                &[Value::Int(1), Value::Int(1)],
                &[Value::Int(1), Value::Int(2)],
                &[Value::Int(2), Value::Int(1)],
                &[Value::Int(2), Value::Int(2)],
            ],
        );
        let dl = infine_discovery::mine_fds(&l, l.attr_set());
        let dr = infine_discovery::mine_fds(&r, r.attr_set());
        assert!(dl.is_empty() && dr.is_empty());
        // With no side FDs the only plausible rhs are the join keys
        // themselves; masking them out (the root-projection case) lets
        // mineFDs skip the join entirely.
        let mask = (AttrSet::single(1), AttrSet::single(1)); // non-key attrs
        let out = mine_join_fds(
            &l,
            &r,
            JoinOp::Inner,
            &[(0, 0)],
            &dl,
            &dr,
            &FdSet::new(),
            Some(mask),
        );
        assert!(out.join.is_none(), "join should be skipped");
        assert!(out.fds.is_empty());
        assert_eq!(out.partial_rows, 0);
        // Unmasked, the key columns are plausible rhs and the join runs.
        let out = mine_join_fds(
            &l,
            &r,
            JoinOp::Inner,
            &[(0, 0)],
            &dl,
            &dr,
            &FdSet::new(),
            None,
        );
        assert!(out.join.is_some());
    }

    #[test]
    fn known_subsets_suppress_candidates() {
        let (l, r) = theorem3_sides();
        let dl = infine_discovery::mine_fds(&l, l.attr_set());
        let dr = infine_discovery::mine_fds(&r, r.attr_set());
        let mut known = FdSet::new();
        // pretend a→b is already known (join ids 1 → 4)
        known.insert_minimal(Fd::new(AttrSet::single(1), 4));
        let out = mine_join_fds(&l, &r, JoinOp::Inner, &[(0, 0)], &dl, &dr, &known, None);
        let aap = Fd::new([1usize, 3].into_iter().collect::<AttrSet>(), 4);
        assert!(
            !out.fds.contains(&aap),
            "superset of known should be pruned"
        );
    }
}
