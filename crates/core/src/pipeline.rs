//! Algorithm 1 — the InFine pipeline.
//!
//! Recursive traversal of the SPJ view specification:
//!
//! * **base relation** — mine FDs restricted to the *needed* attributes
//!   (the projected attributes of the whole view plus every join key on
//!   the path, realizing the projection pruning of Algorithm 1 lines 3–5);
//! * **projection** — closure-restrict the child's triples (Theorem 1:
//!   projections never add FDs);
//! * **selection** — keep the child's triples (still valid) and mine the
//!   upstaged-selection FDs when tuples were filtered (Algorithm 2);
//! * **join** — inherit both sides' triples (re-validated when outer
//!   padding is in play), mine upstaged join FDs on the side instances
//!   (Algorithm 3), infer through the join keys (Algorithm 4), and
//!   selectively mine the remaining join FDs (Algorithm 5).
//!
//! The *root* view result is never materialized unless `mineFDs` had to
//! compute it anyway — this is where the order-of-magnitude runtime wins
//! of the paper's Fig. 3 come from.

use crate::infer::infer_fds;
use crate::instance::side_instance;
use crate::minefds::mine_join_fds;
use crate::provenance::{FdKind, ProvenanceBuilder, ProvenanceTriple};
use crate::restrict::restrict_triples;
use infine_algebra::{
    derive_schema, join_relations, joined_schema, resolve, resolve_join_conditions, select_rows,
    AlgebraError, JoinOp, ViewSpec,
};
use infine_discovery::{extend_seeds, mine_new_fds, Algorithm, ExactValidity, Fd, FdSet};
use infine_partitions::PliCache;
use infine_relation::{AttrId, AttrSet, Database, Origin, Relation, Schema};
use std::collections::{HashMap, HashSet};
use std::time::{Duration, Instant};

/// Pre-computed minimal FD sets for (scoped) base relations, keyed by base
/// label (alias when present, table name otherwise). The incremental
/// entry point consumes these instead of re-mining — see
/// [`InFine::discover_incremental`].
///
/// Each `FdSet` must be the complete minimal FD set of the corresponding
/// scoped base relation (attribute ids as produced by [`base_scopes`]);
/// the pipeline trusts it without re-validation.
pub type BaseFds = HashMap<String, FdSet>;

/// The attribute scope the pipeline mines for one base occurrence of a
/// view: the base-table columns that survive Algorithm 1's projection
/// push-down (the view's projected attributes plus every join key and
/// selection attribute on the path).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BaseScope {
    /// Base label: alias when the occurrence is aliased, table name
    /// otherwise. Unique per view (enforced like [`InFine::discover`]).
    pub label: String,
    /// Underlying base-table name in the database.
    pub table: String,
    /// Kept column ids of the base table, ascending. The scoped relation
    /// is `table.project(&attrs)`; FD sets in [`BaseFds`] use ids into
    /// this projection.
    pub attrs: Vec<AttrId>,
}

impl BaseScope {
    /// Materialize the scoped relation this scope describes.
    pub fn project(&self, db: &Database) -> Relation {
        db.expect(&self.table)
            .project(&self.attrs, self.label.clone())
    }
}

/// Errors from the pipeline.
#[derive(Debug)]
pub enum InFineError {
    /// Underlying algebra failure (unknown relation/attribute, ambiguity).
    Algebra(AlgebraError),
    /// The same base table appears twice without distinguishing aliases;
    /// origin-based scope push-down would be ambiguous.
    DuplicateBaseLabel(String),
}

impl From<AlgebraError> for InFineError {
    fn from(e: AlgebraError) -> Self {
        InFineError::Algebra(e)
    }
}

impl std::fmt::Display for InFineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            InFineError::Algebra(e) => write!(f, "{e}"),
            InFineError::DuplicateBaseLabel(t) => write!(
                f,
                "base table {t:?} appears multiple times without distinct aliases"
            ),
        }
    }
}

impl std::error::Error for InFineError {}

/// Wall-clock breakdown per pipeline phase (the Fig. 5 / Table III split).
#[derive(Debug, Default, Clone, Copy)]
pub struct PhaseTimings {
    /// Step 1: FD mining on the base tables (excluded from the paper's
    /// comparisons — both pipelines pay it identically).
    pub base_mining: Duration,
    /// Scoped base-table materialization — the I/O analogue.
    pub io: Duration,
    /// `selectionFDs` + `joinUpFDs` (semi-join computation included).
    pub upstage: Duration,
    /// `inferFDs` including its refine partial joins.
    pub infer: Duration,
    /// `mineFDs` including the partial SPJ computation and any child-join
    /// materialization forced by a parent node.
    pub mine: Duration,
}

impl PhaseTimings {
    /// Total time excluding base mining (the paper's reported quantity).
    pub fn infine_total(&self) -> Duration {
        self.io + self.upstage + self.infer + self.mine
    }
}

/// Counters reported alongside the result.
#[derive(Debug, Default, Clone, Copy)]
pub struct PipelineStats {
    /// Rows of all partial joins materialized by infer/mine.
    pub partial_join_rows: usize,
    /// Candidates rejected by the Theorem 4 constraint (no data touched).
    pub pruned_by_theorem4: usize,
    /// Candidates validated against data in `mineFDs`.
    pub mine_validated: usize,
}

/// Configuration of the pipeline.
#[derive(Debug, Clone, Copy)]
pub struct InFineConfig {
    /// Algorithm used for step-1 base-table mining.
    pub base_algorithm: Algorithm,
}

impl Default for InFineConfig {
    fn default() -> Self {
        InFineConfig {
            base_algorithm: Algorithm::Levelwise,
        }
    }
}

/// The result of a pipeline run.
#[derive(Debug)]
pub struct InFineReport {
    /// Schema of the view's projected output.
    pub schema: Schema,
    /// Provenance triples over `schema` ids — the complete minimal FD set
    /// of the view, each annotated with kind and first-holding sub-query.
    pub triples: Vec<ProvenanceTriple>,
    /// Phase timings.
    pub timings: PhaseTimings,
    /// Counters.
    pub stats: PipelineStats,
}

impl InFineReport {
    /// The FDs as a set.
    pub fn fd_set(&self) -> FdSet {
        FdSet::from_fds(self.triples.iter().map(|t| t.fd))
    }

    /// Number of triples of one kind.
    pub fn count_kind(&self, kind: FdKind) -> usize {
        self.triples.iter().filter(|t| t.kind == kind).count()
    }

    /// The paper's three-way share (Table III / Fig. 5): fraction of FDs
    /// attributable to `upstageFDs` (base + all upstaged kinds — Algorithm
    /// 3 re-validates and carries the side FDs), `inferFDs`, and `mineFDs`.
    pub fn phase_shares(&self) -> (f64, f64, f64) {
        let total = self.triples.len().max(1) as f64;
        let upstage = (self.count_kind(FdKind::Base)
            + self.count_kind(FdKind::UpstagedSelection)
            + self.count_kind(FdKind::UpstagedLeft)
            + self.count_kind(FdKind::UpstagedRight)) as f64;
        let infer = self.count_kind(FdKind::Inferred) as f64;
        let mine = self.count_kind(FdKind::JoinFd) as f64;
        (upstage / total, infer / total, mine / total)
    }

    /// Render all triples with attribute names.
    pub fn render(&self) -> String {
        self.triples
            .iter()
            .map(|t| t.render(&self.schema))
            .collect::<Vec<_>>()
            .join("\n")
    }
}

/// Origin key used for scope push-down.
type OriginKey = (String, String);

fn origin_key(o: &Origin) -> OriginKey {
    (o.relation.clone(), o.attribute.clone())
}

/// Lazily materialized node relation.
enum NodeRel {
    Ready(Relation),
    /// A join whose materialization is deferred until (and unless) a
    /// parent needs it. `keep` optionally restricts output columns
    /// (projection pushed into the lazy join).
    LazyJoin {
        left: Box<Relation>,
        right: Box<Relation>,
        op: JoinOp,
        on: Vec<(AttrId, AttrId)>,
        keep: Option<Vec<AttrId>>,
        name: String,
    },
}

/// One processed node of the view tree.
struct Node {
    schema: Schema,
    rel: NodeRel,
    triples: Vec<ProvenanceTriple>,
}

impl Node {
    fn fd_set(&self) -> FdSet {
        FdSet::from_fds(self.triples.iter().map(|t| t.fd))
    }
}

/// The InFine pipeline (Algorithm 1).
#[derive(Debug, Default)]
pub struct InFine {
    /// Configuration.
    pub config: InFineConfig,
}

impl InFine {
    /// Create a pipeline with a custom configuration.
    pub fn new(config: InFineConfig) -> Self {
        InFine { config }
    }

    /// Discover the provenance-annotated FDs of `spec` over `db`.
    pub fn discover(&self, db: &Database, spec: &ViewSpec) -> Result<InFineReport, InFineError> {
        self.discover_inner(db, spec, None)
    }

    /// Incremental entry point: run the pipeline with step-1 base mining
    /// replaced by the caller's maintained [`BaseFds`].
    ///
    /// This is the hinge the `infine-incremental` maintenance engine hangs
    /// off: after a delta batch it revalidates each base table's FD set
    /// against patched PLIs (instead of re-mining the lattice), then calls
    /// here to rebuild the view-level provenance triples. Because the
    /// complete minimal FD set of a relation is unique, supplying the
    /// maintained sets yields a report identical to a full
    /// [`InFine::discover`] on the updated database — at none of the base
    /// mining cost, which dominates end-to-end re-discovery.
    ///
    /// Labels missing from `base_fds` fall back to full mining, so partial
    /// overrides are fine. `timings.base_mining` counts only the fallback
    /// mining actually performed.
    pub fn discover_incremental(
        &self,
        db: &Database,
        spec: &ViewSpec,
        base_fds: &BaseFds,
    ) -> Result<InFineReport, InFineError> {
        self.discover_inner(db, spec, Some(base_fds))
    }

    /// Shard-aware incremental entry point: each element of
    /// `shard_base_fds` carries per-label covers maintained over one
    /// *fragment* (a disjoint row subset) of each base table; the
    /// fragments of one label must union to the label's full scoped
    /// relation in `db`. Per label the fragment covers are merged into
    /// the exact global cover ([`merge_fragment_covers`]) and the
    /// pipeline then replays with base mining skipped — the report is
    /// identical to [`InFine::discover`] on `db`.
    pub fn discover_sharded(
        &self,
        db: &Database,
        spec: &ViewSpec,
        shard_base_fds: &[BaseFds],
    ) -> Result<InFineReport, InFineError> {
        let merged = self.merge_shard_base_fds(db, spec, shard_base_fds)?;
        self.discover_incremental(db, spec, &merged)
    }

    /// The cover-merge half of [`InFine::discover_sharded`]: per base
    /// label, merge the shard fragment covers into the canonical cover of
    /// the full scoped relation. Labels that no shard supplies are left
    /// out (the pipeline falls back to mining them).
    pub fn merge_shard_base_fds(
        &self,
        db: &Database,
        spec: &ViewSpec,
        shard_base_fds: &[BaseFds],
    ) -> Result<BaseFds, InFineError> {
        let scopes = base_scopes(db, spec)?;
        let mut merged = BaseFds::new();
        for scope in scopes {
            if let Some(fds) = merge_label_covers(db, &scope, shard_base_fds) {
                merged.insert(scope.label, fds);
            }
        }
        Ok(merged)
    }

    fn discover_inner(
        &self,
        db: &Database,
        spec: &ViewSpec,
        base_fds: Option<&BaseFds>,
    ) -> Result<InFineReport, InFineError> {
        validate_alias_uniqueness(spec)?;
        // AV — the projected attribute set of the whole view (Def. 3).
        let root_schema = derive_schema(spec, db)?;
        let needed: HashSet<OriginKey> = root_schema
            .iter()
            .filter_map(|a| a.origin.as_ref().map(origin_key))
            .collect();

        // Step 1, hoisted and parallel: when the pool can actually fan
        // out, mine every base scope the caller did not supply *before*
        // the sequential tree walk — one pool task per base occurrence.
        // The scopes here are by construction the same column subsets
        // `process_base` would mine (see the COUPLING note on
        // `collect_scopes`), and the minimal FD set of a relation is
        // unique, so `process_base` consuming these sets produces triples
        // byte-identical to mining inline. The scoped projection is
        // materialized once more inside `process_base` (counted as io
        // there); that duplicated column clone is noise next to mining —
        // but it is not free, so with a sequential pool (or fewer than
        // two scopes to mine) the hoist is skipped entirely and
        // `process_base` mines inline exactly as before.
        let mut scopes: Vec<BaseScope> = Vec::new();
        collect_scopes(db, spec, &needed, &mut scopes)?;
        let to_mine: Vec<BaseScope> = scopes
            .into_iter()
            .filter(|s| base_fds.is_none_or(|m| !m.contains_key(&s.label)))
            .collect();
        let mut premine_time = Duration::ZERO;
        let hoisted: Option<BaseFds> = if to_mine.len() >= 2 && !infine_exec::sequential() {
            let algo = self.config.base_algorithm;
            let t0 = Instant::now();
            let mined = infine_exec::par_map(&to_mine, |_, scope| {
                let rel = scope.project(db);
                algo.discover_restricted(&rel, rel.attr_set())
            });
            premine_time = t0.elapsed();
            let mut effective: BaseFds = base_fds.cloned().unwrap_or_default();
            for (scope, fds) in to_mine.into_iter().zip(mined) {
                effective.insert(scope.label, fds);
            }
            Some(effective)
        } else {
            None
        };

        let mut ctx = Ctx {
            db,
            algo: self.config.base_algorithm,
            timings: PhaseTimings {
                base_mining: premine_time,
                ..PhaseTimings::default()
            },
            stats: PipelineStats::default(),
            final_av: needed.clone(),
            base_fds: hoisted.as_ref().or(base_fds),
        };
        let node = ctx.process(spec, &needed, true)?;

        // Final restriction to exactly the projected attributes (scope
        // push-down may have kept extra join keys below the root).
        let keep: Vec<AttrId> = root_schema
            .iter()
            .filter_map(|a| {
                let o = a.origin.as_ref()?;
                (0..node.schema.len()).find(|&i| {
                    node.schema
                        .attr(i)
                        .origin
                        .as_ref()
                        .map(|no| no == o)
                        .unwrap_or(false)
                })
            })
            .collect();
        let (schema, triples) = if keep.len() == node.schema.len() {
            (node.schema, node.triples)
        } else {
            restrict_triples(&node.triples, &node.schema, &keep, &format!("π({spec})"))
        };
        record_phase_metrics(&ctx.timings);
        Ok(InFineReport {
            schema,
            triples,
            timings: ctx.timings,
            stats: ctx.stats,
        })
    }
}

/// Record one discovery run's phase breakdown into the ambient
/// `infine-obs` registry (`infine_pipeline_phase_seconds{phase}` plus
/// the aggregate `infine_pipeline_seconds`). One observation per phase
/// per run — registration cost only, never on the per-candidate path.
fn record_phase_metrics(timings: &PhaseTimings) {
    infine_obs::with_current(|r| {
        for (phase, elapsed) in [
            ("base_mining", timings.base_mining),
            ("io", timings.io),
            ("upstage", timings.upstage),
            ("infer", timings.infer),
            ("mine", timings.mine),
        ] {
            r.duration_histogram(
                "infine_pipeline_phase_seconds",
                "Wall time per InFine pipeline phase, one observation per discovery run.",
                &[("phase", phase)],
            )
            .observe_duration(elapsed);
        }
        r.duration_histogram(
            "infine_pipeline_seconds",
            "InFine pipeline wall time excluding base mining (the paper's reported split).",
            &[],
        )
        .observe_duration(timings.infine_total());
    });
}

struct Ctx<'a> {
    db: &'a Database,
    algo: Algorithm,
    timings: PhaseTimings,
    stats: PipelineStats,
    /// Origins of the view's final projected attributes (AV); used to
    /// mask rhs candidates of `mineFDs` at the root join only.
    final_av: HashSet<OriginKey>,
    /// Per-label base FD overrides for incremental runs (skip step-1
    /// mining for labels present here).
    base_fds: Option<&'a BaseFds>,
}

impl Ctx<'_> {
    fn force<'n>(&mut self, node: &'n mut Node) -> &'n Relation {
        if let NodeRel::LazyJoin {
            left,
            right,
            op,
            on,
            keep,
            name,
        } = &node.rel
        {
            let t0 = Instant::now();
            let nl = left.ncols();
            let (keep_left, keep_right): (Option<Vec<AttrId>>, Option<Vec<AttrId>>) = match keep {
                None => (None, None),
                Some(ids) => {
                    let l: Vec<AttrId> = ids.iter().copied().filter(|&i| i < nl).collect();
                    let r: Vec<AttrId> = ids
                        .iter()
                        .copied()
                        .filter(|&i| i >= nl)
                        .map(|i| i - nl)
                        .collect();
                    (Some(l), Some(r))
                }
            };
            let rel = join_relations(
                left,
                right,
                *op,
                on,
                keep_left.as_deref(),
                keep_right.as_deref(),
                name,
            );
            self.stats.partial_join_rows += rel.nrows();
            self.timings.mine += t0.elapsed();
            node.rel = NodeRel::Ready(rel);
        }
        match &node.rel {
            NodeRel::Ready(r) => r,
            NodeRel::LazyJoin { .. } => unreachable!("forced above"),
        }
    }

    fn process(
        &mut self,
        spec: &ViewSpec,
        needed: &HashSet<OriginKey>,
        at_root: bool,
    ) -> Result<Node, InFineError> {
        match spec {
            ViewSpec::Base { .. } => self.process_base(spec, needed),
            ViewSpec::Project { input, attrs } => {
                // projections preserve root-ness (only they sit between a
                // root join and the top of the spec in practice)
                self.process_project(spec, input, attrs, needed, at_root)
            }
            ViewSpec::Select { input, predicate } => {
                self.process_select(spec, input, predicate, needed)
            }
            ViewSpec::Join {
                left,
                right,
                op,
                on,
            } => self.process_join(spec, left, right, *op, on, needed, at_root),
        }
    }

    fn process_base(
        &mut self,
        spec: &ViewSpec,
        needed: &HashSet<OriginKey>,
    ) -> Result<Node, InFineError> {
        let t0 = Instant::now();
        // Project the needed columns straight out of the stored relation —
        // `execute` would clone every column first, which hurts on wide
        // tables like lineitem. The schema (with alias-adjusted origins)
        // is derived separately and only the scoped columns are copied.
        let full_schema = derive_schema(spec, self.db)?;
        let (table, label) = match spec {
            ViewSpec::Base { table, alias } => (
                self.db.expect(table),
                alias.as_deref().unwrap_or(table.as_str()),
            ),
            _ => unreachable!("process_base called on a non-base spec"),
        };
        let scope: Vec<AttrId> = (0..full_schema.len())
            .filter(|&i| {
                full_schema
                    .attr(i)
                    .origin
                    .as_ref()
                    .map(|o| needed.contains(&origin_key(o)))
                    .unwrap_or(false)
            })
            .collect();
        let mut schema = Schema::new();
        for &i in &scope {
            schema.push(full_schema.attr(i).clone());
        }
        let columns = scope.iter().map(|&i| table.column(i).clone()).collect();
        let rel = Relation::from_columns(spec.to_string(), schema, columns, table.nrows());
        self.timings.io += t0.elapsed();

        // Incremental runs supply maintained base FD sets; mine otherwise.
        let fds = match self.base_fds.and_then(|m| m.get(label)) {
            Some(maintained) => maintained.clone(),
            None => {
                let t1 = Instant::now();
                let fds = self.algo.discover_restricted(&rel, rel.attr_set());
                self.timings.base_mining += t1.elapsed();
                fds
            }
        };

        let subquery = spec.to_string();
        let triples = fds
            .to_sorted_vec()
            .into_iter()
            .map(|fd| ProvenanceTriple::new(fd, FdKind::Base, subquery.clone()))
            .collect();
        Ok(Node {
            schema: rel.schema.clone(),
            rel: NodeRel::Ready(rel),
            triples,
        })
    }

    #[allow(clippy::too_many_arguments)]
    fn process_project(
        &mut self,
        spec: &ViewSpec,
        input: &ViewSpec,
        attrs: &[String],
        needed: &HashSet<OriginKey>,
        at_root: bool,
    ) -> Result<Node, InFineError> {
        let child = self.process(input, needed, at_root)?;
        // Resolve projected names against the child's *scoped* schema,
        // skipping attributes the scope already dropped (they cannot be
        // needed above, or they would be in `needed`).
        let mut keep: Vec<AttrId> = Vec::new();
        for a in attrs {
            if let Ok(id) = resolve(&child.schema, a) {
                keep.push(id);
            }
        }
        let (schema, triples) =
            restrict_triples(&child.triples, &child.schema, &keep, &spec.to_string());
        let rel = match child.rel {
            NodeRel::Ready(r) => NodeRel::Ready(r.project(&keep, spec.to_string())),
            NodeRel::LazyJoin {
                left,
                right,
                op,
                on,
                keep: inner_keep,
                name,
            } => {
                // Push the projection into the lazy join.
                let composed: Vec<AttrId> = match inner_keep {
                    None => keep.clone(),
                    Some(prev) => keep.iter().map(|&i| prev[i]).collect(),
                };
                NodeRel::LazyJoin {
                    left,
                    right,
                    op,
                    on,
                    keep: Some(composed),
                    name,
                }
            }
        };
        Ok(Node {
            schema,
            rel,
            triples,
        })
    }

    fn process_select(
        &mut self,
        spec: &ViewSpec,
        input: &ViewSpec,
        predicate: &infine_algebra::Predicate,
        needed: &HashSet<OriginKey>,
    ) -> Result<Node, InFineError> {
        // Add the predicate's attributes to the child scope.
        let child_full = derive_schema(input, self.db)?;
        let mut child_needed = needed.clone();
        collect_predicate_origins(predicate, &child_full, &mut child_needed)?;
        let mut child = self.process(input, &child_needed, false)?;
        self.force(&mut child);
        let child_rel = match &child.rel {
            NodeRel::Ready(r) => r,
            _ => unreachable!(),
        };

        let t0 = Instant::now();
        let rows = select_rows(child_rel, predicate)?;
        let filtered = rows.len() < child_rel.nrows();
        let rel = child_rel.gather(&rows, spec.to_string());

        let mut builder = ProvenanceBuilder::new();
        for t in &child.triples {
            builder.insert(t.clone());
        }
        if filtered {
            // Algorithm 2: mine the FDs that became exact.
            let known = child.fd_set();
            let new = mine_new_fds(&rel, rel.attr_set(), &known);
            let subquery = spec.to_string();
            for fd in new.to_sorted_vec() {
                builder.insert(ProvenanceTriple::new(
                    fd,
                    FdKind::UpstagedSelection,
                    subquery.clone(),
                ));
            }
        }
        self.timings.upstage += t0.elapsed();
        Ok(Node {
            schema: child.schema.clone(),
            rel: NodeRel::Ready(rel),
            triples: builder.into_triples(),
        })
    }

    #[allow(clippy::too_many_arguments)]
    fn process_join(
        &mut self,
        spec: &ViewSpec,
        left: &ViewSpec,
        right: &ViewSpec,
        op: JoinOp,
        on: &[(String, String)],
        needed: &HashSet<OriginKey>,
        at_root: bool,
    ) -> Result<Node, InFineError> {
        // Split the needed set between the children and add the join keys.
        let ls_full = derive_schema(left, self.db)?;
        let rs_full = derive_schema(right, self.db)?;
        let on_full = resolve_join_conditions(&ls_full, &rs_full, on)?;
        let left_origins: HashSet<OriginKey> = ls_full
            .iter()
            .filter_map(|a| a.origin.as_ref().map(origin_key))
            .collect();
        let right_origins: HashSet<OriginKey> = rs_full
            .iter()
            .filter_map(|a| a.origin.as_ref().map(origin_key))
            .collect();
        let mut needed_left: HashSet<OriginKey> = needed
            .iter()
            .filter(|o| left_origins.contains(*o))
            .cloned()
            .collect();
        let mut needed_right: HashSet<OriginKey> = needed
            .iter()
            .filter(|o| right_origins.contains(*o))
            .cloned()
            .collect();
        for &(l, r) in &on_full {
            if let Some(o) = &ls_full.attr(l).origin {
                needed_left.insert(origin_key(o));
            }
            if let Some(o) = &rs_full.attr(r).origin {
                needed_right.insert(origin_key(o));
            }
        }

        let mut lnode = self.process(left, &needed_left, false)?;
        let mut rnode = self.process(right, &needed_right, false)?;
        self.force(&mut lnode);
        self.force(&mut rnode);
        let l_rel = match &lnode.rel {
            NodeRel::Ready(r) => r.clone(),
            _ => unreachable!(),
        };
        let r_rel = match &rnode.rel {
            NodeRel::Ready(r) => r.clone(),
            _ => unreachable!(),
        };
        let on_ids = resolve_join_conditions(&l_rel.schema, &r_rel.schema, on)?;
        let nl = l_rel.ncols();
        let subquery = spec.to_string();

        // Semi-joins keep a single side: inherited + upstaged only.
        if matches!(op, JoinOp::LeftSemi | JoinOp::RightSemi) {
            let keep_left_side = op == JoinOp::LeftSemi;
            let (kept_node, kept_rel) = if keep_left_side {
                (&lnode, &l_rel)
            } else {
                (&rnode, &r_rel)
            };
            let t0 = Instant::now();
            let si = side_instance(&l_rel, &r_rel, &on_ids, op, keep_left_side);
            let mut builder = ProvenanceBuilder::new();
            for t in &kept_node.triples {
                builder.insert(t.clone());
            }
            if si.lost_rows {
                let known = kept_node.fd_set();
                let new = mine_new_fds(&si.rel, si.rel.attr_set(), &known);
                let kind = if keep_left_side {
                    FdKind::UpstagedLeft
                } else {
                    FdKind::UpstagedRight
                };
                for fd in new.to_sorted_vec() {
                    builder.insert(ProvenanceTriple::new(fd, kind, subquery.clone()));
                }
            }
            self.timings.upstage += t0.elapsed();
            return Ok(Node {
                schema: kept_rel.schema.clone(),
                rel: NodeRel::Ready(si.rel),
                triples: builder.into_triples(),
            });
        }

        let schema = joined_schema(&l_rel.schema, &r_rel.schema, op);
        let mut builder = ProvenanceBuilder::new();

        // ---- Step A: inherited + upstaged (Algorithm 3) ----
        // The two sides are independent; fan them out over the pool and
        // merge left-then-right so the triple order matches the serial
        // path at any worker count.
        let t0 = Instant::now();
        let mut sides = infine_exec::par_map(&[true, false], |_, &is_left| {
            let node = if is_left { &lnode } else { &rnode };
            let offset = if is_left { 0 } else { nl };
            let si = side_instance(&l_rel, &r_rel, &on_ids, op, is_left);
            let mut side_known = FdSet::new();
            let mut triples: Vec<ProvenanceTriple> = Vec::with_capacity(node.triples.len());
            if si.padded {
                // Outer padding can break inherited FDs: re-validate.
                let mut cache = PliCache::new(&si.rel);
                for t in &node.triples {
                    let ok = if t.fd.lhs.is_empty() {
                        si.rel.nrows() == 0 || si.rel.distinct_count(t.fd.rhs) <= 1
                    } else {
                        cache.fd_holds(t.fd.lhs, t.fd.rhs)
                    };
                    if ok {
                        side_known.insert_minimal(t.fd);
                        triples.push(offset_triple(t, offset));
                    }
                }
            } else {
                for t in &node.triples {
                    side_known.insert_minimal(t.fd);
                    triples.push(offset_triple(t, offset));
                }
            }
            let mut side_all = side_known.clone();
            if si.lost_rows {
                let new = mine_new_fds(&si.rel, si.rel.attr_set(), &side_known);
                let kind = if is_left {
                    FdKind::UpstagedLeft
                } else {
                    FdKind::UpstagedRight
                };
                for fd in new.to_sorted_vec() {
                    side_all.insert_minimal(fd);
                    triples.push(ProvenanceTriple::new(
                        Fd::new(
                            fd.lhs.iter().map(|a| a + offset).collect::<AttrSet>(),
                            fd.rhs + offset,
                        ),
                        kind,
                        subquery.clone(),
                    ));
                }
            }
            (side_all, triples)
        })
        .into_iter();
        let (dl, l_triples) = sides.next().expect("left side result");
        let (dr, r_triples) = sides.next().expect("right side result");
        for t in l_triples.into_iter().chain(r_triples) {
            builder.insert(t);
        }
        self.timings.upstage += t0.elapsed();

        // Join-key equivalence FDs (x → y / y → x) where guaranteed by the
        // operator/padding analysis — fed to inference and mining closures.
        let t1 = Instant::now();
        for (i, &(x, y)) in on_ids.iter().enumerate() {
            let _ = i;
            let (xy_ok, yx_ok) = key_equivalence_validity(&l_rel, &r_rel, &on_ids, op, x, y);
            if xy_ok {
                builder.insert(ProvenanceTriple::new(
                    Fd::new(AttrSet::single(x), nl + y),
                    FdKind::Inferred,
                    subquery.clone(),
                ));
            }
            if yx_ok {
                builder.insert(ProvenanceTriple::new(
                    Fd::new(AttrSet::single(nl + y), x),
                    FdKind::Inferred,
                    subquery.clone(),
                ));
            }
        }

        // ---- Step B: inferred FDs (Algorithm 4) ----
        let known_snapshot = builder.fds().clone();
        let (inferred, infer_rows) =
            infer_fds(&l_rel, &r_rel, op, &on_ids, &dl, &dr, &known_snapshot);
        self.stats.partial_join_rows += infer_rows;
        for fd in inferred {
            builder.insert(ProvenanceTriple::new(
                fd,
                FdKind::Inferred,
                subquery.clone(),
            ));
        }
        self.timings.infer += t1.elapsed();

        // ---- Step C: join FDs (Algorithm 5) ----
        let t2 = Instant::now();
        let known_snapshot = builder.fds().clone();
        // At the root join, skip rhs attributes the final projection drops
        // (safe there only: inner nodes' FD sets feed parent closures).
        let rhs_mask = if at_root {
            let mask_of = |rel: &Relation| -> AttrSet {
                (0..rel.ncols())
                    .filter(|&i| {
                        rel.schema
                            .attr(i)
                            .origin
                            .as_ref()
                            .map(|o| self.final_av.contains(&origin_key(o)))
                            .unwrap_or(true)
                    })
                    .collect()
            };
            Some((mask_of(&l_rel), mask_of(&r_rel)))
        } else {
            None
        };
        let outcome = mine_join_fds(
            &l_rel,
            &r_rel,
            op,
            &on_ids,
            &dl,
            &dr,
            &known_snapshot,
            rhs_mask,
        );
        self.stats.partial_join_rows += outcome.partial_rows;
        self.stats.pruned_by_theorem4 += outcome.pruned_by_theorem4;
        self.stats.mine_validated += outcome.validated;
        for fd in outcome.fds {
            builder.insert(ProvenanceTriple::new(fd, FdKind::JoinFd, subquery.clone()));
        }
        self.timings.mine += t2.elapsed();

        let rel = match outcome.join {
            Some(join) => NodeRel::Ready(join),
            None => NodeRel::LazyJoin {
                left: Box::new(l_rel),
                right: Box::new(r_rel),
                op,
                on: on_ids,
                keep: None,
                name: subquery,
            },
        };
        Ok(Node {
            schema,
            rel,
            triples: builder.into_triples(),
        })
    }
}

/// Compute the per-base attribute scopes of a view — the exact column
/// subsets [`InFine::discover`] mines in step 1 (projection push-down of
/// Algorithm 1 lines 3–5). The result is the contract between the
/// maintenance engine's per-table FD state and
/// [`InFine::discover_incremental`]'s [`BaseFds`] input: mine (or
/// incrementally maintain) FDs on `scope.project(db)` and key them by
/// `scope.label`.
///
/// Scopes are returned in base-occurrence order (left-to-right in the
/// spec).
pub fn base_scopes(db: &Database, spec: &ViewSpec) -> Result<Vec<BaseScope>, InFineError> {
    validate_alias_uniqueness(spec)?;
    let root_schema = derive_schema(spec, db)?;
    let needed: HashSet<OriginKey> = root_schema
        .iter()
        .filter_map(|a| a.origin.as_ref().map(origin_key))
        .collect();
    let mut out = Vec::new();
    collect_scopes(db, spec, &needed, &mut out)?;
    Ok(out)
}

/// Merge one base label's fragment covers out of per-shard [`BaseFds`]
/// maps: `None` when no shard supplies the label (callers then let the
/// pipeline fall back to mining it), the single cover as-is when exactly
/// one shard does (its fragment is the whole relation), and
/// [`merge_fragment_covers`] on the full scoped relation otherwise. The
/// per-label unit shared by [`InFine::merge_shard_base_fds`] and the
/// incremental crate's sharded engine (which caches merges per label).
pub fn merge_label_covers(
    db: &Database,
    scope: &BaseScope,
    shard_base_fds: &[BaseFds],
) -> Option<FdSet> {
    let covers: Vec<&FdSet> = shard_base_fds
        .iter()
        .filter_map(|m| m.get(&scope.label))
        .collect();
    match covers.len() {
        0 => None,
        1 => Some(covers[0].clone()),
        _ => Some(merge_fragment_covers(&scope.project(db), &covers)),
    }
}

/// Merge canonical minimal covers of disjoint *fragments* of `rel` (row
/// subsets that union to it) into the canonical minimal cover of `rel`
/// itself.
///
/// FD validity is anti-monotone in rows, so every globally valid FD holds
/// on each fragment and each fragment cover contains a subset-lhs seed
/// for it. The merge therefore:
///
/// 1. unions the fragment covers into one antichain
///    ([`FdSet::extend_minimal`] — the read-time merge);
/// 2. validates every merged candidate against the full relation with the
///    counting kernel (candidates valid on one fragment may split classes
///    that span fragments);
/// 3. grows the failed candidates upward through the seeded lattice walk
///    ([`extend_seeds`]) until the minimal globally valid supersets are
///    reached.
///
/// Surviving candidates are globally *minimal* for free: a strictly
/// smaller valid lhs would itself be fragment-valid everywhere and would
/// have evicted the candidate from the merged antichain in step 1. The
/// result is exactly the cover a from-scratch miner produces on `rel`.
pub fn merge_fragment_covers(rel: &Relation, covers: &[&FdSet]) -> FdSet {
    let mut candidates = FdSet::new();
    for c in covers {
        candidates.extend_minimal(c);
    }
    if covers.len() <= 1 {
        return candidates;
    }
    let mut cache = PliCache::new(rel);
    let mut survivors = FdSet::new();
    let mut broken: Vec<Fd> = Vec::new();
    for fd in candidates.to_sorted_vec() {
        if cache.check(fd.lhs, fd.rhs) {
            survivors.insert_minimal(fd);
        } else {
            broken.push(fd);
        }
    }
    if !broken.is_empty() {
        let mut validity = ExactValidity(&mut cache);
        let recovered = extend_seeds(&mut validity, rel.attr_set(), &broken, &survivors);
        survivors.extend_minimal(&recovered);
    }
    survivors
}

/// Recursive worker of [`base_scopes`], mirroring the needed-origin
/// propagation of `Ctx::process` without touching any data.
///
/// COUPLING: this must stay in lockstep with the scoping decisions in
/// `process_base` / `process_select` / `process_join` above — the
/// incremental engine keys its trusted [`BaseFds`] to these scopes, so a
/// divergence silently mines the wrong column subsets. Any change to the
/// push-down there must be replicated here (the
/// `discover_incremental_replays_discover_exactly` test plus the
/// catalog-wide equivalence suite in `infine-incremental` guard this).
fn collect_scopes(
    db: &Database,
    spec: &ViewSpec,
    needed: &HashSet<OriginKey>,
    out: &mut Vec<BaseScope>,
) -> Result<(), InFineError> {
    match spec {
        ViewSpec::Base { table, alias } => {
            let full_schema = derive_schema(spec, db)?;
            let attrs: Vec<AttrId> = (0..full_schema.len())
                .filter(|&i| {
                    full_schema
                        .attr(i)
                        .origin
                        .as_ref()
                        .map(|o| needed.contains(&origin_key(o)))
                        .unwrap_or(false)
                })
                .collect();
            out.push(BaseScope {
                label: alias.clone().unwrap_or_else(|| table.clone()),
                table: table.clone(),
                attrs,
            });
            Ok(())
        }
        ViewSpec::Project { input, .. } => collect_scopes(db, input, needed, out),
        ViewSpec::Select { input, predicate } => {
            let child_full = derive_schema(input, db)?;
            let mut child_needed = needed.clone();
            collect_predicate_origins(predicate, &child_full, &mut child_needed)?;
            collect_scopes(db, input, &child_needed, out)
        }
        ViewSpec::Join {
            left, right, on, ..
        } => {
            let ls_full = derive_schema(left, db)?;
            let rs_full = derive_schema(right, db)?;
            let on_full = resolve_join_conditions(&ls_full, &rs_full, on)?;
            let left_origins: HashSet<OriginKey> = ls_full
                .iter()
                .filter_map(|a| a.origin.as_ref().map(origin_key))
                .collect();
            let right_origins: HashSet<OriginKey> = rs_full
                .iter()
                .filter_map(|a| a.origin.as_ref().map(origin_key))
                .collect();
            let mut needed_left: HashSet<OriginKey> = needed
                .iter()
                .filter(|o| left_origins.contains(*o))
                .cloned()
                .collect();
            let mut needed_right: HashSet<OriginKey> = needed
                .iter()
                .filter(|o| right_origins.contains(*o))
                .cloned()
                .collect();
            for &(l, r) in &on_full {
                if let Some(o) = &ls_full.attr(l).origin {
                    needed_left.insert(origin_key(o));
                }
                if let Some(o) = &rs_full.attr(r).origin {
                    needed_right.insert(origin_key(o));
                }
            }
            collect_scopes(db, left, &needed_left, out)?;
            collect_scopes(db, right, &needed_right, out)
        }
    }
}

/// Shift a triple's FD into the join id space.
fn offset_triple(t: &ProvenanceTriple, offset: usize) -> ProvenanceTriple {
    ProvenanceTriple::new(
        Fd::new(
            t.fd.lhs.iter().map(|a| a + offset).collect::<AttrSet>(),
            t.fd.rhs + offset,
        ),
        t.kind,
        t.subquery.clone(),
    )
}

/// Is `x → y` (and `y → x`) guaranteed on the join result for a key pair?
///
/// Matched rows always satisfy both (the values are equal). Padding is the
/// only risk: when the operator preserves dangling rows of one side, the
/// other side's key column is NULL on those rows, so e.g. `x → y` breaks
/// iff ≥ 2 preserved dangling *right* rows carry distinct `y` values
/// (their `x` is uniformly NULL).
fn key_equivalence_validity(
    l_rel: &Relation,
    r_rel: &Relation,
    on_ids: &[(AttrId, AttrId)],
    op: JoinOp,
    x: AttrId,
    y: AttrId,
) -> (bool, bool) {
    use infine_algebra::matching_rows;
    let lkeys: Vec<AttrId> = on_ids.iter().map(|&(a, _)| a).collect();
    let rkeys: Vec<AttrId> = on_ids.iter().map(|&(_, b)| b).collect();

    // Counting-only, early-exit check: the verdict needs "≥ 2 distinct
    // codes among dangling rows", never the exact count, so the scan
    // hoists the code column, marks matched rows in a dense bitmap, and
    // stops at the second distinct dangling code.
    let dangling_splits = |rel: &Relation,
                           other: &Relation,
                           keys: &[AttrId],
                           other_keys: &[AttrId],
                           attr: AttrId|
     -> bool {
        let mut matched = vec![false; rel.nrows()];
        for row in matching_rows(rel, other, keys, other_keys) {
            matched[row as usize] = true;
        }
        let codes = &rel.column(attr).codes;
        let mut first: Option<u32> = None;
        for (row, &is_matched) in matched.iter().enumerate() {
            if is_matched {
                continue;
            }
            match first {
                None => first = Some(codes[row]),
                Some(f) if f != codes[row] => return true,
                Some(_) => {}
            }
        }
        false
    };

    // x → y threatened by preserved dangling right rows (x = NULL there).
    let xy_ok = if matches!(op, JoinOp::RightOuter | JoinOp::FullOuter) {
        !dangling_splits(r_rel, l_rel, &rkeys, &lkeys, y)
    } else {
        true
    };
    // y → x threatened by preserved dangling left rows.
    let yx_ok = if matches!(op, JoinOp::LeftOuter | JoinOp::FullOuter) {
        !dangling_splits(l_rel, r_rel, &lkeys, &rkeys, x)
    } else {
        true
    };
    (xy_ok, yx_ok)
}

/// Collect the origins of every attribute a predicate references.
fn collect_predicate_origins(
    pred: &infine_algebra::Predicate,
    schema: &Schema,
    out: &mut HashSet<OriginKey>,
) -> Result<(), AlgebraError> {
    use infine_algebra::Predicate as P;
    let mut add = |name: &str| -> Result<(), AlgebraError> {
        let id = resolve(schema, name)?;
        if let Some(o) = &schema.attr(id).origin {
            out.insert(origin_key(o));
        }
        Ok(())
    };
    match pred {
        P::True => Ok(()),
        P::Cmp { attr, .. } | P::IsNull(attr) | P::IsNotNull(attr) | P::In { attr, .. } => {
            add(attr)
        }
        P::And(a, b) | P::Or(a, b) => {
            collect_predicate_origins(a, schema, out)?;
            collect_predicate_origins(b, schema, out)
        }
        P::Not(a) => collect_predicate_origins(a, schema, out),
    }
}

/// Reject specs where the same base table appears twice without aliases —
/// origin-based scope push-down would conflate the two occurrences.
fn validate_alias_uniqueness(spec: &ViewSpec) -> Result<(), InFineError> {
    fn collect<'a>(spec: &'a ViewSpec, out: &mut Vec<&'a str>) {
        match spec {
            ViewSpec::Base { table, alias } => {
                out.push(alias.as_deref().unwrap_or(table.as_str()));
            }
            ViewSpec::Project { input, .. } | ViewSpec::Select { input, .. } => collect(input, out),
            ViewSpec::Join { left, right, .. } => {
                collect(left, out);
                collect(right, out);
            }
        }
    }
    let mut labels = Vec::new();
    collect(spec, &mut labels);
    let mut seen = HashSet::new();
    for l in labels {
        if !seen.insert(l) {
            return Err(InFineError::DuplicateBaseLabel(l.to_string()));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use infine_algebra::execute;
    use infine_relation::{relation_from_rows, Value};

    /// The paper's Fig. 1 excerpt (PATIENT ⋈ ADMISSION on subject_id).
    fn fig1_db() -> Database {
        let patient = relation_from_rows(
            "patient",
            &["subject_id", "gender", "dob", "dod", "expire_flag"],
            &[
                &[
                    Value::Int(249),
                    Value::str("F"),
                    Value::str("13/03/75"),
                    Value::Null,
                    Value::Int(0),
                ],
                &[
                    Value::Int(250),
                    Value::str("F"),
                    Value::str("27/12/64"),
                    Value::str("22/11/88"),
                    Value::Int(1),
                ],
                &[
                    Value::Int(251),
                    Value::str("M"),
                    Value::str("15/03/90"),
                    Value::Null,
                    Value::Int(0),
                ],
                &[
                    Value::Int(252),
                    Value::str("M"),
                    Value::str("06/03/78"),
                    Value::Null,
                    Value::Int(0),
                ],
                &[
                    Value::Int(257),
                    Value::str("F"),
                    Value::str("03/04/31"),
                    Value::str("08/07/21"),
                    Value::Int(1),
                ],
            ],
        );
        let admission = relation_from_rows(
            "admission",
            &[
                "subject_id",
                "admittime",
                "admission_location",
                "insurance",
                "diagnosis",
                "h_expire_flag",
            ],
            &[
                &[
                    Value::Int(247),
                    Value::str("03/08/56"),
                    Value::str("CLINIC"),
                    Value::str("UNOBTAINABLE"),
                    Value::str("CHEST PAIN"),
                    Value::Int(0),
                ],
                &[
                    Value::Int(248),
                    Value::str("19/10/42"),
                    Value::str("EMERGENCY"),
                    Value::str("Private"),
                    Value::str("S/P MOTOR"),
                    Value::Int(0),
                ],
                &[
                    Value::Int(249),
                    Value::str("17/12/49"),
                    Value::str("EMERGENCY"),
                    Value::str("Medicare"),
                    Value::str("UNSTABLE ANGINA"),
                    Value::Int(0),
                ],
                &[
                    Value::Int(249),
                    Value::str("03/02/55"),
                    Value::str("EMERGENCY"),
                    Value::str("Medicare"),
                    Value::str("CHEST PAIN"),
                    Value::Int(0),
                ],
                &[
                    Value::Int(249),
                    Value::str("27/04/56"),
                    Value::str("PHYS REF"),
                    Value::str("Medicare"),
                    Value::str("GI BLEEDING"),
                    Value::Int(0),
                ],
                &[
                    Value::Int(250),
                    Value::str("12/11/88"),
                    Value::str("EMERGENCY"),
                    Value::str("Self Pay"),
                    Value::str("PNEUMONIA"),
                    Value::Int(1),
                ],
                &[
                    Value::Int(251),
                    Value::str("27/07/10"),
                    Value::str("EMERGENCY"),
                    Value::str("Private"),
                    Value::str("HEAD BLEED"),
                    Value::Int(0),
                ],
                &[
                    Value::Int(252),
                    Value::str("31/03/33"),
                    Value::str("EMERGENCY"),
                    Value::str("Private"),
                    Value::str("GI BLEED"),
                    Value::Int(0),
                ],
                &[
                    Value::Int(252),
                    Value::str("15/08/33"),
                    Value::str("EMERGENCY"),
                    Value::str("Private"),
                    Value::str("GI BLEED"),
                    Value::Int(0),
                ],
                &[
                    Value::Int(253),
                    Value::str("21/01/74"),
                    Value::str("TRANSFER"),
                    Value::str("Medicare"),
                    Value::str("HEART BLOCK"),
                    Value::Int(0),
                ],
            ],
        );
        let mut db = Database::new();
        db.insert(patient);
        db.insert(admission);
        db
    }

    fn fig1_view() -> ViewSpec {
        ViewSpec::base("patient").inner_join(ViewSpec::base("admission"), &["subject_id"])
    }

    /// Oracle: FDs a baseline discovers on the fully materialized view.
    fn oracle(db: &Database, spec: &ViewSpec) -> (Schema, FdSet) {
        let view = execute(spec, db).unwrap();
        let fds = Algorithm::Tane.discover(&view);
        (view.schema.clone(), fds)
    }

    /// Completeness + correctness (Theorems 5 & 6) against the oracle,
    /// modulo attribute-name alignment between the two schemas.
    fn assert_matches_oracle(db: &Database, spec: &ViewSpec) {
        let report = InFine::default().discover(db, spec).unwrap();
        let (oschema, ofds) = oracle(db, spec);
        // Align: InFine schema attr i ↔ oracle schema attr with same name.
        let map: Vec<AttrId> = (0..report.schema.len())
            .map(|i| oschema.expect_id(report.schema.name(i)))
            .collect();
        let infds: FdSet = report
            .triples
            .iter()
            .map(|t| {
                Fd::new(
                    t.fd.lhs.iter().map(|a| map[a]).collect::<AttrSet>(),
                    map[t.fd.rhs],
                )
            })
            .collect::<Vec<_>>()
            .into_iter()
            .fold(FdSet::new(), |mut s, fd| {
                s.insert_unchecked(fd);
                s
            });
        assert!(
            infds.equivalent(&ofds),
            "InFine ≠ oracle\nInFine:\n{}\noracle:\n{}",
            infds.render(&oschema),
            ofds.render(&oschema)
        );
    }

    #[test]
    fn fig1_join_matches_oracle() {
        let db = fig1_db();
        assert_matches_oracle(&db, &fig1_view());
    }

    #[test]
    fn fig1_upstaged_expire_flag_to_dod() {
        // The paper's flagship upstaged FD: expire_flag ⇁ dod is an AFD in
        // PATIENT (violated by #257) that becomes exact in the join.
        let db = fig1_db();
        let report = InFine::default().discover(&db, &fig1_view()).unwrap();
        let ef = report.schema.expect_id("expire_flag");
        let dod = report.schema.expect_id("dod");
        let t = report
            .triples
            .iter()
            .find(|t| t.fd == Fd::new(AttrSet::single(ef), dod))
            .expect("expire_flag → dod must be discovered");
        assert_eq!(t.kind, FdKind::UpstagedLeft);
    }

    #[test]
    fn fig1_has_inferred_and_join_fds() {
        let db = fig1_db();
        let report = InFine::default().discover(&db, &fig1_view()).unwrap();
        assert!(report.count_kind(FdKind::Base) > 0);
        assert!(report.count_kind(FdKind::Inferred) > 0);
        // diagnosis → dob is the paper's example of an inferred FD...
        // (diagnosis → subject_id is upstaged first, then composed).
        let diag = report.schema.expect_id("diagnosis");
        let dob = report.schema.expect_id("dob");
        assert!(
            report
                .triples
                .iter()
                .any(|t| t.fd == Fd::new(AttrSet::single(diag), dob)),
            "diagnosis → dob missing:\n{}",
            report.render()
        );
    }

    #[test]
    fn selection_upstages_fds() {
        // σ filters the violating tuple → x→y becomes exact.
        let mut db = Database::new();
        db.insert(relation_from_rows(
            "t",
            &["x", "y", "z"],
            &[
                &[Value::Int(1), Value::Int(10), Value::Int(0)],
                &[Value::Int(1), Value::Int(20), Value::Int(1)],
                &[Value::Int(2), Value::Int(30), Value::Int(0)],
            ],
        ));
        let spec = ViewSpec::base("t").select(infine_algebra::Predicate::eq("z", 0i64));
        let report = InFine::default().discover(&db, &spec).unwrap();
        assert!(report.count_kind(FdKind::UpstagedSelection) > 0);
        assert_matches_oracle(&db, &spec);
    }

    #[test]
    fn projection_restricts_and_infers() {
        let db = fig1_db();
        let spec = fig1_view().project(&["gender", "diagnosis", "dob"]);
        assert_matches_oracle(&db, &spec);
    }

    #[test]
    fn left_outer_join_matches_oracle() {
        let db = fig1_db();
        let spec = ViewSpec::base("patient").join(
            ViewSpec::base("admission"),
            JoinOp::LeftOuter,
            &[("subject_id", "subject_id")],
        );
        let report = InFine::default().discover(&db, &spec).unwrap();
        // Correctness: every reported FD holds on the materialized view.
        let view = execute(&spec, &db).unwrap();
        let mut cache = PliCache::new(&view);
        for t in &report.triples {
            let lhs: AttrSet =
                t.fd.lhs
                    .iter()
                    .map(|a| view.schema.expect_id(report.schema.name(a)))
                    .collect();
            let rhs = view.schema.expect_id(report.schema.name(t.fd.rhs));
            let ok = if lhs.is_empty() {
                view.distinct_count(rhs) <= 1
            } else {
                cache.fd_holds(lhs, rhs)
            };
            assert!(ok, "{} does not hold on the view", t.render(&report.schema));
        }
    }

    #[test]
    fn semi_join_keeps_one_side() {
        let db = fig1_db();
        let spec = ViewSpec::base("patient").join(
            ViewSpec::base("admission"),
            JoinOp::LeftSemi,
            &[("subject_id", "subject_id")],
        );
        assert_matches_oracle(&db, &spec);
    }

    #[test]
    fn duplicate_base_label_rejected() {
        let db = fig1_db();
        let spec = ViewSpec::base("patient").join(
            ViewSpec::base("patient"),
            JoinOp::Inner,
            &[("gender", "gender")],
        );
        assert!(matches!(
            InFine::default().discover(&db, &spec),
            Err(InFineError::DuplicateBaseLabel(_))
        ));
    }

    #[test]
    fn aliased_self_join_works() {
        let mut db = Database::new();
        db.insert(relation_from_rows(
            "e",
            &["id", "boss"],
            &[
                &[Value::Int(1), Value::Int(2)],
                &[Value::Int(2), Value::Int(2)],
                &[Value::Int(3), Value::Int(1)],
            ],
        ));
        let spec = ViewSpec::base_as("e", "w").join(
            ViewSpec::base_as("e", "m"),
            JoinOp::Inner,
            &[("boss", "id")],
        );
        assert_matches_oracle(&db, &spec);
    }

    #[test]
    fn nested_join_matches_oracle() {
        let db = {
            let mut db = fig1_db();
            db.insert(relation_from_rows(
                "icd",
                &["subject_id", "icd9_code"],
                &[
                    &[Value::Int(249), Value::str("I20")],
                    &[Value::Int(250), Value::str("J18")],
                    &[Value::Int(251), Value::str("I62")],
                    &[Value::Int(252), Value::str("K92")],
                    &[Value::Int(252), Value::str("K93")],
                ],
            ));
            db
        };
        let spec = ViewSpec::base("patient")
            .inner_join(ViewSpec::base("admission"), &["subject_id"])
            .join(
                ViewSpec::base("icd"),
                JoinOp::Inner,
                &[("patient.subject_id", "subject_id")],
            );
        assert_matches_oracle(&db, &spec);
    }

    #[test]
    fn phase_shares_sum_to_one() {
        let db = fig1_db();
        let report = InFine::default().discover(&db, &fig1_view()).unwrap();
        let (u, i, m) = report.phase_shares();
        assert!((u + i + m - 1.0).abs() < 1e-9);
        assert!(u > 0.0);
    }

    /// Mine every base scope the way the maintenance engine would.
    fn mined_base_fds(db: &Database, spec: &ViewSpec) -> BaseFds {
        base_scopes(db, spec)
            .unwrap()
            .into_iter()
            .map(|s| {
                let rel = s.project(db);
                let fds = Algorithm::Levelwise.discover_restricted(&rel, rel.attr_set());
                (s.label, fds)
            })
            .collect()
    }

    #[test]
    fn discover_incremental_replays_discover_exactly() {
        let db = fig1_db();
        for spec in [
            fig1_view(),
            fig1_view().project(&["gender", "diagnosis", "dob"]),
            ViewSpec::base("patient")
                .select(infine_algebra::Predicate::eq("expire_flag", 0i64))
                .join(
                    ViewSpec::base("admission"),
                    JoinOp::LeftOuter,
                    &[("subject_id", "subject_id")],
                ),
        ] {
            let base_fds = mined_base_fds(&db, &spec);
            let full = InFine::default().discover(&db, &spec).unwrap();
            let inc = InFine::default()
                .discover_incremental(&db, &spec, &base_fds)
                .unwrap();
            assert_eq!(full.triples, inc.triples, "spec {spec}");
            // step-1 mining was skipped entirely
            assert_eq!(inc.timings.base_mining, Duration::ZERO);
        }
    }

    /// Restrict every table of `db` to the rows of fragment `shard` out
    /// of `shards` contiguous rid ranges (ceil-chunked like the router).
    fn fragment_db(db: &Database, shards: usize, shard: usize) -> Database {
        let names: Vec<String> = db.names().map(str::to_string).collect();
        let mut out = Database::new();
        for name in names {
            let rel = db.expect(&name);
            let n = rel.nrows();
            let chunk = n.div_ceil(shards).max(1);
            let mut evict = infine_relation::DeltaBatch::new();
            for g in 0..n {
                if (g / chunk).min(shards - 1) != shard {
                    evict.delete(g as u32);
                }
            }
            let (frag, _) = rel.apply_delta(&evict, name.clone());
            out.insert(frag);
        }
        out
    }

    #[test]
    fn merge_fragment_covers_recovers_canonical_cover() {
        let db = fig1_db();
        for table in ["patient", "admission"] {
            let rel = db.expect(table);
            let canonical = Algorithm::Levelwise.discover_restricted(rel, rel.attr_set());
            for shards in [2usize, 3, 4, 8] {
                // 8 fragments of a 5-row table: some are empty — their
                // covers degenerate to "everything is constant" and must
                // still merge away.
                let covers: Vec<FdSet> = (0..shards)
                    .map(|s| {
                        let frag = fragment_db(&db, shards, s);
                        let frel = frag.expect(table);
                        Algorithm::Levelwise.discover_restricted(frel, frel.attr_set())
                    })
                    .collect();
                let refs: Vec<&FdSet> = covers.iter().collect();
                let merged = merge_fragment_covers(rel, &refs);
                assert!(
                    infine_discovery::same_fds(&merged, &canonical),
                    "{table} at {shards} fragments:\n{:?}\nvs canonical\n{:?}",
                    merged.to_sorted_vec(),
                    canonical.to_sorted_vec()
                );
            }
        }
    }

    #[test]
    fn discover_sharded_equals_discover() {
        let db = fig1_db();
        for spec in [
            fig1_view(),
            fig1_view().project(&["gender", "diagnosis", "dob"]),
        ] {
            let full = InFine::default().discover(&db, &spec).unwrap();
            for shards in [1usize, 2, 3] {
                let shard_base: Vec<BaseFds> = (0..shards)
                    .map(|s| {
                        let frag = fragment_db(&db, shards, s);
                        // Scopes are schema-derived, so computing them on
                        // the fragment db matches the full db.
                        base_scopes(&frag, &spec)
                            .unwrap()
                            .into_iter()
                            .map(|sc| {
                                let rel = sc.project(&frag);
                                let fds =
                                    Algorithm::Levelwise.discover_restricted(&rel, rel.attr_set());
                                (sc.label, fds)
                            })
                            .collect()
                    })
                    .collect();
                let sharded = InFine::default()
                    .discover_sharded(&db, &spec, &shard_base)
                    .unwrap();
                assert_eq!(
                    full.triples, sharded.triples,
                    "spec {spec} at {shards} shards"
                );
                assert_eq!(sharded.timings.base_mining, Duration::ZERO);
            }
        }
    }

    #[test]
    fn base_scopes_cover_aliased_tables_and_join_keys() {
        let mut db = Database::new();
        db.insert(relation_from_rows(
            "e",
            &["id", "boss", "pay"],
            &[
                &[Value::Int(1), Value::Int(2), Value::Int(10)],
                &[Value::Int(2), Value::Int(2), Value::Int(20)],
            ],
        ));
        let spec = ViewSpec::base_as("e", "w")
            .join(
                ViewSpec::base_as("e", "m"),
                JoinOp::Inner,
                &[("boss", "id")],
            )
            .project(&["w.id", "m.pay"]);
        let scopes = base_scopes(&db, &spec).unwrap();
        assert_eq!(scopes.len(), 2);
        let w = scopes.iter().find(|s| s.label == "w").unwrap();
        let m = scopes.iter().find(|s| s.label == "m").unwrap();
        assert_eq!(w.table, "e");
        // w keeps id (projected) + boss (join key); pay is pruned
        assert_eq!(w.attrs, vec![0, 1]);
        // m keeps id (join key) + pay (projected)
        assert_eq!(m.attrs, vec![0, 2]);
        // overrides keyed by alias are honoured
        let base_fds = mined_base_fds(&db, &spec);
        let full = InFine::default().discover(&db, &spec).unwrap();
        let inc = InFine::default()
            .discover_incremental(&db, &spec, &base_fds)
            .unwrap();
        assert_eq!(full.triples, inc.triples);
        assert_eq!(inc.timings.base_mining, Duration::ZERO);
    }

    #[test]
    fn partial_base_fds_fall_back_to_mining() {
        let db = fig1_db();
        let spec = fig1_view();
        let mut base_fds = mined_base_fds(&db, &spec);
        base_fds.remove("admission");
        let full = InFine::default().discover(&db, &spec).unwrap();
        let inc = InFine::default()
            .discover_incremental(&db, &spec, &base_fds)
            .unwrap();
        assert_eq!(full.triples, inc.triples);
        // admission still mined
        assert!(inc.timings.base_mining > Duration::ZERO);
    }

    #[test]
    fn timings_are_populated() {
        let db = fig1_db();
        let report = InFine::default().discover(&db, &fig1_view()).unwrap();
        assert!(report.timings.base_mining > Duration::ZERO);
        // upstage ran (semi-joins + mining)
        assert!(report.timings.upstage > Duration::ZERO);
    }

    #[test]
    fn step_a_output_is_identical_at_any_worker_count() {
        // Step A fans the two join sides out over the pool; the merged
        // triple stream must be byte-identical regardless of worker count.
        let db = fig1_db();
        let specs = [
            fig1_view(),
            ViewSpec::base("patient").join(
                ViewSpec::base("admission"),
                JoinOp::LeftOuter,
                &[("subject_id", "subject_id")],
            ),
            ViewSpec::base("patient").join(
                ViewSpec::base("admission"),
                JoinOp::FullOuter,
                &[("subject_id", "subject_id")],
            ),
        ];
        for spec in &specs {
            let renders: Vec<String> = [1usize, 2, 4]
                .iter()
                .map(|&n| {
                    infine_exec::set_parallelism(n);
                    let report = InFine::default().discover(&db, spec).unwrap();
                    report
                        .triples
                        .iter()
                        .map(|t| t.render(&report.schema))
                        .collect::<Vec<_>>()
                        .join("\n")
                })
                .collect();
            infine_exec::set_parallelism(0);
            assert_eq!(renders[0], renders[1], "1 vs 2 workers differ: {spec}");
            assert_eq!(renders[0], renders[2], "1 vs 4 workers differ: {spec}");
        }
    }
}
