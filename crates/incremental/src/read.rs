//! Wait-free published cover reads (MVCC-lite).
//!
//! The service loop is a single-writer pipeline: one worker thread
//! drains deltas and maintains the cover. Reads used to flow through the
//! same channel (flush → wait for a report), so a burst of readers
//! queued behind maintenance. This module splits the read path off
//! entirely: after every round the worker publishes an immutable
//! [`Arc<PublishedCovers>`] snapshot into a [`CoverCell`], and any
//! number of [`CoverReader`] handles get the latest snapshot —
//! consistent as of its round — without locks and without touching the
//! ingest queue, while the next round is still being computed.
//!
//! ## How the cell works
//!
//! The cell is a dependency-free `arc-swap`: an `AtomicPtr` holding one
//! strong count of the current snapshot, swapped wholesale by the single
//! writer. The races to solve is reclamation — a reader that loaded the
//! pointer but has not yet bumped the refcount must not see the writer
//! free it. Readers therefore publish the pointer they are about to
//! touch in a per-handle *hazard slot* and re-check that it is still
//! current before taking a reference:
//!
//! ```text
//! reader: p = load(current); slot = p; if load(current) == p { ref++ }
//! writer: swap(current, new); for r in retired: free r unless hazarded
//! ```
//!
//! All four accesses are `SeqCst`, so if the reader's re-check still
//! sees `p`, its hazard store is ordered before the swap that retires
//! `p` — and the writer's scan (which runs after the swap) must see the
//! hazard and keep `p` for a later pass. Address reuse (ABA) is benign:
//! the re-check only asks "is this pointer the currently published
//! snapshot", and whatever object lives at that address then *is* the
//! current snapshot.
//!
//! [`CoverReader::current`] takes no locks: the hazard slot is
//! registered once per handle (at [`MaintenanceService::reader`] /
//! `clone` time), and the read itself is load → store → load → refcount
//! bump. It retries only if a publish landed between its two loads, so
//! it is wait-free whenever the writer is between rounds and lock-free
//! under concurrent publishes — never blocked behind the ingest queue
//! either way. The writer side (publish, retire-list, hazard scan) uses
//! a mutex, which is fine: there is exactly one writer and it is the
//! worker thread that just finished a round.
//!
//! [`MaintenanceService::reader`]: crate::MaintenanceService::reader

use crate::engine::TombstoneStats;
use infine_core::{BaseFds, ProvenanceTriple};
use infine_discovery::FdSet;
use std::marker::PhantomData;
use std::ptr;
use std::sync::atomic::{AtomicBool, AtomicPtr, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// One round's published cover state: everything a read-side client
/// needs, immutable and consistent as of `round`.
#[derive(Debug, Clone)]
pub struct PublishedCovers {
    /// The maintenance round this snapshot is current as of (equals the
    /// durable round index for durable services — after a recovery,
    /// readers resume at `RecoveryInfo::durable_rounds`).
    pub round: u64,
    /// Per-label canonical covers of the base relations (the sharded
    /// engine's merged read-time cache, cloned — never recomputed).
    pub base: BaseFds,
    /// The minimal FD cover of the view.
    pub cover: FdSet,
    /// View-level provenance triples (FD, kind, justifying sub-query).
    pub triples: Vec<ProvenanceTriple>,
    /// Tombstone/row accounting at publish time.
    pub tombstones: TombstoneStats,
}

/// One reader handle's hazard slot: the pointer it is currently
/// dereferencing (null outside `current()`), plus a liveness flag so the
/// writer can drop slots of dropped readers.
struct HazardSlot {
    protected: AtomicPtr<PublishedCovers>,
    active: AtomicBool,
}

/// The epoch-swapped publication slot shared by the worker (single
/// writer) and every [`CoverReader`] (any number of wait-free readers).
pub(crate) struct CoverCell {
    /// Owns one strong count of the `Arc<PublishedCovers>` behind it.
    /// Never null once constructed.
    current: AtomicPtr<PublishedCovers>,
    /// Latest round the worker has *started* (drained into the engine);
    /// `head - current.round` is the read lag the gauge reports.
    head: AtomicU64,
    /// Registered reader slots. Locked at reader registration/drop
    /// bookkeeping and by the writer's reclamation scan — never on the
    /// read path.
    hazards: Mutex<Vec<Arc<HazardSlot>>>,
    /// Snapshots swapped out but possibly still inside a reader's
    /// load-to-refcount window. Writer-only.
    retired: Mutex<Vec<*mut PublishedCovers>>,
    /// `infine_reads_total` — one tick per `current()` call.
    reads: infine_obs::Counter,
    /// `infine_read_round_lag` — head minus the round served, sampled at
    /// each read.
    lag: infine_obs::Gauge,
}

// The raw pointers in `current` and `retired` are (atomically swapped
// counts of / retirements of) `Arc<PublishedCovers>` allocations, whose
// payload is Send + Sync; the hazard protocol above governs every
// dereference and free.
unsafe impl Send for CoverCell {}
unsafe impl Sync for CoverCell {}

impl CoverCell {
    /// A cell holding `initial` (readers created before the first round
    /// see the bootstrap/recovered state, never a null).
    pub(crate) fn new(
        initial: PublishedCovers,
        reads: infine_obs::Counter,
        lag: infine_obs::Gauge,
    ) -> CoverCell {
        let round = initial.round;
        CoverCell {
            current: AtomicPtr::new(Arc::into_raw(Arc::new(initial)).cast_mut()),
            head: AtomicU64::new(round),
            hazards: Mutex::new(Vec::new()),
            retired: Mutex::new(Vec::new()),
            reads,
            lag,
        }
    }

    /// Record that the worker started round `round` (it is draining or
    /// applying; the publish will follow). Readers report `head -
    /// snapshot.round` as their lag.
    pub(crate) fn note_head(&self, round: u64) {
        self.head.store(round, Ordering::Relaxed);
    }

    /// Swap in a new snapshot (single writer: the worker thread, or the
    /// spawning/recovering thread before the worker starts) and free
    /// every retired snapshot no reader is mid-acquisition on.
    pub(crate) fn publish(&self, snapshot: PublishedCovers) {
        if snapshot.round > self.head.load(Ordering::Relaxed) {
            self.note_head(snapshot.round);
        }
        let next = Arc::into_raw(Arc::new(snapshot)).cast_mut();
        let old = self.current.swap(next, Ordering::SeqCst);
        let mut retired = lock(&self.retired);
        retired.push(old);
        self.reclaim(&mut retired);
    }

    // Free retired snapshots absent from every live hazard slot; prune
    // slots whose reader dropped. Called with the retired list locked
    // (writer side only).
    fn reclaim(&self, retired: &mut Vec<*mut PublishedCovers>) {
        let mut hazards = lock(&self.hazards);
        hazards.retain(|slot| {
            slot.active.load(Ordering::SeqCst) || !slot.protected.load(Ordering::SeqCst).is_null()
        });
        retired.retain(|&p| {
            let hazarded = hazards
                .iter()
                .any(|slot| slot.protected.load(Ordering::SeqCst) == p);
            if !hazarded {
                // Drop the count the cell held for this snapshot; the
                // allocation lives on if readers still hold Arcs.
                unsafe { drop(Arc::from_raw(p)) };
            }
            hazarded
        });
    }

    /// Register a hazard slot for a new reader handle (off the read
    /// path: once per `reader()`/`clone`).
    fn register(&self) -> Arc<HazardSlot> {
        let slot = Arc::new(HazardSlot {
            protected: AtomicPtr::new(ptr::null_mut()),
            active: AtomicBool::new(true),
        });
        lock(&self.hazards).push(Arc::clone(&slot));
        slot
    }

    // The hazard-protected acquisition described in the module docs.
    fn acquire(&self, slot: &HazardSlot) -> Arc<PublishedCovers> {
        loop {
            let p = self.current.load(Ordering::SeqCst);
            slot.protected.store(p, Ordering::SeqCst);
            if self.current.load(Ordering::SeqCst) == p {
                // The hazard store is ordered before any swap that
                // retires `p`, so the writer's scan sees it and keeps
                // `p` alive across this bump.
                let arc = unsafe {
                    Arc::increment_strong_count(p);
                    Arc::from_raw(p)
                };
                slot.protected.store(ptr::null_mut(), Ordering::Release);
                return arc;
            }
            // A publish landed between the two loads; retry against the
            // new current.
            slot.protected.store(ptr::null_mut(), Ordering::SeqCst);
        }
    }
}

impl Drop for CoverCell {
    fn drop(&mut self) {
        // No readers can exist here (they each hold an Arc of the cell),
        // so every pointer is exclusively ours.
        unsafe { drop(Arc::from_raw(*self.current.get_mut())) };
        for p in lock(&self.retired).drain(..) {
            unsafe { drop(Arc::from_raw(p)) };
        }
    }
}

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// A cloneable, wait-free handle onto the service's published cover
/// state ([`MaintenanceService::reader`]): [`CoverReader::current`]
/// returns the latest round's snapshot without locks, without blocking
/// behind the ingest queue, and without ever observing a torn state.
/// Rounds observed through one handle are monotonically non-decreasing,
/// including across `respawn()` and recovery (the cell outlives worker
/// incarnations).
///
/// One handle serves one thread at a time (it is deliberately not
/// `Sync`); clone it — cloning registers an independent hazard slot —
/// to fan readers out across threads.
///
/// [`MaintenanceService::reader`]: crate::MaintenanceService::reader
pub struct CoverReader {
    cell: Arc<CoverCell>,
    slot: Arc<HazardSlot>,
    /// `current()` uses the handle's single hazard slot non-reentrantly,
    /// so the handle must not be shared across threads (`!Sync`); moving
    /// it is fine (see the manual `Send` below).
    _not_sync: PhantomData<*const ()>,
}

// Moving a CoverReader between threads is safe: the hazard slot is only
// touched inside `current()`, which holds `&self` for its whole
// critical window. Only *sharing* (`Sync`) would race the slot.
unsafe impl Send for CoverReader {}

impl CoverReader {
    pub(crate) fn register(cell: Arc<CoverCell>) -> CoverReader {
        let slot = cell.register();
        CoverReader {
            cell,
            slot,
            _not_sync: PhantomData,
        }
    }

    /// The latest published snapshot — wait-free between publishes,
    /// lock-free always, and independent of the ingest queue: a flooded
    /// service slows *rounds* down, never this call.
    pub fn current(&self) -> Arc<PublishedCovers> {
        let snap = self.cell.acquire(&self.slot);
        self.cell.reads.inc();
        let head = self.cell.head.load(Ordering::Relaxed);
        self.cell.lag.set(head.saturating_sub(snap.round) as i64);
        snap
    }

    /// Latest round the worker has started (drained); `head_round() -
    /// current().round` is how far a read lags the write frontier.
    pub fn head_round(&self) -> u64 {
        self.cell.head.load(Ordering::Relaxed)
    }
}

impl Clone for CoverReader {
    fn clone(&self) -> CoverReader {
        CoverReader::register(Arc::clone(&self.cell))
    }
}

impl Drop for CoverReader {
    fn drop(&mut self) {
        self.slot.protected.store(ptr::null_mut(), Ordering::SeqCst);
        self.slot.active.store(false, Ordering::SeqCst);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn handles() -> (infine_obs::Counter, infine_obs::Gauge) {
        let registry = infine_obs::Registry::scoped();
        (
            registry.counter("test_reads_total", "", &[]),
            registry.gauge("test_read_lag", "", &[]),
        )
    }

    fn snap(round: u64) -> PublishedCovers {
        PublishedCovers {
            round,
            base: BaseFds::new(),
            cover: FdSet::new(),
            triples: Vec::new(),
            tombstones: TombstoneStats::default(),
        }
    }

    #[test]
    fn reads_see_the_latest_publish() {
        let (reads, lag) = handles();
        let cell = Arc::new(CoverCell::new(snap(0), reads, lag));
        let reader = CoverReader::register(Arc::clone(&cell));
        assert_eq!(reader.current().round, 0);
        cell.publish(snap(1));
        cell.publish(snap(2));
        assert_eq!(reader.current().round, 2);
        assert_eq!(reader.head_round(), 2);
    }

    #[test]
    fn held_snapshots_survive_later_publishes() {
        let (reads, lag) = handles();
        let cell = Arc::new(CoverCell::new(snap(7), reads, lag));
        let reader = CoverReader::register(Arc::clone(&cell));
        let held = reader.current();
        for r in 8..40 {
            cell.publish(snap(r));
        }
        // The old snapshot is retired and reclaimed cell-side, but the
        // reader's Arc keeps the payload alive and intact.
        assert_eq!(held.round, 7);
        assert_eq!(reader.current().round, 39);
    }

    #[test]
    fn retired_snapshots_are_reclaimed() {
        let (reads, lag) = handles();
        let cell = Arc::new(CoverCell::new(snap(0), reads, lag));
        let reader = CoverReader::register(Arc::clone(&cell));
        for r in 1..100 {
            cell.publish(snap(r));
            let _ = reader.current();
        }
        // No reader is mid-acquisition, so at most the last swap-out can
        // still be pending (it was pushed after the reclaim scan ran).
        assert!(lock(&cell.retired).len() <= 1);
    }

    #[test]
    fn dropped_readers_free_their_slots() {
        let (reads, lag) = handles();
        let cell = Arc::new(CoverCell::new(snap(0), reads, lag));
        let readers: Vec<CoverReader> = (0..16)
            .map(|_| CoverReader::register(Arc::clone(&cell)))
            .collect();
        assert_eq!(lock(&cell.hazards).len(), 16);
        drop(readers);
        cell.publish(snap(1));
        assert_eq!(lock(&cell.hazards).len(), 0);
    }

    #[test]
    fn concurrent_readers_observe_monotonic_rounds() {
        let (reads, lag) = handles();
        let cell = Arc::new(CoverCell::new(snap(0), reads, lag));
        let root = CoverReader::register(Arc::clone(&cell));
        let stop = Arc::new(AtomicBool::new(false));
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let reader = root.clone();
                let stop = Arc::clone(&stop);
                std::thread::spawn(move || {
                    let mut last = 0u64;
                    let mut seen = 0u64;
                    // do-while: at least one read even if every publish
                    // lands before this thread is first scheduled.
                    loop {
                        let s = reader.current();
                        assert!(
                            s.round >= last,
                            "round went backwards: {} after {last}",
                            s.round
                        );
                        last = s.round;
                        seen += 1;
                        if stop.load(Ordering::Relaxed) {
                            break;
                        }
                    }
                    seen
                })
            })
            .collect();
        for r in 1..=5_000 {
            cell.publish(snap(r));
        }
        stop.store(true, Ordering::Relaxed);
        for t in threads {
            assert!(t.join().unwrap() > 0);
        }
        assert_eq!(root.current().round, 5_000);
    }
}
