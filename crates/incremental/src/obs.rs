//! Maintenance-side observability: per-engine scoped registries, round
//! and phase histograms, vacuum counters, and the per-round metrics
//! delta attached to every [`MaintenanceReport`](crate::MaintenanceReport).
//!
//! Each engine owns a **child registry** of whatever registry was
//! ambient when it was constructed (the process default unless the
//! caller entered a scope). Engine entry points enter that registry for
//! the duration of the call, so everything the round records — kernel
//! checks, PLI cache traffic, miner timings, exec pool counters — lands
//! in the engine's registry and chains up to the parent. That gives two
//! exact views of the same work: the engine registry holds this engine's
//! totals, the default registry the process-wide aggregate, and the
//! difference of two engine snapshots is the round's own delta
//! ([`RoundMetrics`]).

use crate::engine::{MaintenanceTimings, VacuumStats};
use infine_obs::{Counter, Histogram, Registry, Snapshot};
use std::time::Duration;

/// Preregistered round/phase/vacuum handles of one maintenance engine,
/// plus the engine's scoped registry. The `engine` label distinguishes
/// the unsharded engine (`maintenance`) from the sharded fleet
/// (`sharded`, shared by the façade and its fragment engines).
pub(crate) struct EngineObs {
    pub(crate) registry: Registry,
    round: Histogram,
    phase_delta_apply: Histogram,
    phase_base_maintain: Histogram,
    phase_view_maintain: Histogram,
    phase_pipeline: Histogram,
    vacuum_passes: Counter,
    vacuum_rows: Counter,
    vacuum_dict_entries: Counter,
}

impl EngineObs {
    pub(crate) fn new(registry: Registry, engine: &'static str) -> EngineObs {
        let phase = |p: &'static str| {
            registry.duration_histogram(
                "infine_round_phase_seconds",
                "Wall time of one maintenance-round phase.",
                &[("engine", engine), ("phase", p)],
            )
        };
        EngineObs {
            round: registry.duration_histogram(
                "infine_round_seconds",
                "Wall time of one full maintenance round (one apply call).",
                &[("engine", engine)],
            ),
            phase_delta_apply: phase("delta_apply"),
            phase_base_maintain: phase("base_maintain"),
            phase_view_maintain: phase("view_maintain"),
            phase_pipeline: phase("pipeline"),
            vacuum_passes: registry.counter(
                "infine_vacuum_passes_total",
                "Vacuum passes run (sharded: one per fragment engine per pass).",
                &[("engine", engine)],
            ),
            vacuum_rows: registry.counter(
                "infine_vacuum_rows_dropped_total",
                "Tombstoned rows physically dropped by vacuum passes.",
                &[("engine", engine)],
            ),
            vacuum_dict_entries: registry.counter(
                "infine_vacuum_dict_entries_dropped_total",
                "Dictionary entries garbage-collected by vacuum passes.",
                &[("engine", engine)],
            ),
            registry,
        }
    }

    /// A fresh child of the ambient registry, for a new engine.
    pub(crate) fn scoped_registry() -> Registry {
        infine_obs::with_current(Registry::child)
    }

    pub(crate) fn observe_round(&self, timings: &MaintenanceTimings, total: Duration) {
        self.round.observe_duration(total);
        self.phase_delta_apply.observe_duration(timings.delta_apply);
        self.phase_base_maintain
            .observe_duration(timings.base_maintain);
        self.phase_view_maintain
            .observe_duration(timings.view_maintain);
        self.phase_pipeline.observe_duration(timings.pipeline);
    }

    pub(crate) fn observe_vacuum(&self, stats: &VacuumStats) {
        self.vacuum_passes.inc();
        self.vacuum_rows.add(stats.rows_dropped as u64);
        self.vacuum_dict_entries
            .add(stats.dict_entries_dropped as u64);
    }
}

/// What one maintenance round recorded into its engine's registry — the
/// snapshot delta between round start and round end, attached to every
/// [`MaintenanceReport`](crate::MaintenanceReport).
///
/// Counters are exact per-round deltas (the engine registry is scoped,
/// so concurrent engines never bleed into each other's rounds); the
/// named accessors cover the hot ones, [`RoundMetrics::get`] /
/// [`RoundMetrics::snapshot`] the rest.
#[derive(Debug, Clone, Default)]
pub struct RoundMetrics {
    delta: Snapshot,
}

impl RoundMetrics {
    pub(crate) fn capture(registry: &Registry, before: &Snapshot) -> RoundMetrics {
        RoundMetrics {
            delta: registry.snapshot().since(before),
        }
    }

    /// Counting-only validity checks the round's revalidation ran.
    pub fn kernel_checks(&self) -> u64 {
        self.total("infine_kernel_checks_total") as u64
    }

    /// Kernel checks that exited at the first violating class.
    pub fn kernel_early_exits(&self) -> u64 {
        self.total("infine_kernel_early_exits_total") as u64
    }

    /// PLI cache hits during the round.
    pub fn cache_hits(&self) -> u64 {
        self.total("infine_pli_cache_hits_total") as u64
    }

    /// PLI cache misses (materializations) during the round.
    pub fn cache_misses(&self) -> u64 {
        self.total("infine_pli_cache_misses_total") as u64
    }

    /// PLI cache evictions during the round.
    pub fn cache_evictions(&self) -> u64 {
        self.total("infine_pli_cache_evictions_total") as u64
    }

    /// One series by its rendered key, e.g.
    /// `infine_round_seconds_count{engine="sharded"}`.
    pub fn get(&self, series: &str) -> Option<f64> {
        self.delta.get(series)
    }

    /// Sum of every series of one metric name across label sets.
    pub fn total(&self, name: &str) -> f64 {
        self.delta.total(name)
    }

    /// The underlying snapshot delta.
    pub fn snapshot(&self) -> &Snapshot {
        &self.delta
    }

    /// The delta as a JSON object (see [`Snapshot::to_json`]).
    pub fn to_json(&self) -> String {
        self.delta.to_json()
    }
}
