//! Key-range delta sharding: several maintenance engines, each owning a
//! disjoint fragment of every base table, kept current in parallel and
//! merged into the exact global answer at read time.
//!
//! Three pieces:
//!
//! * [`ShardRouter`] — assigns every base-table row to a shard (contiguous
//!   rid ranges at bootstrap, a rotating cursor for fresh inserts) and
//!   splits each incoming [`DeltaBatch`] into per-shard sub-batches whose
//!   row ids address the shard's *local* fragment. The router is the only
//!   component that knows global row ids; everything downstream works
//!   fragment-locally.
//! * [`ShardedEngine`] — one [`MaintenanceEngine`] per shard over the
//!   fragment database, a full-table mirror for the read side, and the
//!   read-time cover merge: per base label the fragment covers are
//!   unioned with [`FdSet::extend_minimal`], candidates are revalidated
//!   against the full relation, and failures grow upward through the
//!   seeded lattice walk (see
//!   [`merge_fragment_covers`](infine_core::merge_fragment_covers)). The
//!   merged round report — cover, triples, and per-FD classification — is
//!   **identical** to an unsharded [`MaintenanceEngine`] fed the same
//!   batches, and therefore to full re-discovery.
//! * [`crate::service::MaintenanceService`] — the channel-driven loop
//!   wrapping this engine (deltas in, reports out, per-table coalescing
//!   between rounds).
//!
//! Shard rounds fan out over the `infine-exec` pool
//! ([`infine_exec::par_map_mut`], one task per shard) and maintain only
//! the per-base covers (`apply_base_only` — a shard's own view-level
//! state is never read, so no fragment pipeline replays); shards whose
//! sub-round is empty are skipped entirely — their fragments did not
//! change, so their covers are current by construction.

use crate::engine::{
    classify_round, subquery_table_index, validate_deltas, DeletePolicy, MaintenanceEngine,
    MaintenanceError, MaintenanceReport, MaintenanceTimings, TombstoneStats, VacuumStats,
};
use crate::obs::{EngineObs, RoundMetrics};
use crate::view::{ViewBackend, ViewMode, VirtualView};
use crate::CoverDeltaStats;
use infine_algebra::ViewSpec;
use infine_core::{
    base_scopes, merge_label_covers, BaseFds, BaseScope, InFine, InFineReport, ProvenanceTriple,
};
use infine_discovery::{Fd, FdSet};
use infine_relation::{Database, DeltaBatch, DeltaRelation, DictIndexes};
use std::collections::{HashMap, HashSet};
use std::time::Instant;

/// Where the router sends freshly inserted rows.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum InsertPolicy {
    /// Rotate a per-table cursor across shards — keeps fragments balanced
    /// under append-heavy feeds.
    #[default]
    Spread,
    /// Every insert lands in one fixed shard (clamped to the shard
    /// count). Useful for tests and for skewed-ownership setups.
    Fixed(usize),
}

/// Home of one global row: which shard owns it and at which local rid.
/// (`pub(crate)` so [`crate::persist`] can freeze/restore the router.)
#[derive(Debug, Clone, Copy)]
pub(crate) struct RowHome {
    pub(crate) shard: u32,
    pub(crate) local: u32,
}

/// Per-table routing state, indexed by *current* global row id.
#[derive(Debug)]
pub(crate) struct TableMap {
    pub(crate) home: Vec<RowHome>,
    /// Current fragment sizes per shard.
    pub(crate) frag_rows: Vec<usize>,
    /// Rotating insert cursor ([`InsertPolicy::Spread`]).
    pub(crate) cursor: usize,
}

/// Key-range partitioner for delta batches.
///
/// At bootstrap each table's rid space `0..n` is cut into `shards`
/// contiguous ranges (the same `ceil(n / shards)` dealing the exec pool
/// uses), so shard `s` owns one key range of every table. The router then
/// mirrors every batch it splits: deletes are translated to the owning
/// shard's local rids, surviving rows are compacted per shard exactly as
/// [`infine_relation::Relation::apply_delta`] will compact them, and
/// inserts are placed by the [`InsertPolicy`]. Row-id bookkeeping is the
/// router's whole job — it never touches row *data*.
#[derive(Debug)]
pub struct ShardRouter {
    pub(crate) shards: usize,
    pub(crate) policy: InsertPolicy,
    pub(crate) tables: HashMap<String, TableMap>,
}

impl ShardRouter {
    /// Partition `db`'s rid spaces into `shards` contiguous ranges.
    pub fn new(db: &Database, shards: usize) -> ShardRouter {
        ShardRouter::with_policy(db, shards, InsertPolicy::default())
    }

    /// [`ShardRouter::new`] with an explicit insert policy.
    pub fn with_policy(db: &Database, shards: usize, policy: InsertPolicy) -> ShardRouter {
        let shards = shards.max(1);
        let tables = db
            .names()
            .map(|name| {
                let n = db.expect(name).nrows();
                let chunk = n.div_ceil(shards).max(1);
                let mut frag_rows = vec![0usize; shards];
                let home = (0..n)
                    .map(|g| {
                        let shard = (g / chunk).min(shards - 1);
                        let local = frag_rows[shard];
                        frag_rows[shard] += 1;
                        RowHome {
                            shard: shard as u32,
                            local: local as u32,
                        }
                    })
                    .collect();
                (
                    name.to_string(),
                    TableMap {
                        home,
                        frag_rows,
                        cursor: 0,
                    },
                )
            })
            .collect();
        ShardRouter {
            shards,
            policy,
            tables,
        }
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// Current fragment sizes of one table (rows per shard).
    pub fn fragment_rows(&self, table: &str) -> &[usize] {
        &self
            .tables
            .get(table)
            .expect("router knows every table")
            .frag_rows
    }

    /// Materialize the per-shard fragment databases for the router's
    /// *current* assignment (bootstrap: contiguous rid ranges). Fragments
    /// share the source tables' dictionaries (`Arc`) — building them is a
    /// code-vector copy, not a value copy.
    pub fn fragments(&self, db: &Database) -> Vec<Database> {
        (0..self.shards)
            .map(|s| {
                let mut frag = Database::new();
                for (name, tm) in &self.tables {
                    let table = db.expect(name);
                    let mut evict = DeltaBatch::new();
                    for (g, h) in tm.home.iter().enumerate() {
                        if h.shard as usize != s {
                            evict.delete(g as u32);
                        }
                    }
                    let (rel, _) = table.apply_delta(&evict, name.clone());
                    frag.insert(rel);
                }
                frag
            })
            .collect()
    }

    /// Split a round of batches into per-shard sub-rounds (local row
    /// ids), updating the row-home maps to the post-batch state. Batches
    /// must be pre-validated (in-range deletes, matching arity, one batch
    /// per table) — the router panics on malformed input rather than
    /// guessing.
    pub fn split(&mut self, deltas: &[DeltaRelation]) -> Vec<Vec<DeltaRelation>> {
        let mut out: Vec<Vec<DeltaRelation>> = (0..self.shards).map(|_| Vec::new()).collect();
        for d in deltas {
            if d.batch.is_empty() {
                continue;
            }
            let subs = self.route(&d.target, &d.batch);
            for (s, b) in subs.into_iter().enumerate() {
                if !b.is_empty() {
                    out[s].push(DeltaRelation::new(d.target.clone(), b));
                }
            }
        }
        out
    }

    /// Route one table's batch; mirror of one `apply_delta` call.
    fn route(&mut self, table: &str, batch: &DeltaBatch) -> Vec<DeltaBatch> {
        let tm = self
            .tables
            .get_mut(table)
            .expect("router knows every table");
        let n = tm.home.len();
        let mut subs: Vec<DeltaBatch> = vec![DeltaBatch::new(); self.shards];

        // Deletes: translate each global rid to its owner's local rid
        // (deduplicated — apply_delta tolerates duplicates, but the home
        // compaction below must count each row once).
        let mut dead = vec![false; n];
        for &g in &batch.deletes {
            let g = g as usize;
            assert!(
                g < n,
                "router: delete of row {g} out of range for {table:?} ({n} rows)"
            );
            if !dead[g] {
                dead[g] = true;
                let h = tm.home[g];
                subs[h.shard as usize].delete(h.local);
            }
        }

        // Survivors compact globally *and* per fragment in the same
        // relative order — recompute both numberings in one pass.
        let mut home: Vec<RowHome> = Vec::with_capacity(n);
        let mut frag_rows = vec![0usize; self.shards];
        for (old_home, _) in tm.home.iter().zip(&dead).filter(|(_, &is_dead)| !is_dead) {
            let s = old_home.shard as usize;
            home.push(RowHome {
                shard: s as u32,
                local: frag_rows[s] as u32,
            });
            frag_rows[s] += 1;
        }

        // Inserts: placed by policy, appended to the owner's fragment.
        for row in &batch.inserts {
            let s = match self.policy {
                InsertPolicy::Fixed(k) => k.min(self.shards - 1),
                InsertPolicy::Spread => {
                    let s = tm.cursor % self.shards;
                    tm.cursor += 1;
                    s
                }
            };
            subs[s].insert(row.clone());
            home.push(RowHome {
                shard: s as u32,
                local: frag_rows[s] as u32,
            });
            frag_rows[s] += 1;
        }

        tm.home = home;
        tm.frag_rows = frag_rows;
        subs
    }
}

/// A fleet of per-shard [`MaintenanceEngine`]s behind one exact façade.
///
/// `apply` routes each round through the [`ShardRouter`], runs the
/// affected shards' maintenance in parallel
/// ([`infine_exec::par_map_mut`]), and derives the round report from the
/// full-table mirror: per-label fragment covers are merged
/// ([`merge_fragment_covers`] — `extend_minimal` + global revalidation +
/// seeded lattice ascent) into exactly the [`BaseFds`] an unsharded
/// engine maintains, and the pipeline replays on them. Merged per-label
/// covers are **cached** between rounds — a label is re-merged only when
/// its base table appears in the round's deltas (neither the full
/// relation nor any fragment changed otherwise), so a round touching one
/// table pays one merge, not one per label. The resulting cover,
/// triples, and per-FD classification are identical to the unsharded
/// engine's — and to a fresh [`InFine::discover`] on the updated
/// database. (The stateless one-shot equivalent of this read side is
/// [`InFine::discover_sharded`].)
pub struct ShardedEngine {
    pub(crate) infine: InFine,
    pub(crate) spec: ViewSpec,
    /// Full-table mirror (the read side the merged pipeline replays on).
    pub(crate) db: Database,
    pub(crate) table_indexes: HashMap<String, DictIndexes>,
    pub(crate) router: ShardRouter,
    pub(crate) shards: Vec<MaintenanceEngine>,
    /// Base scopes of the spec (label → table/attrs), fixed at bootstrap.
    pub(crate) scopes: Vec<BaseScope>,
    /// Cached read-time merge: per label, the canonical cover of the full
    /// scoped relation (re-merged only when the label's table changes).
    pub(crate) merged_base: BaseFds,
    pub(crate) report: InFineReport,
    pub(crate) cover: FdSet,
    /// Which view backend carries the read-side cover between rounds.
    pub(crate) view_mode: ViewMode,
    /// Mirror-hosted virtual view ([`ViewMode::JoinIndex`]): rounds
    /// maintain the cover through the join-probe kernel instead of
    /// replaying the view-level pipeline on the mirror. Always runs the
    /// compacting delete policy — the mirror it shadows compacts every
    /// round. `None` under [`ViewMode::Materialized`] or when the spec
    /// is outside the virtual subset (exact pipeline replay then).
    pub(crate) virtual_view: Option<VirtualView>,
    pub(crate) subquery_tables: HashMap<String, HashSet<String>>,
    /// Fleet-wide metrics registry (shared with every fragment engine)
    /// plus round/phase/vacuum handles, all labeled `engine="sharded"`.
    pub(crate) obs: EngineObs,
    /// Shards actually touched per round (fan-out occupancy).
    pub(crate) fanout: infine_obs::Histogram,
}

/// One registry for the whole fleet: the façade and every fragment
/// engine record into it, so per-fleet deltas are exact even with
/// several sharded engines in one process. Shared by bootstrap
/// ([`ShardedEngine::with_options`]) and snapshot restore
/// ([`crate::persist`]).
pub(crate) fn fleet_obs() -> (EngineObs, infine_obs::Histogram) {
    let obs = EngineObs::new(EngineObs::scoped_registry(), "sharded");
    let fanout = obs.registry.histogram(
        "infine_shard_fanout_shards",
        "Shards touched by one sharded maintenance round.",
        &[],
        infine_obs::FANOUT_BUCKETS,
    );
    (obs, fanout)
}

impl ShardedEngine {
    /// Bootstrap `shards` fragment engines plus the merged read state.
    pub fn new(
        infine: InFine,
        db: Database,
        spec: ViewSpec,
        shards: usize,
    ) -> Result<ShardedEngine, MaintenanceError> {
        ShardedEngine::with_policy(infine, db, spec, shards, InsertPolicy::default())
    }

    /// [`ShardedEngine::new`] with an explicit insert policy.
    pub fn with_policy(
        infine: InFine,
        db: Database,
        spec: ViewSpec,
        shards: usize,
        policy: InsertPolicy,
    ) -> Result<ShardedEngine, MaintenanceError> {
        ShardedEngine::with_options(
            infine,
            db,
            spec,
            shards,
            policy,
            DeletePolicy::default(),
            ViewMode::default(),
        )
    }

    /// [`ShardedEngine::new`] with explicit insert/delete policies and
    /// view backend mode.
    ///
    /// Under [`DeletePolicy::Tombstone`] each *fragment* engine
    /// tombstones its deletes (fragment databases never feed a pipeline
    /// replay, so they can stay marked indefinitely) and
    /// [`ShardedEngine::vacuum`] compacts them per shard, in parallel.
    /// The full-table mirror stays compacting either way: the merged
    /// pipeline replays on it every round.
    ///
    /// Under [`ViewMode::JoinIndex`] the façade additionally hosts a
    /// [`VirtualView`] over the mirror and derives each round's cover
    /// from it through the join-probe kernel — no per-round view-level
    /// pipeline replay. Provenance labels then stay at their bootstrap
    /// values (surviving triples keep their last-known labels, like the
    /// unsharded cover-only fast path) and reports carry
    /// `exact_provenance = false`. Specs outside the virtual subset fall
    /// back to the exact replay transparently.
    pub fn with_options(
        infine: InFine,
        db: Database,
        spec: ViewSpec,
        shards: usize,
        policy: InsertPolicy,
        delete_policy: DeletePolicy,
        view_mode: ViewMode,
    ) -> Result<ShardedEngine, MaintenanceError> {
        let (obs, fanout) = fleet_obs();
        let _obs_scope = obs.registry.enter();
        let router = ShardRouter::with_policy(&db, shards, policy);
        let fragments = router.fragments(&db);
        // Fragment engines bootstrap base-cover state only — a shard's
        // own view-level report is never read, so no fragment pipeline
        // runs at bootstrap either — and in parallel, one pool task per
        // shard, like the rounds they will later run.
        let mut slots: Vec<Option<Database>> = fragments.into_iter().map(Some).collect();
        let config = infine.config;
        let spec_ref = &spec;
        let registry_ref = &obs.registry;
        let mut engines = infine_exec::par_map_mut(&mut slots, |_, slot| {
            let frag = slot.take().expect("each fragment bootstraps once");
            MaintenanceEngine::new_base_only(
                InFine::new(config),
                frag,
                spec_ref.clone(),
                delete_policy,
                registry_ref.clone(),
            )
        })
        .into_iter()
        .collect::<Result<Vec<_>, _>>()?;
        let scopes = base_scopes(&db, &spec)?;
        let shard_base: Vec<BaseFds> = engines.iter_mut().map(|e| e.base_covers()).collect();
        let mut merged_base = BaseFds::new();
        for scope in &scopes {
            if let Some(fds) = merge_label_covers(&db, scope, &shard_base) {
                merged_base.insert(scope.label.clone(), fds);
            }
        }
        let report = infine.discover_incremental(&db, &spec, &merged_base)?;
        let cover = report.fd_set();
        let subquery_tables = subquery_table_index(&spec);
        let virtual_view = if view_mode == ViewMode::JoinIndex {
            // The mirror compacts every round, so its shadow does too.
            VirtualView::bootstrap(&db, &spec, config.base_algorithm, DeletePolicy::Compact)
        } else {
            None
        };
        Ok(ShardedEngine {
            infine,
            spec,
            db,
            table_indexes: HashMap::new(),
            router,
            shards: engines,
            scopes,
            merged_base,
            report,
            cover,
            view_mode,
            virtual_view,
            subquery_tables,
            obs,
            fanout,
        })
    }

    /// The maintained view specification.
    pub fn spec(&self) -> &ViewSpec {
        &self.spec
    }

    /// The full-table mirror (after every applied round).
    pub fn database(&self) -> &Database {
        &self.db
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.router.shards()
    }

    /// The router (fragment sizes, shard count).
    pub fn router(&self) -> &ShardRouter {
        &self.router
    }

    /// The configured view backend mode.
    pub fn view_mode(&self) -> ViewMode {
        self.view_mode
    }

    /// The backend actually carrying the cover — `Materialized` when a
    /// [`ViewMode::JoinIndex`] request fell back on an unsupported spec.
    pub fn active_view_mode(&self) -> ViewMode {
        if self.virtual_view.is_some() {
            ViewMode::JoinIndex
        } else {
            ViewMode::Materialized
        }
    }

    /// Resident materialized view rows held by the read side — zero
    /// always: the sharded façade replays the pipeline (materialized
    /// mode, transient joins) or probes join indexes (virtual mode).
    pub fn resident_view_rows(&self) -> usize {
        0
    }

    /// The current merged pipeline report (exact provenance, always
    /// current — identical to the unsharded engine's). Under
    /// [`ViewMode::JoinIndex`] it reflects bootstrap (the per-round cover
    /// comes from the virtual view; labels are not re-derived).
    pub fn report(&self) -> &InFineReport {
        &self.report
    }

    /// The current FD cover of the view.
    pub fn fd_set(&self) -> FdSet {
        self.cover.clone()
    }

    /// A publishable read snapshot as of `round`: the merged per-label
    /// base covers (PR 4's read-time cache — cloned, never recomputed),
    /// the view cover, the provenance triples, and tombstone accounting.
    pub fn published_covers(&self, round: u64) -> crate::read::PublishedCovers {
        crate::read::PublishedCovers {
            round,
            base: self.merged_base.clone(),
            cover: self.cover.clone(),
            triples: self.report.triples.clone(),
            tombstones: self.tombstone_stats(),
        }
    }

    /// Apply one batch.
    pub fn apply_one(
        &mut self,
        delta: &DeltaRelation,
    ) -> Result<MaintenanceReport, MaintenanceError> {
        self.apply(std::slice::from_ref(delta))
    }

    /// Apply a round of delta batches (at most one per base table):
    /// route, fan out over the shard engines, merge, classify.
    ///
    /// The returned report's `base` accounting carries one entry per
    /// *(base occurrence, shard)* actually maintained, with the label
    /// suffixed `@shard<i>`, and `timings.base_maintain` is the
    /// wall-clock of the whole parallel shard fan-out (delta apply
    /// included); cover, triples, `held`, and `fresh` are identical to
    /// the unsharded [`MaintenanceEngine::apply`] fed the same round.
    ///
    /// Error contract: validation errors (unknown/duplicate target,
    /// out-of-range delete, arity mismatch) are returned before any
    /// state is touched. Errors past validation cannot occur for inputs
    /// that passed it (sub-batches are in-range by construction and the
    /// spec was validated at bootstrap); if one ever surfaced, treat it
    /// like a mid-round panic and discard the engine — router, mirror,
    /// and shard state may be ahead of the read-side cover.
    pub fn apply(
        &mut self,
        deltas: &[DeltaRelation],
    ) -> Result<MaintenanceReport, MaintenanceError> {
        let _obs_scope = self.obs.registry.enter();
        let obs_before = self.obs.registry.snapshot();
        let round_t0 = Instant::now();
        validate_deltas(&self.db, deltas)?;
        let mut timings = MaintenanceTimings::default();
        let changed: HashSet<String> = deltas
            .iter()
            .filter(|d| !d.batch.is_empty())
            .map(|d| d.target.clone())
            .collect();

        // Virtual-view maintenance first: batch row ids address the
        // pre-round tables, and the view keeps its own chain copies.
        let mut view_cover_stats: Option<CoverDeltaStats> = None;
        if let Some(vv) = self.virtual_view.as_mut() {
            let tv = Instant::now();
            for d in deltas {
                if d.batch.is_empty() {
                    continue;
                }
                if let Some(stats) = vv.apply_table(&d.target, &d.batch) {
                    let merged = view_cover_stats.get_or_insert_with(CoverDeltaStats::default);
                    merged.held += stats.held;
                    merged.broken += stats.broken;
                    merged.recovered += stats.recovered;
                    merged.surfaced += stats.surfaced;
                }
            }
            timings.view_maintain += tv.elapsed();
        }

        // Route first (pure bookkeeping), then bring the mirror forward.
        let sub_rounds = self.router.split(deltas);
        self.fanout
            .observe(sub_rounds.iter().filter(|r| !r.is_empty()).count() as f64);
        let t0 = Instant::now();
        for d in deltas {
            if d.batch.is_empty() {
                continue;
            }
            let table = self.db.remove(&d.target).expect("validated above");
            let index = self
                .table_indexes
                .entry(d.target.clone())
                .or_insert_with(|| DictIndexes::build(&table));
            let (new_table, _) = table.apply_delta_owned(&d.batch, d.target.clone(), index);
            self.db.insert(new_table);
        }
        timings.delta_apply += t0.elapsed();

        // Shard rounds in parallel — one task per *touched* shard,
        // base-cover maintenance only (a shard's view-level state is
        // never read; the merged pipeline below replays on the mirror).
        // An untouched shard's fragments did not change, so its state is
        // current without any work.
        let t1 = Instant::now();
        let sub_rounds = &sub_rounds;
        let shard_results = infine_exec::par_map_mut(&mut self.shards, |s, engine| {
            if sub_rounds[s].is_empty() {
                return Ok(None);
            }
            engine.apply_base_only(&sub_rounds[s]).map(Some)
        });
        let mut base_reports = Vec::new();
        for (s, result) in shard_results.into_iter().enumerate() {
            if let Some((reports, _shard_timings)) = result? {
                for mut b in reports {
                    b.label = format!("{}@shard{s}", b.label);
                    base_reports.push(b);
                }
            }
        }
        // Wall-clock of the parallel shard fan-out (per-shard CPU time
        // can exceed this with 2+ workers; summing it would make the
        // components disagree with the round's wall time).
        timings.base_maintain += t1.elapsed();

        // Merged read: re-merge the fragment covers of every label whose
        // base table changed (cached merges stay valid otherwise — no
        // fragment of an untouched table moved), then replay the
        // pipeline on the exact global BaseFds.
        let t2 = Instant::now();
        let old_triples: HashMap<Fd, ProvenanceTriple> = self
            .report
            .triples
            .iter()
            .map(|t| (t.fd, t.clone()))
            .collect();
        let old_cover = self.cover.clone();
        if !changed.is_empty() {
            // Only the changed labels' covers leave the shard engines.
            let shard_base: Vec<BaseFds> = self
                .shards
                .iter_mut()
                .map(|e| e.base_covers_for(&changed))
                .collect();
            for scope in &self.scopes {
                if !changed.contains(&scope.table) {
                    continue;
                }
                if let Some(fds) = merge_label_covers(&self.db, scope, &shard_base) {
                    self.merged_base.insert(scope.label.clone(), fds);
                }
            }
            match self.virtual_view.as_ref() {
                // Join-index mode: the cover comes out of the virtual
                // view (already maintained above); the bootstrap report
                // and its labels stand, like the unsharded fast path.
                Some(vv) => self.cover = vv.dense_cover(),
                None => {
                    let new_report = self.infine.discover_incremental(
                        &self.db,
                        &self.spec,
                        &self.merged_base,
                    )?;
                    self.cover = new_report.fd_set();
                    self.report = new_report;
                }
            }
        }
        // An empty round changed nothing, so the current report *is* the
        // round's report — no pipeline replay needed (classify_round
        // with an empty changed set marks everything untouched, exactly
        // what a replay would conclude).
        timings.pipeline += t2.elapsed();

        let new_cover = self.cover.clone();
        let (held, fresh) = classify_round(
            &old_triples,
            &old_cover,
            &new_cover,
            &self.subquery_tables,
            &changed,
        );
        let exact = self.virtual_view.is_none();
        let schema = self.report.schema.clone();
        // Virtual mode: surviving triples with their last-known labels,
        // exactly like the unsharded cover-only fast path.
        let triples: Vec<ProvenanceTriple> = if exact {
            self.report.triples.clone()
        } else {
            self.report
                .triples
                .iter()
                .filter(|t| new_cover.contains(&t.fd))
                .cloned()
                .collect()
        };
        self.obs.observe_round(&timings, round_t0.elapsed());
        Ok(MaintenanceReport {
            schema,
            cover: new_cover,
            triples,
            held,
            fresh,
            base: base_reports,
            view_cover: view_cover_stats,
            exact_provenance: exact,
            vacuum: None,
            timings,
            metrics: RoundMetrics::capture(&self.obs.registry, &obs_before),
        })
    }

    /// Memory accounting summed over the fragment engines (fragment
    /// tables + scoped base states). The compacting mirror is excluded —
    /// it holds no tombstones by construction.
    pub fn tombstone_stats(&self) -> TombstoneStats {
        let mut stats = TombstoneStats::default();
        for engine in &self.shards {
            stats.merge(engine.tombstone_stats());
        }
        stats
    }

    /// Vacuum every fragment independently and **in parallel** (one
    /// [`infine_exec::par_map_mut`] task per shard): each shard compacts
    /// its own fragment tables and scoped base states, garbage-collects
    /// its dictionaries, and rebases its PLIs/witnesses — without ever
    /// synchronizing with the other shards.
    ///
    /// No router rebuild is needed: the [`ShardRouter`]'s global↔local
    /// maps speak *logical* (compacted-equivalent) row ids, and a vacuum
    /// only moves physical bytes inside one fragment — the logical
    /// content of every fragment is unchanged. (Each fragment engine's
    /// own [`RowMap`](infine_relation::RowMap)s reset to the identity;
    /// that is the whole address-space fix-up.) Covers, reports, and the
    /// mirror are untouched.
    pub fn vacuum(&mut self) -> VacuumStats {
        // Each fragment engine's vacuum records its own pass into the
        // shared registry (`infine_vacuum_*{engine="sharded"}`).
        let _obs_scope = self.obs.registry.enter();
        let t0 = Instant::now();
        let per_shard = infine_exec::par_map_mut(&mut self.shards, |_, engine| engine.vacuum());
        let mut stats = VacuumStats::default();
        for s in per_shard {
            stats.merge(s);
        }
        // Wall-clock of the parallel fan-out, not summed per-shard CPU
        // time (the components would exceed the round with 2+ workers).
        stats.duration = t0.elapsed();
        stats
    }

    /// One shard's fragment database (soak tests pin vacuumed fragments
    /// byte-equal to from-scratch rebuilds).
    pub fn shard_database(&self, shard: usize) -> &Database {
        self.shards[shard].database()
    }

    /// Soak/debug hook: run every fragment engine's
    /// [`MaintenanceEngine::self_check`] plus router/fragment size
    /// consistency. O(full re-mine per fragment); tests only.
    pub fn self_check(&self) {
        if let Some(vv) = &self.virtual_view {
            vv.self_check();
        }
        for (s, engine) in self.shards.iter().enumerate() {
            engine.self_check();
            for (name, tm_rows) in self
                .db
                .names()
                .map(|n| (n.to_string(), self.router.fragment_rows(n)[s]))
                .collect::<Vec<_>>()
            {
                assert_eq!(
                    engine.database().expect(&name).live_rows(),
                    tm_rows,
                    "shard {s}: fragment {name} diverged from the router's size"
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use infine_relation::{relation_from_rows, Value};

    fn db() -> Database {
        let mut db = Database::new();
        db.insert(relation_from_rows(
            "p",
            &["pid", "grp", "flag"],
            &[
                &[Value::Int(1), Value::str("a"), Value::Int(0)],
                &[Value::Int(2), Value::str("a"), Value::Int(0)],
                &[Value::Int(3), Value::str("b"), Value::Int(1)],
                &[Value::Int(4), Value::str("b"), Value::Int(1)],
            ],
        ));
        db.insert(relation_from_rows(
            "q",
            &["pid", "site"],
            &[
                &[Value::Int(1), Value::str("x")],
                &[Value::Int(2), Value::str("x")],
                &[Value::Int(3), Value::str("y")],
                &[Value::Int(3), Value::str("y")],
            ],
        ));
        db
    }

    fn view() -> ViewSpec {
        ViewSpec::base("p").inner_join(ViewSpec::base("q"), &["pid"])
    }

    #[test]
    fn router_bootstrap_ranges_are_contiguous_and_disjoint() {
        let router = ShardRouter::new(&db(), 2);
        assert_eq!(router.fragment_rows("p"), &[2, 2]);
        assert_eq!(router.fragment_rows("q"), &[2, 2]);
        let frags = router.fragments(&db());
        assert_eq!(frags.len(), 2);
        assert_eq!(frags[0].expect("p").nrows(), 2);
        assert_eq!(frags[0].expect("p").value(0, 0), &Value::Int(1));
        assert_eq!(frags[1].expect("p").value(0, 0), &Value::Int(3));
    }

    #[test]
    fn router_split_mirrors_apply_delta_compaction() {
        let mut router = ShardRouter::new(&db(), 2);
        let mut batch = DeltaBatch::new();
        // delete one row from each shard's range, insert two rows
        batch
            .delete(0)
            .delete(3)
            .insert(vec![Value::Int(5), Value::str("c"), Value::Int(2)])
            .insert(vec![Value::Int(6), Value::str("c"), Value::Int(2)]);
        let subs = router.split(&[DeltaRelation::new("p", batch)]);
        // shard 0: local delete 0, one insert (cursor starts at 0)
        let s0 = &subs[0][0].batch;
        assert_eq!(s0.deletes, vec![0]);
        assert_eq!(s0.num_inserts(), 1);
        let s1 = &subs[1][0].batch;
        assert_eq!(s1.deletes, vec![1]);
        assert_eq!(s1.num_inserts(), 1);
        // post-state: both fragments at 2 rows again
        assert_eq!(router.fragment_rows("p"), &[2, 2]);
    }

    #[test]
    fn router_single_shard_passes_batches_through() {
        let mut router = ShardRouter::new(&db(), 1);
        let mut batch = DeltaBatch::new();
        batch
            .delete(2)
            .insert(vec![Value::Int(9), Value::str("z"), Value::Int(1)]);
        let subs = router.split(&[DeltaRelation::new("p", batch.clone())]);
        assert_eq!(subs.len(), 1);
        assert_eq!(subs[0][0].batch.deletes, batch.deletes);
        assert_eq!(subs[0][0].batch.inserts, batch.inserts);
    }

    #[test]
    fn sharded_engine_matches_unsharded_rounds() {
        let mut unsharded = MaintenanceEngine::with_defaults(db(), view()).unwrap();
        let mut sharded = ShardedEngine::new(InFine::default(), db(), view(), 2).unwrap();
        assert_eq!(sharded.report().triples, unsharded.report().triples);

        let rounds: Vec<Vec<DeltaRelation>> = vec![
            vec![DeltaRelation::new("p", {
                let mut b = DeltaBatch::new();
                b.insert(vec![Value::Int(2), Value::str("a"), Value::Int(9)]);
                b
            })],
            vec![
                DeltaRelation::new("p", {
                    let mut b = DeltaBatch::new();
                    b.delete(0)
                        .insert(vec![Value::Int(7), Value::str("b"), Value::Int(0)]);
                    b
                }),
                DeltaRelation::new("q", {
                    let mut b = DeltaBatch::new();
                    b.insert(vec![Value::Int(7), Value::str("x")]).delete(1);
                    b
                }),
            ],
            vec![DeltaRelation::new("q", {
                let mut b = DeltaBatch::new();
                b.delete(0).delete(2);
                b
            })],
        ];
        for round in rounds {
            let a = unsharded.apply(&round).unwrap();
            let b = sharded.apply(&round).unwrap();
            assert_eq!(a.triples, b.triples);
            assert_eq!(a.cover.to_sorted_vec(), b.cover.to_sorted_vec());
            let mut ha: Vec<_> = a.held.iter().map(|(t, s)| (t.fd, *s)).collect();
            let mut hb: Vec<_> = b.held.iter().map(|(t, s)| (t.fd, *s)).collect();
            ha.sort();
            hb.sort();
            assert_eq!(ha, hb);
        }
        // Mirror databases agree row-for-row.
        let p = unsharded.database().expect("p");
        let sp = sharded.database().expect("p");
        assert_eq!(p.nrows(), sp.nrows());
        for r in 0..p.nrows() {
            assert_eq!(p.row(r), sp.row(r));
        }
    }

    #[test]
    fn sharded_engine_rejects_malformed_batches() {
        let mut sharded = ShardedEngine::new(InFine::default(), db(), view(), 2).unwrap();
        let mut bad = DeltaBatch::new();
        bad.delete(99);
        let err = sharded
            .apply_one(&DeltaRelation::new("p", bad))
            .unwrap_err();
        assert!(matches!(err, MaintenanceError::BadBatch(_)));
        let err = sharded
            .apply_one(&DeltaRelation::new("nope", DeltaBatch::new()))
            .unwrap_err();
        assert!(matches!(err, MaintenanceError::UnknownTable(_)));
    }

    #[test]
    fn tombstoned_fragments_match_unsharded_and_vacuum_in_parallel() {
        let mut unsharded = MaintenanceEngine::with_defaults(db(), view()).unwrap();
        let mut sharded = ShardedEngine::with_options(
            InFine::default(),
            db(),
            view(),
            2,
            InsertPolicy::default(),
            DeletePolicy::Tombstone,
            ViewMode::default(),
        )
        .unwrap();
        let rounds: Vec<Vec<DeltaRelation>> = vec![
            vec![DeltaRelation::new("p", {
                let mut b = DeltaBatch::new();
                b.delete(0)
                    .delete(3)
                    .insert(vec![Value::Int(7), Value::str("b"), Value::Int(0)]);
                b
            })],
            vec![DeltaRelation::new("q", {
                let mut b = DeltaBatch::new();
                b.delete(1).delete(2);
                b
            })],
            vec![DeltaRelation::new("p", {
                let mut b = DeltaBatch::new();
                b.delete(1)
                    .insert(vec![Value::Int(1), Value::str("a"), Value::Int(0)]);
                b
            })],
        ];
        for round in rounds {
            let a = unsharded.apply(&round).unwrap();
            let b = sharded.apply(&round).unwrap();
            assert_eq!(a.triples, b.triples);
            assert_eq!(a.cover.to_sorted_vec(), b.cover.to_sorted_vec());
        }
        // Fragments accumulated tombstones; the mirror did not.
        let before = sharded.tombstone_stats();
        assert!(before.dead_rows() > 0);
        // Which fragments actually hold garbage (those get dictionary-GC'd
        // to rebuild-equal form; untouched fragments keep sharing their
        // bootstrap dictionary Arc with the source table — a constant,
        // not growth).
        let dirty: Vec<(usize, &str)> = (0..sharded.shards())
            .flat_map(|s| ["p", "q"].into_iter().map(move |n| (s, n)))
            .filter(|&(s, n)| sharded.shard_database(s).expect(n).has_tombstones())
            .collect();
        assert!(!dirty.is_empty());
        let triples_before = sharded.report().triples.clone();
        let vac = sharded.vacuum();
        assert!(!vac.is_noop());
        assert_eq!(sharded.tombstone_stats().dead_rows(), 0);
        // Router untouched, state self-consistent, answers unchanged.
        sharded.self_check();
        assert_eq!(sharded.report().triples, triples_before);
        // Vacuumed fragments are byte-equal to from-scratch rebuilds.
        for (s, name) in dirty {
            let rel = sharded.shard_database(s).expect(name);
            let rows: Vec<Vec<Value>> = (0..rel.nrows()).map(|r| rel.row(r)).collect();
            let refs: Vec<&[Value]> = rows.iter().map(|r| r.as_slice()).collect();
            let names: Vec<&str> = (0..rel.ncols()).map(|c| rel.schema.name(c)).collect();
            let rebuilt = relation_from_rows(name, &names, &refs);
            for c in 0..rel.ncols() {
                assert_eq!(rel.column(c).codes, rebuilt.column(c).codes);
                assert_eq!(
                    rel.column(c).dict.as_slice(),
                    rebuilt.column(c).dict.as_slice()
                );
            }
        }
        // And further rounds keep matching the unsharded engine.
        let mut b = DeltaBatch::new();
        b.delete(0);
        let round = vec![DeltaRelation::new("p", b)];
        let a = unsharded.apply(&round).unwrap();
        let s = sharded.apply(&round).unwrap();
        assert_eq!(a.triples, s.triples);
    }

    #[test]
    fn more_shards_than_rows_leaves_trailing_shards_empty() {
        // Both tables have 4 rows; with 8 shards the trailing fragments
        // are genuinely empty (ceil(4/8) = 1 row per leading shard) —
        // bootstrap over 0-row fragments and a round must still match
        // unsharded.
        let mut sharded = ShardedEngine::new(InFine::default(), db(), view(), 8).unwrap();
        assert_eq!(sharded.router().fragment_rows("p")[7], 0);
        let mut unsharded = MaintenanceEngine::with_defaults(db(), view()).unwrap();
        let mut b = DeltaBatch::new();
        b.insert(vec![Value::Int(1), Value::str("b"), Value::Int(5)]);
        let round = vec![DeltaRelation::new("p", b)];
        let a = unsharded.apply(&round).unwrap();
        let s = sharded.apply(&round).unwrap();
        assert_eq!(a.triples, s.triples);
    }
}
