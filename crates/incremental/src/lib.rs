//! # infine-incremental
//!
//! Incremental FD maintenance over integrated views — the "delta-in,
//! report-out" layer on top of the InFine pipeline.
//!
//! The paper's provenance triples record *which sub-query of the view*
//! justifies each FD. This crate exploits that: when base tables change,
//! only the FDs whose justifying sub-query sits above a changed table
//! need attention, and those are revalidated against *patched* position
//! list indexes instead of re-running discovery from scratch.
//!
//! ## Quick start
//!
//! ```
//! use infine_incremental::MaintenanceEngine;
//! use infine_algebra::ViewSpec;
//! use infine_relation::{relation_from_rows, Database, DeltaBatch, DeltaRelation, Value};
//!
//! let mut db = Database::new();
//! db.insert(relation_from_rows(
//!     "patient",
//!     &["subject_id", "gender"],
//!     &[
//!         &[Value::Int(1), Value::str("F")],
//!         &[Value::Int(2), Value::str("M")],
//!     ],
//! ));
//! db.insert(relation_from_rows(
//!     "admission",
//!     &["subject_id", "insurance"],
//!     &[
//!         &[Value::Int(1), Value::str("Medicare")],
//!         &[Value::Int(2), Value::str("Private")],
//!     ],
//! ));
//! let view = ViewSpec::base("patient")
//!     .inner_join(ViewSpec::base("admission"), &["subject_id"]);
//! let mut engine = MaintenanceEngine::with_defaults(db, view).unwrap();
//!
//! // A delta arrives: one new admission.
//! let mut batch = DeltaBatch::new();
//! batch.insert(vec![Value::Int(1), Value::str("Medicare")]);
//! let report = engine.apply_one(&DeltaRelation::new("admission", batch)).unwrap();
//! println!("{}", report.summary());
//! assert!(!report.triples.is_empty());
//! ```
//!
//! The maintained cover is always *identical* to what a fresh
//! [`InFine::discover`](infine_core::InFine::discover) on the updated
//! database would produce — incrementality changes the cost, never the
//! answer. See `crates/incremental/README.md` for the design notes and
//! the complexity discussion.
//!
//! For production-shaped deployments, [`ShardedEngine`] partitions every
//! base table into key-range fragments maintained by one engine per
//! shard (covers merged exactly at read time), and
//! [`MaintenanceService`] wraps it in a channel-driven loop — deltas in,
//! reports out, per-table batch coalescing between rounds — so producers
//! never block on maintenance. [`MaintenanceService::reader`] hands out
//! wait-free [`CoverReader`] handles onto the latest published cover
//! snapshot, so read-side clients never queue behind ingest either.

pub mod cover;
pub mod engine;
mod obs;
mod persist;
pub mod read;
pub mod service;
pub mod shard;
pub mod view;

pub use cover::{CoverDeltaStats, CoverState};
pub use engine::{
    BaseMaintenance, DeletePolicy, FdStatus, MaintenanceEngine, MaintenanceError, MaintenanceMode,
    MaintenanceReport, MaintenanceTimings, TombstoneStats, VacuumStats,
};
pub use obs::RoundMetrics;
pub use read::{CoverReader, PublishedCovers};
pub use service::{
    DurabilityOptions, IngestPolicy, MaintenanceService, OverflowPolicy, RecoveryInfo,
    ServicePolicies, ServiceStats, SupervisorPolicy, VacuumPolicy,
};
// Durability knobs callers need to configure a durable service without
// depending on the storage crate directly.
pub use infine_durability::{FailPoints, RetryPolicy, SnapshotPolicy};
pub use shard::{InsertPolicy, ShardRouter, ShardedEngine};
pub use view::{supports_virtual, MaterializedView, ViewBackend, ViewMode, ViewState, VirtualView};
